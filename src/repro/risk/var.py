"""Full-revaluation portfolio VaR/ES through the serving stack.

The tentpole estimator: a book of workloads, a scenario set, and one
shared :class:`~repro.serve.service.PricingService` — every scenario's
book is re-priced in full (no delta-gamma shortcuts), each revaluation
routed through the shared :class:`~repro.serve.cache.PriceCache` so the
near-duplicate structure of bumped requests shows up as measurable hit
rates. Common random numbers throughout: every request carries the same
seed and path budget, so scenario-to-base P&L differences are driven by
the shock, not by independent MC noise.

Estimators are order-statistics based and therefore permutation
invariant by construction: losses are sorted once and

    VaR_α = L_(⌈αn⌉),     ES_α = mean(L_(⌈αn⌉) … L_(n)),

which also makes ``ES ≥ VaR`` and monotonicity of VaR in ``α`` exact
(not statistical) invariants — the property suite pins both.

Accounting: ``risk.scenarios`` / ``risk.contracts`` counters and the
``risk.revalue_s`` per-scenario histogram in the metrics registry; one
``kind="serve"`` ledger record per scenario batch (from the service)
plus one ``kind="risk"`` summary record per sweep.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.obs.ledger import (RunRecord, active_ledger, config_digest,
                              git_sha, new_run_id)
from repro.risk.scenarios import (Scenario, horizon_scenarios,
                                  scenario_digest, stress_scenarios)
from repro.serve.batching import PricingRequest
from repro.serve.cache import PriceCache
from repro.serve.service import PricingService
from repro.utils.formatting import Table
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.generators import Workload

__all__ = ["var_es", "RiskReport", "revalue_book", "portfolio_deltas",
           "hedged_pnl", "RiskConfig", "run_risk"]


def var_es(pnl, level: float) -> tuple[float, float]:
    """Empirical (VaR, ES) of a P&L sample at confidence ``level``.

    Losses are ``-pnl``; VaR is the ``⌈level·n⌉``-th order statistic and
    ES the mean of that statistic and everything beyond it. Sort-based,
    so permutation invariant, ``ES ≥ VaR`` always, and VaR is
    non-decreasing in ``level``.
    """
    if not 0.0 < level < 1.0:
        raise ValidationError(f"level must be in (0, 1), got {level!r}")
    losses = np.sort(-np.asarray(pnl, dtype=float))
    n = losses.size
    if n == 0:
        raise ValidationError("var_es requires at least one P&L observation")
    k = max(int(math.ceil(level * n)), 1)
    var = float(losses[k - 1])
    es = float(losses[k - 1:].mean())
    return var, es


@dataclass
class RiskReport:
    """One full-revaluation sweep: values, P&L, tail measures, plumbing."""

    base_value: float
    values: tuple[float, ...]
    levels: dict[float, tuple[float, float]]  # level -> (VaR, ES)
    n_contracts: int
    scenarios_digest: str
    engine: str
    seed: int
    wall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    hedged: tuple[float, ...] | None = None
    deltas: tuple[float, ...] | None = None
    per_scenario_s: list[float] = field(default_factory=list)

    @property
    def pnl(self) -> tuple[float, ...]:
        return tuple(v - self.base_value for v in self.values)

    @property
    def n_scenarios(self) -> int:
        return len(self.values)

    @property
    def scenarios_per_s(self) -> float:
        return self.n_scenarios / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def pnl_digest(self) -> str:
        """SHA-256 over the base value and every scenario value's IEEE-754
        bits — the bitwise replay identity of a sweep."""
        import hashlib

        from repro.verify.determinism import float_bits

        parts = [float_bits(self.base_value)]
        parts.extend(float_bits(v) for v in self.values)
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]

    def table(self, *, title: str = "risk report") -> Table:
        table = Table(["level", "VaR", "ES", "ES/VaR"], title=title,
                      floatfmt=".4f")
        for level in sorted(self.levels):
            var, es = self.levels[level]
            table.add_row([f"{level:.2%}", var, es,
                           es / var if var > 0 else float("nan")])
        return table

    def to_record(self, config: dict) -> RunRecord:
        worst = max(self.levels) if self.levels else None
        extra = {"base_value": self.base_value,
                 "n_scenarios": self.n_scenarios,
                 "n_contracts": self.n_contracts,
                 "scenarios_per_s": self.scenarios_per_s,
                 "hit_rate": self.hit_rate,
                 "scenarios": self.scenarios_digest,
                 "pnl_digest": self.pnl_digest()}
        if worst is not None:
            extra["var"], extra["es"] = self.levels[worst]
            extra["level"] = worst
        return RunRecord(
            run_id=new_run_id(), kind="risk", engine=self.engine,
            config=config_digest(config), backend="serve",
            workers=1, p=self.n_scenarios,
            stages={"sweep": self.wall_s}, wall_s=self.wall_s,
            extra=extra, git=git_sha())


def _book_requests(book, model_of, *, engine: str, n_paths: int, seed: int,
                   p: int) -> list[PricingRequest]:
    return [PricingRequest(
                Workload(w.name, model_of(w), w.payoff, w.expiry),
                engine=engine, n_paths=n_paths, seed=seed, p=p, name=w.name)
            for w in book]


def revalue_book(book, scenarios, *, engine: str = "mc",
                 n_paths: int = 2_000, seed: int = 0, p: int = 1,
                 levels=(0.95, 0.99), service: PricingService | None = None,
                 cache: PriceCache | None = None, backend=None,
                 metrics=None, ledger=None) -> RiskReport:
    """Full revaluation of ``book`` under every scenario; VaR/ES report.

    One scenario at a time through one shared service (its cache makes
    the base points of axis sweeps and repeated sweeps near-free), with
    the *same* request seed everywhere — common random numbers — so the
    scenario P&L is shock-driven. Appends one ``kind="risk"`` ledger
    record; the service appends its own per-batch ``kind="serve"``
    records (one per scenario when the batch bound covers the book).
    """
    book = list(book)
    scenarios = list(scenarios)
    if not book:
        raise ValidationError("revalue_book requires a non-empty book")
    if not scenarios:
        raise ValidationError("revalue_book requires at least one scenario")
    check_positive_int("n_paths", n_paths)
    for level in levels:
        if not 0.0 < level < 1.0:
            raise ValidationError(f"levels must be in (0, 1), got {level!r}")

    own = service is None
    if own:
        if cache is None:
            cache = PriceCache(max(16, 4 * len(book) * (len(scenarios) + 1)),
                               metrics=metrics)
        service = PricingService(backend, cache=cache, max_batch=len(book),
                                 metrics=metrics, ledger=ledger)
    cache = service.cache
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0

    t0 = time.perf_counter()
    base_quotes = service.price_many(_book_requests(
        book, lambda w: w.model, engine=engine, n_paths=n_paths, seed=seed,
        p=p))
    base_value = float(sum(q.price for q in base_quotes))

    values: list[float] = []
    per_scenario: list[float] = []
    for scenario in scenarios:
        s0 = time.perf_counter()
        quotes = service.price_many(_book_requests(
            book, lambda w, s=scenario: s.apply(w.model), engine=engine,
            n_paths=n_paths, seed=seed, p=p))
        values.append(float(sum(q.price for q in quotes)))
        wall = time.perf_counter() - s0
        per_scenario.append(wall)
        if metrics is not None:
            metrics.counter("risk.scenarios").inc()
            metrics.counter("risk.contracts").inc(len(book))
            metrics.histogram("risk.revalue_s").observe(wall)
    wall_s = time.perf_counter() - t0
    if own:
        service.close()

    pnl = np.asarray(values) - base_value
    report = RiskReport(
        base_value=base_value, values=tuple(values),
        levels={float(level): var_es(pnl, float(level)) for level in levels},
        n_contracts=len(book), scenarios_digest=scenario_digest(scenarios),
        engine=engine, seed=seed, wall_s=wall_s,
        cache_hits=(cache.hits - hits0) if cache is not None else 0,
        cache_misses=(cache.misses - misses0) if cache is not None else 0,
        per_scenario_s=per_scenario)
    book_ledger = ledger if ledger is not None else active_ledger()
    if book_ledger is not None:
        book_ledger.append(report.to_record({
            "engine": engine, "n_paths": n_paths, "seed": seed, "p": p,
            "n_contracts": len(book), "n_scenarios": len(scenarios),
            "levels": sorted(float(l) for l in levels)}))
    return report


def portfolio_deltas(book, *, service: PricingService, engine: str = "mc",
                     n_paths: int = 2_000, seed: int = 0, p: int = 1,
                     bump: float = 0.01) -> np.ndarray:
    """Aggregate per-asset spot deltas of the book by central difference.

    Every contract is revalued with asset ``i``'s spot bumped ±``bump``
    (relative) through the same service/cache as the sweep — more
    near-duplicate requests for the hit-rate structure. All workloads
    must share one model dimension.
    """
    book = list(book)
    if not book:
        raise ValidationError("portfolio_deltas requires a non-empty book")
    check_positive("bump", bump)
    dim = book[0].model.dim
    if any(w.model.dim != dim for w in book):
        raise ValidationError("portfolio_deltas needs a single-dim book")
    deltas = np.zeros(dim)
    for i in range(dim):
        shocked = {}
        for sign in (+1.0, -1.0):
            factors = tuple(1.0 + sign * bump if j == i else 1.0
                            for j in range(dim))
            scenario = Scenario(label=f"delta-{i}{sign:+.0f}",
                                spot_factors=factors, axis="spot")
            quotes = service.price_many(_book_requests(
                book, lambda w, s=scenario: s.apply(w.model), engine=engine,
                n_paths=n_paths, seed=seed, p=p))
            shocked[sign] = float(sum(q.price for q in quotes))
        ds = 2.0 * bump * float(book[0].model.spots[i])
        deltas[i] = (shocked[+1.0] - shocked[-1.0]) / ds
    return deltas


def hedged_pnl(report: RiskReport, deltas: np.ndarray, base_spots,
               scenarios) -> tuple[float, ...]:
    """Delta-hedged scenario P&L: raw P&L minus the hedge's spot gains.

    ``pnl_hedged[s] = pnl[s] − Σ_i δ_i · S_i · (factor_si − 1)`` — the
    static delta hedge put on at the base point. Pure arithmetic over the
    report, no further pricing.
    """
    scenarios = list(scenarios)
    if len(scenarios) != report.n_scenarios:
        raise ValidationError(
            f"{len(scenarios)} scenarios for {report.n_scenarios} P&L points")
    spots = np.asarray(base_spots, dtype=float)
    deltas = np.asarray(deltas, dtype=float)
    if deltas.shape != spots.shape:
        raise ValidationError("deltas and base_spots must align")
    out = []
    for pnl, scenario in zip(report.pnl, scenarios):
        factors = scenario._factors(scenario.spot_factors, spots.size,
                                    "spot_factors")
        hedge = float(np.dot(deltas, spots * (factors - 1.0)))
        out.append(pnl - hedge)
    return tuple(out)


@dataclass(frozen=True)
class RiskConfig:
    """Everything that determines a ``repro risk`` sweep, seed included."""

    dim: int = 2
    n_contracts: int = 4
    n_scenarios: int = 128
    generator: str = "stress"      # stress | horizon | historical | axes
    horizon: float = 10.0 / 252.0
    engine: str = "mc"
    n_paths: int = 2_000
    seed: int = 0
    p: int = 1
    levels: tuple[float, ...] = (0.95, 0.99)
    hedge: bool = False

    def __post_init__(self) -> None:
        check_positive_int("dim", self.dim)
        check_positive_int("n_contracts", self.n_contracts)
        check_positive_int("n_scenarios", self.n_scenarios)
        check_positive_int("n_paths", self.n_paths)
        check_positive("horizon", self.horizon)
        if self.generator not in ("stress", "horizon", "historical", "axes"):
            raise ValidationError(
                f"generator must be stress/horizon/historical/axes, "
                f"got {self.generator!r}")


def build_scenarios(cfg: RiskConfig, model) -> list[Scenario]:
    """The scenario set a :class:`RiskConfig` describes (deterministic)."""
    from repro.risk.scenarios import axis_sweep, historical_scenarios

    if cfg.generator == "stress":
        return stress_scenarios(cfg.dim, cfg.n_scenarios, seed=cfg.seed)
    if cfg.generator == "horizon":
        return horizon_scenarios(model, cfg.n_scenarios, cfg.horizon,
                                 seed=cfg.seed)
    if cfg.generator == "historical":
        return historical_scenarios(cfg.dim)
    return axis_sweep()


def run_risk(cfg: RiskConfig, *, backend=None, metrics=None,
             ledger=None) -> RiskReport:
    """Build the seeded book + scenarios and run one full sweep."""
    from repro.workloads.generators import strike_strip

    book = strike_strip(cfg.n_contracts, dim=cfg.dim)
    scenarios = build_scenarios(cfg, book[0].model)
    cache = PriceCache(max(64, 4 * cfg.n_contracts * (len(scenarios) + 1)),
                       metrics=metrics)
    with PricingService(backend, cache=cache, max_batch=cfg.n_contracts,
                        metrics=metrics, ledger=ledger) as service:
        report = revalue_book(book, scenarios, engine=cfg.engine,
                              n_paths=cfg.n_paths, seed=cfg.seed, p=cfg.p,
                              levels=cfg.levels, service=service,
                              metrics=metrics, ledger=ledger)
        if cfg.hedge:
            deltas = portfolio_deltas(book, service=service,
                                      engine=cfg.engine, n_paths=cfg.n_paths,
                                      seed=cfg.seed, p=cfg.p)
            report.deltas = tuple(float(d) for d in deltas)
            report.hedged = hedged_pnl(report, deltas, book[0].model.spots,
                                       scenarios)
    return report
