"""Seeded, byte-reproducible market-shock scenarios.

The Premia/Nsp benchmark paper's risk workload starts here: a scenario
is a *relative* shock applied to an existing market model — per-asset
spot and vol factors, an absolute rate shift, and a uniform off-diagonal
correlation shift — so one scenario set replays against any book. Every
generator is a pure function of its arguments (Philox draws for the
stress family, fixed tables for the historical family), and a scenario
set serializes to canonical JSON, so two builds agree **byte for byte**
(:func:`shock_bytes`) and hash to the same :func:`scenario_digest`.
That is the property the hypothesis suite pins and the ``risk``
determinism check in ``repro verify`` replays.

Correlation shocks can push a valid matrix off the PSD cone; a scenario
never ships a broken market: :func:`repair_correlation` symmetrizes,
clips to ``[-1, 1]``, restores the unit diagonal and projects to the
nearest PSD correlation (Higham one-shot) before the shocked
:class:`~repro.market.gbm.MultiAssetGBM` is constructed.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.market.correlation import is_positive_semidefinite
from repro.market.gbm import MultiAssetGBM
from repro.rng import Philox4x32
from repro.utils.numerics import nearest_psd
from repro.utils.validation import check_positive, check_positive_int
from repro.verify.contracts import canonical_json

__all__ = ["Scenario", "repair_correlation", "base_scenario",
           "stress_scenarios", "historical_scenarios", "axis_sweep",
           "horizon_scenarios", "shock_bytes", "scenario_digest"]

#: Philox stream discriminator for stress-scenario draws.
_STREAM = 0x5CE0

#: Normal draws consumed per stress scenario (dim spot + dim vol + rate +
#: correlation) — fixed so the stream position is a pure function of the
#: scenario index.
def _draws_per_scenario(dim: int) -> int:
    return 2 * dim + 2

#: Axes a single-axis sweep can bump. ``rate`` magnitudes are divided by
#: ten before shifting the short rate (a "10%" rate shock is 100 bp).
SWEEP_AXES = ("spot", "vol", "rate")

_RATE_MAGNITUDE_SCALE = 0.1


def repair_correlation(matrix: np.ndarray) -> np.ndarray:
    """Return the nearest valid correlation matrix to ``matrix``.

    Symmetrize, clip entries to ``[-1, 1]``, restore the unit diagonal,
    then project to the PSD cone only when the clipped matrix actually
    left it — so already-valid matrices pass through bitwise unchanged.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValidationError(
            f"correlation must be square, got shape {m.shape}")
    sym = 0.5 * (m + m.T)
    clipped = np.clip(sym, -1.0, 1.0)
    np.fill_diagonal(clipped, 1.0)
    if not is_positive_semidefinite(clipped):
        clipped = nearest_psd(clipped)
    return clipped


@dataclass(frozen=True)
class Scenario:
    """One canonical market shock, relative to whatever model it hits.

    ``spot_factors`` / ``vol_factors`` multiply the model's per-asset
    spots and vols (length ``dim``, or length 1 to broadcast);
    ``rate_shift`` adds to the short rate; ``corr_shift`` adds to every
    off-diagonal correlation entry (PSD-repaired on application).
    ``axis`` tags which family produced the shock (``spot`` / ``vol`` /
    ``rate`` / ``corr`` / ``joint`` / ``base``) — display metadata, like
    ``label``: neither enters the canonical description, so two
    identically shaped shocks hash identically however they were built.
    """

    label: str
    spot_factors: tuple[float, ...] = (1.0,)
    vol_factors: tuple[float, ...] = (1.0,)
    rate_shift: float = 0.0
    corr_shift: float = 0.0
    axis: str = "joint"

    def __post_init__(self) -> None:
        for name, factors in (("spot_factors", self.spot_factors),
                              ("vol_factors", self.vol_factors)):
            if not factors:
                raise ValidationError(f"{name} must not be empty")
            for f in factors:
                if not (math.isfinite(f) and f > 0.0):
                    raise ValidationError(
                        f"{name} entries must be positive finite, got {f!r}")
        if not math.isfinite(self.rate_shift):
            raise ValidationError("rate_shift must be finite")
        if not math.isfinite(self.corr_shift) or abs(self.corr_shift) > 2.0:
            raise ValidationError(
                f"corr_shift must be finite in [-2, 2], got {self.corr_shift!r}")

    @property
    def is_base(self) -> bool:
        """True when applying this scenario is the identity."""
        return (all(f == 1.0 for f in self.spot_factors)
                and all(f == 1.0 for f in self.vol_factors)
                and self.rate_shift == 0.0 and self.corr_shift == 0.0)

    def _factors(self, raw: tuple[float, ...], dim: int,
                 name: str) -> np.ndarray:
        if len(raw) == 1:
            return np.full(dim, raw[0])
        if len(raw) != dim:
            raise ValidationError(
                f"{name} has {len(raw)} entries for a dim-{dim} model")
        return np.asarray(raw, dtype=float)

    def apply(self, model: MultiAssetGBM) -> MultiAssetGBM:
        """The shocked market: a fresh, validated model instance."""
        spots = model.spots * self._factors(self.spot_factors, model.dim,
                                            "spot_factors")
        vols = model.vols * self._factors(self.vol_factors, model.dim,
                                          "vol_factors")
        corr = model.correlation
        if self.corr_shift != 0.0:
            shifted = corr + self.corr_shift * (1.0 - np.eye(model.dim))
            corr = repair_correlation(shifted)
        return MultiAssetGBM(spots, vols, model.rate + self.rate_shift,
                             model.dividends, corr)

    def describe(self) -> dict:
        """Canonical JSON-ready form — the shock alone, no display names."""
        return {"spot_factors": [float(f) for f in self.spot_factors],
                "vol_factors": [float(f) for f in self.vol_factors],
                "rate_shift": float(self.rate_shift),
                "corr_shift": float(self.corr_shift)}

    @property
    def key(self) -> str:
        """Stable SHA-256 identity of the shock (label/axis excluded)."""
        from repro.serve.cache import stable_key

        return stable_key(self.describe())


def base_scenario(*, label: str = "base") -> Scenario:
    """The identity shock — reproduces the unshocked book bitwise."""
    return Scenario(label=label, axis="base")


def stress_scenarios(dim: int, n: int, *, seed: int = 0,
                     spot_scale: float = 0.10, vol_scale: float = 0.20,
                     rate_scale: float = 0.005, corr_scale: float = 0.05,
                     stream: int = _STREAM) -> list[Scenario]:
    """``n`` Philox-seeded joint stress draws for a ``dim``-asset market.

    Per-asset lognormal spot/vol factors (``exp(scale · z)``), a normal
    rate shift and a clipped normal correlation shift; each scenario
    consumes a fixed block of ``2·dim + 2`` draws, so scenario ``i`` is
    a pure function of ``(seed, stream, dim, i)`` and the scales.
    """
    d = check_positive_int("dim", dim)
    check_positive_int("n", n)
    gen = Philox4x32(seed, stream=stream)
    out: list[Scenario] = []
    for i in range(n):
        z = gen.normals(_draws_per_scenario(d))
        spot = tuple(float(f) for f in np.exp(spot_scale * z[:d]))
        vol = tuple(float(f) for f in np.exp(vol_scale * z[d:2 * d]))
        rate = float(rate_scale * z[2 * d])
        corr = float(np.clip(corr_scale * z[2 * d + 1], -0.5, 0.5))
        out.append(Scenario(label=f"stress-{i}", spot_factors=spot,
                            vol_factors=vol, rate_shift=rate,
                            corr_shift=corr, axis="joint"))
    return out


#: (label, uniform spot move, uniform vol move, rate shift, corr shift) —
#: the historical-style relative bump table. Fixed, seedless, canonical.
_HISTORICAL_BUMPS = (
    ("equity-down-10", -0.10, 0.20, -0.0050, 0.15),
    ("equity-down-20", -0.20, 0.50, -0.0100, 0.30),
    ("equity-up-10", 0.10, -0.10, 0.0025, -0.05),
    ("vol-spike", 0.00, 0.50, 0.0000, 0.20),
    ("rates-up-100bp", 0.00, 0.00, 0.0100, 0.00),
    ("rates-down-100bp", 0.00, 0.00, -0.0100, 0.00),
    ("correlation-breakdown", -0.05, 0.25, 0.0000, 0.40),
)


def historical_scenarios(dim: int | None = None) -> list[Scenario]:
    """The fixed historical-style relative bump set (uniform per asset).

    ``dim`` is accepted for symmetry with the other generators but the
    bumps broadcast, so the same set applies to any book.
    """
    if dim is not None:
        check_positive_int("dim", dim)
    return [Scenario(label=label, spot_factors=(1.0 + ds,),
                     vol_factors=(1.0 + dv,), rate_shift=dr,
                     corr_shift=dc, axis="joint")
            for label, ds, dv, dr, dc in _HISTORICAL_BUMPS]


def axis_sweep(magnitudes=(-0.10, -0.05, 0.05, 0.10), *,
               axes=SWEEP_AXES) -> list[Scenario]:
    """Single-axis bump ladders: per axis, the base point plus one
    scenario per magnitude.

    Spot and vol magnitudes are relative moves (``×(1 + m)``); rate
    magnitudes shift the short rate by ``m / 10`` (so ``0.10`` is
    100 bp). Each axis's ladder leads with the *same* identity scenario,
    which is what gives a swept book its exact cache hit/miss structure:
    the first axis misses on every point, every later axis hits on its
    base point and misses only on its bumped ones.
    """
    out: list[Scenario] = []
    for axis in axes:
        if axis not in SWEEP_AXES:
            raise ValidationError(
                f"axis must be one of {SWEEP_AXES}, got {axis!r}")
        out.append(Scenario(label=f"{axis}-base", axis=axis))
        for m in magnitudes:
            if not (math.isfinite(m) and -1.0 < m):
                raise ValidationError(
                    f"magnitudes must be finite and > -1, got {m!r}")
            if axis == "spot":
                s = Scenario(label=f"spot{m:+g}", spot_factors=(1.0 + m,),
                             axis=axis)
            elif axis == "vol":
                s = Scenario(label=f"vol{m:+g}", vol_factors=(1.0 + m,),
                             axis=axis)
            else:
                s = Scenario(label=f"rate{m:+g}",
                             rate_shift=m * _RATE_MAGNITUDE_SCALE, axis=axis)
            out.append(s)
    return out


def horizon_scenarios(model: MultiAssetGBM, n: int, horizon: float, *,
                      seed: int = 0, stream: int = _STREAM) -> list[Scenario]:
    """``n`` distributional spot shocks: exact correlated GBM log returns
    of ``model`` over ``horizon`` (the full-revaluation VaR driver).

    Each scenario's per-asset spot factor is ``exp(X_i)`` with
    ``X ~ N(drifts·h, h·Σ)`` drawn through the model's own Cholesky
    factor — so the scenario distribution is the model's true risk-
    neutral ``h``-day distribution and the VaR backtest can compare the
    revalued quantiles against closed form.
    """
    check_positive_int("n", n)
    h = check_positive("horizon", horizon)
    gen = Philox4x32(seed, stream=stream)
    z = gen.normals(n * model.dim).reshape(n, model.dim)
    x = (model.drifts[None, :] * h
         + math.sqrt(h) * model.vols[None, :] * model.correlate(z))
    return [Scenario(label=f"h-{i}",
                     spot_factors=tuple(float(f) for f in np.exp(x[i])),
                     axis="spot")
            for i in range(n)]


def shock_bytes(scenarios) -> bytes:
    """Canonical bytes of a scenario set — the byte-reproducibility
    contract: same generator arguments ⇒ identical bytes."""
    return canonical_json([s.describe() for s in scenarios]).encode()


def scenario_digest(scenarios) -> str:
    """Short SHA-256 of :func:`shock_bytes` (ledger / report identity)."""
    return hashlib.sha256(shock_bytes(scenarios)).hexdigest()[:16]
