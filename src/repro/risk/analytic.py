"""Closed-form portfolio VaR/ES for geometric-basket books.

The backtest oracle behind the ``-m risk`` acceptance tier. For a
portfolio of geometric-basket calls that share one weight vector ``w``
(normalized), the revalued value under a spot shock ``S_i → S_i e^{X_i}``
depends on the shock only through the single normal variate

    Y = Σ w_i X_i,   X ~ N(drifts·h, h·Σ)   ⇒   Y ~ N(m_Y, s_Y²),

because the geometric basket level ``G = Π S_i^{w_i}`` scales by
``e^Y`` and the Black formula for the basket depends on spots only
through ``G``. Each contract's value is *increasing* in ``Y``, so the
α-quantile of the revalued portfolio value is exactly the portfolio
revalued at ``y_α = m_Y + s_Y z_α`` — spot-shock VaR has a closed form:

    VaR_α = V(0-shock) − V(y_{1−α}).

Expected shortfall integrates the same closed form over the lower tail
with Gauss–Legendre quadrature (deterministic, no sampling), so the MC
estimators can be held to statistically justified bands instead of
loose sanity checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analytic.geometric_basket import geometric_basket_price
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.utils.numerics import norm_ppf
from repro.utils.validation import check_positive

__all__ = ["shock_moments", "portfolio_value", "analytic_var", "analytic_es"]

#: Gauss–Legendre nodes for the ES tail integral — generous for a
#: one-dimensional smooth integrand; exact to machine noise in practice.
_QUAD_NODES = 200

#: Lower integration cut in tail standard deviations (Φ(-12) ~ 1.8e-33).
_TAIL_CUT = 12.0


def _weights(model: MultiAssetGBM, weights) -> np.ndarray:
    w = np.atleast_1d(np.asarray(weights, dtype=float))
    if w.size != model.dim:
        raise ValidationError(
            f"weights length {w.size} does not match model dim {model.dim}")
    if np.any(w < 0) or w.sum() <= 0:
        raise ValidationError("weights must be non-negative with positive sum")
    return w / w.sum()


def shock_moments(model: MultiAssetGBM, weights,
                  horizon: float) -> tuple[float, float]:
    """Mean and std-dev of ``Y = Σ w_i X_i`` for GBM log returns over
    ``horizon`` (the one variate the portfolio value depends on)."""
    h = check_positive("horizon", horizon)
    w = _weights(model, weights)
    m = float(np.dot(w, model.drifts)) * h
    cov = model.correlation * np.outer(model.vols, model.vols)
    s2 = float(w @ cov @ w) * h
    return m, math.sqrt(max(s2, 0.0))


def portfolio_value(model: MultiAssetGBM, weights, strikes,
                    expiry: float, *, shock: float = 0.0) -> float:
    """Closed-form value of the strike ladder of geometric-basket calls,
    with every spot scaled by ``e^shock`` (the ``Y``-shocked book)."""
    shocked = (model if shock == 0.0
               else model.with_spots(model.spots * math.exp(shock)))
    return float(sum(geometric_basket_price(shocked, weights, float(k), expiry)
                     for k in strikes))


def analytic_var(model: MultiAssetGBM, weights, strikes, expiry: float,
                 horizon: float, level: float) -> float:
    """Exact spot-shock VaR at ``level`` for the geometric-basket ladder."""
    if not 0.0 < level < 1.0:
        raise ValidationError(f"level must be in (0, 1), got {level!r}")
    m, s = shock_moments(model, weights, horizon)
    y_q = m + s * float(norm_ppf(1.0 - level))
    base = portfolio_value(model, weights, strikes, expiry)
    return base - portfolio_value(model, weights, strikes, expiry, shock=y_q)


def analytic_es(model: MultiAssetGBM, weights, strikes, expiry: float,
                horizon: float, level: float) -> float:
    """Exact spot-shock expected shortfall at ``level``.

    ``ES_α = V₀ − E[V(Y) | Y ≤ y_{1−α}]`` with the conditional
    expectation computed by Gauss–Legendre quadrature of the closed-form
    value against the normal density over ``[m − 12s, y_{1−α}]``.
    """
    if not 0.0 < level < 1.0:
        raise ValidationError(f"level must be in (0, 1), got {level!r}")
    m, s = shock_moments(model, weights, horizon)
    base = portfolio_value(model, weights, strikes, expiry)
    if s <= 0.0:
        return 0.0
    tail = 1.0 - level
    y_q = m + s * float(norm_ppf(tail))
    lo = m - _TAIL_CUT * s
    nodes, wts = np.polynomial.legendre.leggauss(_QUAD_NODES)
    y = 0.5 * (y_q - lo) * nodes + 0.5 * (y_q + lo)
    half = 0.5 * (y_q - lo)
    dens = np.exp(-0.5 * ((y - m) / s) ** 2) / (s * math.sqrt(2.0 * math.pi))
    vals = np.array([portfolio_value(model, weights, strikes, expiry,
                                     shock=float(yi)) for yi in y])
    tail_mean = half * float(np.sum(wts * vals * dens)) / tail
    return base - tail_mean
