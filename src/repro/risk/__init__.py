"""Risk-scenario workload tier: seeded shocks, full-revaluation VaR/ES.

ROADMAP item 3 — the Premia/Nsp-style risk-management benchmark as a
first-class traffic generator over the parallel pricing stack:

* :mod:`~repro.risk.scenarios` — canonical :class:`Scenario` shocks with
  stable hashes; stress / historical / axis-sweep / horizon generators,
  all byte-reproducible in their seed, with PSD-repaired correlations.
* :mod:`~repro.risk.var` — sort-based VaR/ES estimators, the
  full-revaluation sweep through the shared
  :class:`~repro.serve.PriceCache`, delta-hedged P&L, and the
  ``kind="risk"`` ledger records behind ``repro risk``.
* :mod:`~repro.risk.analytic` — closed-form portfolio VaR/ES for
  geometric-basket books (the ``-m risk`` backtest oracle).
* :mod:`~repro.risk.bridge` — scenario sweeps as lane-tagged gateway
  traffic (``repro gateway --book risk``) and the risk book for the
  seeded load generator.
"""

from repro.risk.analytic import (analytic_es, analytic_var, portfolio_value,
                                 shock_moments)
from repro.risk.bridge import (risk_book, risk_run_record, run_risk_sweep,
                               sweep_requests, sweep_schedule)
from repro.risk.scenarios import (Scenario, axis_sweep, base_scenario,
                                  historical_scenarios, horizon_scenarios,
                                  repair_correlation, scenario_digest,
                                  shock_bytes, stress_scenarios)
from repro.risk.var import (RiskConfig, RiskReport, build_scenarios,
                            hedged_pnl, portfolio_deltas, revalue_book,
                            run_risk, var_es)

__all__ = [
    "Scenario",
    "axis_sweep",
    "base_scenario",
    "historical_scenarios",
    "horizon_scenarios",
    "repair_correlation",
    "scenario_digest",
    "shock_bytes",
    "stress_scenarios",
    "RiskConfig",
    "RiskReport",
    "build_scenarios",
    "hedged_pnl",
    "portfolio_deltas",
    "revalue_book",
    "run_risk",
    "var_es",
    "analytic_es",
    "analytic_var",
    "portfolio_value",
    "shock_moments",
    "risk_book",
    "risk_run_record",
    "run_risk_sweep",
    "sweep_requests",
    "sweep_schedule",
]
