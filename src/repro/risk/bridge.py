"""Risk sweeps as gateway traffic: the PR-8 follow-on.

Two shapes of bridge between :mod:`repro.risk` and the sharded gateway:

* :func:`risk_book` — a *book* of shocked contracts (base strike ladder
  × stress scenarios) for the random load generator: with
  ``LoadgenConfig(book="risk")`` the existing open/closed-loop traffic
  samples near-duplicate bumped contracts, which is what makes
  ``repro gateway --book risk`` cache-hit-rich, realistic risk traffic.
* :func:`sweep_requests` + :func:`sweep_schedule` — a *deterministic
  sweep*: the base book followed by every scenario's revaluations, as
  lane-tagged :class:`~repro.gateway.admission.GatewayRequest` arrivals
  (base book ``interactive`` — the desk wants the live marks now;
  revaluations ``bulk`` with loose deadlines). :func:`run_risk_sweep`
  replays that schedule on the virtual clock, repeated passes making the
  second sweep cache-hot, and appends a ``kind="risk"`` ledger record
  with scenarios/sec and hit-rate extras.

Everything is seeded and pure-functional, so the ``risk`` determinism
check replays decision logs and price streams bitwise.
"""

from __future__ import annotations

import time

from repro.errors import ValidationError
from repro.gateway.admission import GatewayRequest
from repro.gateway.loadgen import CostModel
from repro.gateway.simulate import GatewayRunResult, run_schedule
from repro.obs.ledger import (RunRecord, active_ledger, config_digest,
                              git_sha, new_run_id)
from repro.risk.scenarios import (base_scenario, scenario_digest,
                                  stress_scenarios)
from repro.serve.batching import PricingRequest
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.generators import Workload, strike_strip

__all__ = ["risk_book", "sweep_requests", "sweep_schedule",
           "run_risk_sweep", "risk_run_record"]

#: Deadline budgets (in service-time multiples, scaled by the caller's
#: deadline scale) for the two sweep lanes.
_INTERACTIVE_DEADLINE = 8.0
_BULK_DEADLINE = 120.0


def risk_book(n_contracts: int, *, dim: int = 2, seed: int = 0,
              n_base: int = 4, expiry: float = 1.0) -> list[Workload]:
    """A book of ``n_contracts`` shocked contracts for the load generator.

    A base ``n_base``-strike ladder on one shared ``dim``-asset market,
    crossed with seeded stress scenarios: contract ``k`` is base strike
    ``k % n_base`` under scenario ``k // n_base`` (scenario 0 is the
    identity, so the unshocked ladder is always in the book). Scenario
    bumps are near-duplicates of each other — risk traffic is exactly
    the shape shard caches are for.
    """
    n = check_positive_int("n_contracts", n_contracts)
    base = strike_strip(min(n, check_positive_int("n_base", n_base)),
                        dim=dim, expiry=expiry)
    n_scen = (n + len(base) - 1) // len(base)
    scenarios = [base_scenario()]
    if n_scen > 1:
        scenarios.extend(stress_scenarios(dim, n_scen - 1, seed=seed))
    out: list[Workload] = []
    for k in range(n):
        w = base[k % len(base)]
        scenario = scenarios[k // len(base)]
        model = w.model if scenario.is_base else scenario.apply(w.model)
        out.append(Workload(f"risk-{scenario.label}-{w.name}", model,
                            w.payoff, w.expiry))
    return out


def sweep_requests(book, scenarios, *, engine: str = "mc",
                   n_paths: int = 2_000, seed: int = 0,
                   p: int = 1) -> list[tuple[str, PricingRequest]]:
    """The deterministic sweep as ``(lane, request)`` pairs, in order:
    the base book (interactive), then every scenario's revaluations
    (bulk). Common seed throughout — the cacheable CRN shape."""
    book = list(book)
    if not book:
        raise ValidationError("sweep_requests needs a non-empty book")
    out: list[tuple[str, PricingRequest]] = []
    for w in book:
        out.append(("interactive", PricingRequest(
            w, engine=engine, n_paths=n_paths, seed=seed, p=p, name=w.name)))
    for scenario in scenarios:
        for w in book:
            shocked = Workload(f"{scenario.label}-{w.name}",
                               scenario.apply(w.model), w.payoff, w.expiry)
            out.append(("bulk", PricingRequest(
                shocked, engine=engine, n_paths=n_paths, seed=seed, p=p,
                name=shocked.name)))
    return out


def sweep_schedule(tagged_requests, *, rate: float, repeats: int = 1,
                   deadline_scale_s: float = 4e-3,
                   start: float = 0.0) -> list[tuple[float, GatewayRequest]]:
    """Evenly spaced lane-tagged arrivals for a sweep, ``repeats`` passes.

    Pass 2+ replays the identical requests, so per-shard caches answer
    them — the steady-state risk desk shape. Deterministic: arrival
    ``i`` lands at ``start + i / rate``.
    """
    check_positive("rate", rate)
    check_positive_int("repeats", repeats)
    tagged = list(tagged_requests)
    schedule: list[tuple[float, GatewayRequest]] = []
    i = 0
    for _ in range(repeats):
        for lane, request in tagged:
            deadline = deadline_scale_s * (
                _INTERACTIVE_DEADLINE if lane == "interactive"
                else _BULK_DEADLINE)
            schedule.append((start + i / rate,
                             GatewayRequest(request=request, lane=lane,
                                            deadline_s=deadline)))
            i += 1
    return schedule


def run_risk_sweep(book, scenarios, *, n_shards: int = 2,
                   cost: CostModel | None = None, engine: str = "mc",
                   n_paths: int = 2_000, seed: int = 0, p: int = 1,
                   rate: float | None = None, repeats: int = 2,
                   max_queue: int = 64, priced: bool = False,
                   metrics=None, ledger=None) -> GatewayRunResult:
    """Drive one scenario sweep through the virtual-time gateway.

    ``rate`` defaults to 1.5× the shards' all-miss capacity — overdriven
    enough that admission control matters, bounded enough that the bulk
    lane drains. Appends the usual ``kind="gateway"`` drive record plus
    one ``kind="risk"`` summary record (scenarios/sec, hit rate).
    """
    cost = cost if cost is not None else CostModel()
    book = list(book)
    scenarios = list(scenarios)
    tagged = sweep_requests(book, scenarios, engine=engine, n_paths=n_paths,
                            seed=seed, p=p)
    miss_s = cost.miss_s(tagged[0][1])
    if rate is None:
        rate = 1.5 * n_shards / miss_s
    duration_s = (len(tagged) * repeats) / rate + miss_s * max_queue
    t0 = time.perf_counter()
    result = run_schedule(
        sweep_schedule(tagged, rate=rate, repeats=repeats,
                       deadline_scale_s=miss_s),
        n_shards=n_shards, cost=cost, duration_s=duration_s,
        max_queue=max_queue, priced=priced, metrics=metrics, ledger=ledger)
    wall = time.perf_counter() - t0
    record = risk_run_record(result, n_scenarios=len(scenarios),
                             n_contracts=len(book), engine=engine,
                             seed=seed, repeats=repeats, wall_s=wall,
                             scenarios_digest=scenario_digest(scenarios))
    book_ledger = ledger if ledger is not None else active_ledger()
    if book_ledger is not None:
        book_ledger.append(record)
    return result


def risk_run_record(result: GatewayRunResult, *, n_scenarios: int,
                    n_contracts: int, engine: str, seed: int,
                    repeats: int = 1, wall_s: float | None = None,
                    scenarios_digest: str | None = None) -> RunRecord:
    """One ``kind="risk"`` ledger record summarizing a gateway drive.

    Scenarios/sec is measured in *virtual* seconds: completed requests
    over the simulated window, divided by the contracts each scenario
    revalues — deterministic in the seed, so it can sit behind a CI
    gate.
    """
    check_positive_int("n_scenarios", n_scenarios)
    check_positive_int("n_contracts", n_contracts)
    sim_window = max(result.sim_end, 1e-12)
    scen_rate = result.completed / n_contracts / sim_window
    hits = sum(result.cache_hits)
    lookups = hits + sum(result.cache_misses)
    extra = {"n_scenarios": n_scenarios, "n_contracts": n_contracts,
             "repeats": repeats, "offered": result.offered,
             "completed": result.completed, "shed": result.shed_total,
             "scenarios_per_s": scen_rate,
             "hit_rate": hits / lookups if lookups else 0.0}
    if scenarios_digest is not None:
        extra["scenarios"] = scenarios_digest
    wall = wall_s if wall_s is not None else result.wall_s
    return RunRecord(
        run_id=new_run_id(), kind="risk", engine=engine,
        config=config_digest({"n_scenarios": n_scenarios,
                              "n_contracts": n_contracts, "seed": seed,
                              "repeats": repeats,
                              "n_shards": result.n_shards}),
        backend="sim", workers=result.n_shards, p=result.n_shards,
        stages={"sweep": wall}, wall_s=wall, sim_s=result.sim_end,
        extra=extra, git=git_sha())
