"""Leisen–Reimer (1996) binomial tree — the smooth-convergence lattice.

CRR prices oscillate in the step count because the strike drifts relative
to the node grid; Leisen–Reimer centres the tree *on the strike* using the
Peizer–Pratt method-2 normal inversion, achieving smooth O(1/n²)
convergence for vanilla options. Included as the optional/extension lattice
(DESIGN.md); the convergence benchmark T4 family's companion test shows it
beating CRR at equal step counts by orders of magnitude.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.lattice.result import LatticeResult
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["leisen_reimer_price", "peizer_pratt"]


def peizer_pratt(z: float, n: int) -> float:
    """Peizer–Pratt method-2 inversion: maps a normal quantile ``z`` to a
    binomial probability for an ``n``-step (odd) tree."""
    if n % 2 == 0:
        raise ValidationError(f"Peizer–Pratt inversion needs odd n, got {n}")
    denom = n + 1.0 / 3.0 + 0.1 / (n + 1.0)
    expo = -((z / denom) ** 2) * (n + 1.0 / 6.0)
    return 0.5 + math.copysign(0.5 * math.sqrt(1.0 - math.exp(expo)), z)


def leisen_reimer_price(
    spot: float,
    strike: float,
    vol: float,
    rate: float,
    expiry: float,
    steps: int,
    *,
    dividend: float = 0.0,
    option: str = "call",
    american: bool = False,
) -> LatticeResult:
    """Price a vanilla call/put on a Leisen–Reimer tree (``steps`` odd)."""
    check_positive("spot", spot)
    check_positive("strike", strike)
    check_positive("vol", vol)
    check_positive("expiry", expiry)
    n = check_positive_int("steps", steps)
    if n % 2 == 0:
        raise ValidationError(f"Leisen–Reimer requires an odd step count, got {n}")
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")

    dt = expiry / n
    b = rate - dividend
    v_sqrt_t = vol * math.sqrt(expiry)
    d1 = (math.log(spot / strike) + (b + 0.5 * vol * vol) * expiry) / v_sqrt_t
    d2 = d1 - v_sqrt_t
    p = peizer_pratt(d2, n)
    p_prime = peizer_pratt(d1, n)
    growth = math.exp(b * dt)
    u = growth * p_prime / p
    d = (growth - p * u) / (1.0 - p)
    if d <= 0.0 or not 0.0 < p < 1.0:
        raise ValidationError(
            "Leisen–Reimer parameterization degenerated; check the inputs"
        )
    disc = math.exp(-rate * dt)

    j = np.arange(n + 1)
    prices = spot * (u**j) * (d ** (n - j))
    if option == "call":
        values = np.maximum(prices - strike, 0.0)
    else:
        values = np.maximum(strike - prices, 0.0)

    level1 = None
    for t in range(n - 1, -1, -1):
        values = disc * (p * values[1:] + (1.0 - p) * values[:-1])
        if american:
            jt = np.arange(t + 1)
            prices_t = spot * (u**jt) * (d ** (t - jt))
            intrinsic = (np.maximum(prices_t - strike, 0.0) if option == "call"
                         else np.maximum(strike - prices_t, 0.0))
            np.maximum(values, intrinsic, out=values)
        if t == 1:
            level1 = values.copy()

    delta = None
    if level1 is not None:
        s_up, s_dn = spot * u, spot * d
        delta = np.array([(level1[1] - level1[0]) / (s_up - s_dn)])
    return LatticeResult(
        price=float(values[0]),
        steps=n,
        nodes=(n + 1) * (n + 2) // 2,
        delta=delta,
        meta={"scheme": "leisen-reimer", "american": american, "u": u, "d": d,
              "p": p},
    )
