"""One-dimensional binomial lattices (CRR, Jarrow–Rudd, Tian).

Backward induction is fully vectorized per level: level ``t`` holds ``t+1``
node values, and one induction step is two shifted-slice AXPYs plus the
discount — the identical computation the parallel lattice pricer slices
across ranks (with one halo value exchanged per boundary per level).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import StabilityError, ValidationError
from repro.lattice.result import LatticeResult
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["binomial_parameters", "binomial_price"]

_SCHEMES = ("crr", "jr", "tian")


def binomial_parameters(
    vol: float, rate: float, dividend: float, dt: float, scheme: str = "crr"
) -> tuple[float, float, float]:
    """Return ``(u, d, p)`` for one step of the chosen parameterization.

    * ``crr`` — Cox–Ross–Rubinstein: ``u = e^{σ√Δt}``, ``d = 1/u``,
      risk-neutral ``p`` from the one-step martingale condition.
    * ``jr`` — Jarrow–Rudd equal-probability: ``p = 1/2`` with the drift
      folded into ``u`` and ``d``.
    * ``tian`` — Tian's third-moment-matching tree.
    """
    check_positive("vol", vol)
    check_positive("dt", dt)
    if scheme not in _SCHEMES:
        raise ValidationError(f"scheme must be one of {_SCHEMES}, got {scheme!r}")
    b = rate - dividend
    if scheme == "crr":
        u = math.exp(vol * math.sqrt(dt))
        d = 1.0 / u
        p = (math.exp(b * dt) - d) / (u - d)
    elif scheme == "jr":
        drift = (b - 0.5 * vol * vol) * dt
        u = math.exp(drift + vol * math.sqrt(dt))
        d = math.exp(drift - vol * math.sqrt(dt))
        p = 0.5
    else:  # tian
        m = math.exp(b * dt)
        v = math.exp(vol * vol * dt)
        root = math.sqrt(v * v + 2.0 * v - 3.0)
        u = 0.5 * m * v * (v + 1.0 + root)
        d = 0.5 * m * v * (v + 1.0 - root)
        p = (m - d) / (u - d)
    if not 0.0 < p < 1.0:
        raise StabilityError(
            f"binomial probability p={p:.6f} outside (0, 1): "
            f"increase steps (dt={dt:.6g} too coarse for these parameters)",
            cfl=p,
        )
    return u, d, p


def binomial_price(
    spot: float,
    payoff: Payoff,
    vol: float,
    rate: float,
    expiry: float,
    steps: int,
    *,
    dividend: float = 0.0,
    american: bool = False,
    scheme: str = "crr",
) -> LatticeResult:
    """Price a single-asset contract on a binomial lattice.

    ``payoff.terminal`` supplies the leaf values; for ``american=True`` the
    same function is the intrinsic value compared against continuation at
    every node. Returns price plus lattice delta/gamma read off the first
    two levels.
    """
    check_positive("spot", spot)
    check_positive("expiry", expiry)
    n = check_positive_int("steps", steps)
    if payoff.dim != 1:
        raise ValidationError(
            f"binomial_price handles single-asset payoffs; got dim={payoff.dim}. "
            "Use beg_price for multi-asset contracts."
        )
    if payoff.is_path_dependent:
        raise ValidationError(
            f"{type(payoff).__name__} is path-dependent; lattices here price "
            "state-contingent (non-path-dependent) exercise values only"
        )
    dt = expiry / n
    u, d, p = binomial_parameters(vol, rate, dividend, dt, scheme)
    disc = math.exp(-rate * dt)

    j = np.arange(n + 1)
    prices = spot * (u ** j) * (d ** (n - j))
    values = payoff.terminal(prices[:, None])

    # Saved for delta/gamma extraction.
    level1: np.ndarray | None = None
    level2: np.ndarray | None = None

    for t in range(n - 1, -1, -1):
        values = disc * (p * values[1:] + (1.0 - p) * values[:-1])
        if american or t <= 2:
            jt = np.arange(t + 1)
            prices_t = spot * (u ** jt) * (d ** (t - jt))
            if american:
                values = np.maximum(values, payoff.intrinsic(prices_t[:, None]))
        if t == 1:
            level1 = values.copy()
        elif t == 2:
            level2 = values.copy()

    price = float(values[0])
    delta = gamma = None
    if level1 is not None and n >= 1:
        s_up, s_dn = spot * u, spot * d
        delta = np.array([(level1[1] - level1[0]) / (s_up - s_dn)])
    if level2 is not None and n >= 2:
        s_uu, s_mid, s_dd = spot * u * u, spot * u * d, spot * d * d
        d_up = (level2[2] - level2[1]) / (s_uu - s_mid)
        d_dn = (level2[1] - level2[0]) / (s_mid - s_dd)
        gamma = float(2.0 * (d_up - d_dn) / (s_uu - s_dd))
    nodes = (n + 1) * (n + 2) // 2
    return LatticeResult(
        price=price,
        steps=n,
        nodes=nodes,
        delta=delta,
        gamma=gamma,
        meta={"scheme": scheme, "american": american, "u": u, "d": d, "p": p},
    )
