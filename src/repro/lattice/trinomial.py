"""Boyle / Kamrad–Ritchken trinomial lattice (one asset).

Three branches per node (up, flat, down) with stretch ``λ ≥ 1``:
``u = e^{λσ√Δt}``,

    p_u = 1/(2λ²) + (b − σ²/2)√Δt / (2λσ)
    p_m = 1 − 1/λ²
    p_d = 1/(2λ²) − (b − σ²/2)√Δt / (2λσ).

Converges faster per step than the binomial (more nodes per level) and is
the 1-D member of the lattice family the parallel slice decomposition
handles (bandwidth-3 stencil instead of bandwidth-2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import StabilityError, ValidationError
from repro.lattice.result import LatticeResult
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["trinomial_price"]


def trinomial_price(
    spot: float,
    payoff: Payoff,
    vol: float,
    rate: float,
    expiry: float,
    steps: int,
    *,
    dividend: float = 0.0,
    american: bool = False,
    stretch: float = math.sqrt(3.0),
) -> LatticeResult:
    """Price a single-asset contract on a trinomial lattice."""
    check_positive("spot", spot)
    check_positive("vol", vol)
    check_positive("expiry", expiry)
    check_positive("stretch", stretch)
    n = check_positive_int("steps", steps)
    if payoff.dim != 1:
        raise ValidationError("trinomial_price handles single-asset payoffs")
    if payoff.is_path_dependent:
        raise ValidationError("trinomial lattice prices non-path-dependent payoffs only")
    if stretch < 1.0:
        raise ValidationError(f"stretch must be ≥ 1 for positive p_m, got {stretch}")

    dt = expiry / n
    b = rate - dividend
    lam = stretch
    drift_term = (b - 0.5 * vol * vol) * math.sqrt(dt) / (2.0 * lam * vol)
    pu = 1.0 / (2.0 * lam * lam) + drift_term
    pm = 1.0 - 1.0 / (lam * lam)
    pd = 1.0 / (2.0 * lam * lam) - drift_term
    if min(pu, pm, pd) < 0.0 or max(pu, pm, pd) > 1.0:
        raise StabilityError(
            f"trinomial probabilities (pu={pu:.4f}, pm={pm:.4f}, pd={pd:.4f}) "
            "outside [0, 1]: increase steps",
            cfl=min(pu, pm, pd),
        )
    disc = math.exp(-rate * dt)
    u = math.exp(lam * vol * math.sqrt(dt))

    # Level t has 2t+1 nodes at S = spot · u^{k}, k = −t..t.
    k = np.arange(-n, n + 1)
    prices = spot * u ** k.astype(float)
    values = payoff.terminal(prices[:, None])
    level1: np.ndarray | None = None

    for t in range(n - 1, -1, -1):
        values = disc * (pu * values[2:] + pm * values[1:-1] + pd * values[:-2])
        if american:
            kt = np.arange(-t, t + 1)
            prices_t = spot * u ** kt.astype(float)
            values = np.maximum(values, payoff.intrinsic(prices_t[:, None]))
        if t == 1:
            level1 = values.copy()

    price = float(values[0])
    delta = None
    if level1 is not None:
        s_up, s_dn = spot * u, spot / u
        delta = np.array([(level1[2] - level1[0]) / (s_up - s_dn)])
    nodes = (n + 1) * (n + 1)  # Σ (2t+1) = (n+1)²
    return LatticeResult(
        price=price,
        steps=n,
        nodes=nodes,
        delta=delta,
        meta={"scheme": "trinomial", "american": american, "pu": pu, "pm": pm, "pd": pd},
    )
