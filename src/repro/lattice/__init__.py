"""Lattice (tree) pricing engines.

* :func:`binomial_price` — 1-D binomial with CRR, Jarrow–Rudd or Tian
  parameterizations; European and American exercise.
* :func:`trinomial_price` — Boyle/Kamrad–Ritchken trinomial.
* :class:`BEGLattice` / :func:`beg_price` — the Boyle–Evnine–Gibbs (1989)
  *multidimensional* binomial lattice: ``d`` correlated assets, ``2^d``
  branches per node, ``(n+1)^d`` nodes per level. This is the lattice the
  paper's multidimensional evaluation parallelizes; its per-level cost and
  memory blow up exponentially in ``d`` — exactly the crossover against
  Monte Carlo measured in experiment F6.
* :func:`richardson_price` — two-grid Richardson extrapolation wrapper.
"""

from repro.lattice.result import LatticeResult
from repro.lattice.binomial import binomial_price, binomial_parameters
from repro.lattice.trinomial import trinomial_price
from repro.lattice.beg import BEGLattice, beg_price, beg_probabilities
from repro.lattice.richardson import richardson_price
from repro.lattice.leisen_reimer import leisen_reimer_price, peizer_pratt

__all__ = [
    "leisen_reimer_price",
    "peizer_pratt",
    "LatticeResult",
    "binomial_price",
    "binomial_parameters",
    "trinomial_price",
    "BEGLattice",
    "beg_price",
    "beg_probabilities",
    "richardson_price",
]
