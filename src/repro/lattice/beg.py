"""Boyle–Evnine–Gibbs (1989) multidimensional binomial lattice.

Each of the ``d`` assets moves up or down by ``u_i = e^{σ_i√Δt}`` per step,
giving ``2^d`` joint branches with moment-matched probabilities

    p_ε = 2^{−d} [ 1 + √Δt Σ_j ε_j μ_j/σ_j + Σ_{j<k} ε_j ε_k ρ_jk ],

``ε ∈ {−1,+1}^d``, ``μ_j = r − q_j − σ_j²/2``. Level ``t`` is the value
tensor over ``(t+1)^d`` nodes; one backward step combines the ``2^d``
shifted sub-tensors of level ``t+1`` (a corner-stencil contraction) and
discounts.

This is the engine whose per-level synchronization the paper parallelizes:
the core module slices the tensor's leading axis into contiguous slabs, and
each backward step needs exactly one halo plane per slab boundary
(offset 0 or 1 along the sliced axis). :meth:`BEGLattice.step_rows` exposes
the slab computation so the parallel pricer produces *bit-identical* values
to the sequential sweep.

Not every correlation matrix is representable: ``p_ε ≥ 0`` requires
``1 + Σ_{j<k} ε_jε_kρ_jk ≥ 0`` for all sign vectors — the well-known BEG
feasibility constraint, reported via :class:`StabilityError`.
"""

from __future__ import annotations

import math
from itertools import product

import numpy as np

from repro.errors import StabilityError, ValidationError
from repro.lattice.result import LatticeResult
from repro.market.gbm import MultiAssetGBM
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["BEGLattice", "beg_price", "beg_probabilities"]

#: Refuse tensors that would not fit comfortably in memory.
_MAX_NODES = 80_000_000


def beg_probabilities(model: MultiAssetGBM, dt: float) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(offsets, probs)`` for one BEG step.

    ``offsets`` is ``(2^d, d)`` of 0/1 (down/up per asset); ``probs`` the
    matching branch probabilities. Raises :class:`StabilityError` when any
    probability falls outside [0, 1] (Δt too coarse or correlation
    infeasible for a BEG tree).
    """
    check_positive("dt", dt)
    d = model.dim
    mu_over_sigma = model.drifts / model.vols
    rho = model.correlation
    sqrt_dt = math.sqrt(dt)
    eps_list = list(product((-1.0, 1.0), repeat=d))
    offsets = np.array([[1 if e > 0 else 0 for e in eps] for eps in eps_list], dtype=np.int64)
    probs = np.empty(len(eps_list))
    scale = 2.0 ** (-d)
    for idx, eps in enumerate(eps_list):
        e = np.asarray(eps)
        corr_term = 0.0
        for j in range(d):
            for k in range(j + 1, d):
                corr_term += e[j] * e[k] * rho[j, k]
        probs[idx] = scale * (1.0 + sqrt_dt * float(e @ mu_over_sigma) + corr_term)
    if probs.min() < -1e-12 or probs.max() > 1.0 + 1e-12:
        raise StabilityError(
            f"BEG branch probabilities outside [0, 1] "
            f"(min={probs.min():.6f}, max={probs.max():.6f}): increase steps, "
            "or the correlation matrix is infeasible for a BEG lattice",
            cfl=float(probs.min()),
        )
    probs = np.clip(probs, 0.0, 1.0)
    # Probabilities sum to one exactly by construction (correlation terms
    # cancel over the full sign hypercube); renormalize away rounding.
    probs /= probs.sum()
    return offsets, probs


class BEGLattice:
    """A configured BEG lattice over a :class:`MultiAssetGBM`.

    Parameters
    ----------
    model : the market (any ``d ≥ 1``; for ``d = 1`` this reduces to CRR).
    expiry : option maturity in years.
    steps : number of time steps ``n``; memory is ``(n+1)^d`` doubles.
    """

    def __init__(self, model: MultiAssetGBM, expiry: float, steps: int):
        check_positive("expiry", expiry)
        self.model = model
        self.expiry = float(expiry)
        self.steps = check_positive_int("steps", steps)
        self.dim = model.dim
        if (self.steps + 1) ** self.dim > _MAX_NODES:
            raise ValidationError(
                f"BEG tensor of {(self.steps + 1) ** self.dim} nodes exceeds the "
                f"{_MAX_NODES} node limit; reduce steps or dimension"
            )
        self.dt = self.expiry / self.steps
        self.disc = math.exp(-model.rate * self.dt)
        self.up = np.exp(model.vols * math.sqrt(self.dt))
        self.offsets, self.probs = beg_probabilities(model, self.dt)

    # -- grids ---------------------------------------------------------------

    def level_axes(self, t: int) -> list[np.ndarray]:
        """Per-asset price axes at level ``t``: ``S_i u_i^{2j − t}``, j=0..t."""
        if not 0 <= t <= self.steps:
            raise ValidationError(f"level {t} outside [0, {self.steps}]")
        exponents = 2.0 * np.arange(t + 1) - t
        return [
            float(self.model.spots[i]) * self.up[i] ** exponents for i in range(self.dim)
        ]

    def level_prices(self, t: int) -> np.ndarray:
        """Full price mesh at level ``t``: shape ``(t+1,)*d + (d,)``."""
        axes = self.level_axes(t)
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack(mesh, axis=-1)

    def payoff_values(self, payoff: Payoff, t: int) -> np.ndarray:
        """``payoff.terminal`` evaluated on level ``t``'s mesh, shaped to the tensor."""
        mesh = self.level_prices(t)
        flat = mesh.reshape(-1, self.dim)
        return payoff.terminal(flat).reshape((t + 1,) * self.dim)

    # -- backward induction ----------------------------------------------------

    def step(self, v_next: np.ndarray, t: int) -> np.ndarray:
        """One full backward step: level ``t+1`` tensor → level ``t`` tensor."""
        expected = (t + 2,) * self.dim
        if v_next.shape != expected:
            raise ValidationError(
                f"level {t + 1} tensor must have shape {expected}, got {v_next.shape}"
            )
        out = np.zeros((t + 1,) * self.dim)
        for off, p in zip(self.offsets, self.probs):
            sl = tuple(slice(int(o), int(o) + t + 1) for o in off)
            out += p * v_next[sl]
        out *= self.disc
        return out

    def step_rows(
        self, v_next_rows: np.ndarray, t: int, row_start: int, n_rows: int
    ) -> np.ndarray:
        """Slab backward step for the parallel decomposition.

        Computes rows ``[row_start, row_start + n_rows)`` (leading axis) of
        the level-``t`` tensor from the corresponding rows
        ``[row_start, row_start + n_rows + 1)`` of level ``t+1``
        (``v_next_rows``; one halo row at the high end). Remaining axes are
        passed whole. Bit-identical to the matching rows of :meth:`step`.
        """
        expected = (n_rows + 1,) + (t + 2,) * (self.dim - 1)
        if v_next_rows.shape != expected:
            raise ValidationError(
                f"slab input must have shape {expected}, got {v_next_rows.shape}"
            )
        if row_start < 0 or row_start + n_rows > t + 1:
            raise ValidationError("slab rows outside level extent")
        out = np.zeros((n_rows,) + (t + 1,) * (self.dim - 1))
        for off, p in zip(self.offsets, self.probs):
            lead = slice(int(off[0]), int(off[0]) + n_rows)
            rest = tuple(slice(int(o), int(o) + t + 1) for o in off[1:])
            out += p * v_next_rows[(lead,) + rest]
        out *= self.disc
        return out

    # -- pricing ----------------------------------------------------------------

    def price(self, payoff: Payoff, *, american: bool = False) -> LatticeResult:
        """Run the full backward sweep and return the root value."""
        if payoff.dim != self.dim:
            raise ValidationError(
                f"payoff dim {payoff.dim} does not match lattice dim {self.dim}"
            )
        if payoff.is_path_dependent:
            raise ValidationError("BEG lattice prices non-path-dependent payoffs only")
        values = self.payoff_values(payoff, self.steps)
        level1: np.ndarray | None = None
        for t in range(self.steps - 1, -1, -1):
            values = self.step(values, t)
            if american:
                values = np.maximum(values, self.payoff_values(payoff, t))
            if t == 1:
                level1 = values.copy()
        price = float(values.reshape(-1)[0])

        delta = None
        if level1 is not None:
            delta = np.empty(self.dim)
            axes1 = self.level_axes(1)
            for i in range(self.dim):
                hi = np.take(level1, 1, axis=i).mean()
                lo = np.take(level1, 0, axis=i).mean()
                delta[i] = (hi - lo) / (axes1[i][1] - axes1[i][0])

        n = self.steps
        nodes = sum((t + 1) ** self.dim for t in range(n + 1))
        return LatticeResult(
            price=price,
            steps=n,
            nodes=nodes,
            delta=delta,
            meta={
                "scheme": "beg",
                "dim": self.dim,
                "branching": 2 ** self.dim,
                "american": american,
            },
        )


def beg_price(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    steps: int,
    *,
    american: bool = False,
) -> LatticeResult:
    """Price ``payoff`` on a BEG lattice (functional wrapper)."""
    return BEGLattice(model, expiry, steps).price(payoff, american=american)
