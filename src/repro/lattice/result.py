"""Result object for lattice valuations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatticeResult"]


@dataclass(frozen=True)
class LatticeResult:
    """A lattice price with grid diagnostics.

    Attributes
    ----------
    price : value at the root node.
    steps : number of time steps.
    nodes : total node count processed (work measure used by the
        performance harness: lattice work ∝ nodes × branching).
    delta : first-derivative estimate(s) from the first lattice level
        (per asset; ``None`` when unavailable).
    gamma : second-derivative estimate (1-D lattices only).
    meta : scheme name, branching factor, and friends.
    """

    price: float
    steps: int
    nodes: int
    delta: np.ndarray | None = None
    gamma: float | None = None
    meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.price:.6f} (lattice, steps={self.steps}, nodes={self.nodes})"
