"""Two-grid Richardson extrapolation for lattice prices.

Binomial prices converge at O(1/n) (with an oscillating component); pricing
at ``n`` and ``2n`` steps and combining ``2·P(2n) − P(n)`` cancels the
leading error term. Used in the convergence experiment (T4) to demonstrate
the standard accuracy/cost trade-off on the lattice side.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ValidationError
from repro.lattice.result import LatticeResult
from repro.utils.validation import check_positive_int

__all__ = ["richardson_price"]


def richardson_price(
    price_fn: Callable[[int], LatticeResult],
    steps: int,
    *,
    order: float = 1.0,
) -> LatticeResult:
    """Extrapolate ``price_fn`` (steps → :class:`LatticeResult`) at ``steps``.

    ``order`` is the assumed convergence order p: the combination is
    ``(2^p·P(2n) − P(n)) / (2^p − 1)`` (p = 1 for plain binomial trees).
    """
    n = check_positive_int("steps", steps)
    if order <= 0:
        raise ValidationError(f"order must be positive, got {order}")
    coarse = price_fn(n)
    fine = price_fn(2 * n)
    w = 2.0 ** order
    price = (w * fine.price - coarse.price) / (w - 1.0)
    return LatticeResult(
        price=price,
        steps=2 * n,
        nodes=coarse.nodes + fine.nodes,
        delta=fine.delta,
        gamma=fine.gamma,
        meta={
            "scheme": "richardson",
            "order": order,
            "coarse_price": coarse.price,
            "fine_price": fine.price,
        },
    )
