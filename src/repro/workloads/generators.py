"""Contract/model generators (all deterministic in their seed)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.market.correlation import random_correlation
from repro.market.gbm import MultiAssetGBM
from repro.payoffs.base import Payoff
from repro.payoffs.basket import BasketCall, GeometricBasketCall
from repro.payoffs.rainbow import CallOnMax, SpreadCall
from repro.payoffs.vanilla import Call
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["Workload", "basket_workload", "rainbow_workload", "spread_workload",
           "random_portfolio", "strike_strip"]


@dataclass(frozen=True)
class Workload:
    """A (model, payoff, expiry) triple with a descriptive name."""

    name: str
    model: MultiAssetGBM
    payoff: Payoff
    expiry: float

    @property
    def dim(self) -> int:
        return self.model.dim


def basket_workload(dim: int, *, rho: float = 0.3, vol: float = 0.25,
                    rate: float = 0.05, spot: float = 100.0, strike: float = 100.0,
                    expiry: float = 1.0, geometric: bool = False) -> Workload:
    """Equal-weight d-asset basket call on an equicorrelated market — the
    canonical multidimensional MC workload (experiments T2/F1/F2/F6)."""
    d = check_positive_int("dim", dim)
    model = MultiAssetGBM.equicorrelated(d, spot, vol, rate, rho)
    weights = [1.0 / d] * d
    payoff = (GeometricBasketCall if geometric else BasketCall)(weights, strike)
    kind = "geometric" if geometric else "arithmetic"
    return Workload(f"{kind}-basket-d{d}", model, payoff, expiry)


def rainbow_workload(*, rho: float = 0.4, expiry: float = 1.0,
                     strike: float = 100.0) -> Workload:
    """Two-asset max-call (Stulz baseline available) — the lattice workload
    (experiments F3/T3)."""
    model = MultiAssetGBM([100.0, 95.0], [0.2, 0.3], 0.05,
                          correlation=np.array([[1.0, rho], [rho, 1.0]]))
    return Workload("rainbow-max-call", model, CallOnMax(strike), expiry)


def spread_workload(*, rho: float = 0.5, strike: float = 5.0,
                    expiry: float = 1.0) -> Workload:
    """Two-asset spread call (Kirk baseline) — the PDE workload (T7)."""
    model = MultiAssetGBM([100.0, 96.0], [0.25, 0.2], 0.05,
                          correlation=np.array([[1.0, rho], [rho, 1.0]]))
    return Workload("spread-call", model, SpreadCall(strike), expiry)


def strike_strip(n_strikes: int, *, dim: int = 1, spot: float = 100.0,
                 vol: float = 0.2, rate: float = 0.05, rho: float = 0.3,
                 lo: float = 80.0, hi: float = 120.0,
                 expiry: float = 1.0) -> list[Workload]:
    """A strike ladder on **one shared market model** — the batchable book.

    Every workload shares the same model instance and expiry and differs
    only in its payoff strike (a vanilla call for ``dim=1``, an
    equal-weight basket call otherwise), so a request stream built from it
    with one engine config groups into a single
    :class:`~repro.batch.strip.ContractStrip`. This is the shape the
    batched throughput gate (benchmark F15d) prices.
    """
    n = check_positive_int("n_strikes", n_strikes)
    d = check_positive_int("dim", dim)
    check_positive("expiry", expiry)
    if not 0.0 < lo < hi:
        raise ValidationError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if d == 1:
        model = MultiAssetGBM.single(spot, vol, rate)
    else:
        model = MultiAssetGBM.equicorrelated(d, spot, vol, rate, rho)
    strikes = np.linspace(lo, hi, n)
    out: list[Workload] = []
    for i, strike in enumerate(strikes):
        if d == 1:
            payoff: Payoff = Call(float(strike))
        else:
            payoff = BasketCall([1.0 / d] * d, float(strike))
        out.append(Workload(f"strip-{i}-k{float(strike):g}", model, payoff,
                            expiry))
    return out


def random_portfolio(n_contracts: int, *, dim: int = 4, seed: int = 0,
                     expiry: float = 1.0) -> list[Workload]:
    """A seeded portfolio of basket calls with randomized spots, vols,
    strikes and a random (valid) correlation matrix per contract.

    Used by the throughput example and the load-imbalance tests: contract
    costs are homogeneous, so cyclic vs block decomposition should tie.
    """
    n = check_positive_int("n_contracts", n_contracts)
    d = check_positive_int("dim", dim)
    check_positive("expiry", expiry)
    gen = Philox4x32(seed, stream=0xF00D)
    out: list[Workload] = []
    for i in range(n):
        u = gen.uniforms(3 * d + 1)
        spots = 80.0 + 40.0 * u[:d]
        vols = 0.15 + 0.25 * u[d : 2 * d]
        weights_raw = 0.5 + u[2 * d : 3 * d]
        strike = float(80.0 + 40.0 * u[3 * d])
        corr = random_correlation(d, seed=seed * 1000 + i)
        model = MultiAssetGBM(spots, vols, 0.05, correlation=corr)
        payoff = BasketCall(weights_raw, strike)
        out.append(Workload(f"portfolio-{i}", model, payoff, expiry))
    return out
