"""Standard parameter sets for the reconstructed evaluation (DESIGN.md).

Centralizing the sweeps keeps every benchmark and EXPERIMENTS.md row
pointing at the same numbers.
"""

from __future__ import annotations

from repro.parallel.simcluster import MachineSpec

__all__ = [
    "DIMENSION_SWEEP",
    "PROCESSOR_SWEEP",
    "PATH_COUNTS",
    "LATTICE_STEP_SWEEP",
    "default_machine_specs",
]

#: Basket dimensions for the MC dimension sweeps (T2, F1, F6).
DIMENSION_SWEEP = (1, 2, 4, 8)

#: Processor counts for every strong-scaling sweep.
PROCESSOR_SWEEP = (1, 2, 4, 8, 16, 32)

#: Path counts for the efficiency-vs-size experiment (F2).
PATH_COUNTS = (10_000, 100_000, 1_000_000)

#: Lattice step counts for the lattice scaling experiment (F3).
LATTICE_STEP_SWEEP = (256, 1024, 4096)


def default_machine_specs() -> dict[str, MachineSpec]:
    """Named machine variants used by the granularity ablation (F7).

    * ``baseline`` — 2002-era cluster (50 µs latency, 100 MB/s links).
    * ``fast-network`` — 10× lower latency, 10× higher bandwidth (SMP-like).
    * ``slow-network`` — 10× worse on both (Ethernet-of-the-era).
    """
    return {
        "baseline": MachineSpec(flop_time=1e-8, alpha=50e-6, beta=1e-8),
        "fast-network": MachineSpec(flop_time=1e-8, alpha=5e-6, beta=1e-9),
        "slow-network": MachineSpec(flop_time=1e-8, alpha=500e-6, beta=1e-7),
    }
