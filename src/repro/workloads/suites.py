"""Standard parameter sets for the reconstructed evaluation (DESIGN.md).

Centralizing the sweeps keeps every benchmark and EXPERIMENTS.md row
pointing at the same numbers.
"""

from __future__ import annotations

from repro.engine.names import GREEKS, LATTICE, LSM, MC, PDE
from repro.errors import ValidationError
from repro.parallel.simcluster import MachineSpec
from repro.workloads.generators import (
    Workload,
    basket_workload,
    rainbow_workload,
    spread_workload,
)

__all__ = [
    "DIMENSION_SWEEP",
    "PROCESSOR_SWEEP",
    "PATH_COUNTS",
    "LATTICE_STEP_SWEEP",
    "default_machine_specs",
    "scaling_workload",
]

#: Basket dimensions for the MC dimension sweeps (T2, F1, F6).
DIMENSION_SWEEP = (1, 2, 4, 8)

#: Processor counts for every strong-scaling sweep.
PROCESSOR_SWEEP = (1, 2, 4, 8, 16, 32)

#: Path counts for the efficiency-vs-size experiment (F2).
PATH_COUNTS = (10_000, 100_000, 1_000_000)

#: Lattice step counts for the lattice scaling experiment (F3).
LATTICE_STEP_SWEEP = (256, 1024, 4096)


def default_machine_specs() -> dict[str, MachineSpec]:
    """Named machine variants used by the granularity ablation (F7).

    * ``baseline`` — 2002-era cluster (50 µs latency, 100 MB/s links).
    * ``fast-network`` — 10× lower latency, 10× higher bandwidth (SMP-like).
    * ``slow-network`` — 10× worse on both (Ethernet-of-the-era).
    """
    return {
        "baseline": MachineSpec(flop_time=1e-8, alpha=50e-6, beta=1e-8),
        "fast-network": MachineSpec(flop_time=1e-8, alpha=5e-6, beta=1e-9),
        "slow-network": MachineSpec(flop_time=1e-8, alpha=500e-6, beta=1e-7),
    }


def scaling_workload(engine: str) -> Workload:
    """The canonical demo contract for one parallel engine family.

    Keyed by the canonical :mod:`repro.engine.names` constants; used by the
    ``repro scaling`` / ``repro trace`` registry hooks so every CLI flow
    and benchmark exercises the same contract per family:

    * MC / Greeks — the 4-asset basket call (the paper's headline sweep);
    * lattice — the 2-asset max-call rainbow (BEG's native shape);
    * PDE — the spread call (the ADI solver's 2-asset case);
    * LSM — an American 2-asset basket put (early exercise matters).
    """
    if engine in (MC, GREEKS):
        return basket_workload(4)
    if engine == LATTICE:
        return rainbow_workload()
    if engine == PDE:
        return spread_workload()
    if engine == LSM:
        from repro.payoffs.basket import BasketPut

        base = basket_workload(2)
        return Workload("american-basket-put", base.model,
                        BasketPut([0.5, 0.5], 100.0), base.expiry)
    raise ValidationError(
        f"no scaling workload for engine {engine!r}"
    )
