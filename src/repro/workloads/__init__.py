"""Seeded synthetic workload generators for the evaluation suite.

The paper's experiments price specific contract families; since the 2002
contract data is unavailable, these generators produce the standard
synthetic equivalents (documented in DESIGN.md): equicorrelated baskets
across dimensions, two-asset rainbows/spreads, and randomized portfolios
for throughput runs. Everything is deterministic in its ``seed``.
"""

from repro.workloads.generators import (
    basket_workload,
    rainbow_workload,
    spread_workload,
    random_portfolio,
    strike_strip,
    Workload,
)
from repro.workloads.suites import (
    DIMENSION_SWEEP,
    PROCESSOR_SWEEP,
    PATH_COUNTS,
    LATTICE_STEP_SWEEP,
    default_machine_specs,
)

__all__ = [
    "basket_workload",
    "rainbow_workload",
    "spread_workload",
    "random_portfolio",
    "strike_strip",
    "Workload",
    "DIMENSION_SWEEP",
    "PROCESSOR_SWEEP",
    "PATH_COUNTS",
    "LATTICE_STEP_SWEEP",
    "default_machine_specs",
]
