"""ShardedGateway: the asyncio front-end over N PricingService shards.

The production-facing half of the gateway. One
:class:`~repro.gateway.core.GatewayCore` makes every decision (routing
by canonical contract hash, lane-ordered dispatch, deadline admission,
bounded queues); this class adds the concurrency shell around it: an
``async submit`` door, one worker coroutine per shard draining that
shard's queues, and per-shard :class:`~repro.serve.PricingService`
instances (serial backends, disjoint per-shard
:class:`~repro.serve.cache.PriceCache`\\ s labeled ``shard=i`` in the
shared metrics registry) doing the actual pricing off the event loop in
executor threads.

The shape is the stateless-workers-plus-small-coordinator split the
INRIA grid paper motivates: shard workers hold no routing state (a
worker only ever sees requests whose canonical hash maps to it), and
the coordinator holds no prices. Overload behavior, lane semantics and
the decision log are *identical* to the virtual-time simulator — both
drive the same ``GatewayCore`` — so the deterministic overload tier
vouches for the admission logic this front-end runs on the wall clock.

Timing note: on the wall clock the dispatch-time expiry check uses the
shard's EWMA service estimate, and a request can still finish past its
deadline when the estimate lags reality; such completions are recorded
``done/late`` in the decision log rather than silently counted good.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from repro.gateway.admission import Decision, GatewayRequest
from repro.gateway.core import GatewayCore
from repro.obs.metrics import MetricsRegistry
from repro.parallel.backends import SerialBackend
from repro.serve.cache import PriceCache
from repro.serve.service import PricingService, PriceQuote
from repro.utils.validation import check_positive_int

__all__ = ["ShardedGateway"]


class ShardedGateway:
    """Async sharded admission-controlled pricing front-end.

    Parameters mirror :class:`~repro.gateway.core.GatewayCore` (queue
    bound, service hint, EWMA weight, headroom) plus the per-shard cache
    capacity. ``metrics``/``ledger`` flow into the shard services, so
    ``serve.*`` and ``gateway.*`` series land in one registry.

    Use as an async context manager::

        async with ShardedGateway(n_shards=4) as gw:
            reply = await gw.submit(GatewayRequest(request, lane="interactive",
                                                   deadline_s=2.0))

    ``submit`` resolves to a :class:`~repro.serve.service.PriceQuote` on
    success or the shed :class:`~repro.gateway.admission.Decision`.
    """

    def __init__(self, n_shards: int = 2, *, max_queue: int = 64,
                 cache_capacity: int = 512, service_hint_s: float = 0.05,
                 ewma_alpha: float = 0.2, headroom: float = 1.0,
                 metrics: MetricsRegistry | None = None, ledger=None,
                 scheduler=None):
        check_positive_int("n_shards", n_shards)
        self.n_shards = n_shards
        self.metrics = metrics
        self.core = GatewayCore(n_shards, max_queue=max_queue,
                                service_hint_s=service_hint_s,
                                ewma_alpha=ewma_alpha, headroom=headroom,
                                metrics=metrics)
        # ``scheduler`` flows to every shard's service unchanged — shard
        # routing is by request key, the execute-stage scheduler only
        # decides worker placement inside a shard's batches.
        self.services = [
            PricingService(SerialBackend(),
                           cache=PriceCache(cache_capacity, metrics=metrics,
                                            labels={"shard": str(i)}),
                           max_batch=1, metrics=metrics, ledger=ledger,
                           scheduler=scheduler)
            for i in range(n_shards)
        ]
        self._futures: dict[int, asyncio.Future] = {}
        self._wakeups: list[asyncio.Event] = []
        self._workers: list[asyncio.Task] = []
        self._stopping = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "ShardedGateway":
        """Spawn one drain coroutine per shard (idempotent)."""
        if self._workers:
            return self
        self._stopping = False
        self._wakeups = [asyncio.Event() for _ in range(self.n_shards)]
        self._workers = [asyncio.create_task(self._drain(shard))
                         for shard in range(self.n_shards)]
        return self

    async def close(self) -> None:
        """Finish queued work, stop the workers, release the services."""
        self._stopping = True
        for event in self._wakeups:
            event.set()
        if self._workers:
            await asyncio.gather(*self._workers)
        self._workers = []
        for svc in self.services:
            svc.close()

    async def __aenter__(self) -> "ShardedGateway":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # -- the door -------------------------------------------------------

    @staticmethod
    def _now() -> float:
        return time.monotonic()

    async def submit(self, greq: GatewayRequest) -> PriceQuote | Decision:
        """Offer one request; await its quote or its shed decision."""
        n_decisions = len(self.core.decisions)
        pending, decision = self.core.offer(greq, self._now())
        self._resolve_new_sheds(n_decisions)
        if pending is None:
            return decision
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._futures[pending.seq] = future
        self._wakeups[pending.shard].set()
        return await future

    async def price_many(self, greqs: Sequence[GatewayRequest]) -> list:
        """Submit a whole request list concurrently; replies in order."""
        return list(await asyncio.gather(*(self.submit(g) for g in greqs)))

    # -- shard workers --------------------------------------------------

    async def _drain(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        wakeup = self._wakeups[shard]
        while True:
            n_decisions = len(self.core.decisions)
            pending = self.core.next_request(shard, self._now())
            self._resolve_new_sheds(n_decisions)
            if pending is None:
                if self._stopping:
                    return
                await wakeup.wait()
                wakeup.clear()
                continue
            t0 = self._now()
            self.core.start(shard, pending, t0,
                            self.core.service_estimate(shard))
            quote = await loop.run_in_executor(
                None, self._price_one, shard, pending.greq.request)
            t1 = self._now()
            self.core.complete(shard, pending, t1, t1 - t0)
            future = self._futures.pop(pending.seq, None)
            if future is not None and not future.done():
                future.set_result(quote)

    def _price_one(self, shard: int, request) -> PriceQuote:
        return self.services[shard].price_many([request])[0]

    def _resolve_new_sheds(self, n_before: int) -> None:
        """Resolve futures of requests the core shed since ``n_before``
        (dispatch-time expiries surface through the decision log)."""
        for decision in self.core.decisions[n_before:]:
            if decision.action != "shed":
                continue
            future = self._futures.pop(decision.seq, None)
            if future is not None and not future.done():
                future.set_result(decision)
