"""GatewayCore: the deterministic shard-queue state machine.

Everything the gateway *decides* lives here — routing, admission,
lane-ordered dispatch, expiry, service-time estimation, the decision
log — with time injected from outside. The asyncio front-end
(:mod:`repro.gateway.gateway`) drives it with the wall clock; the
virtual-time executor (:mod:`repro.gateway.simulate`) drives it with
simulated instants. Same code path, which is what makes the overload
behavior unit-testable without wall-clock flakiness: the acceptance
tier replays a seeded 2x-overload schedule through this exact state
machine on a virtual clock.

Per shard the core keeps one bounded FIFO deque per priority lane plus
a ``busy_until`` estimate and an EWMA of observed service times. The
work-ahead estimate an arrival is judged against is::

    max(busy_until - now, 0) + ewma * (queued at its priority or higher)

Admission sheds ``queue-full`` / ``deadline`` arrivals; dispatch sheds
``expired`` entries whose deadline can no longer be met (they were
feasible at admission but got overtaken by higher-priority traffic).
Both append to the decision log and bump the metrics registry
(``gateway.admitted`` / ``gateway.shed{reason=...}`` counters,
``gateway.queue_depth{shard=...}`` gauges,
``gateway.latency_s{lane=...}`` histograms).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.gateway.admission import (LANES, AdmissionController, Decision,
                                     GatewayRequest, lane_priority)
from repro.gateway.router import shard_index
from repro.serve.batching import request_key
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["Pending", "GatewayCore"]


@dataclass(frozen=True)
class Pending:
    """An admitted request waiting for (or in) service on its shard."""

    seq: int
    greq: GatewayRequest
    key: str
    shard: int
    arrival: float
    deadline_at: float


class _ShardState:
    """One shard's queues and service-time estimate."""

    __slots__ = ("queues", "busy_until", "ewma", "observed", "max_depth")

    def __init__(self, service_hint_s: float):
        self.queues: dict[str, deque[Pending]] = {
            lane: deque() for lane in LANES}
        self.busy_until = 0.0
        self.ewma = service_hint_s
        self.observed = 0
        self.max_depth = 0

    def depth(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def work_ahead(self, lane: str, now: float) -> float:
        """Estimated seconds a ``lane`` arrival waits before service."""
        ahead = sum(len(self.queues[other]) for other in LANES
                    if lane_priority(other) <= lane_priority(lane))
        return max(self.busy_until - now, 0.0) + self.ewma * ahead


class GatewayCore:
    """Routing + admission + lane-ordered dispatch over N shards.

    Parameters
    ----------
    n_shards : shard count; routing is ``shard_index(key, n_shards)``.
    max_queue : per-shard, per-lane queue bound (see
        :class:`AdmissionController`).
    service_hint_s : initial per-request service-time estimate, used
        until the EWMA has observations.
    ewma_alpha : EWMA smoothing weight for observed service times.
    headroom : admission safety factor on the wait estimate.
    metrics : optional :class:`~repro.obs.MetricsRegistry`.
    """

    def __init__(self, n_shards: int, *, max_queue: int = 64,
                 service_hint_s: float = 1e-3, ewma_alpha: float = 0.2,
                 headroom: float = 1.0, metrics=None):
        self.n_shards = check_positive_int("n_shards", n_shards)
        check_positive("service_hint_s", service_hint_s)
        if not 0.0 < ewma_alpha <= 1.0:
            from repro.errors import ValidationError

            raise ValidationError(
                f"ewma_alpha must lie in (0, 1], got {ewma_alpha}")
        self.admission = AdmissionController(max_queue=max_queue,
                                             headroom=headroom)
        self.metrics = metrics
        self._alpha = ewma_alpha
        self._shards = [_ShardState(service_hint_s) for _ in range(n_shards)]
        self._seq = 0
        self.decisions: list[Decision] = []
        self.admitted = 0
        self.completed = 0
        self.shed: dict[str, int] = {}

    # -- introspection --------------------------------------------------

    def queue_depth(self, shard: int) -> int:
        return self._shards[shard].depth()

    def max_depth_seen(self, shard: int) -> int:
        return self._shards[shard].max_depth

    def service_estimate(self, shard: int) -> float:
        return self._shards[shard].ewma

    # -- the state machine ---------------------------------------------

    def offer(self, greq: GatewayRequest,
              now: float) -> tuple[Pending | None, Decision]:
        """Route + admit one arrival; enqueue it or shed it.

        Returns ``(pending, decision)`` — ``pending`` is ``None`` when
        the request was shed (the decision carries the reason).
        """
        key = request_key(greq.request)
        shard = shard_index(key, self.n_shards)
        state = self._shards[shard]
        seq = self._seq
        self._seq += 1
        deadline_at = now + greq.deadline_s
        reason = self.admission.decide(
            lane_depth=len(state.queues[greq.lane]),
            work_ahead_s=state.work_ahead(greq.lane, now),
            service_s=state.ewma, now=now, deadline_at=deadline_at)
        if reason:
            return None, self._shed(seq, now, shard, greq.lane, reason)
        pending = Pending(seq=seq, greq=greq, key=key, shard=shard,
                          arrival=now, deadline_at=deadline_at)
        state.queues[greq.lane].append(pending)
        state.max_depth = max(state.max_depth, state.depth())
        self.admitted += 1
        decision = Decision(seq=seq, t=now, shard=shard, lane=greq.lane,
                            action="admit")
        self.decisions.append(decision)
        if self.metrics is not None:
            self.metrics.counter("gateway.admitted").inc()
            self.metrics.gauge("gateway.queue_depth",
                               shard=shard).set(state.depth())
        return pending, decision

    def next_request(self, shard: int, now: float) -> Pending | None:
        """Pop the next dispatchable request (lane order), shedding
        entries that expired while queued. ``None`` when the shard's
        queues are drained."""
        state = self._shards[shard]
        for lane in LANES:
            queue = state.queues[lane]
            while queue:
                pending = queue.popleft()
                if now + state.ewma > pending.deadline_at:
                    self._shed(pending.seq, now, shard, lane, "expired")
                    continue
                if self.metrics is not None:
                    self.metrics.gauge("gateway.queue_depth",
                                       shard=shard).set(state.depth())
                return pending
        return None

    def start(self, shard: int, pending: Pending, now: float,
              service_s: float) -> None:
        """Mark the shard busy until ``now + service_s`` (the executor's
        estimate — exact in virtual time, EWMA-based on the wall clock)."""
        self._shards[shard].busy_until = now + service_s

    def complete(self, shard: int, pending: Pending, now: float,
                 service_s: float) -> Decision:
        """Record one finished request and fold its service time into
        the shard's EWMA estimate."""
        state = self._shards[shard]
        state.busy_until = now
        if state.observed == 0:
            state.ewma = service_s
        else:
            state.ewma += self._alpha * (service_s - state.ewma)
        state.observed += 1
        latency = now - pending.arrival
        late = now > pending.deadline_at
        self.completed += 1
        decision = Decision(seq=pending.seq, t=now, shard=shard,
                            lane=pending.greq.lane, action="done",
                            reason="late" if late else "",
                            latency_s=latency)
        self.decisions.append(decision)
        if self.metrics is not None:
            self.metrics.counter("gateway.completed").inc()
            if late:
                self.metrics.counter("gateway.late").inc()
            self.metrics.histogram("gateway.latency_s",
                                   lane=pending.greq.lane).observe(latency)
            self.metrics.histogram("gateway.wait_s").observe(
                max(latency - service_s, 0.0))
        return decision

    def shed_expired(self, pending: Pending, now: float) -> Decision:
        """Executor-side expiry: the dispatcher (which may know the exact
        service cost, as the virtual-time simulator does) determined a
        popped request can no longer meet its deadline."""
        return self._shed(pending.seq, now, pending.shard,
                          pending.greq.lane, "expired")

    # -- internals ------------------------------------------------------

    def _shed(self, seq: int, now: float, shard: int, lane: str,
              reason: str) -> Decision:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        decision = Decision(seq=seq, t=now, shard=shard, lane=lane,
                            action="shed", reason=reason)
        self.decisions.append(decision)
        if self.metrics is not None:
            self.metrics.counter("gateway.shed", reason=reason).inc()
        return decision

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())
