"""Virtual-time gateway execution: deterministic load/overload runs.

The INRIA grid papers' coordinator/worker shape becomes testable here:
the whole gateway — routing, lanes, admission, expiry, per-shard caches
— runs against a **simulated clock** driven by an event heap, with
per-request service times from a pure :class:`~repro.gateway.loadgen.
CostModel`. No sleeping, no thread scheduling, no wall-clock noise: a
seeded schedule replays to the same virtual timeline, the same decision
log, and (in ``priced=True`` mode) the same price bits, every run, on
any machine. That is what lets the overload acceptance tier assert
exact queue bounds and goodput instead of flaky timing margins, and
what the ``gateway`` determinism check replays bitwise.

Execution model: one service slot per shard (the stateless-worker
shape), FIFO within a lane, lanes drained in priority order by
:class:`~repro.gateway.core.GatewayCore`. At dispatch the simulator
knows the *exact* service cost, so a request that can no longer meet
its deadline is shed as ``expired`` rather than serviced uselessly —
in virtual mode every completed request therefore beat its deadline,
and goodput degrades to capacity under overload instead of collapsing.

``priced=True`` additionally routes each cache miss through the real
:func:`~repro.serve.service.price_request` worker (serial shard
execution), so the run yields a bitwise-comparable price stream while
virtual time still accounts the cost model's seconds.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

from repro.gateway.admission import Decision, GatewayRequest, decision_digest
from repro.gateway.core import GatewayCore, Pending
from repro.gateway.loadgen import CostModel, LoadgenConfig, request_stream
from repro.obs.ledger import (RunRecord, active_ledger, config_digest,
                              git_sha, new_run_id)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.serve.cache import PriceCache
from repro.utils.formatting import Table
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["GatewayRunResult", "run_schedule", "run_closed_loop"]

#: Cache sentinel stored for un-priced virtual runs (hit/miss structure
#: without spending real compute on path generation).
_PRICED_OUT = object()


@dataclass
class GatewayRunResult:
    """Everything one gateway run measured, deterministic fields first."""

    n_shards: int
    duration_s: float
    offered: int = 0
    admitted: int = 0
    completed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    sim_end: float = 0.0
    wall_s: float = 0.0
    latency: dict[str, Histogram] = field(default_factory=dict)
    max_depths: list[int] = field(default_factory=list)
    cache_hits: list[int] = field(default_factory=list)
    cache_misses: list[int] = field(default_factory=list)
    decisions: list[Decision] = field(default_factory=list)
    prices: list[tuple[int, object]] = field(default_factory=list)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.offered if self.offered else 0.0

    @property
    def goodput(self) -> float:
        """Deadline-beating completions per offered second."""
        return self.completed / self.duration_s

    @property
    def overall_latency(self) -> Histogram:
        merged = Histogram()
        for hist in self.latency.values():
            merged.merge(hist)
        return merged

    def hit_rate(self, shard: int) -> float:
        total = self.cache_hits[shard] + self.cache_misses[shard]
        return self.cache_hits[shard] / total if total else 0.0

    def decision_log_digest(self) -> str:
        return decision_digest(self.decisions)

    def price_stream_digest(self) -> str:
        """SHA-256 over the seq-ordered price/stderr bit patterns
        (``priced=True`` runs only)."""
        import hashlib

        from repro.verify.determinism import float_bits

        parts = [f"{seq}:{float_bits(q.price)}:{float_bits(q.stderr)}"
                 for seq, q in sorted(self.prices)]
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]

    def lane_table(self, *, title: str = "gateway run") -> Table:
        table = Table(["lane", "done", "p50 [ms]", "p99 [ms]", "p999 [ms]",
                       "max [ms]"],
                      title=title, floatfmt=".4g")
        for lane, hist in sorted(self.latency.items()):
            table.add_row([lane, hist.count, hist.quantile(0.5) * 1e3,
                           hist.quantile(0.99) * 1e3,
                           hist.quantile(0.999) * 1e3,
                           (hist.max if hist.count else 0.0) * 1e3])
        overall = self.overall_latency
        table.add_row(["(all)", overall.count, overall.quantile(0.5) * 1e3,
                       overall.quantile(0.99) * 1e3,
                       overall.quantile(0.999) * 1e3,
                       (overall.max if overall.count else 0.0) * 1e3])
        return table

    def to_record(self, config: dict) -> RunRecord:
        overall = self.overall_latency
        return RunRecord(
            run_id=new_run_id(), kind="gateway", engine="gateway",
            config=config_digest(config), backend="sim",
            workers=self.n_shards, p=self.n_shards,
            stages={"drive": self.wall_s}, wall_s=self.wall_s,
            sim_s=self.sim_end,
            extra={"offered": self.offered, "admitted": self.admitted,
                   "completed": self.completed, "shed": self.shed_total,
                   "goodput": self.goodput,
                   "shed_rate": self.shed_rate,
                   "p99_ms": overall.quantile(0.99) * 1e3},
            git=git_sha())


class _Driver:
    """Shared event-heap machinery for open- and closed-loop runs."""

    def __init__(self, *, n_shards: int, cost: CostModel, max_queue: int,
                 priced: bool, cache_capacity: int, service_hint_s: float,
                 headroom: float, ewma_alpha: float,
                 metrics: MetricsRegistry | None, duration_s: float):
        self.core = GatewayCore(n_shards, max_queue=max_queue,
                                service_hint_s=service_hint_s,
                                ewma_alpha=ewma_alpha, headroom=headroom,
                                metrics=metrics)
        self.cost = cost
        self.priced = priced
        self.caches = [PriceCache(cache_capacity, metrics=metrics,
                                  labels={"shard": str(i)})
                       for i in range(n_shards)]
        self.result = GatewayRunResult(n_shards=n_shards,
                                       duration_s=duration_s)
        self.busy = [False] * n_shards
        self.heap: list[tuple[float, int, str, object]] = []
        self._order = 0
        self.on_settled = None   # closed-loop hook: seq settled at time t
        self._client_of: dict[int, int] = {}

    def push(self, t: float, kind: str, payload: object) -> None:
        heapq.heappush(self.heap, (t, self._order, kind, payload))
        self._order += 1

    def arrive(self, greq: GatewayRequest, t: float,
               client: int | None = None) -> None:
        self.result.offered += 1
        pending, decision = self.core.offer(greq, t)
        if client is not None:
            self._client_of[decision.seq] = client
        if pending is None:
            self._settled(decision.seq, t)
        elif not self.busy[pending.shard]:
            self.dispatch(pending.shard, t)

    def dispatch(self, shard: int, now: float) -> None:
        """Start the next feasible queued request on an idle shard."""
        while True:
            pending = self.core.next_request(shard, now)
            if pending is None:
                self.busy[shard] = False
                return
            cache = self.caches[shard]
            cached = cache.get(pending.key)
            service = self.cost.service_s(pending.greq.request,
                                          cached is not None)
            if now + service > pending.deadline_at:
                # Exact-knowledge expiry: don't burn capacity on a
                # request that cannot make it.
                self.core.shed_expired(pending, now)
                self._settled(pending.seq, now)
                continue
            if cached is None:
                if self.priced:
                    from repro.serve.service import price_request

                    cached = price_request(pending.greq.request)
                else:
                    cached = _PRICED_OUT
                cache.put(pending.key, cached)
            if self.priced:
                self.result.prices.append((pending.seq, cached))
            self.busy[shard] = True
            self.core.start(shard, pending, now, service)
            self.push(now + service, "finish", (shard, pending, service))
            return

    def finish(self, shard: int, pending: Pending, service: float,
               now: float) -> None:
        self.core.complete(shard, pending, now, service)
        self.result.completed += 1
        lane = pending.greq.lane
        hist = self.result.latency.setdefault(lane, Histogram())
        hist.observe(now - pending.arrival)
        self.result.sim_end = now
        self._settled(pending.seq, now)
        self.dispatch(shard, now)

    def drain(self) -> GatewayRunResult:
        while self.heap:
            t, _, kind, payload = heapq.heappop(self.heap)
            if kind == "arrive":
                greq, client = payload
                self.arrive(greq, t, client)
            else:
                shard, pending, service = payload
                self.finish(shard, pending, service, t)
        res = self.result
        res.admitted = self.core.admitted
        res.shed = dict(self.core.shed)
        res.decisions = list(self.core.decisions)
        res.max_depths = [self.core.max_depth_seen(s)
                          for s in range(res.n_shards)]
        res.cache_hits = [c.hits for c in self.caches]
        res.cache_misses = [c.misses for c in self.caches]
        return res

    def _settled(self, seq: int, now: float) -> None:
        if self.on_settled is not None:
            client = self._client_of.pop(seq, None)
            if client is not None:
                self.on_settled(client, now)


def _finalize(driver: _Driver, t0: float, config: dict,
              ledger) -> GatewayRunResult:
    result = driver.drain()
    result.wall_s = time.perf_counter() - t0
    book = ledger if ledger is not None else active_ledger()
    if book is not None:
        book.append(result.to_record(config))
    return result


def run_schedule(schedule: list[tuple[float, GatewayRequest]], *,
                 n_shards: int, cost: CostModel, duration_s: float,
                 max_queue: int = 64, priced: bool = False,
                 cache_capacity: int = 4096,
                 service_hint_s: float | None = None,
                 headroom: float = 1.0, ewma_alpha: float = 0.2,
                 metrics: MetricsRegistry | None = None,
                 ledger=None) -> GatewayRunResult:
    """Replay an open-loop arrival schedule on the virtual clock.

    ``schedule`` is ``[(arrival_s, GatewayRequest), ...]`` (what
    :func:`~repro.gateway.loadgen.open_loop_schedule` builds);
    ``duration_s`` is the offered window the goodput denominator uses.
    ``service_hint_s`` seeds the admission estimate before the EWMA has
    observations — defaults to the cost model's flat base cost.
    """
    check_positive_int("n_shards", n_shards)
    check_positive("duration_s", duration_s)
    t0 = time.perf_counter()
    hint = service_hint_s if service_hint_s is not None else cost.base_s
    driver = _Driver(n_shards=n_shards, cost=cost, max_queue=max_queue,
                     priced=priced, cache_capacity=cache_capacity,
                     service_hint_s=hint, headroom=headroom,
                     ewma_alpha=ewma_alpha, metrics=metrics,
                     duration_s=duration_s)
    for t, greq in schedule:
        driver.push(t, "arrive", (greq, None))
    config = {"mode": "open", "n_shards": n_shards, "max_queue": max_queue,
              "priced": priced, "duration_s": duration_s,
              "requests": len(schedule)}
    return _finalize(driver, t0, config, ledger)


def run_closed_loop(cfg: LoadgenConfig, *, n_shards: int, cost: CostModel,
                    n_clients: int, think_s: float,
                    max_queue: int = 64, priced: bool = False,
                    cache_capacity: int = 4096,
                    service_hint_s: float | None = None,
                    headroom: float = 1.0, ewma_alpha: float = 0.2,
                    metrics: MetricsRegistry | None = None,
                    ledger=None) -> GatewayRunResult:
    """Closed-loop run: ``n_clients`` issue a request, wait for its
    answer (or shed), think ``think_s`` virtual seconds, repeat — until
    ``cfg.duration_s``. Self-throttling by construction; offered load
    tracks what the gateway actually absorbs."""
    check_positive_int("n_shards", n_shards)
    check_positive_int("n_clients", n_clients)
    check_positive("think_s", think_s)
    t0 = time.perf_counter()
    hint = service_hint_s if service_hint_s is not None else cost.base_s
    driver = _Driver(n_shards=n_shards, cost=cost, max_queue=max_queue,
                     priced=priced, cache_capacity=cache_capacity,
                     service_hint_s=hint, headroom=headroom,
                     ewma_alpha=ewma_alpha, metrics=metrics,
                     duration_s=cfg.duration_s)
    stream = request_stream(cfg)

    def issue(client: int, t: float) -> None:
        if t < cfg.duration_s:
            driver.push(t, "arrive", (next(stream), client))

    def settled(client: int, now: float) -> None:
        issue(client, now + think_s)

    driver.on_settled = settled
    # Stagger the first wave so clients do not arrive as one burst.
    for client in range(n_clients):
        issue(client, client * (think_s / max(n_clients, 1)))
    config = {"mode": "closed", "n_shards": n_shards,
              "max_queue": max_queue, "priced": priced,
              "duration_s": cfg.duration_s, "n_clients": n_clients,
              "think_s": think_s, "seed": cfg.seed}
    return _finalize(driver, t0, config, ledger)
