"""Pure shard router: canonical contract hash → shard index.

The gateway scales :class:`~repro.serve.PricingService` horizontally by
keeping N shard workers, each with its **own** price cache. The routing
invariant that makes those caches hot *and disjoint* is purely
arithmetic: a request's shard is a function of its canonical cache key
(:func:`~repro.serve.batching.request_key`, the SHA-256 the cache and
the verification corpus already use) and the shard count — nothing else.
Two equivalent requests land on the same shard from any gateway process,
any submission order, any interleaving; two different shards can never
cache the same contract.

Because SHA-256 output is uniform, taking the top 64 bits modulo
``n_shards`` balances any real contract book to within sampling noise —
the hypothesis property suite (``tests/test_gateway_router.py``) pins
stability, permutation invariance and a max/min load bound.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.serve.batching import PricingRequest, request_key
from repro.utils.validation import check_positive_int

__all__ = ["shard_index", "route", "shard_assignments", "shard_loads"]

#: Hex digits of the key used for routing (top 64 bits of the SHA-256).
_ROUTE_HEX_DIGITS = 16


def shard_index(key: str, n_shards: int) -> int:
    """Shard owning canonical key ``key`` among ``n_shards`` shards.

    Pure and stateless: top 64 bits of the hex digest, modulo the shard
    count. The same ``(key, n_shards)`` pair routes identically in every
    process, forever — resharding (changing ``n_shards``) is the only
    operation that moves a contract.
    """
    check_positive_int("n_shards", n_shards)
    if not key:
        raise ValueError("shard_index needs a non-empty hex key")
    return int(key[:_ROUTE_HEX_DIGITS], 16) % n_shards


def route(request: PricingRequest, n_shards: int) -> int:
    """Shard owning ``request`` — ``shard_index`` of its canonical key."""
    return shard_index(request_key(request), n_shards)


def shard_assignments(requests: Iterable[PricingRequest],
                      n_shards: int) -> list[int]:
    """Per-request shard indices, in input order."""
    return [route(r, n_shards) for r in requests]


def shard_loads(requests: Sequence[PricingRequest],
                n_shards: int) -> list[int]:
    """Request count landing on each shard (the balance diagnostic)."""
    loads = [0] * check_positive_int("n_shards", n_shards)
    for r in requests:
        loads[route(r, n_shards)] += 1
    return loads
