"""Priority lanes, deadlines, and the admission controller.

The gateway's overload contract is *shed, don't collapse*: when offered
load exceeds capacity, excess requests are refused **at the door** (or at
dispatch, if they expired while queued) with an explicit, recorded
reason — queues stay bounded, workers stay busy on requests that can
still meet their deadlines, and goodput holds at capacity instead of
every request timing out together.

Three pieces:

* :data:`LANES` — the priority lanes, drained in order. An arriving
  request waits behind queued work in its own and higher lanes only, so
  an ``interactive`` quote overtakes queued ``bulk`` revaluations.
* :class:`GatewayRequest` — one routed unit: a
  :class:`~repro.serve.batching.PricingRequest` plus its lane and a
  *relative* deadline budget (seconds from arrival).
* :class:`AdmissionController` — the pure decision function. A request
  is shed when its lane queue is full (``queue-full``) or when the
  estimated wait (in-service remainder plus queued work at its priority
  or higher, scaled by the shard's EWMA service-time estimate) says the
  deadline cannot be met (``deadline``). A third reason, ``expired``,
  is recorded by the dispatch loop when a request that *was* feasible at
  admission got pushed past its deadline by later higher-priority
  arrivals.

Every admit/shed/done event becomes a :class:`Decision` in the decision
log — a canonical, digestible stream the ``gateway`` determinism check
replays bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.serve.batching import PricingRequest
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LANES", "lane_priority", "GatewayRequest", "Decision",
           "decision_digest", "AdmissionController"]

#: Priority lanes in drain order: ``interactive`` quotes preempt queued
#: ``standard`` pricing, which preempts ``bulk`` (risk-run) revaluations.
LANES = ("interactive", "standard", "bulk")

_LANE_RANK = {lane: i for i, lane in enumerate(LANES)}


def lane_priority(lane: str) -> int:
    """Drain rank of ``lane`` (0 = drained first). Raises on unknown lanes."""
    try:
        return _LANE_RANK[lane]
    except KeyError:
        raise ValidationError(
            f"lane must be one of {LANES}, got {lane!r}") from None


@dataclass(frozen=True)
class GatewayRequest:
    """One unit of gateway traffic: a pricing request plus its QoS terms.

    ``deadline_s`` is the *relative* latency budget — the caller's
    patience in seconds from arrival. The gateway stamps the arrival
    time, so the absolute deadline is ``arrival + deadline_s``.
    """

    request: PricingRequest
    lane: str = "standard"
    deadline_s: float = 1.0

    def __post_init__(self) -> None:
        lane_priority(self.lane)
        check_positive("deadline_s", self.deadline_s)


@dataclass(frozen=True)
class Decision:
    """One decision-log entry: what happened to request ``seq`` and when.

    ``action`` is ``"admit"``, ``"shed"`` or ``"done"``; ``reason``
    qualifies sheds (``queue-full`` / ``deadline`` / ``expired``) and
    late completions (``late``, real-clock mode only). All fields are
    plain primitives so the log serializes canonically for the
    determinism digest.
    """

    seq: int
    t: float
    shard: int
    lane: str
    action: str
    reason: str = ""
    latency_s: float = 0.0

    def canonical(self) -> str:
        """One stable line per decision (the digest input)."""
        return (f"{self.seq}|{self.t!r}|{self.shard}|{self.lane}|"
                f"{self.action}|{self.reason}|{self.latency_s!r}")


def decision_digest(decisions: list[Decision]) -> str:
    """SHA-256 digest of a decision log — two identical runs must match."""
    import hashlib

    joined = "\n".join(d.canonical() for d in decisions)
    return hashlib.sha256(joined.encode()).hexdigest()[:16]


@dataclass
class AdmissionController:
    """The admit/shed decision function, parameterized by queue bounds.

    Parameters
    ----------
    max_queue : per-shard, per-lane queue bound. An arrival to a full
        lane is shed immediately — bounded memory per shard by
        construction (``n_lanes * max_queue`` entries at most).
    headroom : multiplier on the estimated wait+service before comparing
        against the deadline (>1 sheds earlier, trading goodput for
        fewer expiries).
    """

    max_queue: int = 64
    headroom: float = 1.0

    def __post_init__(self) -> None:
        check_positive_int("max_queue", self.max_queue)
        check_positive("headroom", self.headroom)

    def decide(self, *, lane_depth: int, work_ahead_s: float,
               service_s: float, now: float, deadline_at: float) -> str:
        """The shed reason for an arrival, or ``""`` to admit.

        ``lane_depth`` is the request's lane queue depth on its shard;
        ``work_ahead_s`` the estimated seconds of work it must wait out
        (in-service remainder + queued work at its priority or higher);
        ``service_s`` the shard's current service-time estimate.
        """
        if lane_depth >= self.max_queue:
            return "queue-full"
        if now + self.headroom * (work_ahead_s + service_s) > deadline_at:
            return "deadline"
        return ""
