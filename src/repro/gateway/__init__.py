"""Sharded serving gateway: routing, admission control, load generation.

The serving layer (``repro.serve``) prices one request stream well; this
package scales it out and keeps it honest under overload:

* :mod:`~repro.gateway.router` — canonical-contract-hash sharding, so
  each shard's price cache stays hot and disjoint.
* :mod:`~repro.gateway.admission` — priority lanes, relative deadlines,
  the bounded-queue admission rule and the canonical decision log.
* :mod:`~repro.gateway.core` — the pure (clock-injected) state machine
  both front-ends drive.
* :mod:`~repro.gateway.loadgen` — seeded deterministic open/closed-loop
  traffic plus the virtual cost model and capacity formula.
* :mod:`~repro.gateway.simulate` — the virtual-time executor behind the
  overload acceptance tier, the determinism check and ``bench_f17``.
* :mod:`~repro.gateway.gateway` — the asyncio :class:`ShardedGateway`
  front-end over real :class:`~repro.serve.PricingService` shards.
"""

from repro.gateway.admission import (LANES, AdmissionController, Decision,
                                     GatewayRequest, decision_digest,
                                     lane_priority)
from repro.gateway.core import GatewayCore, Pending
from repro.gateway.gateway import ShardedGateway
from repro.gateway.loadgen import (DEFAULT_LANES, CostModel, LaneMix,
                                   LoadgenConfig, build_book, capacity,
                                   open_loop_schedule, request_stream)
from repro.gateway.router import (route, shard_assignments, shard_index,
                                  shard_loads)
from repro.gateway.simulate import (GatewayRunResult, run_closed_loop,
                                    run_schedule)

__all__ = [
    "LANES",
    "AdmissionController",
    "Decision",
    "GatewayRequest",
    "decision_digest",
    "lane_priority",
    "GatewayCore",
    "Pending",
    "ShardedGateway",
    "DEFAULT_LANES",
    "CostModel",
    "LaneMix",
    "LoadgenConfig",
    "build_book",
    "capacity",
    "open_loop_schedule",
    "request_stream",
    "route",
    "shard_assignments",
    "shard_index",
    "shard_loads",
    "GatewayRunResult",
    "run_closed_loop",
    "run_schedule",
]
