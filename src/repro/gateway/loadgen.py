"""Seeded, deterministic load generation for the sharded gateway.

The Premia/Nsp benchmark paper's lesson (PAPERS.md) is that a
risk-management-style traffic generator is *the* way to stress a pricing
architecture — not hand-picked request lists. This module builds that
traffic deterministically: every arrival instant, contract choice, lane
assignment and deadline draw comes from one counter-based
:class:`~repro.rng.Philox4x32` stream, so a schedule is a pure function
of its :class:`LoadgenConfig` — two builds are identical object for
object, which is what the ``gateway`` determinism check and the
overload acceptance tier rely on.

Two traffic shapes:

* **open loop** (:func:`open_loop_schedule`) — Poisson arrivals at a
  configured offered rate, independent of completions; the overload
  instrument (offered load can exceed capacity indefinitely).
* **closed loop** (:func:`request_stream` + the simulator's
  ``closed_clients``) — N clients that wait for their previous answer
  (or shed) plus a think time before the next request; self-throttling,
  the "live risk desk" shape.

The virtual-time executor needs to know what a request *costs* without
running it: :class:`CostModel` maps a request to deterministic service
seconds (affine in the path budget, with a cheap cache-hit fast path),
and :func:`capacity` derives the aggregate request rate N shards can
sustain — the denominator of every goodput gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.gateway.admission import GatewayRequest, lane_priority
from repro.rng import Philox4x32
from repro.serve.batching import PricingRequest
from repro.utils.validation import (check_non_negative, check_positive,
                                    check_positive_int)
from repro.workloads.generators import random_portfolio, strike_strip

__all__ = ["LaneMix", "DEFAULT_LANES", "LoadgenConfig", "CostModel",
           "build_book", "open_loop_schedule", "request_stream", "capacity"]

#: Philox stream discriminator for gateway traffic draws.
_STREAM = 0x6A7E

#: Uniform draws consumed per generated request (interarrival, contract,
#: lane, deadline) — fixed so the stream position is a pure function of
#: the request index.
_DRAWS_PER_REQUEST = 4


@dataclass(frozen=True)
class LaneMix:
    """One lane's share of traffic and its deadline budget range.

    Deadlines are drawn uniformly from ``[deadline_lo_s, deadline_hi_s]``
    per request — tight for interactive quotes, loose for bulk
    revaluations.
    """

    lane: str
    weight: float
    deadline_lo_s: float
    deadline_hi_s: float

    def __post_init__(self) -> None:
        lane_priority(self.lane)
        check_positive("weight", self.weight)
        check_positive("deadline_lo_s", self.deadline_lo_s)
        if self.deadline_hi_s < self.deadline_lo_s:
            raise ValidationError(
                f"deadline_hi_s ({self.deadline_hi_s}) must be >= "
                f"deadline_lo_s ({self.deadline_lo_s})")


#: Default traffic mix: mostly standard pricing, an interactive quote
#: stream with tight deadlines, a bulk tail with loose ones. Deadlines
#: are expressed in *service-time multiples* scaled at build time.
DEFAULT_LANES = (
    LaneMix("interactive", 0.3, 4.0, 8.0),
    LaneMix("standard", 0.5, 8.0, 30.0),
    LaneMix("bulk", 0.2, 30.0, 120.0),
)


@dataclass(frozen=True)
class CostModel:
    """Deterministic service-time model for virtual-time execution.

    A miss costs ``base_s + per_path_s * n_paths`` (dispatch overhead
    plus path generation); a cache hit costs ``hit_s`` flat. Exact and
    pure, so two simulator runs account identical virtual seconds.
    """

    base_s: float = 2e-3
    per_path_s: float = 1e-6
    hit_s: float = 1e-4

    def __post_init__(self) -> None:
        check_positive("base_s", self.base_s)
        check_non_negative("per_path_s", self.per_path_s)
        check_positive("hit_s", self.hit_s)

    def miss_s(self, request: PricingRequest) -> float:
        return self.base_s + self.per_path_s * request.n_paths

    def service_s(self, request: PricingRequest, hit: bool) -> float:
        return self.hit_s if hit else self.miss_s(request)


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything that determines a traffic schedule, seed included.

    ``unique=True`` varies the request seed per arrival, so every
    request is a distinct cache key (all-miss traffic — the capacity /
    overload instrument); ``unique=False`` replays the same ``book``
    contracts verbatim, so steady-state traffic is cache-hit dominated
    (the hot-shard-cache instrument).

    ``deadline_scale_s`` converts the lane mix's deadline multiples into
    seconds — set it to the cost model's miss time so "a deadline of 8"
    means "eight service times of patience".
    """

    seed: int = 0
    rate: float = 100.0
    duration_s: float = 10.0
    book: str = "strip"
    n_contracts: int = 16
    engine: str = "mc"
    n_paths: int = 2_000
    p: int = 1
    unique: bool = True
    deadline_scale_s: float = 4e-3
    lanes: tuple[LaneMix, ...] = DEFAULT_LANES

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        check_positive("duration_s", self.duration_s)
        check_positive_int("n_contracts", self.n_contracts)
        check_positive_int("n_paths", self.n_paths)
        check_positive("deadline_scale_s", self.deadline_scale_s)
        if self.book not in ("strip", "portfolio", "risk"):
            raise ValidationError(
                f"book must be 'strip', 'portfolio' or 'risk', "
                f"got {self.book!r}")
        if not self.lanes:
            raise ValidationError("lanes must not be empty")

    @property
    def total_weight(self) -> float:
        return sum(m.weight for m in self.lanes)


def build_book(cfg: LoadgenConfig) -> list:
    """The distinct contracts traffic draws from (a seeded book)."""
    if cfg.book == "strip":
        return strike_strip(cfg.n_contracts)
    if cfg.book == "risk":
        # Lazy import: repro.risk sits above the gateway layer.
        from repro.risk.bridge import risk_book

        return risk_book(cfg.n_contracts, seed=cfg.seed)
    return random_portfolio(cfg.n_contracts, dim=2, seed=cfg.seed)


@dataclass
class _Draws:
    """The seeded draw stream shared by open- and closed-loop builders."""

    cfg: LoadgenConfig
    gen: Philox4x32 = field(init=False)
    book: list = field(init=False)
    index: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.gen = Philox4x32(self.cfg.seed, stream=_STREAM)
        self.book = build_book(self.cfg)

    def next_request(self) -> tuple[float, GatewayRequest]:
        """Draw (interarrival gap, request) for the next arrival."""
        cfg = self.cfg
        u = self.gen.uniforms(_DRAWS_PER_REQUEST)
        gap = -math.log(max(1.0 - float(u[0]), 1e-12)) / cfg.rate
        contract = self.book[int(float(u[1]) * len(self.book)) % len(self.book)]
        pick = float(u[2]) * cfg.total_weight
        mix = cfg.lanes[-1]
        for m in cfg.lanes:
            if pick < m.weight:
                mix = m
                break
            pick -= m.weight
        deadline = cfg.deadline_scale_s * (
            mix.deadline_lo_s
            + float(u[3]) * (mix.deadline_hi_s - mix.deadline_lo_s))
        seed = cfg.seed + (self.index if cfg.unique else 0)
        self.index += 1
        request = PricingRequest(contract, engine=cfg.engine,
                                 n_paths=cfg.n_paths, seed=seed, p=cfg.p,
                                 name=contract.name)
        return gap, GatewayRequest(request=request, lane=mix.lane,
                                   deadline_s=deadline)


def open_loop_schedule(cfg: LoadgenConfig) -> list[tuple[float, GatewayRequest]]:
    """Poisson arrival schedule over ``[0, duration_s)`` — offered load
    is ``rate`` req/s regardless of what the gateway does with it."""
    draws = _Draws(cfg)
    schedule: list[tuple[float, GatewayRequest]] = []
    t = 0.0
    while True:
        gap, greq = draws.next_request()
        t += gap
        if t >= cfg.duration_s:
            break
        schedule.append((t, greq))
    return schedule


def request_stream(cfg: LoadgenConfig):
    """Infinite deterministic request iterator (closed-loop clients pull
    from this; arrival instants come from the client loop, not the
    stream). Interarrival draws are consumed and discarded so open- and
    closed-loop traffic share one draw geometry per request index."""
    draws = _Draws(cfg)
    while True:
        _, greq = draws.next_request()
        yield greq


def capacity(cfg: LoadgenConfig, cost: CostModel, n_shards: int) -> float:
    """Aggregate sustainable request rate of ``n_shards`` shard workers
    on all-miss traffic — the goodput denominator. Cache-hit traffic
    sustains (much) more; this is the conservative floor."""
    per_request = cost.miss_s(PricingRequest(
        build_book(cfg)[0], engine=cfg.engine, n_paths=cfg.n_paths,
        seed=cfg.seed, p=cfg.p))
    return check_positive_int("n_shards", n_shards) / per_request
