"""Deterministic simulated message-passing multiprocessor.

The substitution at the heart of this reproduction (see DESIGN.md): the
paper evaluated its parallel pricers on a 2002-era multiprocessor; this
class reproduces the *cost structure* of such a machine deterministically,
so the T(P)/speedup/efficiency curves are functions of algorithmic
compute/communication volumes rather than of whatever hardware happens to
run the test suite (the CI box has a single core).

Model
-----
* Each rank owns a virtual clock (seconds).
* Computation: ``compute(rank, units)`` advances a clock by
  ``units × spec.flop_time``; the caller chooses the work unit (the pricers
  charge per path-normal, per lattice-node-branch, per grid-point).
* Communication: the classical **α–β (Hockney) model** — a message of
  ``b`` bytes between two ranks costs ``α + β·b`` and synchronizes the pair
  (rendezvous semantics: both clocks advance to the common finish time).
* Collectives are built *from those primitives* (binary-tree or linear
  reduce, tree broadcast, pairwise all-to-all), so topology choices show up
  in the curves — experiment F7 ablates tree vs linear reduction.

The cluster also keeps per-rank accounting of compute vs communication
seconds and message/byte counters, which the perf harness turns into the
overhead columns of the evaluation tables.

Fault model
-----------
A :class:`~repro.parallel.faults.FaultPlan` can be attached at
construction. The cluster consumes it deterministically: straggler events
stretch the affected rank's :meth:`compute` charges by their slowdown
factor, and recovery costs (wasted attempts, retry backoff) are charged by
:func:`repro.parallel.faults.charge_report` under the dedicated ``fault``
account, so faulty timelines stay byte-reproducible and render with their
own glyph in the Gantt view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["MachineSpec", "SimulatedCluster", "combine_on_schedule"]


def combine_on_schedule(payloads, combine, *, root: int = 0,
                        topology: str = "tree", on_message=None):
    """Combine per-rank ``payloads`` in the reduction schedule's exact order.

    This is the *association order* of :meth:`SimulatedCluster.reduce_data`
    factored out as a pure function of ``(len(payloads), root, topology)``:
    the cluster method delegates here (charging each simulated message via
    ``on_message``), and the batched strip reduction replays the same
    schedule per contract without charging per-contract messages — which is
    what makes a fused strip price bitwise equal to its single-contract run.

    ``on_message(src, dst)``, when given, is invoked once per simulated
    message immediately before the corresponding ``combine``.
    """
    p = len(payloads)
    data = list(payloads)
    if p == 1:
        return data[root]
    if topology == "linear":
        acc = data[root]
        for r in range(p):
            if r != root:
                if on_message is not None:
                    on_message(r, root)
                acc = combine(acc, data[r])
        return acc
    dist = 1
    while dist < p:
        for v in range(0, p, 2 * dist):
            partner = v + dist
            if partner < p:
                src = (partner + root) % p
                dst = (v + root) % p
                if on_message is not None:
                    on_message(src, dst)
                data[dst] = combine(data[dst], data[src])
        dist *= 2
    return data[root]


@dataclass(frozen=True)
class MachineSpec:
    """Cost parameters of the simulated machine.

    Defaults are loosely calibrated to a 2002-era cluster: ~100 MFLOP/s of
    *useful* pricing arithmetic per node (``flop_time = 1e-8`` s per work
    unit), ~50 µs message latency, ~100 MB/s link bandwidth
    (``beta = 1e-8`` s/byte). Experiments vary these (F7).
    """

    flop_time: float = 1e-8
    alpha: float = 50e-6
    beta: float = 1e-8

    def __post_init__(self):
        check_positive("flop_time", self.flop_time)
        check_non_negative("alpha", self.alpha)
        check_non_negative("beta", self.beta)

    def message_time(self, nbytes: float) -> float:
        """α + β·b for one point-to-point message."""
        if nbytes < 0:
            raise ValidationError(f"nbytes must be non-negative, got {nbytes}")
        return self.alpha + self.beta * float(nbytes)


@dataclass
class _RankAccount:
    compute: float = 0.0
    comm: float = 0.0
    idle: float = 0.0
    fault: float = 0.0


class SimulatedCluster:
    """``p`` ranks with virtual clocks and α–β messaging.

    Usage pattern (what the parallel pricers do)::

        cluster = SimulatedCluster(p, spec)
        for r in range(p):
            cluster.compute(r, work_units_of_rank_r)
        cluster.reduce(nbytes=24, root=0, topology="tree")
        t_parallel = cluster.elapsed()
    """

    def __init__(self, p: int, spec: MachineSpec | None = None, *,
                 record: bool = False, faults=None, tracer=None):
        self.p = check_positive_int("p", p)
        self.spec = spec if spec is not None else MachineSpec()
        self.clocks = np.zeros(self.p, dtype=float)
        self.accounts = [_RankAccount() for _ in range(self.p)]
        self.messages = 0
        self.bytes_moved = 0.0
        #: Optional event trace: (rank, t_start, t_end, kind) tuples with
        #: kind ∈ {"compute", "comm", "idle", "fault"}. Rendered by
        #: :func:`repro.perf.gantt.render_gantt`.
        self.record = bool(record)
        self.trace: list[tuple[int, float, float, str]] = []
        #: Optional :class:`~repro.obs.Tracer`: every charged interval is
        #: also emitted as a span on track ``rank{r}`` with **simulated**
        #: timestamps, so Gantt and Perfetto render the same data. The
        #: attached tracer must be dedicated to this simulated timeline
        #: (never share one with wall-clock spans).
        self.tracer = tracer
        #: Optional :class:`~repro.parallel.faults.FaultPlan`; straggler
        #: events stretch the affected rank's compute charges.
        self.faults = faults
        if faults is not None and not faults.is_empty:
            self._slowdowns = np.array(
                [faults.slowdown(r) for r in range(self.p)], dtype=float
            )
        else:
            self._slowdowns = None

    def _log(self, rank: int, t0: float, t1: float, kind: str) -> None:
        if t1 <= t0:
            return
        if self.record:
            self.trace.append((rank, t0, t1, kind))
        if self.tracer:
            self.tracer.add_span(kind, t0, t1, rank=rank)

    # -- primitives -----------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.p:
            raise ValidationError(f"rank must lie in [0, {self.p}), got {rank}")

    def compute(self, rank: int, units: float) -> None:
        """Advance ``rank``'s clock by ``units`` work units (stretched by
        the rank's straggler slowdown when a fault plan is attached)."""
        self._check_rank(rank)
        if units < 0:
            raise ValidationError(f"work units must be non-negative, got {units}")
        dt = units * self.spec.flop_time
        if self._slowdowns is not None:
            dt *= self._slowdowns[rank]
        self._log(rank, self.clocks[rank], self.clocks[rank] + dt, "compute")
        self.clocks[rank] += dt
        self.accounts[rank].compute += dt

    def compute_all(self, units_per_rank) -> None:
        """Charge per-rank work in one call (units_per_rank has length p)."""
        units = np.asarray(units_per_rank, dtype=float)
        if units.shape != (self.p,):
            raise ValidationError(f"expected {self.p} work entries, got {units.shape}")
        for r in range(self.p):
            self.compute(r, float(units[r]))

    def schedule_compute(self, units_per_task, *, strategy: str = "static",
                         seed: int = 0, estimates=None):
        """Charge a *task-level* work list through a virtual-time scheduler.

        Where :meth:`compute_all` charges one pre-assigned block of units
        per rank, this takes per-**task** units (any count), runs them
        through :func:`repro.parallel.sched.simulate_schedule` on this
        cluster's ``p`` workers — straggler slowdowns from the attached
        fault plan become per-worker speed factors — and charges each
        rank's assigned intervals: ``compute`` for task execution, ``idle``
        for the gaps before a steal becomes available. Deterministic: the
        same arguments always produce the same schedule, clocks and
        accounts, which is what makes simulated load-balance curves
        (static vs LPT vs stealing) byte-reproducible. ``estimates`` feeds
        the LPT strategy's ordering (stale-estimate studies).

        Returns the :class:`~repro.parallel.sched.VirtualSchedule`, whose
        ``stats`` record the steals and whose ``digest()`` pins the run.
        """
        from repro.parallel.sched import simulate_schedule

        costs = [float(u) * self.spec.flop_time for u in units_per_task]
        est = (None if estimates is None
               else [float(e) * self.spec.flop_time for e in estimates])
        speeds = (list(self._slowdowns) if self._slowdowns is not None
                  else None)
        schedule = simulate_schedule(costs, self.p, strategy=strategy,
                                     seed=seed, speeds=speeds,
                                     estimates=est)
        intervals: list[list[tuple[float, float]]] = [[] for _ in range(self.p)]
        for _task, w, start, end in schedule.assignments:
            intervals[w].append((start, end))
        for w in range(self.p):
            t = 0.0
            for start, end in sorted(intervals[w]):
                if start > t:
                    self.delay(w, start - t, kind="idle")
                self.delay(w, end - start, kind="compute")
                t = end
        return schedule

    def send(self, src: int, dst: int, nbytes: float) -> None:
        """Rendezvous message: both ranks end at the common finish time."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return  # self-messages are free (local memory)
        start = max(self.clocks[src], self.clocks[dst])
        cost = self.spec.message_time(nbytes)
        finish = start + cost
        for r in (src, dst):
            self._log(r, self.clocks[r], start, "idle")
            self._log(r, start, finish, "comm")
            self.accounts[r].idle += start - self.clocks[r]
            self.accounts[r].comm += cost
            self.clocks[r] = finish
        self.messages += 1
        self.bytes_moved += float(nbytes)

    # -- collectives -----------------------------------------------------------

    def barrier(self) -> None:
        """Dissemination barrier: ⌈log₂ p⌉ rounds of pairwise latency."""
        if self.p == 1:
            return
        rounds = math.ceil(math.log2(self.p))
        start = float(self.clocks.max())
        cost = rounds * self.spec.alpha
        for r in range(self.p):
            self._log(r, self.clocks[r], start, "idle")
            self._log(r, start, start + cost, "comm")
            self.accounts[r].idle += start - self.clocks[r]
            self.accounts[r].comm += cost
        self.clocks[:] = start + cost

    def reduce(self, nbytes: float, *, root: int = 0, topology: str = "tree") -> None:
        """Reduce a fixed-size payload to ``root``.

        ``topology="tree"`` — recursive halving in ⌈log₂ p⌉ rounds;
        ``topology="linear"`` — root receives from every rank in turn
        (the naive baseline ablated in experiment F7).
        """
        self._check_rank(root)
        if topology not in ("tree", "linear"):
            raise ValidationError(f"topology must be 'tree' or 'linear', got {topology!r}")
        if self.p == 1:
            return
        if topology == "linear":
            for r in range(self.p):
                if r != root:
                    self.send(r, root, nbytes)
            return
        # Binomial tree rooted at 0 then relabeled: simulate on virtual
        # ranks v = (r - root) mod p.
        dist = 1
        while dist < self.p:
            for v in range(0, self.p, 2 * dist):
                partner = v + dist
                if partner < self.p:
                    src = (partner + root) % self.p
                    dst = (v + root) % self.p
                    self.send(src, dst, nbytes)
            dist *= 2

    def delay(self, rank: int, seconds: float, *, kind: str = "comm") -> None:
        """Advance one rank's clock by raw seconds (dispatch overhead,
        master–worker latency, ...). ``kind`` selects the account."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValidationError(f"delay must be non-negative, got {seconds}")
        self._log(rank, self.clocks[rank], self.clocks[rank] + seconds, kind)
        self.clocks[rank] += seconds
        if kind == "comm":
            self.accounts[rank].comm += seconds
        elif kind == "compute":
            self.accounts[rank].compute += seconds
        elif kind == "idle":
            self.accounts[rank].idle += seconds
        elif kind == "fault":
            self.accounts[rank].fault += seconds
        else:
            raise ValidationError(f"unknown account kind {kind!r}")

    # -- data-carrying collectives ------------------------------------------
    #
    # The plain collectives above only charge costs; these variants also
    # move *values* along the exact same message schedule, so the combined
    # result reflects the simulated reduction order (including its
    # floating-point association) — what a real MPI reduce produces.

    def reduce_data(self, payloads, combine, nbytes: float, *, root: int = 0,
                    topology: str = "tree"):
        """Reduce per-rank ``payloads`` to ``root`` with ``combine(a, b)``.

        Charges exactly the same costs as :meth:`reduce` and returns the
        root's combined payload. ``combine`` must be associative; the
        combination order follows the simulated message schedule.
        """
        self._check_rank(root)
        if len(payloads) != self.p:
            raise ValidationError(
                f"need one payload per rank ({self.p}), got {len(payloads)}"
            )
        if topology not in ("tree", "linear"):
            raise ValidationError(f"topology must be 'tree' or 'linear', got {topology!r}")
        return combine_on_schedule(
            payloads, combine, root=root, topology=topology,
            on_message=lambda src, dst: self.send(src, dst, nbytes),
        )

    def bcast_data(self, value, nbytes: float, *, root: int = 0) -> list:
        """Broadcast ``value`` from root; returns the per-rank value list
        (same object on every rank) while charging :meth:`bcast` costs."""
        self.bcast(nbytes, root=root)
        return [value] * self.p

    def bcast(self, nbytes: float, *, root: int = 0) -> None:
        """Binomial-tree broadcast from ``root``."""
        self._check_rank(root)
        if self.p == 1:
            return
        dist = 1
        while dist < self.p:
            dist *= 2
        dist //= 2
        while dist >= 1:
            for v in range(0, self.p, 2 * dist):
                partner = v + dist
                if partner < self.p:
                    src = (v + root) % self.p
                    dst = (partner + root) % self.p
                    self.send(src, dst, nbytes)
            dist //= 2

    def allreduce(self, nbytes: float, *, topology: str = "tree") -> None:
        """Reduce to rank 0 then broadcast (reduce+bcast composition)."""
        self.reduce(nbytes, root=0, topology=topology)
        self.bcast(nbytes, root=0)

    def alltoall(self, nbytes_per_pair: float) -> None:
        """Pairwise-exchange all-to-all: p−1 rounds, each rank sends/receives
        ``nbytes_per_pair`` per round (used by the ADI transpose)."""
        if self.p == 1:
            return
        check_non_negative("nbytes_per_pair", nbytes_per_pair)
        start = float(self.clocks.max())
        cost = (self.p - 1) * self.spec.message_time(nbytes_per_pair)
        for r in range(self.p):
            self._log(r, self.clocks[r], start, "idle")
            self._log(r, start, start + cost, "comm")
            self.accounts[r].idle += start - self.clocks[r]
            self.accounts[r].comm += cost
        self.clocks[:] = start + cost
        self.messages += self.p * (self.p - 1)
        self.bytes_moved += self.p * (self.p - 1) * float(nbytes_per_pair)

    def halo_exchange(self, nbytes: float) -> None:
        """Nearest-neighbor exchange along a 1-D rank chain (lattice slabs):
        every interior boundary moves one message each way, overlappable, so
        the synchronized cost is two message times."""
        if self.p == 1:
            return
        start = float(self.clocks.max())
        cost = 2.0 * self.spec.message_time(nbytes)
        for r in range(self.p):
            self._log(r, self.clocks[r], start, "idle")
            self._log(r, start, start + cost, "comm")
            self.accounts[r].idle += start - self.clocks[r]
            self.accounts[r].comm += cost
        self.clocks[:] = start + cost
        self.messages += 2 * (self.p - 1)
        self.bytes_moved += 2 * (self.p - 1) * float(nbytes)

    # -- accounting ------------------------------------------------------------

    def elapsed(self) -> float:
        """Simulated makespan: the slowest rank's clock."""
        return float(self.clocks.max())

    @property
    def compute_time(self) -> float:
        """Max per-rank pure-compute seconds (the critical compute path)."""
        return max(a.compute for a in self.accounts)

    @property
    def comm_time(self) -> float:
        """Max per-rank communication seconds."""
        return max(a.comm for a in self.accounts)

    @property
    def idle_time(self) -> float:
        """Max per-rank idle (load-imbalance wait) seconds."""
        return max(a.idle for a in self.accounts)

    @property
    def fault_time(self) -> float:
        """Max per-rank seconds lost to failed attempts (recovery cost)."""
        return max(a.fault for a in self.accounts)

    def rank_breakdown(self) -> list[dict]:
        """Per-rank seconds by account, in rank order — the raw material
        for load-imbalance diagnostics and the obs metrics snapshot."""
        return [
            {"compute": a.compute, "comm": a.comm, "idle": a.idle,
             "fault": a.fault}
            for a in self.accounts
        ]

    def report(self) -> dict:
        """Summary dict used by the perf harness: the per-rank maxima plus
        the full per-rank breakdown under ``"ranks"``."""
        return {
            "p": self.p,
            "elapsed": self.elapsed(),
            "compute_time": self.compute_time,
            "comm_time": self.comm_time,
            "idle_time": self.idle_time,
            "fault_time": self.fault_time,
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "ranks": self.rank_breakdown(),
        }
