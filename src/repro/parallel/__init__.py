"""Parallel-execution substrate.

Three layers:

* :mod:`~repro.parallel.partition` — deterministic work partitioners
  (block, cyclic, block-cyclic) shared by every parallel pricer.
* :mod:`~repro.parallel.backends` — *real* execution backends (serial,
  threads, fork processes) that run rank tasks and measure wall time.
* :mod:`~repro.parallel.simcluster` — the **simulated message-passing
  multiprocessor**: per-rank virtual clocks, an α–β (latency–bandwidth)
  communication model, tree/linear collectives, and barrier costs. This is
  the machine on which the paper-style ``T(P)``/speedup/efficiency curves
  are generated deterministically (this repo substitutes it for the
  paper's 2002 hardware; see DESIGN.md).
* :mod:`~repro.parallel.faults` — deterministic, seeded fault injection
  (crashes, stragglers, dropped/corrupted results) plus the resilience
  plumbing: failure policies (fail-fast / retry-with-backoff / degrade),
  a resilient map over any backend, and byte-reproducible run reports.
* :mod:`~repro.parallel.sched` — pluggable execute-stage schedulers
  (static block chunks, LPT over cost estimates, seeded work stealing)
  deciding task→worker placement on the real backends, plus a
  virtual-time schedule simulator for the simulated machine. Placement
  only: results reassemble by task index, so prices never move.
"""

from repro.parallel.partition import (
    block_partition,
    block_sizes,
    cyclic_indices,
    block_cyclic_indices,
    owner_of,
)
from repro.parallel.backends import (
    ExecutionBackend,
    make_backend,
    SerialBackend,
    ThreadBackend,
    ProcessBackend,
    suggest_chunksize,
    ChunkAutotuner,
    TaskHandle,
)
from repro.parallel.sched import (
    SCHEDULER_NAMES,
    Scheduler,
    StaticChunkScheduler,
    LPTScheduler,
    WorkStealingScheduler,
    SchedStats,
    StealEvent,
    VirtualSchedule,
    simulate_schedule,
    make_scheduler,
    resolve_scheduler,
)
from repro.parallel.shm import SharedArrayRef, ShmSession, ShmWorker
from repro.parallel.simcluster import (
    MachineSpec,
    SimulatedCluster,
    combine_on_schedule,
)
from repro.parallel.faults import (
    FaultKind,
    FaultEvent,
    FaultPlan,
    FaultPolicy,
    RankAttempt,
    RunReport,
    resilient_map,
    plan_report,
    charge_report,
)
from repro.parallel.collectives import (
    tree_reduce_time,
    linear_reduce_time,
    bcast_time,
    allreduce_time,
    alltoall_time,
)

__all__ = [
    "block_partition",
    "block_sizes",
    "cyclic_indices",
    "block_cyclic_indices",
    "owner_of",
    "ExecutionBackend",
    "make_backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "suggest_chunksize",
    "ChunkAutotuner",
    "TaskHandle",
    "SCHEDULER_NAMES",
    "Scheduler",
    "StaticChunkScheduler",
    "LPTScheduler",
    "WorkStealingScheduler",
    "SchedStats",
    "StealEvent",
    "VirtualSchedule",
    "simulate_schedule",
    "make_scheduler",
    "resolve_scheduler",
    "SharedArrayRef",
    "ShmSession",
    "ShmWorker",
    "MachineSpec",
    "SimulatedCluster",
    "combine_on_schedule",
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultPolicy",
    "RankAttempt",
    "RunReport",
    "resilient_map",
    "plan_report",
    "charge_report",
    "tree_reduce_time",
    "linear_reduce_time",
    "bcast_time",
    "allreduce_time",
    "alltoall_time",
]
