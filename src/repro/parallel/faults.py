"""Deterministic fault injection and resilience for the parallel stack.

The paper's evaluation assumes a fault-free multiprocessor; a production
pricing service does not get one. This module adds the failure modes that
dominate wall-clock behaviour on real clusters (worker loss, stragglers,
lost/corrupted result messages, timeouts) in the same spirit as the rest
of the repo: **deterministically**. A :class:`FaultPlan` is a pure
function of its seed, so a faulty run is exactly as reproducible as a
fault-free one — two runs with the same fault seed produce byte-identical
:class:`RunReport`\\ s and prices.

Three layers:

* **Plans** — :class:`FaultPlan` holds :class:`FaultEvent`\\ s (which rank,
  which kind, which attempt, transient or permanent). ``FaultPlan.random``
  draws a plan from a seed; plans are also writable by hand for targeted
  chaos tests.
* **Policies** — :class:`FaultPolicy` says what to do when a fault is
  detected: ``fail_fast`` (raise), ``retry`` (exponential backoff, bounded
  attempts; recovered runs must equal the fault-free run *bitwise*), or
  ``degrade`` (exhausted ranks are dropped; estimators reprice with the
  survivors and the reported CI widens with the reduced sample).
* **Execution** — :func:`resilient_map` runs rank tasks through any
  :class:`~repro.parallel.backends.ExecutionBackend` with per-attempt
  injection and retry, returning results plus a :class:`RunReport`.
  :func:`plan_report` produces the same report purely from (plan, policy)
  for the simulated engines, and :func:`charge_report` prices the recovery
  (wasted attempts, backoff waits) onto a
  :class:`~repro.parallel.simcluster.SimulatedCluster` timeline.

The retry path never consumes an RNG substream twice: every attempt
executes a deep copy of the rank's task, so a recovered transient crash
reproduces the fault-free draws exactly (asserted by the chaos suite).
"""

from __future__ import annotations

import copy
import enum
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultError, ValidationError
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultPolicy",
    "RankAttempt",
    "RunReport",
    "resilient_map",
    "plan_report",
    "charge_report",
    "simulate_recovery",
]


class FaultKind(enum.Enum):
    """What goes wrong.

    ``CRASH``     — the worker dies before producing a result.
    ``STRAGGLER`` — the rank runs, but ``slowdown``× slower (never a
                    failure by itself; it can still trip a timeout).
    ``DROP``      — the work completes but the result message is lost.
    ``CORRUPT``   — the result arrives but fails its checksum; it is
                    discarded at the receiver (never delivered silently).
    """

    CRASH = "crash"
    STRAGGLER = "straggler"
    DROP = "drop"
    CORRUPT = "corrupt"


#: Failure kinds (stragglers slow a rank but do not fail an attempt).
_FAILURE_KINDS = (FaultKind.CRASH, FaultKind.DROP, FaultKind.CORRUPT)

#: Canonical detail strings, shared by the real and simulated paths so
#: their reports compare byte-for-byte.
_DETAILS = {
    "crash": "injected crash before result",
    "drop": "result dropped in transit",
    "corrupt": "payload failed checksum at receiver",
}


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    ``attempt`` is the 0-based attempt index the fault strikes; a
    ``permanent`` fault strikes every attempt from ``attempt`` on (a dead
    node), a transient one strikes exactly once (a lost heartbeat).
    ``slowdown`` applies to stragglers only and multiplies the rank's
    compute time on the simulated machine.
    """

    rank: int
    kind: FaultKind
    attempt: int = 0
    permanent: bool = False
    slowdown: float = 3.0

    def __post_init__(self):
        if self.rank < 0:
            raise ValidationError(f"rank must be non-negative, got {self.rank}")
        if self.attempt < 0:
            raise ValidationError(f"attempt must be non-negative, got {self.attempt}")
        if not isinstance(self.kind, FaultKind):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.kind is FaultKind.STRAGGLER and self.slowdown < 1.0:
            raise ValidationError(
                f"straggler slowdown must be >= 1, got {self.slowdown}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults for one run.

    Plans are immutable value objects: equal seeds give equal plans, and
    everything downstream (reports, prices, simulated timelines) is a pure
    function of the plan, so chaos runs are byte-reproducible.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    # -- construction -------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan (fault-free run)."""
        return cls()

    @classmethod
    def single_crash(cls, rank: int, *, attempt: int = 0,
                     permanent: bool = False) -> "FaultPlan":
        """One crash on one rank — the canonical chaos-test plan."""
        return cls(events=(FaultEvent(rank, FaultKind.CRASH, attempt=attempt,
                                      permanent=permanent),))

    @classmethod
    def random(
        cls,
        seed: int,
        p: int,
        *,
        crash_rate: float = 0.0,
        straggler_rate: float = 0.0,
        drop_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        permanent_rate: float = 0.0,
        max_slowdown: float = 4.0,
    ) -> "FaultPlan":
        """Draw a plan from ``seed``: per rank, independent Bernoulli draws
        per fault kind, in a fixed order, from a fixed-algorithm generator —
        so the plan is a pure function of the arguments."""
        check_positive_int("p", p)
        for name, rate in (("crash_rate", crash_rate),
                           ("straggler_rate", straggler_rate),
                           ("drop_rate", drop_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("permanent_rate", permanent_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} must lie in [0, 1], got {rate}")
        rng = np.random.Generator(np.random.Philox(seed))
        events: list[FaultEvent] = []
        for r in range(p):
            if rng.random() < crash_rate:
                events.append(FaultEvent(
                    r, FaultKind.CRASH,
                    permanent=bool(rng.random() < permanent_rate)))
            if rng.random() < drop_rate:
                events.append(FaultEvent(r, FaultKind.DROP))
            if rng.random() < corrupt_rate:
                events.append(FaultEvent(r, FaultKind.CORRUPT))
            if rng.random() < straggler_rate:
                slow = 1.0 + float(rng.random()) * (max_slowdown - 1.0)
                events.append(FaultEvent(r, FaultKind.STRAGGLER, slowdown=slow))
        return cls(events=tuple(events), seed=seed)

    # -- queries ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events

    def fault_for(self, rank: int, attempt: int) -> FaultEvent | None:
        """The failure striking ``(rank, attempt)``, if any (stragglers are
        not failures and are reported via :meth:`slowdown`)."""
        for ev in self.events:
            if ev.rank != rank or ev.kind not in _FAILURE_KINDS:
                continue
            if attempt == ev.attempt or (ev.permanent and attempt >= ev.attempt):
                return ev
        return None

    def slowdown(self, rank: int) -> float:
        """Combined straggler slowdown factor for ``rank`` (1.0 = nominal)."""
        factor = 1.0
        for ev in self.events:
            if ev.rank == rank and ev.kind is FaultKind.STRAGGLER:
                factor *= ev.slowdown
        return factor

    def affected_ranks(self) -> tuple[int, ...]:
        return tuple(sorted({ev.rank for ev in self.events}))


@dataclass(frozen=True)
class FaultPolicy:
    """What the run does about detected faults.

    ``mode``
        * ``"fail_fast"`` — first fault raises :class:`FaultError`.
        * ``"retry"`` — failed attempts are retried (fresh task copy) up to
          ``max_retries`` times with exponential backoff; exhaustion raises.
        * ``"degrade"`` — like retry, but an exhausted rank is *dropped*:
          estimators reprice with the survivors and the reported CI widens
          with the reduced sample size. Deterministic (bit-identical)
          engines cannot degrade and raise instead.
    ``backoff_base`` / ``backoff_factor``
        Retry ``k`` waits ``backoff_base · backoff_factor^(k−1)`` seconds
        (0 by default so test suites stay fast; the wait is always recorded
        and charged to the simulated timeline regardless).
    ``timeout``
        Per-attempt wall-clock budget on real backends; attempts observed
        to exceed it are treated as failures (detected at completion —
        cooperative, not preemptive).
    ``straggler_sleep``
        Real seconds of injected delay per straggler slowdown unit on real
        backends (0 keeps chaos tests fast; the *simulated* machine always
        applies the slowdown factor).
    """

    mode: str = "retry"
    max_retries: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    timeout: float | None = None
    straggler_sleep: float = 0.0

    def __post_init__(self):
        if self.mode not in ("fail_fast", "retry", "degrade"):
            raise ValidationError(
                f"mode must be 'fail_fast', 'retry' or 'degrade', got {self.mode!r}"
            )
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        check_non_negative("backoff_base", self.backoff_base)
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(f"timeout must be positive, got {self.timeout}")
        check_non_negative("straggler_sleep", self.straggler_sleep)

    @classmethod
    def parse(cls, value) -> "FaultPolicy":
        """Accept a policy object, a mode string, or None (defaults)."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise ValidationError(f"cannot interpret {value!r} as a FaultPolicy")

    def backoff_for(self, attempt: int) -> float:
        """Backoff slept before 0-based ``attempt`` (0 for the first)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class RankAttempt:
    """One attempt of one rank: its outcome and recovery bookkeeping.

    ``outcome`` is ``"ok"`` or a failure tag (``"crash"``, ``"drop"``,
    ``"corrupt"``, ``"timeout"``, ``"error"``). ``backoff`` is the
    exponential wait that preceded the attempt; ``duration`` is measured
    wall time (excluded from the canonical serialization, which must be
    byte-stable across runs).
    """

    rank: int
    attempt: int
    outcome: str
    detail: str = ""
    backoff: float = 0.0
    duration: float = 0.0


@dataclass(frozen=True)
class RunReport:
    """Per-rank attempt ledger of one resilient run.

    Rendered by :func:`repro.perf.reporting.run_report_to_markdown`; the
    simulated engines attach it to ``ParallelRunResult.meta["fault_report"]``
    so fault-annotated timelines and tables can be produced after the fact.

    ``run_id`` correlates this report with the obs layer: the pipeline
    runner passes the same id into the run's ledger record and the
    tracer's fault/retry instants, so a retried task in a trace joins to
    its ledger row. Like wall ``duration``, it is excluded from the
    canonical serialization — two replays of one (plan, policy) must stay
    byte-identical even though each replay gets a fresh id.

    ``sched`` (a :class:`~repro.parallel.sched.SchedStats`, or ``None``
    under the static path) records how the scheduler moved the surviving
    attempts between workers. Excluded from the canonical serialization
    for the same reason as ``run_id``: on real backends the steal schedule
    is a wall-clock race, while the *results* stay bitwise.
    """

    p: int
    mode: str
    attempts: tuple[RankAttempt, ...] = ()
    lost_ranks: tuple[int, ...] = ()
    run_id: str | None = None
    sched: object | None = None

    @property
    def n_retries(self) -> int:
        """Total retried attempts across all ranks."""
        return sum(1 for a in self.attempts if a.attempt > 0)

    @property
    def recovered_ranks(self) -> tuple[int, ...]:
        """Ranks that failed at least once but ultimately succeeded."""
        failed = {a.rank for a in self.attempts if a.outcome != "ok"}
        ok = {a.rank for a in self.attempts if a.outcome == "ok"}
        return tuple(sorted(failed & ok))

    @property
    def degraded(self) -> bool:
        return bool(self.lost_ranks)

    @property
    def faults_injected(self) -> int:
        return sum(1 for a in self.attempts if a.outcome != "ok")

    def attempts_for(self, rank: int) -> tuple[RankAttempt, ...]:
        return tuple(a for a in self.attempts if a.rank == rank)

    def to_dict(self, *, include_timings: bool = False) -> dict:
        """Stable dict form; wall timings are opt-in (and ``run_id`` is
        excluded) because they vary run-to-run while everything else must
        be byte-identical."""
        attempts = []
        for a in sorted(self.attempts, key=lambda x: (x.rank, x.attempt)):
            rec = {
                "rank": a.rank,
                "attempt": a.attempt,
                "outcome": a.outcome,
                "detail": a.detail,
                "backoff": a.backoff,
            }
            if include_timings:
                rec["duration"] = a.duration
            attempts.append(rec)
        return {
            "p": self.p,
            "mode": self.mode,
            "lost_ranks": list(self.lost_ranks),
            "attempts": attempts,
        }

    def to_json(self, *, include_timings: bool = False) -> str:
        """Canonical JSON — byte-identical for identical (plan, policy)."""
        return json.dumps(self.to_dict(include_timings=include_timings),
                          sort_keys=True, separators=(",", ":"))

    def summary(self) -> str:
        return (
            f"{self.mode}: {self.faults_injected} fault(s), "
            f"{self.n_retries} retr{'y' if self.n_retries == 1 else 'ies'}, "
            f"{len(self.recovered_ranks)} recovered, "
            f"{len(self.lost_ranks)} lost of {self.p} rank(s)"
        )


# ---------------------------------------------------------------------------
# Real execution: resilient map over any backend.
# ---------------------------------------------------------------------------


def _guarded_call(args):
    """Module-level attempt wrapper (picklable for the process backend).

    Never raises: real worker exceptions become ``("fault", ...)`` outcomes
    so one bad rank cannot abort (or wedge) a whole pool ``map``.
    """
    worker, task, inject, sleep_s = args
    t0 = time.perf_counter()
    try:
        if inject == "crash":
            return ("fault", ("crash", _DETAILS["crash"]), 0.0)
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        result = worker(task)
        dt = time.perf_counter() - t0
        if inject == "drop":
            return ("fault", ("drop", _DETAILS["drop"]), dt)
        if inject == "corrupt":
            return ("fault", ("corrupt", _DETAILS["corrupt"]), dt)
        return ("ok", result, dt)
    except Exception as exc:  # noqa: BLE001 — any worker failure is a fault
        dt = time.perf_counter() - t0
        return ("fault", ("error", f"{type(exc).__name__}: {exc}"), dt)


def resilient_map(backend, worker, tasks, *, plan: FaultPlan | None = None,
                  policy: FaultPolicy | str | None = None, tracer=None,
                  chunksize: int | str | None = None,
                  run_id: str | None = None, scheduler=None,
                  costs=None):
    """Map ``worker`` over ``tasks`` with fault injection and recovery.

    Returns ``(results, report)`` where ``results[r]`` is rank r's value
    (``None`` for ranks lost under ``degrade``). Every attempt runs a
    **deep copy** of its task, so a retry replays exactly the same RNG
    stream as the failed attempt — recovered runs equal fault-free runs
    bitwise.

    ``tracer`` (default: the backend's own tracer, if any) receives a
    wall-clock instant event per detected fault, retry and degraded rank,
    on the failing rank's track — so a real-backend trace shows *when*
    recovery machinery fired next to the worker task spans.

    ``chunksize`` is forwarded to every underlying ``backend.map`` —
    transport only: injection, retries and results are per-rank whatever
    the chunking, so a chunked recovered run still equals the fault-free
    run bitwise.

    ``run_id`` (optional) is stamped onto the returned
    :class:`RunReport` and every fault/retry/degrade instant event, so
    traces and the run ledger correlate by id. It never enters the
    report's canonical serialization.

    ``scheduler`` (a :class:`~repro.parallel.sched.Scheduler`, strategy
    name, or ``None`` for the historical static path) decides how each
    round's attempt batch meets the workers. Injection stays keyed by
    **task id** (``plan.fault_for(r, attempt)``), not by worker placement,
    so a stolen task carries its fault with it and a steal-scheduled
    recovered run still equals the fault-free run bitwise. ``costs``
    (optional per-task estimates, same indexing as ``tasks``) feeds the
    LPT strategy; each retry round passes the surviving subset through.
    The per-round scheduling stats are folded into ``report.sched``.

    Raises :class:`FaultError` under ``fail_fast`` on the first fault,
    under ``retry`` on exhaustion, and under ``degrade`` when no rank
    survives.
    """
    plan = plan if plan is not None else FaultPlan.none()
    policy = FaultPolicy.parse(policy)
    if tracer is None:
        tracer = getattr(backend, "tracer", None)
    if scheduler is not None and not isinstance(scheduler, str):
        sched_obj = scheduler
    elif scheduler is not None:
        from repro.parallel.sched import resolve_scheduler

        sched_obj = resolve_scheduler(scheduler)
    else:
        sched_obj = None
    n = len(tasks)
    results: list = [None] * n
    attempts: list[RankAttempt] = []
    lost: list[int] = []
    pending = list(range(n))
    attempt_no = {r: 0 for r in pending}
    idargs = {"run_id": run_id} if run_id else {}
    round_stats: list = []

    while pending:
        batch = []
        for r in pending:
            fault = plan.fault_for(r, attempt_no[r])
            inject = fault.kind.value if fault is not None else None
            sleep_s = policy.straggler_sleep * max(plan.slowdown(r) - 1.0, 0.0)
            batch.append((worker, copy.deepcopy(tasks[r]), inject, sleep_s))
        if sched_obj is None:
            outcomes = backend.map(_guarded_call, batch, chunksize=chunksize)
        else:
            round_costs = ([costs[r] for r in pending]
                           if costs is not None else None)
            outcomes, stats = sched_obj.map(backend, _guarded_call, batch,
                                            costs=round_costs,
                                            chunksize=chunksize)
            round_stats.append(stats)

        retry_ranks = []
        for r, out in zip(pending, outcomes):
            k = attempt_no[r]
            status, payload, dt = out
            if (status == "ok" and policy.timeout is not None
                    and dt > policy.timeout):
                status = "fault"
                payload = ("timeout", f"attempt exceeded timeout={policy.timeout}s")
            if status == "ok":
                results[r] = payload
                attempts.append(RankAttempt(r, k, "ok",
                                            backoff=policy.backoff_for(k),
                                            duration=dt))
                continue
            kind, detail = payload
            attempts.append(RankAttempt(r, k, kind, detail,
                                        backoff=policy.backoff_for(k),
                                        duration=dt))
            if tracer:
                tracer.instant("fault", rank=r, kind=kind, attempt=k, **idargs)
            if policy.mode == "fail_fast":
                raise FaultError(
                    f"rank {r} failed ({kind}: {detail}) under fail_fast policy"
                )
            if k >= policy.max_retries:
                if policy.mode == "retry":
                    raise FaultError(
                        f"rank {r} still failing ({kind}) after "
                        f"{k + 1} attempt(s); retry budget exhausted"
                    )
                lost.append(r)  # degrade: drop the rank
                if tracer:
                    tracer.instant("degrade", rank=r, attempts=k + 1, **idargs)
            else:
                attempt_no[r] = k + 1
                retry_ranks.append(r)
                if tracer:
                    tracer.instant("retry", rank=r, attempt=k + 1, **idargs)

        if retry_ranks and policy.backoff_base > 0.0:
            time.sleep(max(policy.backoff_for(attempt_no[r]) for r in retry_ranks))
        pending = retry_ranks

    if len(lost) == n:
        raise FaultError(f"all {n} ranks lost; nothing left to degrade to")
    sched_stats = None
    if round_stats:
        from repro.parallel.sched import SchedStats

        sched_stats = SchedStats.combine(round_stats)
    report = RunReport(
        p=n, mode=policy.mode,
        attempts=tuple(sorted(attempts, key=lambda a: (a.rank, a.attempt))),
        lost_ranks=tuple(sorted(lost)),
        run_id=run_id,
        sched=sched_stats,
    )
    return results, report


# ---------------------------------------------------------------------------
# Simulated execution: the same schedule, derived purely from the plan.
# ---------------------------------------------------------------------------


def plan_report(plan: FaultPlan, policy: FaultPolicy, p: int) -> RunReport:
    """The :class:`RunReport` a resilient run of ``p`` ranks will produce
    under ``(plan, policy)`` — computed without executing anything.

    The simulated engines (lattice/PDE/LSM, which run their arithmetic
    inline) use this to account for recovery on the simulated timeline; it
    matches :func:`resilient_map`'s report field-for-field when no
    *unplanned* faults (real exceptions, timeouts) occur.
    """
    check_positive_int("p", p)
    attempts: list[RankAttempt] = []
    lost: list[int] = []
    for r in range(p):
        for k in range(policy.max_retries + 1):
            fault = plan.fault_for(r, k)
            if fault is None:
                attempts.append(RankAttempt(r, k, "ok",
                                            backoff=policy.backoff_for(k)))
                break
            kind = fault.kind.value
            attempts.append(RankAttempt(r, k, kind, _DETAILS[kind],
                                        backoff=policy.backoff_for(k)))
            if policy.mode == "fail_fast":
                raise FaultError(
                    f"rank {r} failed ({kind}) under fail_fast policy"
                )
            if k == policy.max_retries:
                if policy.mode == "retry":
                    raise FaultError(
                        f"rank {r} still failing ({kind}) after "
                        f"{k + 1} attempt(s); retry budget exhausted"
                    )
                lost.append(r)
    if len(lost) == p:
        raise FaultError(f"all {p} ranks lost; nothing left to degrade to")
    return RunReport(p=p, mode=policy.mode, attempts=tuple(attempts),
                     lost_ranks=tuple(lost))


def charge_report(cluster, report: RunReport, base_seconds,
                  policy: FaultPolicy) -> None:
    """Price a report's recovery onto the simulated timeline.

    ``base_seconds[r]`` is the simulated cost of **one attempt** of rank
    r's work, including any straggler stretch. For each failed attempt,
    one full replay is charged as **fault** time — the checkpoint-free
    re-execution model — and each retry's exponential backoff is charged
    as idle wait.

    When the cluster carries a tracer, each retry and failed attempt also
    lands as an instant event on the rank's track at its **simulated**
    time, so chaos timelines show exactly where recovery burned the clock.
    """
    if len(base_seconds) != report.p:
        raise ValidationError(
            f"need base_seconds for all {report.p} ranks, got {len(base_seconds)}"
        )
    tracer = getattr(cluster, "tracer", None)
    for a in report.attempts:
        if a.attempt > 0:
            cluster.delay(a.rank, policy.backoff_for(a.attempt), kind="idle")
            if tracer:
                tracer.instant("retry", rank=a.rank,
                               t=float(cluster.clocks[a.rank]),
                               attempt=a.attempt)
        if a.outcome != "ok":
            cluster.delay(a.rank, float(base_seconds[a.rank]), kind="fault")
            if tracer:
                tracer.instant("fault", rank=a.rank,
                               t=float(cluster.clocks[a.rank]),
                               kind=a.outcome, attempt=a.attempt)


def simulate_recovery(cluster, plan: FaultPlan | None,
                      policy: FaultPolicy, *, engine: str) -> RunReport | None:
    """Fault accounting for engines whose arithmetic runs inline.

    The lattice/PDE/LSM pricers execute the *sequential reference*
    arithmetic themselves (bit-identity is their contract), so faults
    cannot change their values — only their simulated timeline. This
    helper derives the deterministic :func:`plan_report`, charges each
    failed attempt one replay of the rank's accumulated compute (already
    straggler-stretched by the cluster), and refuses ``degrade``-mode rank
    loss: a level-synchronous engine cannot reprice without a rank, so a
    permanently lost rank raises :class:`FaultError` instead of silently
    dropping work. Call it *after* the engine's main compute loop."""
    if plan is None or plan.is_empty:
        return None
    report = plan_report(plan, policy, cluster.p)
    if report.lost_ranks:
        raise FaultError(
            f"{engine} engine computes bit-identical values and cannot "
            f"degrade; ranks {report.lost_ranks} permanently lost"
        )
    base_seconds = [account.compute for account in cluster.accounts]
    charge_report(cluster, report, base_seconds, policy)
    return report
