"""Closed-form collective cost models on the α–β machine.

These are the analytic counterparts of :class:`SimulatedCluster`'s
event-driven collectives. The perf harness uses them for isoefficiency
analysis (where a closed form in ``p`` is needed), and the test suite
asserts they agree with the event-driven simulation — a consistency check
between the two layers of the performance model.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.parallel.simcluster import MachineSpec
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = [
    "tree_reduce_time",
    "linear_reduce_time",
    "bcast_time",
    "allreduce_time",
    "alltoall_time",
    "barrier_time",
    "halo_exchange_time",
]


def _msg(spec: MachineSpec, nbytes: float) -> float:
    return spec.message_time(nbytes)


def tree_reduce_time(p: int, nbytes: float, spec: MachineSpec) -> float:
    """⌈log₂ p⌉ sequential message rounds."""
    check_positive_int("p", p)
    check_non_negative("nbytes", nbytes)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * _msg(spec, nbytes)


def linear_reduce_time(p: int, nbytes: float, spec: MachineSpec) -> float:
    """Root receives p−1 messages sequentially."""
    check_positive_int("p", p)
    check_non_negative("nbytes", nbytes)
    return (p - 1) * _msg(spec, nbytes)


def bcast_time(p: int, nbytes: float, spec: MachineSpec) -> float:
    """Binomial-tree broadcast — same round count as the tree reduce."""
    return tree_reduce_time(p, nbytes, spec)


def allreduce_time(p: int, nbytes: float, spec: MachineSpec) -> float:
    """Reduce-then-broadcast composition."""
    return tree_reduce_time(p, nbytes, spec) + bcast_time(p, nbytes, spec)


def alltoall_time(p: int, nbytes_per_pair: float, spec: MachineSpec) -> float:
    """Pairwise exchange: p−1 rounds."""
    check_positive_int("p", p)
    check_non_negative("nbytes_per_pair", nbytes_per_pair)
    if p == 1:
        return 0.0
    return (p - 1) * _msg(spec, nbytes_per_pair)


def barrier_time(p: int, spec: MachineSpec) -> float:
    """Dissemination barrier: ⌈log₂ p⌉ latency rounds."""
    check_positive_int("p", p)
    if p == 1:
        return 0.0
    return math.ceil(math.log2(p)) * spec.alpha


def halo_exchange_time(p: int, nbytes: float, spec: MachineSpec) -> float:
    """Nearest-neighbor exchange (two synchronized message times)."""
    check_positive_int("p", p)
    check_non_negative("nbytes", nbytes)
    if p == 1:
        return 0.0
    return 2.0 * _msg(spec, nbytes)
