"""Real execution backends for rank tasks.

A backend maps a worker function over per-rank task descriptions and
returns the per-rank results in rank order. Three implementations:

* :class:`SerialBackend` — runs ranks one after another in-process. The
  reference: simulated timing plus serial execution is how the evaluation
  produces deterministic curves.
* :class:`ThreadBackend` — a thread pool. NumPy releases the GIL inside
  large kernels, so path-generation-heavy ranks do overlap.
* :class:`ProcessBackend` — a ``fork`` multiprocessing pool: real
  multi-core execution. The worker and its task must be picklable
  (the parallel pricers use module-level workers for this reason).

Every backend is an idempotent context manager: ``close()`` may be called
any number of times, ``with make_backend(...) as b: ...`` always releases
pooled resources (including after a worker crash — the process pool is
terminated rather than joined if its last ``map`` raised), and mapping on
a closed backend raises :class:`~repro.errors.BackendError`.

Throughput controls (added for the serving layer, used by every caller
that maps many small tasks):

* ``map(..., chunksize=)`` groups consecutive tasks into one dispatch
  each — ``"auto"`` applies :func:`suggest_chunksize`, and
  :class:`ChunkAutotuner` refines the choice from observed per-task
  latency. Chunking changes only the transport: results are identical
  for every chunk size (asserted bitwise in the backend tests). With a
  tracer attached, one ``task`` span then covers one chunk.
* ``ProcessBackend(shm_min_bytes=...)`` moves large contiguous ndarrays
  in task payloads through ``multiprocessing.shared_memory`` segments
  instead of the pool's pickle pipe; segments are always unlinked before
  ``map`` returns (see :mod:`repro.parallel.shm`).

Observability: pass ``tracer=`` (a :class:`~repro.obs.Tracer`, wall-clock
based) and/or ``metrics=`` (a :class:`~repro.obs.MetricsRegistry`) and
every ``map`` records one ``<name>.map`` span plus a per-task ``task``
span on a ``worker{i}`` track, and observes per-task latency into the
``task_latency{backend=...}`` histogram. Timestamps come from
``time.perf_counter`` *inside* the worker — on Linux that clock is
system-wide, so spans from forked children land on the parent's timeline.
Without a tracer the original uninstrumented path runs unchanged.

Experiment F9 runs the same pricing job on all three and compares
wall-clock against the simulated curve — on the single-core CI box the
real backends show flat speedup, which is itself a documented result
(repro band: "speedup numbers skewed").
"""

from __future__ import annotations

import abc
import math
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import as_completed as _futures_as_completed
from typing import Callable, Sequence

from repro.errors import BackendError, ValidationError
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadBackend",
           "ProcessBackend", "TaskHandle", "make_backend",
           "suggest_chunksize", "ChunkAutotuner"]


def suggest_chunksize(n_tasks: int, workers: int, *,
                      oversubscribe: int = 4) -> int:
    """Static chunk-size heuristic: ``ceil(n / (workers * oversubscribe))``.

    The same shape as :mod:`multiprocessing.Pool`'s internal default —
    ``oversubscribe`` chunks per worker keeps the pool load-balanced while
    cutting the number of IPC round-trips from ``n`` to roughly
    ``workers * oversubscribe``.
    """
    check_positive_int("workers", workers)
    check_positive_int("oversubscribe", oversubscribe)
    if n_tasks <= 0:
        return 1
    return max(1, math.ceil(n_tasks / (workers * oversubscribe)))


class ChunkAutotuner:
    """Picks chunk sizes that amortize per-task dispatch (IPC) overhead.

    Before any observation it falls back to :func:`suggest_chunksize`.
    After :meth:`observe` has seen at least one map it knows the mean
    per-task seconds and chooses the smallest chunk for which the modeled
    per-chunk dispatch cost (``ipc_cost_s``) stays below
    ``target_overhead`` of the chunk's compute time — capped at
    ``ceil(n / workers)`` so every worker still receives work.

    **Straggler feedback (the obs → autotuner loop).** Mean per-task cost
    says nothing about *dispersion*: a workload whose p99 task latency is
    10x its p50 (injected stragglers, noisy neighbours) wants *small*
    chunks, because a big chunk welds fast tasks to a slow one and the
    whole map waits on that chunk. :meth:`observe_quantiles` (or
    :meth:`observe_histogram`, fed straight from the metrics registry's
    ``task_latency`` histogram) folds the observed p99/p50 ratio into a
    smoothed dispersion factor that divides the chosen chunk size —
    uniform workloads (ratio ≈ 1) keep the IPC-amortizing chunks, skewed
    ones shrink toward chunk 1 so the pool's dynamic scheduling can route
    around the slow tasks. Chunking is transport-only, so the adapted
    chunk size never changes prices (benchmark F16 asserts bitwise
    equality while measuring the wall-clock win).

    Deliberately deterministic given its observation history: the same
    sequence of observations always yields the same chunk sizes.
    """

    #: p99/p50 ratios are clamped here so one pathological straggler
    #: cannot collapse chunking forever (2 decades of skew is plenty).
    DISPERSION_CAP = 16.0

    def __init__(self, workers: int, *, ipc_cost_s: float = 2e-4,
                 target_overhead: float = 0.05, oversubscribe: int = 4,
                 smoothing: float = 0.5):
        self.workers = check_positive_int("workers", workers)
        self.ipc_cost_s = check_positive("ipc_cost_s", ipc_cost_s)
        self.target_overhead = check_positive("target_overhead", target_overhead)
        self.oversubscribe = check_positive_int("oversubscribe", oversubscribe)
        if not 0.0 < smoothing <= 1.0:
            raise ValidationError(f"smoothing must lie in (0, 1], got {smoothing}")
        self.smoothing = float(smoothing)
        self._per_task_s: float | None = None
        self._dispersion = 1.0

    @property
    def per_task_seconds(self) -> float | None:
        """Current per-task cost estimate (None until first observation)."""
        return self._per_task_s

    @property
    def dispersion(self) -> float:
        """Smoothed p99/p50 latency ratio (1.0 = uniform workload)."""
        return self._dispersion

    def chunksize(self, n_tasks: int) -> int:
        """Chunk size for a map over ``n_tasks`` tasks."""
        if n_tasks <= 1:
            return 1
        base = suggest_chunksize(n_tasks, self.workers,
                                 oversubscribe=self.oversubscribe)
        if self._per_task_s and self._per_task_s > 0.0:
            # Smallest chunk whose dispatch cost is < target_overhead of
            # its compute: ipc <= overhead * chunk * per_task.
            amortized = math.ceil(
                self.ipc_cost_s / (self._per_task_s * self.target_overhead)
            )
            balance_cap = max(1, math.ceil(n_tasks / self.workers))
            chunk = int(min(max(base, amortized), balance_cap))
        else:
            chunk = base
        if self._dispersion > 1.0:
            chunk = max(1, int(chunk / self._dispersion))
        return chunk

    def observe(self, n_tasks: int, wall_seconds: float) -> None:
        """Feed back one completed map's size and wall-clock seconds."""
        if n_tasks <= 0 or wall_seconds <= 0.0:
            return
        sample = wall_seconds / n_tasks
        if self._per_task_s is None:
            self._per_task_s = sample
        else:
            s = self.smoothing
            self._per_task_s = (1.0 - s) * self._per_task_s + s * sample

    def observe_quantiles(self, p50: float, p99: float) -> None:
        """Feed back observed per-task latency quantiles.

        The p99/p50 ratio (clamped to ``[1, DISPERSION_CAP]``) is folded
        into the smoothed dispersion factor that divides future chunk
        sizes. Non-positive quantiles are ignored (empty histogram).
        """
        if p50 <= 0.0 or p99 <= 0.0:
            return
        raw = max(1.0, min(p99 / p50, self.DISPERSION_CAP))
        s = self.smoothing
        self._dispersion = (1.0 - s) * self._dispersion + s * raw

    def observe_histogram(self, histogram) -> None:
        """Feed back a latency :class:`~repro.obs.metrics.Histogram`
        (typically the registry's ``task_latency`` for this backend)."""
        if getattr(histogram, "count", 0) <= 0:
            return
        self.observe_quantiles(histogram.quantile(0.5),
                               histogram.quantile(0.99))


class _ChunkCall:
    """Picklable wrapper running a worker over one chunk of tasks.

    One pickle/IPC round-trip then moves ``len(chunk)`` tasks instead of
    one — the transport saving behind ``map(..., chunksize=)``.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, chunk):
        return [self.worker(task) for task in chunk]


class _TimedCall:
    """Picklable worker wrapper measuring each task on the worker's clock.

    Returns ``(result, index, t0, t1, pid, thread_ident)`` so the backend
    can rebuild rank order, attribute the span to a worker track, and
    observe the latency — without a second pass over the pool.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, item):
        idx, task = item
        t0 = time.perf_counter()
        result = self.worker(task)
        t1 = time.perf_counter()
        return result, idx, t0, t1, os.getpid(), threading.get_ident()


class TaskHandle:
    """One submitted task: poll :attr:`done`, collect with :meth:`result`.

    The minimal future the scheduler layer needs — a future ``ClusterBackend``
    (ROADMAP item 5) only has to produce objects with this surface. Worker
    exceptions are captured and re-raised from :meth:`result`, matching
    ``map``'s propagation semantics.
    """

    __slots__ = ("_result", "_error", "_done")

    def __init__(self):
        self._result = None
        self._error: BaseException | None = None
        self._done = False

    def _finish(self, result=None, error: BaseException | None = None) -> None:
        self._result = result
        self._error = error
        self._done = True

    @property
    def done(self) -> bool:
        return self._done

    def result(self):
        if not self._done:
            raise BackendError("task has not completed; wait on "
                               "as_completed() before collecting")
        if self._error is not None:
            raise self._error
        return self._result


class _FutureHandle(TaskHandle):
    """Thread-backend handle wrapping a ``concurrent.futures.Future``."""

    __slots__ = ("_future",)

    def __init__(self, future):
        super().__init__()
        self._future = future

    @property
    def done(self) -> bool:
        return self._future.done()

    def result(self):
        return self._future.result()


class ExecutionBackend(abc.ABC):
    """Maps a worker over rank tasks, preserving rank order.

    Lifecycle contract (held by every subclass and asserted in tests):
    ``close()`` is idempotent, the backend is a reusable-until-closed
    context manager, and :meth:`map` after :meth:`close` raises
    :class:`BackendError` instead of silently recreating pools.

    Subclasses implement :meth:`_run_map` (the raw pool mapping);
    :meth:`map` adds the open-check and, when a tracer or metrics registry
    is attached, the per-task instrumentation.

    Beside the bulk :meth:`map`, every backend exposes two scheduling
    primitives — :meth:`submit` (one task, returns a :class:`TaskHandle`)
    and :meth:`as_completed` (yield handles in completion order) — which
    is all :class:`~repro.parallel.sched.WorkStealingScheduler` needs to
    steal for real. Handles submitted on a backend should be drained via
    ``as_completed`` before the backend is closed.
    """

    name: str = "backend"
    _closed: bool = False
    tracer = None
    metrics = None

    @abc.abstractmethod
    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        """Run ``worker(task)`` for every task; results in input order."""

    def map(self, worker: Callable, tasks: Sequence, *,
            chunksize: int | str | None = None) -> list:
        """Run ``worker(task)`` for every task; results in input order.

        ``chunksize`` batches consecutive tasks into one IPC round-trip
        each: ``None``/``1`` preserves the historical one-task-per-message
        behaviour, an integer fixes the chunk length, and ``"auto"`` uses
        :func:`suggest_chunksize` for this backend's worker count. Results
        are identical (same values, same order) for every chunk size —
        chunking only changes the transport, never the arithmetic.
        """
        self._check_open()
        tasks = list(tasks)
        cs = self._resolve_chunksize(chunksize, len(tasks))
        if cs > 1:
            chunks = [tasks[i:i + cs] for i in range(0, len(tasks), cs)]
            nested = self._dispatch_map(_ChunkCall(worker), chunks)
            return [result for chunk in nested for result in chunk]
        return self._dispatch_map(worker, tasks)

    def submit(self, worker: Callable, task) -> TaskHandle:
        """Run one task, returning a :class:`TaskHandle`.

        The base implementation executes eagerly in the caller's thread
        (the serial semantics); pooled backends override it to dispatch
        asynchronously. Worker exceptions are captured on the handle and
        re-raised from ``result()``.
        """
        self._check_open()
        handle = TaskHandle()
        try:
            handle._finish(result=worker(task))
        except Exception as exc:
            handle._finish(error=exc)
        return handle

    def as_completed(self, handles: Sequence[TaskHandle]):
        """Yield the given handles as they complete.

        Eager backends complete at submit time, so the base implementation
        yields in submission order — which makes the serial work-stealing
        schedule deterministic by construction.
        """
        yield from handles

    def _resolve_chunksize(self, chunksize, n_tasks: int) -> int:
        if chunksize is None:
            return 1
        if chunksize == "auto":
            return suggest_chunksize(n_tasks, getattr(self, "max_workers", 1))
        cs = check_positive_int("chunksize", chunksize)
        return min(cs, max(1, n_tasks))

    def _dispatch_map(self, worker: Callable, tasks: Sequence) -> list:
        if not (self.tracer or self.metrics is not None):
            return self._run_map(worker, tasks)
        return self._instrumented_map(worker, tasks)

    def _instrumented_map(self, worker: Callable, tasks: Sequence) -> list:
        items = list(enumerate(tasks))
        tracer = self.tracer
        if tracer:
            with tracer.span(f"{self.name}.map", n_tasks=len(items)):
                outs = self._run_map(_TimedCall(worker), items)
        else:
            outs = self._run_map(_TimedCall(worker), items)
        hist = (self.metrics.histogram("task_latency", backend=self.name)
                if self.metrics is not None else None)
        workers: dict[tuple, int] = {}
        results: list = [None] * len(outs)
        for result, idx, t0, t1, pid, ident in outs:
            wid = workers.setdefault((pid, ident), len(workers))
            if tracer:
                tracer.add_span("task", t0, t1, track=f"worker{wid}",
                                rank_task=idx)
            if hist is not None:
                hist.observe(t1 - t0)
            results[idx] = result
        return results

    def close(self) -> None:
        """Release pooled resources (idempotent)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(f"{self.name} backend is closed")

    def __enter__(self) -> "ExecutionBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SerialBackend(ExecutionBackend):
    """In-process sequential execution (the deterministic reference)."""

    name = "serial"

    def __init__(self, *, tracer=None, metrics=None):
        self.tracer = tracer
        self.metrics = metrics

    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        return [worker(t) for t in tasks]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution; effective where NumPy drops the GIL."""

    name = "thread"

    def __init__(self, max_workers: int | None = None, *, tracer=None,
                 metrics=None):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.max_workers = check_positive_int("max_workers", workers)
        self.tracer = tracer
        self.metrics = metrics
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        return list(self._ensure_pool().map(worker, tasks))

    def submit(self, worker: Callable, task) -> TaskHandle:
        self._check_open()
        return _FutureHandle(self._ensure_pool().submit(worker, task))

    def as_completed(self, handles: Sequence[TaskHandle]):
        mapping = {h._future: h for h in handles}
        for future in _futures_as_completed(mapping):
            yield mapping[future]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


class ProcessBackend(ExecutionBackend):
    """Fork-based process pool (true multi-core when cores exist).

    Workers and tasks must be picklable; pools are created lazily and
    reused across :meth:`map` calls. If a ``map`` raises, the pool is
    marked broken and :meth:`close` terminates the workers instead of
    joining them, so a crashed map never leaks child processes.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, *, tracer=None,
                 metrics=None, shm_min_bytes: int | None = None):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.max_workers = check_positive_int("max_workers", workers)
        self.tracer = tracer
        self.metrics = metrics
        #: When set, any contiguous ndarray of at least this many bytes in
        #: a task payload rides to the workers through a POSIX shared-memory
        #: segment (one memcpy) instead of the pool's pickle pipe (serialize
        #: + chunked pipe writes + deserialize). Segments are unlinked
        #: before :meth:`map` returns — nothing survives in /dev/shm.
        self.shm_min_bytes = (None if shm_min_bytes is None
                              else check_positive_int("shm_min_bytes",
                                                      shm_min_bytes))
        #: Names of the segments created by the most recent shm-packed map
        #: (all unlinked by then) — observability for tests and metrics.
        self.last_shm_segments: tuple[str, ...] = ()
        self._pool = None
        self._broken = False
        #: Completion queue feeding :meth:`as_completed`; the pool's
        #: result-handler thread pushes handles here from the callbacks.
        self._done_q: queue.SimpleQueue = queue.SimpleQueue()

    def map(self, worker: Callable, tasks: Sequence, *,
            chunksize: int | str | None = None) -> list:
        if self.shm_min_bytes is None:
            return super().map(worker, tasks, chunksize=chunksize)
        self._check_open()
        from repro.parallel.shm import ShmSession, ShmWorker

        session = ShmSession(min_bytes=self.shm_min_bytes)
        try:
            packed = [session.pack(task) for task in tasks]
            self.last_shm_segments = session.segment_names
            if not session.segment_names:  # nothing big enough: plain path
                return super().map(worker, tasks, chunksize=chunksize)
            if self.metrics is not None:
                self.metrics.counter("shm_segments", backend=self.name).inc(
                    len(session.segment_names))
                self.metrics.counter("shm_bytes", backend=self.name).inc(
                    session.total_bytes)
            return super().map(ShmWorker(worker), packed, chunksize=chunksize)
        finally:
            # pool.map is synchronous: the workers are done with the
            # segments by the time we get here, so close + unlink cannot
            # race a reader.
            session.close()

    def submit(self, worker: Callable, task) -> TaskHandle:
        """Dispatch one picklable task asynchronously.

        Bypasses the shared-memory transport (steal-scheduled rank tasks
        are small task descriptions, not bulk arrays). Pool failures are
        wrapped in :class:`BackendError` on the handle, matching ``map``.
        """
        self._check_open()
        pool = self._ensure_pool()
        handle = TaskHandle()

        def _ok(value, handle=handle):
            handle._finish(result=value)
            self._done_q.put(handle)

        def _err(exc, handle=handle):
            self._broken = True
            wrapped = BackendError(f"process pool execution failed: {exc}")
            wrapped.__cause__ = exc
            handle._finish(error=wrapped)
            self._done_q.put(handle)

        pool.apply_async(worker, (task,), callback=_ok, error_callback=_err)
        return handle

    def as_completed(self, handles: Sequence[TaskHandle]):
        pending = {id(h): h for h in handles}
        for h in list(pending.values()):
            if h.done:
                del pending[id(h)]
                yield h
        while pending:
            h = self._done_q.get()
            # Entries for handles already yielded from the done-check (or
            # from an earlier, abandoned iterator) are stale: skip them.
            if id(h) in pending:
                del pending[id(h)]
                yield h

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            try:
                ctx = mp.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX
                raise BackendError("ProcessBackend requires a fork-capable platform") from exc
            self._pool = ctx.Pool(processes=self.max_workers)
            self._broken = False
        return self._pool

    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        pool = self._ensure_pool()
        try:
            return pool.map(worker, list(tasks))
        except Exception as exc:
            self._broken = True
            raise BackendError(f"process pool execution failed: {exc}") from exc

    def close(self) -> None:
        if self._pool is not None:
            if self._broken:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None
        super().close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def make_backend(name: str, max_workers: int | None = None, *, tracer=None,
                 metrics=None, shm_min_bytes: int | None = None) -> ExecutionBackend:
    """Factory: ``"serial"`` | ``"thread"`` | ``"process"``.

    ``shm_min_bytes`` is honoured by the process backend only (the in-
    process backends never pickle, so there is nothing to shortcut).
    """
    if name == "serial":
        return SerialBackend(tracer=tracer, metrics=metrics)
    if name == "thread":
        return ThreadBackend(max_workers, tracer=tracer, metrics=metrics)
    if name == "process":
        return ProcessBackend(max_workers, tracer=tracer, metrics=metrics,
                              shm_min_bytes=shm_min_bytes)
    raise ValidationError(f"unknown backend {name!r}")
