"""Real execution backends for rank tasks.

A backend maps a worker function over per-rank task descriptions and
returns the per-rank results in rank order. Three implementations:

* :class:`SerialBackend` — runs ranks one after another in-process. The
  reference: simulated timing plus serial execution is how the evaluation
  produces deterministic curves.
* :class:`ThreadBackend` — a thread pool. NumPy releases the GIL inside
  large kernels, so path-generation-heavy ranks do overlap.
* :class:`ProcessBackend` — a ``fork`` multiprocessing pool: real
  multi-core execution. The worker and its task must be picklable
  (the parallel pricers use module-level workers for this reason).

Every backend is an idempotent context manager: ``close()`` may be called
any number of times, ``with make_backend(...) as b: ...`` always releases
pooled resources (including after a worker crash — the process pool is
terminated rather than joined if its last ``map`` raised), and mapping on
a closed backend raises :class:`~repro.errors.BackendError`.

Observability: pass ``tracer=`` (a :class:`~repro.obs.Tracer`, wall-clock
based) and/or ``metrics=`` (a :class:`~repro.obs.MetricsRegistry`) and
every ``map`` records one ``<name>.map`` span plus a per-task ``task``
span on a ``worker{i}`` track, and observes per-task latency into the
``task_latency{backend=...}`` histogram. Timestamps come from
``time.perf_counter`` *inside* the worker — on Linux that clock is
system-wide, so spans from forked children land on the parent's timeline.
Without a tracer the original uninstrumented path runs unchanged.

Experiment F9 runs the same pricing job on all three and compares
wall-clock against the simulated curve — on the single-core CI box the
real backends show flat speedup, which is itself a documented result
(repro band: "speedup numbers skewed").
"""

from __future__ import annotations

import abc
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.errors import BackendError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadBackend",
           "ProcessBackend", "make_backend"]


class _TimedCall:
    """Picklable worker wrapper measuring each task on the worker's clock.

    Returns ``(result, index, t0, t1, pid, thread_ident)`` so the backend
    can rebuild rank order, attribute the span to a worker track, and
    observe the latency — without a second pass over the pool.
    """

    __slots__ = ("worker",)

    def __init__(self, worker: Callable):
        self.worker = worker

    def __call__(self, item):
        idx, task = item
        t0 = time.perf_counter()
        result = self.worker(task)
        t1 = time.perf_counter()
        return result, idx, t0, t1, os.getpid(), threading.get_ident()


class ExecutionBackend(abc.ABC):
    """Maps a worker over rank tasks, preserving rank order.

    Lifecycle contract (held by every subclass and asserted in tests):
    ``close()`` is idempotent, the backend is a reusable-until-closed
    context manager, and :meth:`map` after :meth:`close` raises
    :class:`BackendError` instead of silently recreating pools.

    Subclasses implement :meth:`_run_map` (the raw pool mapping);
    :meth:`map` adds the open-check and, when a tracer or metrics registry
    is attached, the per-task instrumentation.
    """

    name: str = "backend"
    _closed: bool = False
    tracer = None
    metrics = None

    @abc.abstractmethod
    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        """Run ``worker(task)`` for every task; results in input order."""

    def map(self, worker: Callable, tasks: Sequence) -> list:
        """Run ``worker(task)`` for every task; results in input order."""
        self._check_open()
        if not (self.tracer or self.metrics is not None):
            return self._run_map(worker, tasks)
        return self._instrumented_map(worker, tasks)

    def _instrumented_map(self, worker: Callable, tasks: Sequence) -> list:
        items = list(enumerate(tasks))
        tracer = self.tracer
        if tracer:
            with tracer.span(f"{self.name}.map", n_tasks=len(items)):
                outs = self._run_map(_TimedCall(worker), items)
        else:
            outs = self._run_map(_TimedCall(worker), items)
        hist = (self.metrics.histogram("task_latency", backend=self.name)
                if self.metrics is not None else None)
        workers: dict[tuple, int] = {}
        results: list = [None] * len(outs)
        for result, idx, t0, t1, pid, ident in outs:
            wid = workers.setdefault((pid, ident), len(workers))
            if tracer:
                tracer.add_span("task", t0, t1, track=f"worker{wid}",
                                rank_task=idx)
            if hist is not None:
                hist.observe(t1 - t0)
            results[idx] = result
        return results

    def close(self) -> None:
        """Release pooled resources (idempotent)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(f"{self.name} backend is closed")

    def __enter__(self) -> "ExecutionBackend":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SerialBackend(ExecutionBackend):
    """In-process sequential execution (the deterministic reference)."""

    name = "serial"

    def __init__(self, *, tracer=None, metrics=None):
        self.tracer = tracer
        self.metrics = metrics

    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        return [worker(t) for t in tasks]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution; effective where NumPy drops the GIL."""

    name = "thread"

    def __init__(self, max_workers: int | None = None, *, tracer=None,
                 metrics=None):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.max_workers = check_positive_int("max_workers", workers)
        self.tracer = tracer
        self.metrics = metrics
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        return list(self._ensure_pool().map(worker, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().close()


class ProcessBackend(ExecutionBackend):
    """Fork-based process pool (true multi-core when cores exist).

    Workers and tasks must be picklable; pools are created lazily and
    reused across :meth:`map` calls. If a ``map`` raises, the pool is
    marked broken and :meth:`close` terminates the workers instead of
    joining them, so a crashed map never leaks child processes.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None, *, tracer=None,
                 metrics=None):
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self.max_workers = check_positive_int("max_workers", workers)
        self.tracer = tracer
        self.metrics = metrics
        self._pool = None
        self._broken = False

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing as mp

            try:
                ctx = mp.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX
                raise BackendError("ProcessBackend requires a fork-capable platform") from exc
            self._pool = ctx.Pool(processes=self.max_workers)
            self._broken = False
        return self._pool

    def _run_map(self, worker: Callable, tasks: Sequence) -> list:
        pool = self._ensure_pool()
        try:
            return pool.map(worker, list(tasks))
        except Exception as exc:
            self._broken = True
            raise BackendError(f"process pool execution failed: {exc}") from exc

    def close(self) -> None:
        if self._pool is not None:
            if self._broken:
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None
        super().close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def make_backend(name: str, max_workers: int | None = None, *, tracer=None,
                 metrics=None) -> ExecutionBackend:
    """Factory: ``"serial"`` | ``"thread"`` | ``"process"``."""
    if name == "serial":
        return SerialBackend(tracer=tracer, metrics=metrics)
    if name == "thread":
        return ThreadBackend(max_workers, tracer=tracer, metrics=metrics)
    if name == "process":
        return ProcessBackend(max_workers, tracer=tracer, metrics=metrics)
    raise ValidationError(f"unknown backend {name!r}")
