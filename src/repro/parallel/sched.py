"""Pluggable execute-stage schedulers: how tasks meet workers.

Before this module, "which worker runs which rank task, when" was smeared
across four layers — chunked ``backend.map``, the fault middleware's
round-based retries, the :class:`~repro.parallel.backends.ChunkAutotuner`,
and the simulated cluster's static block partitions. A
:class:`Scheduler` puts that decision in one place, with three strategies:

* :class:`StaticChunkScheduler` — today's behaviour, bit-for-bit: one
  chunked ``backend.map`` in task order. The default everywhere; a run
  that never names a scheduler executes exactly the pre-scheduler code
  path.
* :class:`LPTScheduler` — longest-processing-time list scheduling over
  per-task cost *estimates* (mapped engines supply per-rank path counts
  via ``engine.task_costs``). Tasks are dispatched one per message in
  descending estimated cost; a work-conserving pool then realizes the
  classical LPT greedy schedule. Only as good as its estimates.
* :class:`WorkStealingScheduler` — per-worker deques seeded from the
  block partition; a worker whose deque runs dry steals from the *back*
  of a victim's deque, victims tried in a seeded permutation order. No
  cost estimates needed: the balance emerges from observed completion.

**Determinism contract.** A scheduler never touches the arithmetic: every
task runs the same worker function on the same payload, and results are
reassembled **by task index**, so prices are bitwise identical under
every strategy, every backend and every fault-retry interleaving (gated
by the ``scheduler`` determinism check). What is *not* promised on real
backends is the steal schedule itself — which slot frees first is a
wall-clock race. For byte-reproducible schedules (property tests, the
simulated cluster's load-balance curves, benchmark F19's LPT-vs-steal
comparison) use :func:`simulate_schedule`, the virtual-time executor: a
pure function of ``(costs, workers, strategy, seed)``.

Observability: with a metrics registry on the backend, every stealing map
feeds ``sched.steals`` / ``sched.tasks_moved`` counters and per-worker
``sched.queue_depth`` gauges; with a tracer, each steal lands as an
instant event next to the worker task spans.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.parallel.backends import _TimedCall
from repro.parallel.partition import block_sizes
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = [
    "StealEvent",
    "SchedStats",
    "Scheduler",
    "StaticChunkScheduler",
    "LPTScheduler",
    "WorkStealingScheduler",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "resolve_scheduler",
    "VirtualSchedule",
    "simulate_schedule",
]

#: Public strategy names, in documentation order (CLI choices, registry).
SCHEDULER_NAMES = ("static", "lpt", "steal")


@dataclass(frozen=True)
class StealEvent:
    """One steal: ``thief`` took ``task`` from the back of ``victim``'s
    deque. ``t`` is the virtual-time instant for simulated schedules and
    the 0-based completion sequence number on real backends (wall-clock
    instants live on the tracer, not here, so stats stay serializable)."""

    thief: int
    victim: int
    task: int
    t: float = 0.0

    def to_dict(self) -> dict:
        return {"thief": self.thief, "victim": self.victim,
                "task": self.task, "t": self.t}


@dataclass(frozen=True)
class SchedStats:
    """What one scheduled map did: strategy, movement, queue shapes.

    ``tasks_moved`` counts tasks executed by a worker other than the one
    the initial block partition assigned (for stealing that equals the
    steal count; LPT reports how many tasks its cost ordering displaced
    from their block home). ``initial_depths`` is the per-worker deque
    depth before execution — the queue-depth gauges' source.
    """

    strategy: str
    n_tasks: int
    workers: int
    steals: int = 0
    tasks_moved: int = 0
    initial_depths: tuple[int, ...] = ()
    events: tuple[StealEvent, ...] = ()

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "n_tasks": self.n_tasks,
            "workers": self.workers,
            "steals": self.steals,
            "tasks_moved": self.tasks_moved,
            "initial_depths": list(self.initial_depths),
            "events": [e.to_dict() for e in self.events],
        }

    def ledger_extra(self) -> dict:
        """The compact form the run ledger records (no per-event detail)."""
        return {"strategy": self.strategy, "steals": self.steals,
                "tasks_moved": self.tasks_moved}

    def schedule_digest(self) -> str:
        """Canonical digest of the full schedule (stable for virtual-time
        schedules; on real backends the event order is timing-dependent)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @classmethod
    def combine(cls, parts: Sequence["SchedStats"]) -> "SchedStats":
        """Fold the per-round stats of a retrying resilient map into one
        record (first round's queue shape, summed movement)."""
        if not parts:
            return cls(strategy="static", n_tasks=0, workers=1)
        head = parts[0]
        return cls(
            strategy=head.strategy,
            n_tasks=head.n_tasks,
            workers=head.workers,
            steals=sum(p.steals for p in parts),
            tasks_moved=sum(p.tasks_moved for p in parts),
            initial_depths=head.initial_depths,
            events=tuple(e for p in parts for e in p.events),
        )


def _workers_of(backend: Any) -> int:
    return int(getattr(backend, "max_workers", 1) or 1)


def _block_owner_table(n: int, workers: int) -> list[int]:
    """Task index → block-partition home worker (the static assignment)."""
    owners: list[int] = []
    for w, size in enumerate(block_sizes(n, workers)):
        owners.extend([w] * size)
    return owners


class Scheduler:
    """Maps a worker over tasks through a backend, deciding the order and
    placement of dispatch — never the arithmetic. Returns the results in
    task order plus a :class:`SchedStats`."""

    name: str = "scheduler"

    def map(self, backend: Any, worker: Callable, tasks: Sequence, *,
            costs: Optional[Sequence[float]] = None,
            chunksize: Any = None) -> tuple[list, SchedStats]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}()"


class StaticChunkScheduler(Scheduler):
    """The incumbent: one chunked ``backend.map`` in task order.

    Delegates verbatim — byte-for-byte the pre-scheduler execution path,
    including chunking, instrumentation and the autotuner's chunk choices.
    """

    name = "static"

    def map(self, backend: Any, worker: Callable, tasks: Sequence, *,
            costs: Optional[Sequence[float]] = None,
            chunksize: Any = None) -> tuple[list, SchedStats]:
        results = backend.map(worker, tasks, chunksize=chunksize)
        n = len(results)
        workers = _workers_of(backend)
        return results, SchedStats(
            strategy=self.name, n_tasks=n, workers=workers,
            initial_depths=tuple(block_sizes(n, workers)) if n else (),
        )


class LPTScheduler(Scheduler):
    """Longest-processing-time list scheduling over cost estimates.

    Tasks are dispatched **one per message** (chunksize is ignored — a
    chunk would weld unequal tasks back together) in stable descending
    estimated-cost order; a work-conserving pool picks the next pending
    task whenever a worker frees, which realizes the classical LPT greedy
    assignment. Without estimates the order is the identity and this
    degrades to unchunked static dispatch. Results are reassembled by
    original task index, so prices are order-invariant bitwise.
    """

    name = "lpt"

    def order(self, n: int, costs: Optional[Sequence[float]]) -> list[int]:
        """Stable dispatch order: descending estimate, ties by index."""
        if costs is None:
            return list(range(n))
        if len(costs) != n:
            raise ValidationError(
                f"need one cost estimate per task ({n}), got {len(costs)}")
        return sorted(range(n), key=lambda i: (-float(costs[i]), i))

    def map(self, backend: Any, worker: Callable, tasks: Sequence, *,
            costs: Optional[Sequence[float]] = None,
            chunksize: Any = None) -> tuple[list, SchedStats]:
        tasks = list(tasks)
        n = len(tasks)
        order = self.order(n, costs)
        out = backend.map(worker, [tasks[i] for i in order], chunksize=1)
        results: list = [None] * n
        for pos, i in enumerate(order):
            results[i] = out[pos]
        workers = _workers_of(backend)
        owners = _block_owner_table(n, workers)
        moved = sum(1 for pos, i in enumerate(order)
                    if owners[pos] != owners[i]) if n else 0
        return results, SchedStats(
            strategy=self.name, n_tasks=n, workers=workers,
            tasks_moved=moved,
            initial_depths=tuple(block_sizes(n, workers)) if n else (),
        )


class WorkStealingScheduler(Scheduler):
    """Per-worker deques with seeded steal order over backend primitives.

    The coordinator keeps one logical deque per backend worker, filled by
    the block partition (so a run with no steals executes each task on
    its static home). Each worker slot holds **one task in flight**
    (dispatched via :meth:`~repro.parallel.backends.ExecutionBackend.submit`);
    when a slot's task completes the slot pops the front of its own deque
    — or, empty, steals from the *back* of the first non-empty victim in
    its seeded victim permutation. Completion is observed through
    ``backend.as_completed``, so the balance adapts to real durations
    without cost estimates.

    Results are reassembled by task index — bitwise identical to static —
    while the steal *schedule* on a real backend is a wall-clock race;
    use :func:`simulate_schedule` when the schedule itself must replay.
    """

    name = "steal"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"WorkStealingScheduler(seed={self.seed})"

    def victim_orders(self, workers: int) -> list[list[int]]:
        """Per-thief victim permutation, a pure function of the seed."""
        rng = np.random.Generator(np.random.Philox(self.seed))
        orders = []
        for w in range(workers):
            others = [v for v in range(workers) if v != w]
            orders.append([others[i]
                           for i in rng.permutation(len(others))])
        return orders

    def map(self, backend: Any, worker: Callable, tasks: Sequence, *,
            costs: Optional[Sequence[float]] = None,
            chunksize: Any = None) -> tuple[list, SchedStats]:
        tasks = list(tasks)
        n = len(tasks)
        workers = _workers_of(backend)
        depths = tuple(block_sizes(n, workers)) if n else ()
        if n == 0:
            return [], SchedStats(strategy=self.name, n_tasks=0,
                                  workers=workers)

        tracer = getattr(backend, "tracer", None)
        metrics = getattr(backend, "metrics", None)
        instrument = tracer is not None or metrics is not None
        hist = (metrics.histogram("task_latency", backend=backend.name)
                if metrics is not None else None)
        if metrics is not None:
            for w, depth in enumerate(depths):
                metrics.gauge("sched.queue_depth", worker=w).set(depth)

        queues: list[deque[int]] = []
        start = 0
        for size in depths:
            queues.append(deque(range(start, start + size)))
            start += size
        victims = self.victim_orders(workers)
        events: list[StealEvent] = []
        seq = 0

        def next_task(slot: int) -> Optional[int]:
            nonlocal seq
            if queues[slot]:
                return queues[slot].popleft()
            for v in victims[slot]:
                if queues[v]:
                    task = queues[v].pop()
                    events.append(StealEvent(thief=slot, victim=v,
                                             task=task, t=float(seq)))
                    if tracer is not None:
                        tracer.instant("steal", thief=slot, victim=v,
                                       rank_task=task)
                    if metrics is not None:
                        metrics.gauge("sched.queue_depth",
                                      worker=v).set(len(queues[v]))
                    return task
            return None

        def submit(slot: int, idx: int) -> Any:
            if instrument:
                return backend.submit(_TimedCall(worker), (idx, tasks[idx]))
            return backend.submit(worker, tasks[idx])

        results: list = [None] * n
        meta: dict[int, tuple[int, int]] = {}   # id(handle) -> (slot, task)
        active: list = []
        for slot in range(workers):
            idx = next_task(slot)
            if idx is None:
                continue
            h = submit(slot, idx)
            meta[id(h)] = (slot, idx)
            active.append(h)

        while active:
            h = next(iter(backend.as_completed(active)))
            active.remove(h)
            slot, idx = meta.pop(id(h))
            out = h.result()
            if instrument:
                value, _, t0, t1, _, _ = out
                results[idx] = value
                if tracer is not None:
                    tracer.add_span("task", t0, t1, track=f"worker{slot}",
                                    rank_task=idx)
                if hist is not None:
                    hist.observe(t1 - t0)
            else:
                results[idx] = out
            seq += 1
            nxt = next_task(slot)
            if nxt is not None:
                h2 = submit(slot, nxt)
                meta[id(h2)] = (slot, nxt)
                active.append(h2)

        if metrics is not None:
            if events:
                metrics.counter("sched.steals").inc(len(events))
                metrics.counter("sched.tasks_moved").inc(len(events))
            for w in range(workers):
                metrics.gauge("sched.queue_depth", worker=w).set(0)
        return results, SchedStats(
            strategy=self.name, n_tasks=n, workers=workers,
            steals=len(events), tasks_moved=len(events),
            initial_depths=depths, events=tuple(events),
        )


def make_scheduler(name: str, *, seed: int = 0) -> Scheduler:
    """Factory for the three strategies: ``static`` | ``lpt`` | ``steal``."""
    if name == "static":
        return StaticChunkScheduler()
    if name == "lpt":
        return LPTScheduler()
    if name == "steal":
        return WorkStealingScheduler(seed=seed)
    raise ValidationError(
        f"unknown scheduler {name!r}; expected one of {SCHEDULER_NAMES}")


def resolve_scheduler(value: Any) -> Scheduler:
    """Accept a :class:`Scheduler`, a strategy name, or ``None`` (static)."""
    if value is None:
        return StaticChunkScheduler()
    if isinstance(value, Scheduler):
        return value
    if isinstance(value, str):
        return make_scheduler(value)
    raise ValidationError(f"cannot interpret {value!r} as a Scheduler")


# ---------------------------------------------------------------------------
# Virtual-time execution: deterministic schedules for curves and tests.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VirtualSchedule:
    """A deterministic schedule: pure function of its inputs.

    ``assignments[i] = (task, worker, start, end)`` in completion order;
    ``makespan`` is the last finish time. ``stats`` carries the same
    movement record real runs produce, with steal events stamped at their
    virtual instants — so the whole object is byte-reproducible and
    :meth:`digest` can gate on it.
    """

    strategy: str
    workers: int
    assignments: tuple[tuple[int, int, float, float], ...]
    makespan: float
    stats: SchedStats

    def worker_finish(self) -> tuple[float, ...]:
        """Per-worker finish time (0.0 for workers that ran nothing)."""
        finish = [0.0] * self.workers
        for _, w, _, end in self.assignments:
            finish[w] = max(finish[w], end)
        return tuple(finish)

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "workers": self.workers,
            "assignments": [list(a) for a in self.assignments],
            "makespan": self.makespan,
            "stats": self.stats.to_dict(),
        }

    def digest(self) -> str:
        """Canonical digest of the whole schedule (byte-reproducible)."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def simulate_schedule(costs: Iterable[float], workers: int, *,
                      strategy: str = "steal", seed: int = 0,
                      speeds: Optional[Sequence[float]] = None,
                      estimates: Optional[Sequence[float]] = None,
                      steal_latency: float = 0.0) -> VirtualSchedule:
    """Run a task set on ``workers`` virtual clocks under a strategy.

    ``costs[i]`` is task i's true duration in seconds; ``speeds[w]``
    (default 1.0) multiplies every duration on worker w — the straggler
    model. ``estimates`` feeds LPT's *ordering* only (default: the true
    costs), which is how benchmark F19 shows stealing beating LPT when
    the estimates are stale or uniform: LPT places by belief, stealing
    balances by observation. ``steal_latency`` charges each steal a fixed
    coordination cost.

    Deterministic in every argument; ties break by worker index. The
    greedy, work-conserving strategies satisfy
    ``makespan ≤ sum/m + max ≤ 2·OPT`` when speeds are uniform — the
    property the hypothesis suite pins.
    """
    costs = [float(c) for c in costs]
    for c in costs:
        check_non_negative("cost", c)
    check_positive_int("workers", workers)
    check_non_negative("steal_latency", steal_latency)
    if speeds is None:
        speeds = [1.0] * workers
    speeds = [float(s) for s in speeds]
    if len(speeds) != workers:
        raise ValidationError(
            f"need one speed per worker ({workers}), got {len(speeds)}")
    for s in speeds:
        if s <= 0.0:
            raise ValidationError(f"speeds must be positive, got {s}")
    n = len(costs)
    depths = tuple(block_sizes(n, workers)) if n else ()

    if strategy not in SCHEDULER_NAMES:
        raise ValidationError(
            f"unknown scheduler {strategy!r}; expected one of "
            f"{SCHEDULER_NAMES}")

    assignments: list[tuple[int, int, float, float]] = []
    events: list[StealEvent] = []
    owners = _block_owner_table(n, workers)
    moved = 0

    if strategy == "static":
        start = 0
        for w, size in enumerate(depths):
            t = 0.0
            for idx in range(start, start + size):
                dt = costs[idx] * speeds[w]
                assignments.append((idx, w, t, t + dt))
                t += dt
            start += size
    elif strategy == "lpt":
        est = costs if estimates is None else [float(e) for e in estimates]
        if len(est) != n:
            raise ValidationError(
                f"need one estimate per task ({n}), got {len(est)}")
        order = sorted(range(n), key=lambda i: (-est[i], i))
        clocks = [0.0] * workers
        for idx in order:
            w = min(range(workers), key=lambda w: (clocks[w], w))
            dt = costs[idx] * speeds[w]
            assignments.append((idx, w, clocks[w], clocks[w] + dt))
            clocks[w] += dt
            if owners[idx] != w:
                moved += 1
        assignments.sort(key=lambda a: (a[3], a[1], a[0]))
    else:  # steal
        queues: list[deque[int]] = []
        start = 0
        for size in depths:
            queues.append(deque(range(start, start + size)))
            start += size
        victims = WorkStealingScheduler(seed=seed).victim_orders(workers)
        clocks = [0.0] * workers
        live = [w for w in range(workers) if queues[w]]
        # Event loop: the earliest-free worker (ties by index) takes its
        # next task; an empty deque steals from the back of the first
        # non-empty victim in the seeded order.
        import heapq

        heap = [(0.0, w) for w in live]
        heapq.heapify(heap)
        remaining = n
        while remaining and heap:
            t, w = heapq.heappop(heap)
            idx: Optional[int] = None
            if queues[w]:
                idx = queues[w].popleft()
            else:
                for v in victims[w]:
                    if queues[v]:
                        idx = queues[v].pop()
                        events.append(StealEvent(thief=w, victim=v,
                                                 task=idx, t=t))
                        t += steal_latency
                        moved += 1
                        break
            if idx is None:
                continue   # nothing left to steal: worker retires
            dt = costs[idx] * speeds[w]
            assignments.append((idx, w, t, t + dt))
            remaining -= 1
            heapq.heappush(heap, (t + dt, w))
        assignments.sort(key=lambda a: (a[3], a[1], a[0]))

    makespan = max((a[3] for a in assignments), default=0.0)
    stats = SchedStats(
        strategy=strategy, n_tasks=n, workers=workers,
        steals=len(events), tasks_moved=moved if strategy != "static" else 0,
        initial_depths=depths, events=tuple(events),
    )
    return VirtualSchedule(strategy=strategy, workers=workers,
                           assignments=tuple(assignments),
                           makespan=makespan, stats=stats)
