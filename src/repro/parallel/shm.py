"""Shared-memory array transport for the fork process backend.

The process pool's default transport pickles every task through a pipe:
serialize (one copy), chunked 64 KiB pipe writes (syscalls), deserialize
(another copy) — per task. For path/lattice/scenario arrays that cost
dominates the map. This module moves any large contiguous ndarray through
a POSIX shared-memory segment instead: the parent performs one memcpy
into ``/dev/shm``, the task ships a ~100-byte :class:`SharedArrayRef`,
and each worker memcpys the block back out (or maps it zero-copy inside
a context manager).

Lifecycle contract — **no leaked segments**:

* :class:`ShmSession` owns every segment it creates; ``close()`` (idempotent,
  also the context-manager exit) closes *and unlinks* them all, so nothing
  survives in ``/dev/shm`` after a map. :class:`~repro.parallel.backends.
  ProcessBackend` closes its session in a ``finally`` even when the map
  raises.
* Workers attach by name, copy, and detach immediately — with tracker
  registration suppressed, because under a fork pool the attachment would
  land in the *owner's* resource tracker and corrupt its register/unlink
  bookkeeping (a known CPython < 3.13 wart; see :func:`_attach`).

Values are moved bit-for-bit: ``pack`` → ``unpack`` round-trips arrays
``np.array_equal``-identical with the same dtype and shape, so switching
the transport can never change a price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["SharedArrayRef", "ShmSession", "ShmWorker", "shm_supported"]


def shm_supported() -> bool:
    """True when ``multiprocessing.shared_memory`` is usable here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - always present on CPython 3.8+
        return False
    return True


def _attach(name: str):
    """Attach to an existing segment *without* resource-tracker tracking.

    Only the creating :class:`ShmSession` owns a segment's lifetime.
    ``SharedMemory(name=...)`` on CPython < 3.13 nevertheless registers the
    attachment with the resource tracker — under a fork pool that is the
    *parent's* tracker, so the bogus entry collides with the owner's
    register/unlink bookkeeping and the tracker prints KeyError tracebacks
    at unlink time. CPython 3.13 grew ``track=False`` for exactly this;
    for older versions we briefly suppress ``resource_tracker.register``
    around the attach (each pool worker runs one task at a time, so the
    swap cannot race within the worker process).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - exercised on CPython < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable handle to an ndarray parked in a shared-memory segment.

    The tuple ``(segment name, dtype string, shape)`` is all a worker
    needs to rebuild the array; the handle itself is what travels through
    the pool's pickle pipe.
    """

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n * np.dtype(self.dtype).itemsize

    def load(self) -> np.ndarray:
        """Copy the array out of the segment (safe past segment close)."""
        shm = _attach(self.name)
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                              buffer=shm.buf)
            return view.copy()
        finally:
            shm.close()


class ShmSession:
    """Owns the shared-memory segments backing one map's task payloads.

    ``pack`` recursively walks tuples/lists/dicts and swaps every
    C-contiguous ndarray of at least ``min_bytes`` bytes for a
    :class:`SharedArrayRef`; everything else passes through untouched.
    ``unpack`` (used worker-side via :class:`ShmWorker`) is its exact
    inverse. ``close`` unlinks every segment and is idempotent.
    """

    def __init__(self, *, min_bytes: int = 1 << 16):
        self.min_bytes = check_positive_int("min_bytes", min_bytes)
        self._segments: list = []  # SharedMemory objects we created
        self._by_id: dict[int, SharedArrayRef] = {}
        self._closed = False

    # -- creation side -------------------------------------------------

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments)

    def share(self, array: np.ndarray) -> SharedArrayRef:
        """Park one array in a segment; returns its handle.

        The same array *object* appearing in several tasks (e.g. one
        scenario matrix revalued under many payoffs) is parked once and
        every task receives the same handle. The identity map is safe for
        the session's lifetime because the caller's task list keeps each
        packed array alive.
        """
        if self._closed:
            raise ValidationError("ShmSession is closed")
        ref = self._by_id.get(id(array))
        if ref is not None:
            return ref
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
        self._segments.append(shm)
        dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        dest[...] = arr
        ref = SharedArrayRef(shm.name, arr.dtype.str, tuple(arr.shape))
        self._by_id[id(array)] = ref
        return ref

    def pack(self, obj):
        """Deep-replace large ndarrays in ``obj`` with shared refs."""
        if isinstance(obj, np.ndarray):
            if obj.nbytes >= self.min_bytes:
                return self.share(obj)
            return obj
        if isinstance(obj, tuple):
            return tuple(self.pack(v) for v in obj)
        if isinstance(obj, list):
            return [self.pack(v) for v in obj]
        if isinstance(obj, dict):
            return {k: self.pack(v) for k, v in obj.items()}
        return obj

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._by_id = {}

    def __enter__(self) -> "ShmSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- worker side ---------------------------------------------------

    @staticmethod
    def unpack(obj):
        """Deep-replace :class:`SharedArrayRef` handles with their arrays."""
        if isinstance(obj, SharedArrayRef):
            return obj.load()
        if isinstance(obj, tuple):
            return tuple(ShmSession.unpack(v) for v in obj)
        if isinstance(obj, list):
            return [ShmSession.unpack(v) for v in obj]
        if isinstance(obj, dict):
            return {k: ShmSession.unpack(v) for k, v in obj.items()}
        return obj


class ShmWorker:
    """Picklable worker wrapper: unpack shared refs, then run the worker."""

    __slots__ = ("worker",)

    def __init__(self, worker):
        self.worker = worker

    def __call__(self, task):
        return self.worker(ShmSession.unpack(task))
