"""Deterministic work partitioners.

Every parallel pricer divides an index range ``[0, n)`` among ``p`` ranks
with one of the classical schemes:

* **block** — contiguous chunks, sizes differing by at most one. The
  default for Monte Carlo paths and lattice/PDE rows, because contiguous
  slices keep NumPy access patterns streaming (see the cache-effects
  guidance in the HPC coding guides).
* **cyclic** — rank r owns ``r, r+p, r+2p, ...``; perfect balance for
  heterogeneous item costs, strided access.
* **block-cyclic** — blocks of fixed size dealt round-robin; the usual
  compromise.

Partitioners are pure functions of ``(n, p)`` so every rank (and the
sequential reference) computes identical boundaries with no communication.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = [
    "block_partition",
    "block_sizes",
    "cyclic_indices",
    "block_cyclic_indices",
    "owner_of",
]


def _check(n: int, p: int) -> None:
    if not isinstance(n, (int, np.integer)) or isinstance(n, bool) or n < 0:
        raise PartitionError(f"n must be a non-negative integer, got {n!r}")
    if not isinstance(p, (int, np.integer)) or isinstance(p, bool) or p <= 0:
        raise PartitionError(f"p must be a positive integer, got {p!r}")


def block_sizes(n: int, p: int) -> list[int]:
    """Sizes of the ``p`` balanced blocks of ``n`` items (first ``n % p``
    blocks get the extra item). Sizes sum to ``n`` and differ by ≤ 1."""
    _check(n, p)
    base, extra = divmod(n, p)
    return [base + (1 if r < extra else 0) for r in range(p)]


def block_partition(n: int, p: int) -> list[tuple[int, int]]:
    """Half-open ranges ``[(start, stop), ...]`` of the balanced blocks."""
    sizes = block_sizes(n, p)
    out = []
    start = 0
    for s in sizes:
        out.append((start, start + s))
        start += s
    return out


def cyclic_indices(n: int, p: int, rank: int) -> np.ndarray:
    """Indices owned by ``rank`` under cyclic distribution."""
    _check(n, p)
    if not 0 <= rank < p:
        raise PartitionError(f"rank must lie in [0, {p}), got {rank}")
    return np.arange(rank, n, p, dtype=np.int64)


def block_cyclic_indices(n: int, p: int, rank: int, block: int) -> np.ndarray:
    """Indices owned by ``rank`` under block-cyclic distribution with the
    given block size."""
    _check(n, p)
    if not 0 <= rank < p:
        raise PartitionError(f"rank must lie in [0, {p}), got {rank}")
    if block <= 0:
        raise PartitionError(f"block must be positive, got {block}")
    idx = np.arange(n, dtype=np.int64)
    return idx[(idx // block) % p == rank]


def owner_of(index: int, n: int, p: int) -> int:
    """Rank owning ``index`` under the balanced block distribution."""
    _check(n, p)
    if not 0 <= index < n:
        raise PartitionError(f"index must lie in [0, {n}), got {index}")
    base, extra = divmod(n, p)
    boundary = extra * (base + 1)
    if index < boundary:
        return index // (base + 1)
    if base == 0:
        raise PartitionError(f"index {index} beyond the populated blocks")
    return extra + (index - boundary) // base
