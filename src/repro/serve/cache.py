"""Contract-hash price cache: LRU over canonical SHA-256 request keys.

A pricing service sees the same contracts over and over — the same hedge
re-marked every few seconds, the same benchmark book replayed nightly.
Every engine in this repo is deterministic in its request config, so a
price is a *pure function of its key* and can be served from memory
without recomputation. The key is the same canonical-JSON SHA-256 idiom
the verification corpus uses (:func:`repro.verify.contracts.config_hash`):
market + payoff + expiry + engine settings, with display names excluded —
so permuted-but-equivalent configs (dict ordering, list-vs-array
parameters, relabeled workloads) collapse onto one entry.

Correctness contract, asserted by the property suite and the determinism
checker: a cache **hit is bitwise identical** to the recomputed miss —
the cache stores the finished quote object, never a re-derived value —
and capacity eviction is exact LRU (least-recently *used*: every hit
refreshes recency).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.utils.validation import check_positive_int
from repro.verify.contracts import canonical_json

__all__ = ["CacheEntry", "PriceCache", "stable_key"]


def stable_key(doc) -> str:
    """SHA-256 hex digest of ``doc``'s canonical JSON.

    Canonical JSON sorts keys and normalizes numpy scalars/arrays, so any
    two structurally equivalent documents — whatever their dict insertion
    order or array container types — produce the same key.
    """
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One cached quote: the key it lives under plus the stored value."""

    key: str
    value: object


class PriceCache:
    """Bounded, thread-safe LRU mapping of contract hash → price quote.

    ``get`` refreshes recency on a hit and returns ``None`` on a miss;
    ``put`` inserts/refreshes and evicts from the least-recently-used end
    until the capacity invariant ``len(self) <= capacity`` holds again.
    A single lock covers each operation — the service's batch executor and
    any thread backend can share one cache.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) mirrors the hit /
    miss / eviction tallies as ``serve.cache_*`` counters. ``labels``
    qualifies those series (e.g. ``labels={"shard": "3"}`` yields
    ``serve.cache_hits{shard=3}``), so the sharded gateway's N disjoint
    caches report per-shard hit rates into one shared registry instead
    of collapsing onto a service-global counter.
    """

    def __init__(self, capacity: int = 1024, *, metrics=None,
                 labels: dict[str, object] | None = None):
        self.capacity = check_positive_int("capacity", capacity)
        self.metrics = metrics
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership test; deliberately does *not* refresh recency."""
        return key in self._entries

    def keys(self) -> tuple[str, ...]:
        """Keys from least- to most-recently used (the eviction order)."""
        return tuple(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: str):
        """The cached value, refreshing recency — or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.cache_misses", **self.labels).inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if self.metrics is not None:
                self.metrics.counter("serve.cache_hits", **self.labels).inc()
            return entry.value

    def put(self, key: str, value) -> CacheEntry:
        """Insert (or refresh) ``key``; evict LRU entries over capacity."""
        entry = CacheEntry(key, value)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self.metrics is not None:
                    self.metrics.counter("serve.cache_evictions", **self.labels).inc()
        return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
