"""Throughput layer: batched pricing service, contract-hash cache, and the
shared-memory/chunked transport knobs that make streams of heterogeneous
pricing requests cheap to execute.

Three pieces, composed by :class:`~repro.serve.service.PricingService`:

* :mod:`repro.serve.batching` — :class:`PricingRequest` (one contract +
  engine settings) and the size/deadline-bounded :class:`Batcher`;
* :mod:`repro.serve.cache` — :class:`PriceCache`, an LRU keyed by the
  same canonical SHA-256 contract hashes the verification corpus uses;
  hits are bitwise identical to recomputed misses;
* :mod:`repro.serve.service` — batch execution through any
  :class:`~repro.parallel.backends.ExecutionBackend` via the chunked map,
  with metrics export and the scenario-revaluation (shared-memory) path.

The layer is price-neutral by construction: batching, caching, chunking
and backend choice can never change a quote (enforced by the
``serve-batching`` determinism check in :mod:`repro.verify.determinism`).
"""

from repro.serve.batching import (SERVE_ENGINES, Batch, Batcher,
                                  PricingRequest, request_key)
from repro.serve.cache import CacheEntry, PriceCache, stable_key
from repro.serve.service import (PriceQuote, PricingService, price_request,
                                 revalue_scenarios)

__all__ = [
    "SERVE_ENGINES",
    "Batch",
    "Batcher",
    "PricingRequest",
    "request_key",
    "CacheEntry",
    "PriceCache",
    "stable_key",
    "PriceQuote",
    "PricingService",
    "price_request",
    "revalue_scenarios",
]
