"""The batch pricing service: cache → batch → chunked map → quotes.

This is the throughput layer the ROADMAP's "heavy traffic" north star
asks for. A :class:`PricingService` accepts a stream of
:class:`~repro.serve.batching.PricingRequest`\\ s, groups them into
size/deadline-bounded batches, and executes each batch in one chunked
``backend.map`` over the module-level :func:`price_request` worker —
fronted by a :class:`~repro.serve.cache.PriceCache` so repeated contracts
are answered from memory.

The layer adds *no* numerics of its own, which is what makes it safe:

* every request prices through the existing parallel pricers with its own
  seed/settings, so a quote is a pure function of the request config —
  **independent of batch composition, chunk size, backend and cache
  state** (enforced by the ``serve-batching`` determinism check);
* duplicate requests inside one batch are priced once and fanned out;
* a batch with zero misses performs **zero** backend map calls — a 100 %
  cache-hit replay never touches the execution layer.

Throughput accounting goes through :class:`~repro.obs.MetricsRegistry`
(``serve.requests``, ``serve.batches``, ``serve.map_calls``,
``serve.cache_hits`` / ``serve.cache_misses`` counters and the
``serve.batch_size`` / ``serve.batch_latency_s`` histograms) so the
``repro serve`` CLI and benchmark F15 read the same numbers.

:func:`revalue_scenarios` is the second batch shape: many payoffs revalued
against **one** precomputed scenario matrix (the Premia-style risk job).
The matrix is the natural shared-memory payload — with
``ProcessBackend(shm_min_bytes=...)`` it crosses to the pool once as a
segment instead of being pickled per task.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.obs.ledger import (
    RunRecord,
    active_ledger,
    config_digest,
    git_sha,
    new_run_id,
)
from repro.parallel.backends import ChunkAutotuner, ExecutionBackend, SerialBackend
from repro.serve.batching import Batch, Batcher, PricingRequest, request_key
from repro.serve.cache import PriceCache

__all__ = ["PriceQuote", "PricingService", "price_request",
           "revalue_scenarios"]


@dataclass(frozen=True)
class PriceQuote:
    """A served price: what the cache stores and the service returns.

    Deliberately carries no request label — two equivalent requests share
    one quote — and only plain floats, so bitwise identity between a hit
    and a recomputed miss is meaningful and picklable.
    """

    engine: str
    price: float
    stderr: float
    sim_time: float


def price_request(request: PricingRequest) -> PriceQuote:
    """Module-level batch worker: price one request with its engine family.

    Picklable (the process backend ships it through the pool). The engine
    is resolved by canonical name through the
    :class:`~repro.engine.registry.EngineRegistry`, whose serve hooks
    import the pricers lazily — the serve package never creates an import
    cycle with :mod:`repro.core`.
    """
    from repro.engine.registry import default_registry

    w = request.workload
    spec = default_registry().get(request.engine)
    if spec.serve is None:  # unreachable via PricingRequest validation
        raise ValidationError(f"engine {request.engine!r} is not servable")
    pricer = spec.serve(request)
    res = pricer.price(w.model, w.payoff, w.expiry, request.p)
    return PriceQuote(engine=request.engine, price=res.price,
                      stderr=res.stderr, sim_time=res.sim_time)


class PricingService:
    """Streams of pricing requests in, quotes out — batched and cached.

    Parameters
    ----------
    backend : an :class:`~repro.parallel.backends.ExecutionBackend`
        (default: a private :class:`SerialBackend`). The caller owns the
        backend's lifecycle unless the service created it.
    cache : a :class:`PriceCache`, or ``None`` to disable caching.
    max_batch : cut a batch as soon as this many requests are pending.
    max_wait_s : cut a batch once its oldest request has waited this long
        (checked on :meth:`submit` and :meth:`poll`); ``None`` disables
        the deadline.
    chunksize : per-map chunking — ``"auto"`` (default) lets a
        :class:`ChunkAutotuner` pick from observed per-task latency, an
        int fixes it, ``None`` maps one task per dispatch.
    batched : group cache misses into fused
        :class:`~repro.batch.strip.ContractStrip`\\ s (one backend task
        prices a whole strip through shared path generation). Quotes stay
        bitwise equal in price/stderr to the single path — only
        ``sim_time`` reflects the fused run's amortized cost.
    min_strip : smallest miss group worth fusing (``batched`` only).
    metrics : optional :class:`~repro.obs.MetricsRegistry`. Also attached
        to the backend (when the backend has none of its own) so the
        per-task ``task_latency{backend=...}`` histogram fills — the
        source the autotuner's straggler feedback reads.
    ledger : optional :class:`~repro.obs.RunLedger`; defaults to the
        ambient ledger (``$REPRO_LEDGER``). Each executed batch appends
        one ``kind="serve"`` record.
    clock : injectable monotonic clock for deadline tests.
    scheduler : optional :class:`~repro.parallel.sched.Scheduler` or
        strategy name deciding how each batch's miss tasks meet the
        backend's workers (``None`` = the historical chunked static map).
        Placement only — quotes are bitwise scheduler-invariant; steal
        tallies land in the batch's ``kind="serve"`` ledger record.
    """

    def __init__(self, backend: ExecutionBackend | None = None, *,
                 cache: PriceCache | None = None, max_batch: int = 32,
                 max_wait_s: float | None = None,
                 chunksize: int | str | None = "auto",
                 batched: bool = False, min_strip: int = 2,
                 metrics=None, ledger=None,
                 clock: Callable[[], float] | None = None,
                 scheduler=None):
        self._owns_backend = backend is None
        self.backend = backend if backend is not None else SerialBackend()
        self.cache = cache
        self.metrics = metrics
        self.ledger = ledger
        self.chunksize = chunksize
        self.batched = bool(batched)
        self.min_strip = min_strip
        if scheduler is None:
            self.scheduler = None
        else:
            from repro.parallel.sched import resolve_scheduler

            self.scheduler = resolve_scheduler(scheduler)
        if cache is not None and metrics is not None and cache.metrics is None:
            cache.metrics = metrics
        if metrics is not None and getattr(self.backend, "metrics", None) is None:
            # Feed task_latency{backend=...} — the autotuner's obs source.
            self.backend.metrics = metrics
        workers = getattr(self.backend, "max_workers", 1)
        self._autotuner = (ChunkAutotuner(workers)
                           if chunksize == "auto" else None)
        self._batcher = Batcher(max_batch=max_batch, max_wait_s=max_wait_s,
                                clock=clock)
        self._completed: list[tuple[PricingRequest, PriceQuote]] = []
        self._config_digest = config_digest({
            "max_batch": max_batch, "max_wait_s": max_wait_s,
            "chunksize": chunksize, "batched": self.batched,
            "min_strip": min_strip,
            "scheduler": getattr(self.scheduler, "name", None),
        })
        #: Number of backend.map calls issued — zero for full-hit replays.
        self.map_calls = 0

    def _dispatch(self, worker, work, cs):
        """One scheduled (or plain) map over the batch's miss tasks."""
        self.map_calls += 1
        if self.scheduler is None:
            return self.backend.map(worker, work, chunksize=cs), None
        return self.scheduler.map(self.backend, worker, work, chunksize=cs)

    # -- streaming interface -------------------------------------------

    def submit(self, request: PricingRequest) -> None:
        """Queue one request; executes a batch when size/deadline trips."""
        batch = self._batcher.poll()
        if batch is not None:
            self._completed.extend(self._execute(batch))
        batch = self._batcher.submit(request)
        if batch is not None:
            self._completed.extend(self._execute(batch))

    def poll(self) -> None:
        """Deadline check — call between submits on a sparse stream."""
        batch = self._batcher.poll()
        if batch is not None:
            self._completed.extend(self._execute(batch))

    def flush(self) -> list[tuple[PricingRequest, PriceQuote]]:
        """Execute any pending partial batch and drain all results."""
        batch = self._batcher.flush()
        if batch is not None:
            self._completed.extend(self._execute(batch))
        return self.drain()

    def drain(self) -> list[tuple[PricingRequest, PriceQuote]]:
        """Completed (request, quote) pairs in submission order."""
        out = self._completed
        self._completed = []
        return out

    def price_many(self, requests: Iterable[PricingRequest]) -> list[PriceQuote]:
        """Convenience: run a whole request list; quotes in input order."""
        for request in requests:
            self.submit(request)
        return [quote for _, quote in self.flush()]

    # -- batch execution -----------------------------------------------

    def _execute(self, batch: Batch) -> list[tuple[PricingRequest, PriceQuote]]:
        t0 = time.perf_counter()
        n = len(batch)
        keys = [request_key(r) for r in batch.requests]
        quotes: list[PriceQuote | None] = [None] * n

        # Cache front: hits are answered immediately; misses are deduped
        # by key so one computation fans out to every equivalent request.
        miss_indices: dict[str, list[int]] = {}
        for i, key in enumerate(keys):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                quotes[i] = hit
            else:
                miss_indices.setdefault(key, []).append(i)

        tasks = [batch.requests[idx[0]] for idx in miss_indices.values()]
        sched_stats = None
        if tasks:
            cs = (self._autotuner.chunksize(len(tasks))
                  if self._autotuner is not None else self.chunksize)
            if self.batched:
                # Fused dispatch: group the deduped misses into contract
                # strips, still exactly one backend.map for the batch.
                from repro.batch.kernels import price_task
                from repro.batch.plan import plan_batches

                plan = plan_batches(tasks, min_strip=self.min_strip)
                work = plan.tasks()
                results, sched_stats = self._dispatch(price_task, work, cs)
                by_key: dict[str, PriceQuote] = {}
                for item, result in zip(plan.strips, results):
                    for key, quote in zip(item.keys(), result):
                        by_key[key] = quote
                for item, result in zip(tuple(plan.singles),
                                        results[len(plan.strips):]):
                    by_key[request_key(item)] = result
                for key, indices in miss_indices.items():
                    quote = by_key[key]
                    for i in indices:
                        quotes[i] = quote
                    if self.cache is not None:
                        self.cache.put(key, quote)
                if self.metrics is not None and plan.strips:
                    self.metrics.counter("serve.strips").inc(len(plan.strips))
                    for s in plan.strips:
                        self.metrics.histogram(
                            "serve.strip_contracts").observe(len(s))
            else:
                results, sched_stats = self._dispatch(price_request, tasks, cs)
                for (key, indices), quote in zip(miss_indices.items(),
                                                 results):
                    for i in indices:
                        quotes[i] = quote
                    if self.cache is not None:
                        self.cache.put(key, quote)

        wall = time.perf_counter() - t0
        if tasks and self._autotuner is not None:
            self._autotuner.observe(len(tasks), wall)
            if self.metrics is not None:
                # The obs → autotuner loop: fold the observed per-task
                # latency dispersion (p99/p50) into future chunk sizes.
                self._autotuner.observe_histogram(self.metrics.histogram(
                    "task_latency", backend=self.backend.name))
        if self.metrics is not None:
            self.metrics.counter("serve.requests").inc(n)
            self.metrics.counter("serve.batches").inc()
            if tasks:
                self.metrics.counter("serve.map_calls").inc()
            self.metrics.counter("serve.deduped").inc(
                sum(len(v) - 1 for v in miss_indices.values()))
            self.metrics.histogram("serve.batch_size").observe(n)
            self.metrics.histogram("serve.batch_latency_s").observe(wall)
        ledger = self.ledger if self.ledger is not None else active_ledger()
        if ledger is not None:
            extra = {"requests": n, "misses": len(tasks),
                     "hits": n - sum(len(v) for v in miss_indices.values()),
                     "map_calls": 1 if tasks else 0}
            if sched_stats is not None:
                extra["sched"] = sched_stats.ledger_extra()
            ledger.append(RunRecord(
                run_id=new_run_id(), kind="serve", engine="service",
                config=self._config_digest, backend=self.backend.name,
                workers=int(getattr(self.backend, "max_workers", 1) or 1),
                p=len(tasks), stages={"batch": wall}, wall_s=wall,
                extra=extra,
                git=git_sha()))
        return list(zip(batch.requests, quotes))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Flush pending work and release an internally created backend."""
        self.flush()
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# Scenario revaluation: the shared-memory batch shape.
# ---------------------------------------------------------------------------


def _revalue_task(task) -> float:
    """Discounted mean payoff of one contract over a scenario matrix."""
    payoff, scenarios, discount = task
    if np.ndim(discount) == 0:
        return float(discount) * float(np.mean(payoff.terminal(scenarios)))
    return float(np.mean(np.asarray(discount, dtype=float)
                         * payoff.terminal(scenarios)))


def revalue_scenarios(payoffs: Sequence, scenarios: np.ndarray, *,
                      backend: ExecutionBackend | None = None,
                      chunksize: int | str | None = "auto",
                      discount=1.0) -> list[float]:
    """Value many payoffs against one precomputed terminal-scenario matrix.

    The classic risk-management batch: simulate the market once (rows of
    ``scenarios``: one terminal price vector per scenario), then revalue
    the whole book against it. Every task carries the same matrix object,
    so a :class:`~repro.parallel.backends.ProcessBackend` with
    ``shm_min_bytes`` set ships it across the pool **once** through a
    shared-memory segment — benchmark F15 measures that against the
    per-task-pickle baseline.

    ``discount`` is a scalar applied uniformly, or a length-``n_scenarios``
    vector applying a per-scenario discount factor (rate-shocked scenario
    sets discount each row at its own rate).
    """
    if scenarios.ndim != 2:
        raise ValidationError(
            f"scenarios must be (n_scenarios, dim), got shape {scenarios.shape}"
        )
    discount = np.asarray(discount, dtype=float)
    if discount.ndim == 0:
        discount = float(discount)
    elif discount.ndim != 1 or discount.shape[0] != scenarios.shape[0]:
        raise ValidationError(
            f"discount must be scalar or length {scenarios.shape[0]} "
            f"(one per scenario), got shape {discount.shape}")
    own = backend is None
    backend = backend if backend is not None else SerialBackend()
    try:
        tasks = [(p, scenarios, discount) for p in payoffs]
        return backend.map(_revalue_task, tasks, chunksize=chunksize)
    finally:
        if own:
            backend.close()
