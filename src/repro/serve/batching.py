"""Requests and batches: the unit of work the pricing service executes.

A :class:`PricingRequest` names one contract (a
:class:`~repro.workloads.generators.Workload`) plus the engine family and
settings to price it with — the request analogue of the verification
corpus's :class:`~repro.verify.contracts.VerifyCase`. Requests are frozen,
picklable (they cross the process-pool boundary) and deterministic: two
requests with equal configs price to bitwise-equal quotes, which is what
makes them cacheable.

The :class:`Batcher` groups a request stream into **size/deadline-bounded**
batches: a batch is cut as soon as ``max_batch`` requests are pending
(amortizing per-batch dispatch over many contracts) or as soon as the
*oldest* pending request has waited ``max_wait_s`` (bounding the latency a
lone request can be held hostage by batching). The clock is injectable so
the deadline path is unit-testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.names import LATTICE, LSM, MC, PDE
from repro.engine.registry import default_registry
from repro.errors import ValidationError
from repro.serve.cache import stable_key
from repro.utils.validation import check_non_negative, check_positive_int
from repro.verify.contracts import describe_workload
from repro.workloads.generators import Workload

__all__ = ["SERVE_ENGINES", "PricingRequest", "request_key", "Batch",
           "Batcher"]

#: Engine families the serving layer can route a request to — every
#: registry entry with a serve hook (the four parallel pricers from
#: :mod:`repro.core`).
SERVE_ENGINES = default_registry().names(servable=True)


@dataclass(frozen=True)
class PricingRequest:
    """One priceable unit of the request stream.

    Attributes
    ----------
    workload : the contract (market model, payoff, expiry).
    engine : which parallel pricer family executes it (see
        :data:`SERVE_ENGINES`).
    n_paths : MC/LSM path budget (ignored by lattice/PDE).
    steps : monitoring / exercise / time steps; required for the lattice
        and LSM engines.
    seed : master RNG seed (MC/LSM; the lattice and PDE engines are
        seedless).
    p : simulated rank count handed to the parallel pricer.
    grid : PDE spatial resolution per axis (PDE only).
    name : display label; **never** part of the cache key.
    """

    workload: Workload
    engine: str = MC
    n_paths: int = 20_000
    steps: int | None = None
    seed: int = 0
    p: int = 1
    grid: int = 64
    name: str = ""

    def __post_init__(self) -> None:
        if self.engine not in SERVE_ENGINES:
            raise ValidationError(
                f"engine must be one of {SERVE_ENGINES}, got {self.engine!r}"
            )
        check_positive_int("n_paths", self.n_paths)
        check_positive_int("p", self.p)
        check_positive_int("grid", self.grid)
        if self.steps is not None:
            check_positive_int("steps", self.steps)
        if self.engine in (LATTICE, LSM) and self.steps is None:
            raise ValidationError(
                f"the {self.engine} engine needs steps=<backward steps>"
            )

    def settings(self) -> dict:
        """The engine-relevant settings — the cache key's second half.

        Only fields the engine actually reads are included, so changing
        e.g. the seed of a (seedless) lattice request cannot split the
        cache entry.
        """
        if self.engine == MC:
            return {"n_paths": self.n_paths, "steps": self.steps,
                    "seed": self.seed, "p": self.p}
        if self.engine == LATTICE:
            return {"steps": self.steps, "p": self.p}
        if self.engine == PDE:
            return {"grid": self.grid, "steps": self.steps, "p": self.p}
        return {"n_paths": self.n_paths, "steps": self.steps,
                "seed": self.seed, "p": self.p}

    @property
    def label(self) -> str:
        return self.name or self.workload.name


def request_key(request: PricingRequest) -> str:
    """Canonical SHA-256 cache key of one request.

    Covers exactly what determines the price — contract description,
    engine family, engine settings — and nothing presentational, so
    equivalent requests collide (by design) and any numerical change
    splits the key.
    """
    return stable_key({
        "contract": describe_workload(request.workload),
        "engine": request.engine,
        "settings": request.settings(),
    })


@dataclass(frozen=True)
class Batch:
    """An ordered group of requests cut from the stream."""

    index: int
    requests: tuple[PricingRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)


class Batcher:
    """Size/deadline-bounded batch cutter over a request stream.

    ``submit`` returns the cut :class:`Batch` when the pending set just
    reached ``max_batch``, else ``None``; ``poll`` cuts when the oldest
    pending request's deadline has passed; ``flush`` cuts whatever is
    pending (end of stream). ``max_wait_s=None`` disables the deadline —
    batches then cut on size and explicit flushes only.
    """

    def __init__(self, *, max_batch: int = 32,
                 max_wait_s: float | None = None,
                 clock: Callable[[], float] | None = None):
        self.max_batch = check_positive_int("max_batch", max_batch)
        self.max_wait_s = (None if max_wait_s is None
                           else check_non_negative("max_wait_s", max_wait_s))
        self._clock = clock if clock is not None else time.monotonic
        self._pending: list[PricingRequest] = []
        self._oldest: float | None = None
        self._cut_count = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def batches_cut(self) -> int:
        return self._cut_count

    def submit(self, request: PricingRequest) -> Batch | None:
        """Queue one request; returns a batch iff this submit filled one."""
        if not isinstance(request, PricingRequest):
            raise ValidationError(
                f"expected a PricingRequest, got {type(request).__name__}"
            )
        if self._oldest is None:
            self._oldest = self._clock()
        self._pending.append(request)
        if len(self._pending) >= self.max_batch:
            return self._cut()
        return None

    def poll(self) -> Batch | None:
        """Cut the pending batch iff its deadline has expired."""
        if (self._pending and self.max_wait_s is not None
                and self._clock() - self._oldest >= self.max_wait_s):
            return self._cut()
        return None

    def flush(self) -> Batch | None:
        """Cut whatever is pending (None when the stream is empty)."""
        return self._cut() if self._pending else None

    def _cut(self) -> Batch:
        batch = Batch(self._cut_count, tuple(self._pending))
        self._pending = []
        self._oldest = None
        self._cut_count += 1
        return batch
