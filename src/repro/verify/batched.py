"""Batched corpus replay: the fused kernels against the oracle's own cells.

The strip-equivalence tests assert bitwise identity between a fused strip
run and per-contract single runs *of the parallel engines*. This module
closes the remaining gap to the verification corpus: for every corpus
case a batchable family prices, it re-prices the case **through the fused
strip kernels** — embedded in a real multi-member strip next to a decoy
contract — and demands the strip's price for the case bitwise-match the
sequential oracle cell. A fused kernel that silently rebaselines the
corpus (reordered reductions, a shared draw leaking into per-contract
arithmetic) fails here even if it is internally self-consistent.

Family coverage:

* ``mc`` — :func:`~repro.batch.kernels.strip_estimate` with the exact
  engine configuration ``repro.verify.oracle._run_mc`` uses (``PlainMC``,
  ``Philox4x32(seed)``, default batch size), compared on price *and*
  stderr bits.
* ``qmc`` — same via ``QMCSobol`` with the cell's replicate count/seed.
* ``lattice`` — :func:`~repro.batch.kernels.beg_strip_prices` replaying
  the oracle's parity-averaged ``(steps, steps + 1)`` pair for
  multi-asset cases. Single-asset lattice cells come from the separate
  CRR ``binomial_price`` recursion, which the BEG strip kernel does not
  reproduce bitwise — those cells are reported as skipped with the reason
  recorded, not silently dropped.

The decoy contract (same payoff class, bumped strike) is what makes the
check honest: the case prices inside a strip that actually *shares* its
draws with a second contract, so cross-contract contamination cannot hide.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.rng import Philox4x32
from repro.verify.contracts import VerifyCase, default_corpus
from repro.verify.determinism import float_bits
from repro.verify.oracle import ORACLE_ADAPTERS, EngineCell

__all__ = ["BatchedReplayResult", "BATCHED_FAMILIES", "decoy_payoff",
           "run_batched_replay"]

#: Engine families with a fused replay path, in replay order.
BATCHED_FAMILIES = ("mc", "qmc", "lattice")


@dataclass(frozen=True)
class BatchedReplayResult:
    """One (case, family) replay verdict."""

    case: str
    engine: str
    ok: bool
    skipped: bool = False
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        if self.skipped:
            return (f"[skip] {self.case}/{self.engine} — "
                    f"{self.detail.get('reason', '')}")
        mark = "ok" if self.ok else "FAIL"
        return (f"[{mark}] {self.case}/{self.engine} — "
                f"oracle={self.detail.get('oracle_bits', '')} "
                f"batched={self.detail.get('batched_bits', '')}")


def decoy_payoff(payoff):
    """A same-class companion contract with a bumped strike.

    The replayed case must sit in a strip with at least one *other*
    member, or the fused kernels degenerate to the single path and the
    replay proves nothing. Every corpus payoff carries a ``strike``;
    bumping it on a deep copy changes per-contract arithmetic while
    leaving the shared draw shape (class, dim, path dependence) intact.
    """
    if not hasattr(payoff, "strike"):
        raise ValidationError(
            f"{type(payoff).__name__} has no strike to bump; add a decoy "
            f"rule for this payoff class"
        )
    other = copy.deepcopy(payoff)
    other.strike = float(other.strike) + 1.0
    return other


def _reference_cell(case: VerifyCase, family: str,
                    cells_by_case: dict | None) -> EngineCell:
    """The oracle cell to compare against — reused when the caller already
    ran the oracle (the CLI path), recomputed otherwise."""
    if cells_by_case is not None:
        cell = cells_by_case.get(case.name, {}).get(family)
        if cell is not None:
            return cell
    return ORACLE_ADAPTERS[family](case, dict(case.engines[family]))


def _replay_mc(case: VerifyCase, params: dict) -> tuple[float, float]:
    from repro.batch.kernels import strip_estimate
    from repro.mc.variance_reduction import PlainMC

    w = case.workload
    payoffs = [w.payoff, decoy_payoff(w.payoff)]
    price, stderr, _ = strip_estimate(
        PlainMC(), w.model, payoffs, w.expiry, params["n_paths"],
        Philox4x32(params.get("seed", 0)), steps=params.get("steps"))[0]
    return float(price), float(stderr)


def _replay_qmc(case: VerifyCase, params: dict) -> tuple[float, float]:
    from repro.batch.kernels import strip_estimate
    from repro.mc.qmc import QMCSobol

    w = case.workload
    technique = QMCSobol(params.get("replicates", 8),
                         seed=params.get("seed", 2027))
    payoffs = [w.payoff, decoy_payoff(w.payoff)]
    # The oracle's MonteCarloEngine is built without an engine seed, so
    # its (unused-by-Sobol) stream generator is Philox4x32(0).
    price, stderr, _ = strip_estimate(
        technique, w.model, payoffs, w.expiry, params["n_paths"],
        Philox4x32(0), steps=params.get("steps"))[0]
    return float(price), float(stderr)


def _replay_lattice(case: VerifyCase, params: dict) -> float:
    from repro.batch.kernels import beg_strip_prices

    w = case.workload
    steps = params["steps"]
    payoffs = [w.payoff, decoy_payoff(w.payoff)]
    fine = beg_strip_prices(w.model, payoffs, w.expiry, steps,
                            american=case.american)[0]
    fine_next = beg_strip_prices(w.model, payoffs, w.expiry, steps + 1,
                                 american=case.american)[0]
    # Same association order as oracle._run_lattice's parity average.
    return 0.5 * (fine + fine_next)


def _replay_family(case: VerifyCase, family: str, params: dict,
                   cell: EngineCell) -> BatchedReplayResult:
    if family == "lattice":
        if case.workload.model.dim == 1:
            return BatchedReplayResult(
                case.name, family, ok=True, skipped=True,
                detail={"reason": "1-d lattice cells use the CRR binomial "
                                  "recursion, not the BEG kernel the strip "
                                  "path fuses — no bitwise target exists"})
        price = _replay_lattice(case, params)
        oracle_bits = float_bits(cell.price)
        batched_bits = float_bits(price)
        return BatchedReplayResult(
            case.name, family, ok=batched_bits == oracle_bits,
            detail={"oracle_bits": oracle_bits, "batched_bits": batched_bits,
                    "price": price})

    replay = _replay_mc if family == "mc" else _replay_qmc
    price, stderr = replay(case, params)
    oracle_bits = (f"{float_bits(cell.price)}|"
                   f"{float_bits(cell.detail['stderr'])}")
    batched_bits = f"{float_bits(price)}|{float_bits(stderr)}"
    return BatchedReplayResult(
        case.name, family, ok=batched_bits == oracle_bits,
        detail={"oracle_bits": oracle_bits, "batched_bits": batched_bits,
                "price": price, "stderr": stderr})


def run_batched_replay(corpus=None, *,
                       cells_by_case: dict | None = None
                       ) -> list[BatchedReplayResult]:
    """Replay every batchable (case, family) cell through the fused kernels.

    ``cells_by_case`` optionally supplies already-computed oracle cells
    (``OracleReport.cells`` shape: ``{case: {family: EngineCell}}``) so a
    CLI run that just executed the oracle does not price the references
    twice. Missing cells are recomputed from the case's recorded settings.
    """
    results: list[BatchedReplayResult] = []
    for case in (corpus if corpus is not None else default_corpus()):
        for family in BATCHED_FAMILIES:
            if family not in case.engines:
                continue
            params = dict(case.engines[family])
            cell = _reference_cell(case, family, cells_by_case)
            results.append(_replay_family(case, family, params, cell))
    return results
