"""The verification corpus: canonical contracts every engine must agree on.

A :class:`VerifyCase` names one contract (a :class:`~repro.workloads.Workload`)
plus the engine families that can price it and the resolution/seed settings
each family should use. The corpus is the substrate shared by the
differential oracle harness (:mod:`repro.verify.oracle`), the golden-master
store (:mod:`repro.verify.golden`) and the ``repro verify`` CLI: every case
is deterministic in its recorded settings, so a snapshot of its prices is
replayable.

Case identity is a **config hash** — a SHA-256 over the canonical JSON of
the market, the payoff and every engine setting. A refactor that changes
what is being priced (rather than how fast) changes the hash, and the golden
diff reports it as a rebaseline rather than a silent drift.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.engine.registry import default_registry
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.payoffs.asian import AsianGeometricCall
from repro.payoffs.basket import GeometricBasketCall
from repro.payoffs.rainbow import SpreadCall
from repro.payoffs.vanilla import Call, Put
from repro.workloads.generators import Workload, basket_workload, rainbow_workload

__all__ = [
    "VerifyCase",
    "default_corpus",
    "describe_case",
    "describe_workload",
    "canonical_json",
    "config_hash",
]

#: Engine-family keys understood by the oracle adapters — every registry
#: entry with an oracle hook, in registration order.
ENGINE_FAMILIES = default_registry().names(reference=True)


@dataclass(frozen=True)
class VerifyCase:
    """One corpus entry: a contract plus per-engine pricing settings.

    ``engines`` maps an engine-family key (see :data:`ENGINE_FAMILIES`) to
    that family's keyword settings — path counts, grid resolutions, seeds,
    or the closed form's explicit parameters. Settings are plain
    JSON-serializable values so the case can be hashed and snapshotted.
    """

    name: str
    workload: Workload
    engines: Mapping[str, dict]
    american: bool = False
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [k for k in self.engines if k not in ENGINE_FAMILIES]
        if unknown:
            raise ValidationError(
                f"case {self.name!r}: unknown engine families {unknown}; "
                f"expected keys from {ENGINE_FAMILIES}"
            )
        if len(self.engines) < 2:
            raise ValidationError(
                f"case {self.name!r} needs at least two engine families to "
                "cross-check"
            )


def _jsonable(value):
    """Recursively convert numpy scalars/arrays so json.dumps accepts them."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def canonical_json(obj) -> str:
    """Deterministic JSON text (sorted keys, no whitespace, numpy-safe)."""
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def _describe_payoff(payoff) -> dict:
    """A payoff's class name plus its defining parameters."""
    desc: dict = {"class": type(payoff).__name__}
    for key, val in sorted(vars(payoff).items()):
        if key.startswith("_"):
            continue
        desc[key] = _jsonable(val)
    return desc


def describe_workload(workload: Workload) -> dict:
    """JSON-serializable description of what a workload prices.

    Deliberately excludes the workload's display ``name``: two workloads
    with the same market, payoff and expiry describe the same contract
    however they are labeled. This is the identity the serving layer's
    price cache keys on (:mod:`repro.serve.cache`), so equivalent configs
    — permuted dicts, list-vs-array parameters — hash identically.
    """
    model = workload.model
    return {
        "model": {
            "spots": _jsonable(model.spots),
            "vols": _jsonable(model.vols),
            "rate": model.rate,
            "dividends": _jsonable(getattr(model, "dividends", None)),
            "correlation": _jsonable(model.correlation),
        },
        "payoff": _describe_payoff(workload.payoff),
        "expiry": workload.expiry,
    }


def describe_case(case: VerifyCase) -> dict:
    """Full JSON-serializable description of a case (hash input)."""
    return {
        "name": case.name,
        **describe_workload(case.workload),
        "american": case.american,
        "engines": _jsonable({k: dict(v) for k, v in case.engines.items()}),
    }


def config_hash(case: VerifyCase) -> str:
    """SHA-256 hex digest of the case's canonical description."""
    return hashlib.sha256(canonical_json(describe_case(case)).encode()).hexdigest()


# ----------------------------------------------------------------------
# The default corpus — one case per engine-family overlap worth guarding.
# Sizes are chosen so the whole corpus prices in seconds: the oracle runs
# on every PR, so it must stay cheap enough to never be skipped.
# ----------------------------------------------------------------------

def default_corpus() -> list[VerifyCase]:
    """The committed verification corpus (deterministic; order is stable)."""
    cases: list[VerifyCase] = []

    # European call, one asset: the maximal-overlap contract — closed form,
    # MC, binomial lattice and the 1-d PDE must all agree.
    m1 = MultiAssetGBM.single(100.0, 0.2, 0.05)
    cases.append(VerifyCase(
        name="european-call-1d",
        workload=Workload("european-call-1d", m1, Call(100.0), 1.0),
        engines={
            "analytic": {"kind": "bs", "spot": 100.0, "strike": 100.0,
                         "vol": 0.2, "rate": 0.05, "expiry": 1.0,
                         "option": "call"},
            "mc": {"n_paths": 60_000, "seed": 11},
            "lattice": {"steps": 512},
            "pde": {"n_space": 256, "n_time": 128},
        },
    ))

    # Geometric 4-asset basket: the multidimensional closed form against
    # plain MC and randomized QMC.
    wb = basket_workload(4, geometric=True)
    cases.append(VerifyCase(
        name="geometric-basket-d4",
        workload=wb,
        engines={
            "analytic": {"kind": "geometric-basket"},
            "mc": {"n_paths": 60_000, "seed": 12},
            "qmc": {"n_paths": 65_536, "replicates": 8, "seed": 12},
        },
    ))

    # Two-asset max-call: Stulz closed form against MC and the BEG lattice
    # (the lattice engine the parallel slab decomposition reproduces).
    wr = rainbow_workload()
    cases.append(VerifyCase(
        name="rainbow-max-call",
        workload=wr,
        engines={
            "analytic": {"kind": "stulz", "spot1": 100.0, "spot2": 95.0,
                         "strike": 100.0, "vol1": 0.2, "vol2": 0.3,
                         "rho": 0.4, "rate": 0.05, "expiry": 1.0,
                         "option": "call-on-max"},
            "mc": {"n_paths": 60_000, "seed": 13},
            "lattice": {"steps": 128},
        },
    ))

    # Zero-strike spread = Margrabe's exchange option: an *exact* anchor for
    # the ADI PDE engine (Kirk would only be approximate at K > 0).
    m_spread = MultiAssetGBM([100.0, 96.0], [0.25, 0.2], 0.05,
                             correlation=np.array([[1.0, 0.5], [0.5, 1.0]]))
    cases.append(VerifyCase(
        name="exchange-margrabe",
        workload=Workload("exchange-margrabe", m_spread, SpreadCall(0.0), 1.0),
        engines={
            "analytic": {"kind": "margrabe", "spot1": 100.0, "spot2": 96.0,
                         "vol1": 0.25, "vol2": 0.2, "rho": 0.5,
                         "expiry": 1.0},
            "mc": {"n_paths": 60_000, "seed": 14},
            "pde": {"n_space": 128, "n_time": 64},
        },
    ))

    # Discrete geometric Asian: the path-dependent closed form against MC
    # with the same monitoring grid, and MLMC telescoping to that grid.
    cases.append(VerifyCase(
        name="geometric-asian-1d",
        workload=Workload("geometric-asian-1d", m1, AsianGeometricCall(100.0), 1.0),
        engines={
            "analytic": {"kind": "geometric-asian", "spot": 100.0,
                         "strike": 100.0, "vol": 0.2, "rate": 0.05,
                         "expiry": 1.0, "steps": 12},
            "mc": {"n_paths": 60_000, "steps": 12, "seed": 15},
            "mlmc": {"base_steps": 3, "levels": 2, "target_stderr": 0.02,
                     "pilot": 2_000, "seed": 15,
                     "max_paths_per_level": 200_000},
        },
    ))

    # American put: no closed form — the lattice, the PSOR PDE solver and
    # LSM triangulate each other (the classic three-way American check).
    cases.append(VerifyCase(
        name="american-put-1d",
        workload=Workload("american-put-1d", m1, Put(100.0), 1.0),
        american=True,
        engines={
            "lattice": {"steps": 512},
            "pde": {"n_space": 256, "n_time": 128, "solver": "psor"},
            "lsm": {"n_paths": 40_000, "steps": 50, "degree": 3, "seed": 16},
        },
    ))

    return cases
