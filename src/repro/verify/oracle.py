"""Differential oracle harness: every engine family prices every corpus
contract it can, and all pairs must agree within statistically justified
tolerance bands.

Band policy (the part that makes the comparisons *honest* rather than
hand-tuned):

* **Monte Carlo families** (``mc``, ``qmc``, ``mlmc``, ``lsm``) — the band
  is ``z · stderr`` with a conservative ``z = 5``. Seeds are fixed by the
  corpus, so a run either passes forever or fails forever; the wide ``z``
  buys immunity to the one-in-a-million draw at snapshot time without
  masking real defects (an engine-constant perturbation moves the price by
  many bands — asserted in the tests). LSM additionally carries a small
  bias allowance: the estimator is known to be slightly low.
* **Discretized families** (``lattice``, ``pde``) — the band comes from
  Richardson-style step halving: price at resolution ``h`` and ``h/2``;
  for a scheme of order ``p`` the fine-grid error is approximately
  ``|P(h/2) − P(h)| / (2^p − 1)``, and the band is that estimate times a
  safety factor.
* **Closed forms** (``analytic``) — a pure-roundoff band.

Two engines *agree* when ``|price_a − price_b| ≤ band_a + band_b``.
Violations become :class:`Discrepancy` records naming the contract, the
engine pair and the exceeded band — the machine-readable failure the CI
gate uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import names
from repro.engine.registry import default_registry
from repro.errors import ValidationError
from repro.verify.contracts import VerifyCase, config_hash, default_corpus

__all__ = [
    "EngineCell",
    "Discrepancy",
    "OracleReport",
    "ORACLE_ADAPTERS",
    "run_case",
    "run_oracle",
    "MC_Z",
    "DISCRETIZATION_SAFETY",
]

#: Standard-error multiplier for Monte Carlo tolerance bands.
MC_Z = 5.0
#: Multiplier on the Richardson error estimate for lattice/PDE bands.
DISCRETIZATION_SAFETY = 2.0
#: Roundoff band for closed forms (relative, with an absolute floor).
ANALYTIC_RTOL = 1e-9
#: LSM low-bias allowance as a fraction of the price.
LSM_BIAS_FRACTION = 0.005


@dataclass(frozen=True)
class EngineCell:
    """One engine family's price for one case, with its tolerance band."""

    engine: str
    price: float
    band: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"engine": self.engine, "price": self.price, "band": self.band,
                "detail": dict(self.detail)}


@dataclass(frozen=True)
class Discrepancy:
    """A pairwise disagreement exceeding the combined band."""

    case: str
    engine_a: str
    engine_b: str
    price_a: float
    price_b: float
    diff: float
    allowed: float

    def __str__(self) -> str:
        return (f"{self.case}: {self.engine_a}={self.price_a:.6f} vs "
                f"{self.engine_b}={self.price_b:.6f} — |diff| {self.diff:.3e} "
                f"exceeds band {self.allowed:.3e}")

    def to_dict(self) -> dict:
        return {"case": self.case, "engine_a": self.engine_a,
                "engine_b": self.engine_b, "price_a": self.price_a,
                "price_b": self.price_b, "diff": self.diff,
                "allowed": self.allowed}


@dataclass
class OracleReport:
    """All engine cells plus every pairwise violation."""

    cells: dict = field(default_factory=dict)   # case -> {engine: EngineCell}
    hashes: dict = field(default_factory=dict)  # case -> config hash
    discrepancies: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cases": {
                name: {
                    "config_hash": self.hashes.get(name, ""),
                    "engines": {e: c.to_dict() for e, c in cells.items()},
                }
                for name, cells in self.cells.items()
            },
            "discrepancies": [d.to_dict() for d in self.discrepancies],
        }


# ----------------------------------------------------------------------
# Engine adapters
# ----------------------------------------------------------------------

def _analytic_value(case: VerifyCase, params: dict) -> float:
    from repro.analytic import (
        bs_price,
        geometric_asian_price,
        geometric_basket_price,
        kirk_spread_price,
        margrabe_price,
        rainbow_two_asset_price,
    )

    kind = params.get("kind")
    rest = {k: v for k, v in params.items() if k != "kind"}
    if kind == "bs":
        option = rest.pop("option", "call")
        return float(bs_price(**rest, option=option))
    if kind == "geometric-basket":
        w = case.workload
        return float(geometric_basket_price(w.model, w.payoff.weights,
                                            w.payoff.strike, w.expiry))
    if kind == "stulz":
        option = rest.pop("option")
        return float(rainbow_two_asset_price(
            rest.pop("spot1"), rest.pop("spot2"), rest.pop("strike"),
            rest.pop("vol1"), rest.pop("vol2"), rest.pop("rho"),
            rest.pop("rate"), rest.pop("expiry"), kind=option, **rest))
    if kind == "margrabe":
        return float(margrabe_price(**rest))
    if kind == "kirk":
        return float(kirk_spread_price(**rest))
    if kind == "geometric-asian":
        return float(geometric_asian_price(
            rest.pop("spot"), rest.pop("strike"), rest.pop("vol"),
            rest.pop("rate"), rest.pop("expiry"), rest.pop("steps"), **rest))
    raise ValidationError(f"unknown analytic kind {kind!r} for case {case.name}")


def _run_analytic(case: VerifyCase, params: dict) -> EngineCell:
    price = _analytic_value(case, params)
    band = max(abs(price) * ANALYTIC_RTOL, 1e-9)
    return EngineCell(names.ANALYTIC, price, band,
                      {"kind": params.get("kind", "")})


def _run_mc(case: VerifyCase, params: dict) -> EngineCell:
    from repro.mc import MonteCarloEngine

    w = case.workload
    engine = MonteCarloEngine(params["n_paths"], steps=params.get("steps"),
                              seed=params.get("seed", 0))
    r = engine.price(w.model, w.payoff, w.expiry)
    return EngineCell(names.MC, float(r.price), MC_Z * float(r.stderr),
                      {"stderr": float(r.stderr), "n_paths": r.n_paths,
                       "z": MC_Z})


def _run_qmc(case: VerifyCase, params: dict) -> EngineCell:
    from repro.mc import MonteCarloEngine, QMCSobol

    w = case.workload
    reps = params.get("replicates", 8)
    technique = QMCSobol(reps, seed=params.get("seed", 2027))
    engine = MonteCarloEngine(params["n_paths"], technique=technique,
                              steps=params.get("steps"))
    r = engine.price(w.model, w.payoff, w.expiry)
    return EngineCell(names.QMC, float(r.price), MC_Z * float(r.stderr),
                      {"stderr": float(r.stderr), "n_paths": r.n_paths,
                       "replicates": reps, "z": MC_Z})


def _run_mlmc(case: VerifyCase, params: dict) -> EngineCell:
    from repro.mc.multilevel import mlmc_price

    w = case.workload
    r = mlmc_price(w.model, w.payoff, w.expiry, **params)
    return EngineCell(names.MLMC, float(r.price), MC_Z * float(r.stderr),
                      {"stderr": float(r.stderr), "levels": r.levels,
                       "n_per_level": list(r.n_per_level), "z": MC_Z})


def _run_lattice(case: VerifyCase, params: dict) -> EngineCell:
    """Odd/even-averaged lattice price with a two-scale error band.

    Tree prices oscillate around the limit with the parity of the step
    count, so a single two-grid Richardson difference under-estimates the
    error (the classic failure mode — measured on this corpus). The
    standard remedy: report the average of ``P(n)`` and ``P(n+1)`` (the
    pair straddles the limit, cancelling the oscillation) and take the band
    from the half-gap plus the coarse-to-fine trend of that average.
    """
    from repro.lattice import beg_price, binomial_price

    w = case.workload
    steps = params["steps"]
    if steps < 4 or steps % 2:
        raise ValidationError(
            f"case {case.name}: lattice steps must be even and ≥ 4 for the "
            f"paired halving band, got {steps}")
    model = w.model
    if model.dim == 1:
        def run(n):
            return binomial_price(float(model.spots[0]), w.payoff,
                                  float(model.vols[0]), model.rate, w.expiry,
                                  n, american=case.american)
    else:
        def run(n):
            return beg_price(model, w.payoff, w.expiry, n,
                             american=case.american)
    pair_fine = (run(steps).price, run(steps + 1).price)
    pair_coarse = (run(steps // 2).price, run(steps // 2 + 1).price)
    price = 0.5 * (pair_fine[0] + pair_fine[1])
    osc = 0.5 * abs(pair_fine[1] - pair_fine[0])
    trend = abs(price - 0.5 * (pair_coarse[0] + pair_coarse[1]))
    band = max(DISCRETIZATION_SAFETY * (osc + trend), 1e-7)
    return EngineCell(names.LATTICE, float(price), float(band),
                      {"steps": steps, "pair": [float(v) for v in pair_fine],
                       "oscillation": float(osc), "trend": float(trend)})


def _run_pde(case: VerifyCase, params: dict) -> EngineCell:
    """Fine-grid PDE price with separately estimated time and space bands.

    Halving both dimensions at once lets the (opposite-signed) temporal
    splitting error and spatial truncation error cancel in the difference —
    measured on the ADI corpus case, where the mixed-derivative term makes
    the scheme first-order in Δτ. Halving each axis on its own keeps both
    contributions visible; the band is their sum times the safety factor.
    """
    from repro.pde import adi_price, fd_price

    w = case.workload
    model = w.model
    n_space, n_time = params["n_space"], params["n_time"]
    if n_space % 4 or n_time % 2:
        raise ValidationError(
            f"case {case.name}: pde needs n_space % 4 == 0 and even n_time "
            f"for the halving band, got ({n_space}, {n_time})")
    if model.dim == 1:
        solver = params.get("solver", "psor")

        def run(ns, nt):
            return fd_price(float(model.spots[0]), w.payoff,
                            float(model.vols[0]), model.rate, w.expiry,
                            n_space=ns, n_time=nt, american=case.american,
                            american_solver=solver)
    else:
        def run(ns, nt):
            return adi_price(model, w.payoff, w.expiry, n_space=ns,
                             n_time=nt, american=case.american)
    fine = run(n_space, n_time).price
    dt_diff = abs(run(n_space, n_time // 2).price - fine)
    dx_diff = abs(run(n_space // 2, n_time).price - fine)
    band = max(DISCRETIZATION_SAFETY * (dt_diff + dx_diff), 1e-7)
    return EngineCell(names.PDE, float(fine), float(band),
                      {"n_space": n_space, "n_time": n_time,
                       "dt_diff": float(dt_diff), "dx_diff": float(dx_diff)})


def _run_lsm(case: VerifyCase, params: dict) -> EngineCell:
    from repro.mc.american import lsm_price

    w = case.workload
    r = lsm_price(w.model, w.payoff, w.expiry, params["steps"],
                  params["n_paths"], degree=params.get("degree", 2),
                  seed=params.get("seed", 0))
    band = MC_Z * float(r.stderr) + LSM_BIAS_FRACTION * abs(float(r.price))
    return EngineCell(names.LSM, float(r.price), band,
                      {"stderr": float(r.stderr), "n_paths": r.n_paths,
                       "steps": params["steps"], "z": MC_Z,
                       "bias_fraction": LSM_BIAS_FRACTION})


#: Family name → corpus adapter. The registry's oracle hooks dispatch into
#: this table; keys are the canonical :mod:`repro.engine.names` constants.
ORACLE_ADAPTERS = {
    names.ANALYTIC: _run_analytic,
    names.MC: _run_mc,
    names.QMC: _run_qmc,
    names.MLMC: _run_mlmc,
    names.LATTICE: _run_lattice,
    names.PDE: _run_pde,
    names.LSM: _run_lsm,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def run_case(case: VerifyCase, *, engines=None) -> dict:
    """Price one case through every applicable engine family.

    ``engines`` optionally restricts to a subset of family names. Returns
    ``{family: EngineCell}``.
    """
    registry = default_registry()
    out: dict[str, EngineCell] = {}
    for family, params in case.engines.items():
        if engines is not None and family not in engines:
            continue
        spec = registry.get(family)
        if spec.oracle is None:
            raise ValidationError(
                f"engine {family!r} has no oracle adapter; reference "
                f"families: {registry.names(reference=True)}"
            )
        out[family] = spec.oracle(case, dict(params))
    return out


def compare_cells(case_name: str, cells: dict) -> list[Discrepancy]:
    """Pairwise agreement check over one case's engine cells."""
    found: list[Discrepancy] = []
    names = sorted(cells)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            ca, cb = cells[a], cells[b]
            diff = abs(ca.price - cb.price)
            allowed = ca.band + cb.band
            if diff > allowed:
                found.append(Discrepancy(case_name, a, b, ca.price, cb.price,
                                         diff, allowed))
    return found


def run_oracle(corpus=None, *, engines=None) -> OracleReport:
    """Run the differential harness over the corpus (default: the committed
    one) and collect every pairwise violation."""
    report = OracleReport()
    for case in (corpus if corpus is not None else default_corpus()):
        cells = run_case(case, engines=engines)
        report.cells[case.name] = cells
        report.hashes[case.name] = config_hash(case)
        report.discrepancies.extend(compare_cells(case.name, cells))
    return report
