"""Golden-master store: committed snapshots of the verification corpus.

A snapshot records, per case, the config hash plus every engine cell
(price, band, diagnostics). ``diff_golden`` re-prices the corpus and
compares each cell against its snapshot:

* **hash mismatch** — the case definition changed; the diff demands an
  intentional rebaseline (``repro verify --update``) instead of silently
  comparing different contracts.
* **price drift** — |new − golden| must stay within the cell's band (the
  larger of the recorded and recomputed bands, since both are estimates of
  the same engine's uncertainty). Seeded engines are bitwise stable, so in
  practice a clean run drifts by exactly 0.0 — the band only matters when
  an engine's internals legitimately changed within tolerance.
* **coverage changes** — cases or engines added/removed are reported
  explicitly, never ignored.

The snapshot is plain canonical JSON so that git diffs of a rebaseline are
reviewable number by number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError
from repro.verify.contracts import (VerifyCase, canonical_json, config_hash,
                                    default_corpus)
from repro.verify.oracle import run_case

__all__ = ["SNAPSHOT_VERSION", "GoldenDelta", "GoldenReport",
           "build_snapshot", "save_snapshot", "load_snapshot", "diff_golden"]

SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class GoldenDelta:
    """One cell-level (or case-level) difference against the snapshot."""

    case: str
    engine: str
    status: str  # "ok" | "drift" | "hash-mismatch" | "missing" | "extra"
    golden: float | None = None
    current: float | None = None
    diff: float | None = None
    allowed: float | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __str__(self) -> str:
        head = f"[{self.status}] {self.case}/{self.engine}"
        if self.diff is not None:
            head += (f": golden {self.golden:.6f} vs current "
                     f"{self.current:.6f} (|diff| {self.diff:.3e}, allowed "
                     f"{self.allowed:.3e})")
        return head + (f" — {self.detail}" if self.detail else "")

    def to_dict(self) -> dict:
        return {"case": self.case, "engine": self.engine,
                "status": self.status, "golden": self.golden,
                "current": self.current, "diff": self.diff,
                "allowed": self.allowed, "detail": self.detail}


@dataclass
class GoldenReport:
    """The full golden diff: every cell compared, failures first."""

    deltas: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(d.ok for d in self.deltas)

    @property
    def failures(self) -> list:
        return [d for d in self.deltas if not d.ok]

    def to_dict(self) -> dict:
        return {"ok": self.ok,
                "n_cells": len(self.deltas),
                "n_failures": len(self.failures),
                "deltas": [d.to_dict() for d in self.deltas]}


def build_snapshot(corpus: list[VerifyCase] | None = None, *,
                   cells_by_case: dict | None = None) -> dict:
    """Price the corpus and package it as a snapshot document.

    ``cells_by_case`` (case name → ``{engine: EngineCell}``) lets a caller
    that already ran the oracle reuse those prices instead of re-pricing.
    """
    corpus = default_corpus() if corpus is None else corpus
    cases = {}
    for case in corpus:
        cells = (cells_by_case or {}).get(case.name) or run_case(case)
        cases[case.name] = {
            "hash": config_hash(case),
            "engines": {name: cell.to_dict()
                        for name, cell in sorted(cells.items())},
        }
    return {"version": SNAPSHOT_VERSION, "cases": cases}


def save_snapshot(snapshot: dict, path: str | Path) -> None:
    """Write a snapshot as pretty canonical JSON (stable git diffs)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(json.loads(canonical_json(snapshot)),
                               indent=2, sort_keys=True) + "\n")


def load_snapshot(path: str | Path) -> dict:
    path = Path(path)
    if not path.exists():
        raise ValidationError(
            f"golden snapshot not found at {path}; run "
            "`repro verify --update` to create it")
    snapshot = json.loads(path.read_text())
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValidationError(
            f"golden snapshot {path} has version {version!r}; this build "
            f"reads version {SNAPSHOT_VERSION} — rebaseline with --update")
    return snapshot


def diff_golden(snapshot: dict, corpus: list[VerifyCase] | None = None, *,
                cells_by_case: dict | None = None) -> GoldenReport:
    """Re-price the corpus and diff every cell against the snapshot.

    ``cells_by_case`` reuses already-computed oracle cells (see
    :func:`build_snapshot`).
    """
    corpus = default_corpus() if corpus is None else corpus
    report = GoldenReport()
    golden_cases = dict(snapshot.get("cases", {}))

    for case in corpus:
        entry = golden_cases.pop(case.name, None)
        if entry is None:
            report.deltas.append(GoldenDelta(
                case.name, "*", "extra",
                detail="case not in snapshot; rebaseline with --update"))
            continue
        if entry.get("hash") != config_hash(case):
            report.deltas.append(GoldenDelta(
                case.name, "*", "hash-mismatch",
                detail="case definition changed; rebaseline with --update"))
            continue
        cells = (cells_by_case or {}).get(case.name) or run_case(case)
        golden_engines = dict(entry.get("engines", {}))
        for name in sorted(cells):
            cell = cells[name]
            gold = golden_engines.pop(name, None)
            if gold is None:
                report.deltas.append(GoldenDelta(
                    case.name, name, "extra",
                    current=cell.price,
                    detail="engine not in snapshot; rebaseline with --update"))
                continue
            diff = abs(cell.price - gold["price"])
            allowed = max(cell.band, gold["band"])
            status = "ok" if diff <= allowed else "drift"
            report.deltas.append(GoldenDelta(
                case.name, name, status, golden=gold["price"],
                current=cell.price, diff=diff, allowed=allowed))
        for name in sorted(golden_engines):
            report.deltas.append(GoldenDelta(
                case.name, name, "missing",
                golden=golden_engines[name]["price"],
                detail="engine in snapshot but no longer priced"))

    for name in sorted(golden_cases):
        report.deltas.append(GoldenDelta(
            name, "*", "missing",
            detail="case in snapshot but not in corpus"))
    return report
