"""Correctness-verification layer: the gate every refactor must pass.

Four pillars, one corpus:

* :mod:`repro.verify.contracts` — the canonical contract corpus and its
  config hashes;
* :mod:`repro.verify.oracle` — differential cross-engine pricing with
  statistically justified tolerance bands;
* :mod:`repro.verify.metamorphic` — financial identities and invariances
  (parity, monotonicity, homogeneity, dimension reduction, schedule
  invariance);
* :mod:`repro.verify.golden` — committed golden-master snapshots and the
  machine-readable diff behind ``repro verify``;
* :mod:`repro.verify.determinism` — bitwise replay checks across
  backends, fault injection and repeated runs;
* :mod:`repro.verify.batched` — the corpus replayed through the fused
  strip kernels, compared to the oracle cells bitwise.
"""

from repro.verify.batched import BatchedReplayResult, run_batched_replay
from repro.verify.contracts import (VerifyCase, canonical_json, config_hash,
                                    default_corpus, describe_case)
from repro.verify.determinism import (DeterminismResult, float_bits,
                                      run_determinism)
from repro.verify.golden import (GoldenDelta, GoldenReport, build_snapshot,
                                 diff_golden, load_snapshot, save_snapshot)
from repro.verify.metamorphic import PropertyResult, run_metamorphic
from repro.verify.oracle import (Discrepancy, EngineCell, OracleReport,
                                 run_case, run_oracle)

__all__ = [
    "VerifyCase", "canonical_json", "config_hash", "default_corpus",
    "describe_case",
    "EngineCell", "Discrepancy", "OracleReport", "run_case", "run_oracle",
    "PropertyResult", "run_metamorphic",
    "GoldenDelta", "GoldenReport", "build_snapshot", "diff_golden",
    "load_snapshot", "save_snapshot",
    "DeterminismResult", "float_bits", "run_determinism",
    "BatchedReplayResult", "run_batched_replay",
]
