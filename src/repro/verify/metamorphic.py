"""Metamorphic property suite: relations that must hold *between* priced
contracts, independent of any reference value.

Differential testing (the oracle harness) catches an engine drifting away
from the others; metamorphic testing catches the whole stack drifting
together. Each property is a financial identity or invariance with a known
justification:

* **put–call parity** — exact for closed forms; for Monte Carlo priced
  under common random numbers the parity residual is the sampling error of
  the forward, bounded by ``z·(se_call + se_put)``.
* **monotonicity** (strike ↓, vol ↑, maturity ↑) — exact under common
  random numbers for strike (the payoff is pointwise monotone, so the
  sample mean inherits the ordering deterministically), statistical for
  vol, exact for closed forms and American lattices.
* **payoff-scaling homogeneity** — GBM is scale-free: pricing
  ``(λS₀, λK)`` must equal ``λ·price(S₀, K)`` to floating-point accuracy,
  path by path, because simulated prices are linear in the spot.
* **dimension reduction** — a d-dim basket with all weight on one asset is
  that asset's vanilla option (exact for the geometric closed form,
  statistical across independent MC estimates).
* **schedule invariance** — pricing a book under block / cyclic / LPT /
  dynamic scheduling must give **bitwise identical** per-contract prices:
  contract *i* always prices on substream *i*, so only the makespan may
  move. This is the property every future scheduler change is gated on.

``run_metamorphic()`` executes the whole suite and returns a list of
:class:`PropertyResult`; any ``ok=False`` entry names the violated
property, the measured residual and the allowed tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analytic import bs_price, geometric_basket_price
from repro.market.gbm import MultiAssetGBM
from repro.mc import MonteCarloEngine
from repro.payoffs.basket import BasketCall, BasketPut
from repro.payoffs.vanilla import Call, Put
from repro.lattice import binomial_price

__all__ = ["PropertyResult", "run_metamorphic", "METAMORPHIC_CHECKS"]

#: Standard-error multiplier for the statistical tolerances.
Z = 5.0


@dataclass(frozen=True)
class PropertyResult:
    """Outcome of one metamorphic check."""

    prop: str
    subject: str
    ok: bool
    measured: float
    allowed: float
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "VIOLATED"
        return (f"[{status}] {self.prop} — {self.subject}: residual "
                f"{self.measured:.3e} (allowed {self.allowed:.3e})"
                + (f" — {self.detail}" if self.detail else ""))

    def to_dict(self) -> dict:
        return {"prop": self.prop, "subject": self.subject, "ok": self.ok,
                "measured": self.measured, "allowed": self.allowed,
                "detail": self.detail}


def _result(prop, subject, measured, allowed, detail="") -> PropertyResult:
    return PropertyResult(prop, subject, bool(measured <= allowed),
                          float(measured), float(allowed), detail)


def _basket_market(dim: int) -> MultiAssetGBM:
    return MultiAssetGBM.equicorrelated(dim, 100.0, 0.25, 0.05, 0.3)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

def check_put_call_parity(n_paths: int, seed: int) -> list[PropertyResult]:
    out = []
    # Closed form: C − P = S − K·e^{−rT}, exactly.
    c = bs_price(100.0, 100.0, 0.2, 0.05, 1.0, option="call")
    p = bs_price(100.0, 100.0, 0.2, 0.05, 1.0, option="put")
    rhs = 100.0 - 100.0 * math.exp(-0.05)
    out.append(_result("put-call-parity", "bs-analytic",
                       abs((c - p) - rhs), 1e-9))
    # MC basket under common random numbers: the parity residual is the
    # forward's sampling error.
    model = _basket_market(4)
    w = [0.25] * 4
    strike = 100.0
    rc = MonteCarloEngine(n_paths, seed=seed).price(model, BasketCall(w, strike), 1.0)
    rp = MonteCarloEngine(n_paths, seed=seed).price(model, BasketPut(w, strike), 1.0)
    rhs = float(np.dot(w, model.spots)) - strike * math.exp(-model.rate)
    tol = Z * (rc.stderr + rp.stderr)
    out.append(_result("put-call-parity", "mc-basket-d4",
                       abs((rc.price - rp.price) - rhs), tol,
                       f"C={rc.price:.6f} P={rp.price:.6f}"))
    return out


def check_strike_monotonicity(n_paths: int, seed: int) -> list[PropertyResult]:
    out = []
    strikes = (90.0, 100.0, 110.0)
    exact = [bs_price(100.0, k, 0.2, 0.05, 1.0) for k in strikes]
    worst = max(max(b - a, 0.0) for a, b in zip(exact, exact[1:]))
    out.append(_result("strike-monotonicity", "bs-analytic", worst, 0.0))
    # Common random numbers make the MC ordering deterministic: the payoff
    # is pointwise non-increasing in K, so the sample mean is too.
    model = _basket_market(4)
    prices = [MonteCarloEngine(n_paths, seed=seed)
              .price(model, BasketCall([0.25] * 4, k), 1.0).price
              for k in strikes]
    worst = max(max(b - a, 0.0) for a, b in zip(prices, prices[1:]))
    out.append(_result("strike-monotonicity", "mc-basket-d4 (CRN)", worst,
                       1e-12, f"prices={['%.6f' % p for p in prices]}"))
    return out


def check_vol_monotonicity(n_paths: int, seed: int) -> list[PropertyResult]:
    out = []
    vols = (0.15, 0.25, 0.35)
    exact = [bs_price(100.0, 100.0, v, 0.05, 1.0) for v in vols]
    worst = max(max(a - b, 0.0) for a, b in zip(exact, exact[1:]))
    out.append(_result("vol-monotonicity", "bs-analytic", worst, 0.0))
    results = []
    for v in vols:
        model = MultiAssetGBM.equicorrelated(4, 100.0, v, 0.05, 0.3)
        results.append(MonteCarloEngine(n_paths, seed=seed)
                       .price(model, BasketCall([0.25] * 4, 100.0), 1.0))
    worst, tol = 0.0, 0.0
    for a, b in zip(results, results[1:]):
        worst = max(worst, a.price - b.price)
        tol = max(tol, Z * (a.stderr + b.stderr))
    out.append(_result("vol-monotonicity", "mc-basket-d4", worst, tol))
    return out


def check_maturity_monotonicity(n_paths: int, seed: int) -> list[PropertyResult]:
    out = []
    expiries = (0.25, 0.5, 1.0, 2.0)
    exact = [bs_price(100.0, 100.0, 0.2, 0.05, t) for t in expiries]
    worst = max(max(a - b, 0.0) for a, b in zip(exact, exact[1:]))
    out.append(_result("maturity-monotonicity", "bs-analytic (call, r>0)",
                       worst, 0.0))
    # American put value is non-decreasing in maturity (more exercise
    # opportunity can never hurt) — checked on the lattice engine.
    am = [binomial_price(100.0, Put(100.0), 0.2, 0.05, t, 256,
                         american=True).price for t in expiries]
    worst = max(max(a - b, 0.0) for a, b in zip(am, am[1:]))
    out.append(_result("maturity-monotonicity", "binomial american put",
                       worst, 1e-12))
    return out


def check_scaling_homogeneity(n_paths: int, seed: int) -> list[PropertyResult]:
    out = []
    lam = 2.5
    a = bs_price(100.0, 100.0, 0.2, 0.05, 1.0)
    b = bs_price(lam * 100.0, lam * 100.0, 0.2, 0.05, 1.0)
    out.append(_result("scaling-homogeneity", "bs-analytic",
                       abs(b - lam * a), 1e-9 * lam * a))
    model = _basket_market(4)
    scaled = MultiAssetGBM.equicorrelated(4, lam * 100.0, 0.25, 0.05, 0.3)
    base = MonteCarloEngine(n_paths, seed=seed).price(
        model, BasketCall([0.25] * 4, 100.0), 1.0).price
    big = MonteCarloEngine(n_paths, seed=seed).price(
        scaled, BasketCall([0.25] * 4, lam * 100.0), 1.0).price
    # Same normals, linear path scaling: equality holds to roundoff.
    out.append(_result("scaling-homogeneity", "mc-basket-d4 (CRN)",
                       abs(big - lam * base), 1e-9 * abs(lam * base),
                       f"λ·base={lam * base:.9f} scaled={big:.9f}"))
    return out


def check_dimension_reduction(n_paths: int, seed: int) -> list[PropertyResult]:
    out = []
    model = _basket_market(4)
    degenerate = [1.0, 0.0, 0.0, 0.0]
    exact = geometric_basket_price(model, degenerate, 100.0, 1.0)
    vanilla = bs_price(100.0, 100.0, 0.25, 0.05, 1.0)
    out.append(_result("dimension-reduction", "geometric-basket vs bs",
                       abs(exact - vanilla), 1e-9))
    rd = MonteCarloEngine(n_paths, seed=seed).price(
        model, BasketCall(degenerate, 100.0), 1.0)
    m1 = MultiAssetGBM.single(100.0, 0.25, 0.05)
    r1 = MonteCarloEngine(n_paths, seed=seed).price(m1, Call(100.0), 1.0)
    tol = Z * (rd.stderr + r1.stderr)
    out.append(_result("dimension-reduction", "mc basket[1,0,0,0] vs 1-d",
                       abs(rd.price - r1.price), tol))
    return out


def check_schedule_invariance(n_paths: int, seed: int) -> list[PropertyResult]:
    from repro.core.portfolio import PortfolioPricer
    from repro.workloads import random_portfolio

    book = random_portfolio(6, dim=3, seed=seed)
    runs = {
        sched: PortfolioPricer(max(n_paths // 8, 1000), schedule=sched,
                               seed=seed).run(book, 3)
        for sched in ("block", "cyclic", "lpt", "dynamic")
    }
    base = runs["block"]
    worst = 0.0
    for sched, run in runs.items():
        for r_a, r_b in zip(base.results, run.results):
            worst = max(worst, abs(r_a.price - r_b.price))
    # Bitwise: schedules may only move the makespan, never the numbers.
    return [_result("schedule-invariance", "portfolio block/cyclic/lpt/dynamic",
                    worst, 0.0,
                    f"makespans={{{', '.join(f'{s}: {r.sim_time:.4g}' for s, r in runs.items())}}}")]


#: Name → check callable; each takes ``(n_paths, seed)``.
METAMORPHIC_CHECKS = {
    "put-call-parity": check_put_call_parity,
    "strike-monotonicity": check_strike_monotonicity,
    "vol-monotonicity": check_vol_monotonicity,
    "maturity-monotonicity": check_maturity_monotonicity,
    "scaling-homogeneity": check_scaling_homogeneity,
    "dimension-reduction": check_dimension_reduction,
    "schedule-invariance": check_schedule_invariance,
}


def run_metamorphic(*, n_paths: int = 30_000, seed: int = 7) -> list[PropertyResult]:
    """Run every metamorphic check; deterministic in ``(n_paths, seed)``."""
    results: list[PropertyResult] = []
    for check in METAMORPHIC_CHECKS.values():
        results.extend(check(n_paths, seed))
    return results
