"""Determinism checker: seeded runs must be **bitwise** reproducible.

The parallel layers promise more than statistical agreement — a seeded run
is a pure function of ``(seed, scheme, p)``, so its price must not change
by a single bit when the *execution* changes:

* serial vs thread vs process backends (same substreams, same reduction
  order);
* fault-free vs fault-injected-with-retry (each attempt replays a fresh
  copy of the rank task, so substreams are never consumed twice);
* degrade-mode replays (a degraded run is deterministic in its plan);
* repeated replays of every seeded engine (MC, QMC, MLMC, LSM, lattice,
  PDE) — including MLMC and LSM executed *inside* backend workers, which
  is how a real scaling run would ship them to a process pool;
* the serve layer: one batch vs many, serial vs chunked process maps, and
  a 100 % cache-hit replay must all produce the same quote bits;
* the execute-stage scheduler: static, LPT and work-stealing placements
  (on every backend, with and without fault retries) must agree bitwise,
  and the virtual-time steal schedule replays byte-identically from its
  seed.

A violation means a nondeterministic reduction (unordered sum, shared RNG
state, thread-dependent accumulation) crept in; the checker reports the
check, the differing executions, and the hex bit patterns side by side so
the drift is undeniable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.market.gbm import MultiAssetGBM
from repro.payoffs.asian import AsianGeometricCall
from repro.payoffs.basket import BasketCall
from repro.payoffs.vanilla import Call, Put

__all__ = ["DeterminismResult", "float_bits", "run_determinism",
           "DETERMINISM_CHECKS", "mlmc_worker", "lsm_worker"]


def float_bits(x: float) -> str:
    """IEEE-754 bit pattern of ``x`` as a hex string (bitwise identity)."""
    return struct.pack(">d", float(x)).hex()


@dataclass(frozen=True)
class DeterminismResult:
    """Outcome of one determinism check: a set of executions and their bits."""

    check: str
    subject: str
    ok: bool
    bits: dict  # execution label -> hex bit pattern
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.ok else "NONDETERMINISTIC"
        pat = ", ".join(f"{k}={v}" for k, v in self.bits.items())
        return (f"[{status}] {self.check} — {self.subject}: {pat}"
                + (f" — {self.detail}" if self.detail else ""))

    def to_dict(self) -> dict:
        return {"check": self.check, "subject": self.subject, "ok": self.ok,
                "bits": dict(self.bits), "detail": self.detail}


def _verdict(check, subject, bits, detail="") -> DeterminismResult:
    ok = len(set(bits.values())) == 1
    return DeterminismResult(check, subject, ok, dict(bits), detail)


# ----------------------------------------------------------------------
# Module-level workers: ProcessBackend pickles these, so they cannot be
# closures. Each takes a plain dict of settings and returns the price.
# ----------------------------------------------------------------------

def mlmc_worker(cfg: dict) -> float:
    """Price a 1-d discrete geometric Asian via MLMC from a settings dict."""
    from repro.mc.multilevel import mlmc_price

    model = MultiAssetGBM.single(cfg["spot"], cfg["vol"], cfg["rate"])
    result = mlmc_price(model, AsianGeometricCall(cfg["strike"]), cfg["expiry"],
                        base_steps=cfg["base_steps"], levels=cfg["levels"],
                        target_stderr=cfg["target_stderr"], pilot=cfg["pilot"],
                        seed=cfg["seed"],
                        max_paths_per_level=cfg["max_paths_per_level"])
    return result.price


def lsm_worker(cfg: dict) -> float:
    """Price a 1-d American put via Longstaff–Schwartz from a settings dict."""
    from repro.mc.american import lsm_price

    model = MultiAssetGBM.single(cfg["spot"], cfg["vol"], cfg["rate"])
    result = lsm_price(model, Put(cfg["strike"]), cfg["expiry"], cfg["steps"],
                       cfg["n_paths"], degree=cfg["degree"], seed=cfg["seed"])
    return result.price


MLMC_CFG = {"spot": 100.0, "vol": 0.2, "rate": 0.05, "strike": 100.0,
            "expiry": 1.0, "base_steps": 2, "levels": 2,
            "target_stderr": 0.05, "pilot": 256, "max_paths_per_level": 4096,
            "seed": 21}

LSM_CFG = {"spot": 100.0, "vol": 0.2, "rate": 0.05, "strike": 100.0,
           "expiry": 1.0, "steps": 10, "n_paths": 2000, "degree": 2,
           "seed": 22}


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------

def check_backend_invariance(n_paths: int, seed: int) -> list[DeterminismResult]:
    """ParallelMCPricer must be bitwise identical on every backend."""
    from repro.core.mc_parallel import ParallelMCPricer
    from repro.parallel.backends import make_backend

    model = MultiAssetGBM.equicorrelated(3, 100.0, 0.25, 0.05, 0.3)
    payoff = BasketCall([1 / 3] * 3, 100.0)
    bits = {}
    for name in ("serial", "thread", "process"):
        with make_backend(name, 2) as backend:
            pricer = ParallelMCPricer(n_paths, seed=seed, backend=backend)
            bits[name] = float_bits(pricer.price(model, payoff, 1.0, 4).price)
    return [_verdict("backend-invariance", "parallel-mc basket-d3 p=4", bits)]


def check_fault_invariance(n_paths: int, seed: int) -> list[DeterminismResult]:
    """A retried run equals the fault-free run; degrade replays stably."""
    from repro.core.mc_parallel import ParallelMCPricer
    from repro.parallel.faults import FaultPlan

    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    payoff = Call(100.0)

    def run(**kw):
        return ParallelMCPricer(n_paths, seed=seed, **kw).price(
            model, payoff, 1.0, 4).price

    out = [_verdict("fault-invariance", "retry == fault-free", {
        "fault-free": float_bits(run()),
        "retry-after-crash": float_bits(
            run(faults=FaultPlan.single_crash(1), policy="retry")),
    })]
    # Degrade drops paths so it differs from fault-free — but two replays
    # of the *same* degraded plan must be bitwise identical.
    degraded = {
        f"replay{i}": float_bits(
            run(faults=FaultPlan.single_crash(1, permanent=True),
                policy="degrade"))
        for i in range(2)
    }
    out.append(_verdict("fault-invariance", "degrade replay stable", degraded))
    return out


def check_engine_replay(n_paths: int, seed: int) -> list[DeterminismResult]:
    """Every seeded/deterministic engine prices identically twice in a row."""
    from repro.lattice import binomial_price
    from repro.mc import MonteCarloEngine, QMCSobol
    from repro.pde import fd_price

    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    runs = {
        "mc": lambda: MonteCarloEngine(n_paths, seed=seed).price(
            model, Call(100.0), 1.0).price,
        "qmc": lambda: MonteCarloEngine(
            4096, technique=QMCSobol(replicates=4, seed=seed)).price(
            model, Call(100.0), 1.0).price,
        "mlmc": lambda: mlmc_worker(MLMC_CFG),
        "lsm": lambda: lsm_worker(LSM_CFG),
        "lattice": lambda: binomial_price(100.0, Put(100.0), 0.2, 0.05, 1.0,
                                          128, american=True).price,
        "pde": lambda: fd_price(100.0, Put(100.0), 0.2, 0.05, 1.0,
                                n_space=64, n_time=32, american=True).price,
    }
    return [
        _verdict("engine-replay", name,
                 {f"run{i}": float_bits(fn()) for i in range(2)})
        for name, fn in runs.items()
    ]


def check_worker_invariance(n_paths: int, seed: int) -> list[DeterminismResult]:
    """MLMC and LSM shipped through backend workers stay bitwise identical.

    This is the cross-backend guarantee for the *stateful* estimators: the
    multilevel ladder and the regression both involve ordered reductions
    that would betray a threading bug immediately.
    """
    from repro.parallel.backends import make_backend

    out = []
    for label, worker, cfg in (("mc.multilevel", mlmc_worker, MLMC_CFG),
                               ("mc.american", lsm_worker, LSM_CFG)):
        bits = {}
        for name in ("serial", "thread", "process"):
            with make_backend(name, 2) as backend:
                prices = backend.map(worker, [dict(cfg), dict(cfg)])
            if float_bits(prices[0]) != float_bits(prices[1]):
                bits[f"{name}-intra"] = "mismatch"
            bits[name] = float_bits(prices[0])
        out.append(_verdict("worker-invariance", label, bits))
    return out


def check_serve_batching(n_paths: int, seed: int) -> list[DeterminismResult]:
    """The serve layer must never move a price: a quote is a pure function
    of its request config, bitwise independent of batch boundaries, chunk
    size, backend, and cache state (including a 100 % cache-hit replay).
    """
    import hashlib

    from repro.parallel.backends import make_backend
    from repro.serve import PriceCache, PricingRequest, PricingService
    from repro.workloads.generators import random_portfolio

    book = random_portfolio(8, seed=seed)
    requests = [PricingRequest(w, engine="mc", n_paths=max(n_paths // 8, 256),
                               seed=seed + i, p=2, name=w.name)
                for i, w in enumerate(book)]

    def digest(quotes):
        joined = "|".join(float_bits(q.price) for q in quotes)
        return hashlib.sha256(joined.encode()).hexdigest()[:16]

    bits = {}
    with PricingService(max_batch=len(requests), cache=None) as svc:
        bits["one-batch-serial"] = digest(svc.price_many(requests))
    with PricingService(max_batch=3, cache=None) as svc:
        bits["small-batches"] = digest(svc.price_many(requests))
    with make_backend("process", 2) as backend:
        with PricingService(backend, max_batch=len(requests),
                            chunksize=2, cache=None) as svc:
            bits["process-chunked"] = digest(svc.price_many(requests))
    cache = PriceCache(64)
    with PricingService(max_batch=len(requests), cache=cache) as svc:
        bits["cache-cold"] = digest(svc.price_many(requests))
        bits["cache-replay"] = digest(svc.price_many(requests))
        replay_maps = svc.map_calls
    detail = "" if replay_maps == 1 else (
        f"cache-hit replay issued {replay_maps - 1} extra map call(s)")
    out = [_verdict("serve-batching", "mc book of 8, digest of price bits",
                    bits, detail)]
    if detail:
        out[0] = DeterminismResult(out[0].check, out[0].subject, False,
                                   out[0].bits, detail)
    return out


def check_strip_batching(n_paths: int, seed: int) -> list[DeterminismResult]:
    """Fused contract strips must price bitwise like their single runs.

    Three angles: the engine layer (``run_strip`` vs ``run_engine`` for MC
    and the lattice), and the serve layer (a ``batched=True`` service vs
    the single-request service over one strip-shaped book, compared by
    price-bit digest — ``sim_time`` legitimately differs, it describes the
    fused run).
    """
    import hashlib

    from repro.core.lattice_parallel import ParallelLatticePricer
    from repro.core.mc_parallel import ParallelMCPricer
    from repro.engine.lattice import LatticeEngine
    from repro.engine.mc import MCEngine
    from repro.engine.runner import run_engine, run_strip
    from repro.serve import PricingRequest, PricingService
    from repro.workloads.generators import strike_strip

    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    payoffs = [Call(90.0), Call(100.0), Call(110.0), Put(100.0)]
    out = []

    mc = ParallelMCPricer(max(n_paths // 8, 256), seed=seed)
    singles = [run_engine(MCEngine(mc), model, py, 1.0, 4).price
               for py in payoffs]
    fused = [r.price for r in run_strip(MCEngine(mc), model, payoffs, 1.0, 4)]
    out.append(_verdict("strip-batching", "mc strip of 4, p=4", {
        "singles": "|".join(float_bits(x) for x in singles),
        "fused": "|".join(float_bits(x) for x in fused),
    }))

    lat = ParallelLatticePricer(96)
    singles = [run_engine(LatticeEngine(lat), model, py, 1.0, 3).price
               for py in payoffs]
    fused = [r.price
             for r in run_strip(LatticeEngine(lat), model, payoffs, 1.0, 3)]
    out.append(_verdict("strip-batching", "lattice strip of 4, p=3", {
        "singles": "|".join(float_bits(x) for x in singles),
        "fused": "|".join(float_bits(x) for x in fused),
    }))

    # One shared model and seed across the book, so the whole stream
    # groups into a single strip on the batched path.
    requests = [PricingRequest(w, engine="mc",
                               n_paths=max(n_paths // 16, 256),
                               seed=seed, p=2, name=w.name)
                for w in strike_strip(12)]

    def digest(quotes):
        joined = "|".join(float_bits(q.price) + float_bits(q.stderr)
                          for q in quotes)
        return hashlib.sha256(joined.encode()).hexdigest()[:16]

    bits = {}
    with PricingService(max_batch=len(requests), cache=None) as svc:
        bits["single-path"] = digest(svc.price_many(requests))
    with PricingService(max_batch=len(requests), cache=None,
                        batched=True) as svc:
        bits["batched-path"] = digest(svc.price_many(requests))
        batched_maps = svc.map_calls
    detail = "" if batched_maps == 1 else (
        f"batched service issued {batched_maps} map calls for one batch")
    verdict = _verdict("strip-batching", "serve 12-strike strip, digest",
                       bits, detail)
    if detail:
        verdict = DeterminismResult(verdict.check, verdict.subject, False,
                                    verdict.bits, detail)
    out.append(verdict)
    return out


def check_gateway(n_paths: int, seed: int) -> list[DeterminismResult]:
    """Two priced virtual-time gateway runs of one seeded overload
    schedule must agree **bitwise**: identical price streams (every
    completed quote's price+stderr bits, sequence-ordered) and identical
    admit/shed/done decision logs. Catches nondeterminism anywhere in
    the serving stack — routing, lane ordering, admission arithmetic,
    per-shard caches, or the engines underneath."""
    from repro.gateway.loadgen import CostModel, LoadgenConfig, open_loop_schedule
    from repro.gateway.simulate import run_schedule

    cost = CostModel()
    cfg = LoadgenConfig(seed=seed, rate=420.0, duration_s=0.6,
                        n_paths=max(n_paths // 40, 250), unique=False)

    def one_run():
        res = run_schedule(open_loop_schedule(cfg), n_shards=2, cost=cost,
                           duration_s=cfg.duration_s, max_queue=16,
                           priced=True)
        return res.price_stream_digest(), res.decision_log_digest()

    prices_a, decisions_a = one_run()
    prices_b, decisions_b = one_run()
    return [
        _verdict("gateway", "2-shard priced replay, price stream digest",
                 {"run-a": prices_a, "run-b": prices_b}),
        _verdict("gateway", "2-shard priced replay, decision log digest",
                 {"run-a": decisions_a, "run-b": decisions_b}),
    ]


def check_risk(n_paths: int, seed: int) -> list[DeterminismResult]:
    """Seeded risk sweeps must replay **bitwise**: the full-revaluation
    P&L vector digest (base + every scenario value through the shared
    price cache) and the priced gateway drive of the same sweep (price
    stream + decision log). Catches drift in the shock generators, the
    PSD repair, the revaluation batching, and the lane-tagged bridge."""
    from repro.risk.bridge import run_risk_sweep
    from repro.risk.scenarios import stress_scenarios
    from repro.risk.var import revalue_book
    from repro.workloads.generators import strike_strip

    book = strike_strip(3, dim=2)
    scenarios = stress_scenarios(2, 5, seed=seed)
    paths = max(n_paths // 40, 250)

    reports = [revalue_book(book, scenarios, n_paths=paths, seed=seed,
                            levels=(0.95,))
               for _ in range(2)]
    out = [_verdict("risk", "full-revaluation pnl digest, 5 scenarios",
                    {"run-a": reports[0].pnl_digest(),
                     "run-b": reports[1].pnl_digest()})]

    def one_sweep():
        res = run_risk_sweep(book, scenarios, n_shards=2, n_paths=paths,
                             seed=seed, priced=True)
        return res.price_stream_digest(), res.decision_log_digest()

    prices_a, decisions_a = one_sweep()
    prices_b, decisions_b = one_sweep()
    out.append(_verdict("risk", "gateway sweep, price stream digest",
                        {"run-a": prices_a, "run-b": prices_b}))
    out.append(_verdict("risk", "gateway sweep, decision log digest",
                        {"run-a": decisions_a, "run-b": decisions_b}))
    return out


def check_scheduler(n_paths: int, seed: int) -> list[DeterminismResult]:
    """Scheduling is placement only: a scheduled run must price bitwise
    like the static run on every backend, a stolen task that faults and
    retries must still land on the fault-free bits, and the virtual-time
    steal schedule itself must be a pure function of its seed."""
    from repro.core.mc_parallel import ParallelMCPricer
    from repro.parallel.backends import make_backend
    from repro.parallel.faults import FaultPlan
    from repro.parallel.sched import simulate_schedule

    model = MultiAssetGBM.equicorrelated(3, 100.0, 0.25, 0.05, 0.3)
    payoff = BasketCall([1 / 3] * 3, 100.0)

    def run(backend=None, **kw):
        pricer = ParallelMCPricer(n_paths, seed=seed, backend=backend, **kw)
        return float_bits(pricer.price(model, payoff, 1.0, 6).price)

    out = []
    # Every (strategy, backend) cell against the serial static reference.
    bits = {"static-serial": run()}
    for strategy in ("lpt", "steal"):
        for name in ("serial", "thread", "process"):
            with make_backend(name, 2) as backend:
                bits[f"{strategy}-{name}"] = run(backend=backend,
                                                 scheduler=strategy)
    out.append(_verdict("scheduler", "parallel-mc basket-d3 p=6, "
                                     "strategy x backend", bits))

    # A crash under stealing retries on the same bits as fault-free static.
    with make_backend("thread", 2) as backend:
        out.append(_verdict("scheduler", "steal + retry == fault-free", {
            "fault-free": bits["static-serial"],
            "steal-retry": run(backend=backend, scheduler="steal",
                               faults=FaultPlan.single_crash(1),
                               policy="retry"),
        }))

    # The simulated steal schedule replays byte-identically from its seed.
    costs = [float((7 * i) % 11 + 1) for i in range(24)]
    digests = {
        f"replay{i}": simulate_schedule(costs, 4, strategy="steal",
                                        seed=seed).digest()
        for i in range(2)
    }
    out.append(_verdict("scheduler", "virtual steal schedule digest",
                        digests))
    return out


#: Name → check callable; each takes ``(n_paths, seed)``.
DETERMINISM_CHECKS = {
    "backend-invariance": check_backend_invariance,
    "fault-invariance": check_fault_invariance,
    "engine-replay": check_engine_replay,
    "worker-invariance": check_worker_invariance,
    "serve-batching": check_serve_batching,
    "strip-batching": check_strip_batching,
    "gateway": check_gateway,
    "risk": check_risk,
    "scheduler": check_scheduler,
}


def run_determinism(*, n_paths: int = 20_000, seed: int = 17,
                    batched: bool = True) -> list[DeterminismResult]:
    """Run every determinism check; deterministic in ``(n_paths, seed)``.

    ``batched=False`` skips the ``strip-batching`` check (the CLI's
    ``--batched`` toggle maps here), keeping pre-strip replay timings.
    """
    results: list[DeterminismResult] = []
    for name, check in DETERMINISM_CHECKS.items():
        if name == "strip-batching" and not batched:
            continue
        results.extend(check(n_paths, seed))
    return results
