"""Variance-reduction techniques as pluggable estimator strategies.

A :class:`Technique` turns ``(model, payoff, expiry, n, gen[, steps])`` into
a mergeable *partial* (see :mod:`repro.mc.statistics`) and later finalizes
merged partials into ``(price, stderr, n)``. The two-phase shape is exactly
what the parallel pricer needs: every rank calls :meth:`partial` on its own
substream and slice of paths; partials are tree-reduced; rank 0 finalizes.
The sequential engine uses the same code path with a single "rank".

Implemented techniques (evaluated against each other in experiment T5):

* :class:`PlainMC` — the baseline estimator.
* :class:`Antithetic` — pairs each Gaussian draw with its negation; exact
  for odd payoff components, ~2× variance reduction for monotone payoffs.
* :class:`ControlVariate` — regression-adjusts against a payoff with known
  discounted expectation (e.g. geometric basket against arithmetic basket).
* :class:`Stratified` — stratifies the first principal Gaussian coordinate
  into equal-probability strata with proportional allocation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.statistics import CrossStats, SampleStats, StrataStats
from repro.payoffs.base import Payoff
from repro.rng.base import BitGenerator
from repro.utils.numerics import norm_ppf
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["Technique", "PlainMC", "Antithetic", "ControlVariate", "Stratified"]


def _discounted_payoffs(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    z: np.ndarray,
    steps: int | None,
) -> np.ndarray:
    """Map iid normals to discounted payoff samples.

    ``z`` has shape (n, d) for terminal payoffs or (n, m, d) for
    path-dependent ones; the discount factor is applied here so partials
    accumulate present values.
    """
    df = float(np.exp(-model.rate * expiry))
    if payoff.is_path_dependent:
        if steps is None:
            raise ValidationError(
                f"{type(payoff).__name__} is path-dependent: pass steps= to the engine"
            )
        paths = model.paths_from_normals(z, expiry, steps)
        return df * payoff.path(paths)
    prices = model.terminal_from_normals(z, expiry)
    return df * payoff.terminal(prices)


def _draw_normals(
    model: MultiAssetGBM, gen: BitGenerator, n: int, steps: int | None, path_dependent: bool
) -> np.ndarray:
    if path_dependent:
        if steps is None:
            raise ValidationError("path-dependent payoff requires steps")
        return gen.normals(n * steps * model.dim).reshape(n, steps, model.dim)
    return gen.normals(n * model.dim).reshape(n, model.dim)


class Technique(abc.ABC):
    """Estimator strategy: produce mergeable partials, then finalize."""

    #: Short name used in results and benchmark tables.
    name: str = "technique"

    @abc.abstractmethod
    def partial(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        n: int,
        gen: BitGenerator,
        *,
        steps: int | None = None,
    ):
        """Simulate ``n`` paths on ``gen`` and return a mergeable partial."""

    @abc.abstractmethod
    def combine(self, parts: list):
        """Merge a list of partials into one (associative)."""

    @abc.abstractmethod
    def finalize(self, part) -> tuple[float, float, int]:
        """Turn a merged partial into ``(price, stderr, n_paths)``."""

    # Sequential convenience used by the engine and tests.
    def estimate(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        n: int,
        gen: BitGenerator,
        *,
        steps: int | None = None,
        batch_size: int = 1 << 18,
    ) -> tuple[float, float, int]:
        check_positive_int("n", n)
        check_positive("expiry", expiry)
        parts = []
        done = 0
        while done < n:
            b = min(batch_size, n - done)
            parts.append(self.partial(model, payoff, expiry, b, gen, steps=steps))
            done += b
        return self.finalize(self.combine(parts))


class PlainMC(Technique):
    """Crude Monte Carlo: iid paths, sample mean."""

    name = "plain"

    def partial(self, model, payoff, expiry, n, gen, *, steps=None) -> SampleStats:
        z = _draw_normals(model, gen, n, steps, payoff.is_path_dependent)
        return SampleStats.from_values(_discounted_payoffs(model, payoff, expiry, z, steps))

    def combine(self, parts: list[SampleStats]) -> SampleStats:
        out = SampleStats()
        for p in parts:
            out = out.merge(p)
        return out

    def finalize(self, part: SampleStats) -> tuple[float, float, int]:
        return part.mean, part.stderr, part.n


class Antithetic(Technique):
    """Antithetic variates: each draw ``z`` is paired with ``−z``.

    ``n`` paths means ``n/2`` independent pairs; the estimator averages the
    pair means, whose variance reflects the (typically negative) intra-pair
    covariance. Requires even ``n``.
    """

    name = "antithetic"

    def partial(self, model, payoff, expiry, n, gen, *, steps=None) -> SampleStats:
        if n % 2:
            raise ValidationError("antithetic sampling requires an even path count")
        half = n // 2
        z = _draw_normals(model, gen, half, steps, payoff.is_path_dependent)
        y_plus = _discounted_payoffs(model, payoff, expiry, z, steps)
        y_minus = _discounted_payoffs(model, payoff, expiry, -z, steps)
        # The iid units are the pair averages.
        return SampleStats.from_values(0.5 * (y_plus + y_minus))

    def combine(self, parts: list[SampleStats]) -> SampleStats:
        out = SampleStats()
        for p in parts:
            out = out.merge(p)
        return out

    def finalize(self, part: SampleStats) -> tuple[float, float, int]:
        # part.n counts pairs; report paths.
        return part.mean, part.stderr, 2 * part.n


class ControlVariate(Technique):
    """Control-variate estimator with a known-mean control payoff.

    Parameters
    ----------
    control : a :class:`Payoff` evaluated on the *same* paths as the target.
    control_mean : its exact discounted expectation (from
        :mod:`repro.analytic`).

    The regression coefficient β is computed from the globally merged
    cross-moments, so parallel and sequential runs produce the same
    estimator.
    """

    name = "control-variate"

    def __init__(self, control: Payoff, control_mean: float):
        if not isinstance(control, Payoff):
            raise ValidationError("control must be a Payoff instance")
        self.control = control
        self.control_mean = float(control_mean)

    def partial(self, model, payoff, expiry, n, gen, *, steps=None) -> CrossStats:
        if self.control.dim != payoff.dim:
            raise ValidationError(
                f"control dim {self.control.dim} != payoff dim {payoff.dim}"
            )
        path_dep = payoff.is_path_dependent or self.control.is_path_dependent
        if path_dep and steps is None:
            raise ValidationError("path-dependent control variate requires steps")
        df = float(np.exp(-model.rate * expiry))
        z = _draw_normals(model, gen, n, steps, path_dep)
        if path_dep:
            paths = model.paths_from_normals(z, expiry, steps)
            y = df * (payoff.path(paths) if payoff.is_path_dependent
                      else payoff.terminal(paths[:, -1, :]))
            x = df * (self.control.path(paths) if self.control.is_path_dependent
                      else self.control.terminal(paths[:, -1, :]))
        else:
            prices = model.terminal_from_normals(z, expiry)
            y = df * payoff.terminal(prices)
            x = df * self.control.terminal(prices)
        return CrossStats.from_values(y, x)

    def combine(self, parts: list[CrossStats]) -> CrossStats:
        out = CrossStats()
        for p in parts:
            out = out.merge(p)
        return out

    def finalize(self, part: CrossStats) -> tuple[float, float, int]:
        mean, stderr = part.adjusted(self.control_mean)
        return mean, stderr, part.n


class Stratified(Technique):
    """Proportional stratification of the first Gaussian coordinate.

    The unit hypercube's first axis is split into ``n_strata``
    equal-probability bins; within stratum ``l`` the first uniform is drawn
    from ``[l/L, (l+1)/L)`` and mapped through Φ⁻¹, the remaining
    coordinates stay iid. Effective for payoffs whose variance loads on the
    first asset (or on the first principal direction after the Cholesky
    rotation places the heaviest weight there).
    """

    name = "stratified"

    def __init__(self, n_strata: int = 16):
        self.n_strata = check_positive_int("n_strata", n_strata)

    def partial(self, model, payoff, expiry, n, gen, *, steps=None) -> StrataStats:
        if payoff.is_path_dependent:
            raise ValidationError(
                "Stratified currently supports terminal payoffs only; "
                "use QMCSobol for path-dependent contracts"
            )
        lcount = self.n_strata
        if n % lcount:
            raise ValidationError(
                f"path count {n} must be a multiple of n_strata={lcount}"
            )
        per = n // lcount
        d = model.dim
        out = StrataStats.empty(lcount)
        for l_idx in range(lcount):
            u = gen.uniforms_open(per)
            u0 = (l_idx + u) / lcount
            z = np.empty((per, d), dtype=float)
            z[:, 0] = norm_ppf(u0)
            if d > 1:
                z[:, 1:] = gen.normals(per * (d - 1)).reshape(per, d - 1)
            y = _discounted_payoffs(model, payoff, expiry, z, steps=None)
            out = out.add_stratum_values(l_idx, y)
        return out

    def combine(self, parts: list[StrataStats]) -> StrataStats:
        out = StrataStats.empty(self.n_strata)
        for p in parts:
            out = out.merge(p)
        return out

    def finalize(self, part: StrataStats) -> tuple[float, float, int]:
        return part.mean, part.stderr, part.n
