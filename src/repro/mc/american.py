"""Longstaff–Schwartz (2001) least-squares Monte Carlo for American and
Bermudan exercise.

Backward induction over the monitoring grid: at each exercise date the
continuation value is regressed (least squares on a polynomial basis of the
current asset prices, in-the-money paths only) against the realized
discounted future cash flow; exercise wherever intrinsic ≥ fitted
continuation. The resulting stopping rule gives the standard (slightly
low-biased) LSM estimator.

Multi-asset support comes from a tensor polynomial basis with cross terms —
the 2-asset Bermudan max-call of the evaluation (experiment F8) regresses on
``{1, S₁, S₂, S₁², S₂², S₁S₂, ...}``.
"""

from __future__ import annotations

import math
from itertools import combinations_with_replacement

import numpy as np

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.result import MCResult
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32
from repro.rng.base import BitGenerator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LongstaffSchwartz", "lsm_price", "polynomial_features"]


def polynomial_features(prices: np.ndarray, degree: int, scale: np.ndarray) -> np.ndarray:
    """Design matrix of monomials up to total degree ``degree``.

    ``prices`` is (n, d); features are products of the *scaled* prices
    ``S_i / scale_i`` (scaling keeps the normal equations well conditioned).
    Column 0 is the constant. For d = 2, degree = 2 the columns are
    ``1, x₁, x₂, x₁², x₁x₂, x₂²``.
    """
    p = np.asarray(prices, dtype=float)
    if p.ndim != 2:
        raise ValidationError("prices must be (n, d)")
    if degree < 1:
        raise ValidationError(f"degree must be ≥ 1, got {degree}")
    x = p / np.asarray(scale, dtype=float)[None, :]
    n, d = x.shape
    cols = [np.ones(n)]
    for deg in range(1, degree + 1):
        for combo in combinations_with_replacement(range(d), deg):
            col = np.ones(n)
            for idx in combo:
                col = col * x[:, idx]
            cols.append(col)
    return np.column_stack(cols)


class LongstaffSchwartz:
    """LSM pricer for Bermudan/American contracts.

    Parameters
    ----------
    degree : total degree of the regression polynomial (2 is the classical
        choice; 3 tightens the max-call results at some cost).
    itm_only : regress on in-the-money paths only (Longstaff & Schwartz's
        original recommendation; markedly better conditioning).
    min_regression_paths : below this many ITM paths the regression is
        skipped for that date (continuation kept), avoiding degenerate fits.
    """

    def __init__(self, degree: int = 2, *, itm_only: bool = True,
                 min_regression_paths: int = 32):
        self.degree = check_positive_int("degree", degree)
        self.itm_only = bool(itm_only)
        self.min_regression_paths = check_positive_int(
            "min_regression_paths", min_regression_paths
        )

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        steps: int,
        n_paths: int,
        *,
        gen: BitGenerator | None = None,
        seed: int = 0,
        paths: np.ndarray | None = None,
    ) -> MCResult:
        """Price with ``steps`` exercise dates (Bermudan; large ``steps``
        approximates American).

        ``paths`` may be supplied directly (shape (n, steps+1, d)) — the
        parallel pricer uses this to price rank-local path blocks.
        """
        check_positive("expiry", expiry)
        m = check_positive_int("steps", steps)
        n = check_positive_int("n_paths", n_paths)
        if payoff.dim != model.dim:
            raise ValidationError(
                f"payoff dim {payoff.dim} does not match model dim {model.dim}"
            )
        if paths is None:
            generator = gen if gen is not None else Philox4x32(seed, stream=0xA)
            paths = model.sample_paths(generator, n, expiry, m)
        else:
            paths = np.asarray(paths, dtype=float)
            if paths.shape != (n, m + 1, model.dim):
                raise ValidationError(
                    f"paths must have shape ({n}, {m + 1}, {model.dim}), got {paths.shape}"
                )
        dt = expiry / m
        disc = math.exp(-model.rate * dt)

        # cash[i] = cash flow of path i at step tau[i] (as-of that date).
        cash = payoff.intrinsic(paths[:, -1, :])
        tau = np.full(n, m, dtype=np.int64)

        for t in range(m - 1, 0, -1):
            s_t = paths[:, t, :]
            intrinsic = payoff.intrinsic(s_t)
            candidates = intrinsic > 0.0 if self.itm_only else np.ones(n, dtype=bool)
            n_cand = int(candidates.sum())
            if n_cand < self.min_regression_paths:
                continue
            # Realized discounted continuation value along each path.
            realized = cash * np.power(disc, tau - t)
            x_mat = polynomial_features(s_t[candidates], self.degree, model.spots)
            coef, *_ = np.linalg.lstsq(x_mat, realized[candidates], rcond=None)
            continuation = x_mat @ coef
            exercise_now = np.zeros(n, dtype=bool)
            exercise_now[candidates] = intrinsic[candidates] >= continuation
            exercise_now &= intrinsic > 0.0
            cash = np.where(exercise_now, intrinsic, cash)
            tau = np.where(exercise_now, t, tau)

        pv = cash * np.exp(-model.rate * dt * tau)
        price = float(pv.mean())
        stderr = float(pv.std(ddof=1) / math.sqrt(n))
        # Immediate exercise at t=0 dominates when intrinsic beats the MC value.
        intrinsic0 = float(payoff.intrinsic(paths[:, 0, :])[0])
        if intrinsic0 > price:
            price = intrinsic0
        return MCResult(
            price=price,
            stderr=stderr,
            n_paths=n,
            technique="lsm",
            meta={"degree": self.degree, "steps": m, "itm_only": self.itm_only},
        )


def lsm_price(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    steps: int,
    n_paths: int,
    *,
    degree: int = 2,
    seed: int = 0,
) -> MCResult:
    """Functional wrapper around :class:`LongstaffSchwartz`."""
    return LongstaffSchwartz(degree).price(
        model, payoff, expiry, steps, n_paths, seed=seed
    )
