"""Monte Carlo Greeks.

Two estimators, each validated against the analytic BSM Greeks in the test
suite:

* :func:`mc_greeks_bump` — central finite differences with **common random
  numbers**: every revaluation reuses the same Gaussian draws (via cloned
  generators), which cancels the O(σ/√N) noise of independent revaluations
  and leaves the O(h²) bias of the central difference.
* :func:`mc_delta_pathwise` — the pathwise (infinitesimal-perturbation)
  delta for contracts whose payoff is a.e. differentiable in the spot:
  vanilla and basket calls/puts. Unbiased and needs no bump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.variance_reduction import PlainMC, Technique
from repro.payoffs.base import Payoff
from repro.payoffs.basket import BasketCall, BasketPut
from repro.payoffs.vanilla import Call, Put
from repro.rng import Philox4x32
from repro.rng.base import BitGenerator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["MCGreeks", "mc_greeks_bump", "mc_delta_pathwise",
           "mc_delta_likelihood_ratio"]


@dataclass(frozen=True)
class MCGreeks:
    """Bump-and-revalue Greeks for a multi-asset contract."""

    price: float
    stderr: float
    delta: np.ndarray
    gamma: np.ndarray
    vega: np.ndarray
    n_paths: int
    meta: dict = field(default_factory=dict)


def _price_with(
    technique: Technique,
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    n_paths: int,
    gen: BitGenerator,
    steps: int | None,
) -> tuple[float, float]:
    mean, stderr, _ = technique.estimate(model, payoff, expiry, n_paths, gen, steps=steps)
    return mean, stderr


def mc_greeks_bump(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    n_paths: int,
    *,
    seed: int = 0,
    rel_bump: float = 0.01,
    vol_bump: float = 0.01,
    steps: int | None = None,
    technique: Technique | None = None,
) -> MCGreeks:
    """Price, per-asset delta/gamma and per-asset vega by CRN bumping.

    ``rel_bump`` is the relative spot bump ``h_i = rel_bump · S_i(0)``;
    ``vol_bump`` is the absolute volatility bump. Every valuation re-runs
    the same generator clone, so differences are smooth in the bump.
    """
    check_positive("expiry", expiry)
    check_positive_int("n_paths", n_paths)
    check_positive("rel_bump", rel_bump)
    check_positive("vol_bump", vol_bump)
    tech = technique if technique is not None else PlainMC()
    master = Philox4x32(seed, stream=0xD)

    def value(m: MultiAssetGBM) -> tuple[float, float]:
        return _price_with(tech, m, payoff, expiry, n_paths, master.clone(), steps)

    price, stderr = value(model)
    d = model.dim
    delta = np.empty(d)
    gamma = np.empty(d)
    vega = np.empty(d)
    for i in range(d):
        h = rel_bump * float(model.spots[i])
        up_spots = model.spots.copy()
        dn_spots = model.spots.copy()
        up_spots[i] += h
        dn_spots[i] -= h
        p_up, _ = value(model.with_spots(up_spots))
        p_dn, _ = value(model.with_spots(dn_spots))
        delta[i] = (p_up - p_dn) / (2.0 * h)
        gamma[i] = (p_up - 2.0 * price + p_dn) / (h * h)

        up_vols = model.vols.copy()
        dn_vols = model.vols.copy()
        up_vols[i] += vol_bump
        dn_vols[i] = max(dn_vols[i] - vol_bump, 1e-8)
        v_up, _ = value(model.with_vols(up_vols))
        v_dn, _ = value(model.with_vols(dn_vols))
        vega[i] = (v_up - v_dn) / (float(up_vols[i]) - float(dn_vols[i]))
    return MCGreeks(
        price=price,
        stderr=stderr,
        delta=delta,
        gamma=gamma,
        vega=vega,
        n_paths=n_paths,
        meta={"rel_bump": rel_bump, "vol_bump": vol_bump, "technique": tech.name},
    )


def mc_delta_pathwise(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    n_paths: int,
    *,
    seed: int = 0,
    gen: BitGenerator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pathwise delta vector and its standard errors, shape ``(d,)`` each.

    Supported payoffs: :class:`Call`, :class:`Put`, :class:`BasketCall`,
    :class:`BasketPut`. For GBM, ``∂S_i(T)/∂S_i(0) = S_i(T)/S_i(0)``, so

        Δ_i = e^{−rT} · E[ 1{exercise} · ∂payoff/∂S_i(T) · S_i(T)/S_i(0) ].
    """
    check_positive("expiry", expiry)
    check_positive_int("n_paths", n_paths)
    generator = gen if gen is not None else Philox4x32(seed, stream=0xE)
    s_term = model.sample_terminal(generator, n_paths, expiry)
    df = float(np.exp(-model.rate * expiry))
    ratio = s_term / model.spots[None, :]

    if isinstance(payoff, Call):
        indicator = (s_term[:, payoff.asset] > payoff.strike).astype(float)
        grad = np.zeros_like(s_term)
        grad[:, payoff.asset] = indicator * ratio[:, payoff.asset]
    elif isinstance(payoff, Put):
        indicator = (s_term[:, payoff.asset] < payoff.strike).astype(float)
        grad = np.zeros_like(s_term)
        grad[:, payoff.asset] = -indicator * ratio[:, payoff.asset]
    elif isinstance(payoff, BasketCall):
        basket = s_term @ payoff.weights
        indicator = (basket > payoff.strike).astype(float)
        grad = indicator[:, None] * payoff.weights[None, :] * ratio
    elif isinstance(payoff, BasketPut):
        basket = s_term @ payoff.weights
        indicator = (basket < payoff.strike).astype(float)
        grad = -indicator[:, None] * payoff.weights[None, :] * ratio
    else:
        raise ValidationError(
            f"pathwise delta not implemented for {type(payoff).__name__}; "
            "use mc_greeks_bump"
        )
    samples = df * grad
    delta = samples.mean(axis=0)
    stderr = samples.std(axis=0, ddof=1) / np.sqrt(n_paths)
    return delta, stderr


def mc_delta_likelihood_ratio(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    n_paths: int,
    *,
    seed: int = 0,
    gen: BitGenerator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Likelihood-ratio delta — works for *any* terminal payoff, including
    discontinuous ones (digitals, barriers at expiry) where the pathwise
    method fails.

    With ``log S(T) = m(S₀) + A z``, ``A = diag(σᵢ√T)·L``, the score of the
    terminal density w.r.t. ``log S₀ᵢ`` is ``(A⁻ᵀ z)ᵢ``, so

        Δᵢ = e^{−rT} · E[ payoff(S_T) · (A⁻ᵀ z)ᵢ ] / S₀ᵢ.

    The price of generality is a larger variance than the pathwise
    estimator (clearly visible in the returned standard errors).
    """
    check_positive("expiry", expiry)
    check_positive_int("n_paths", n_paths)
    if payoff.is_path_dependent:
        raise ValidationError(
            "likelihood-ratio delta is implemented for terminal payoffs"
        )
    generator = gen if gen is not None else Philox4x32(seed, stream=0x1B)
    d = model.dim
    z = generator.normals(n_paths * d).reshape(n_paths, d)
    s_term = model.terminal_from_normals(z, expiry)
    df = float(np.exp(-model.rate * expiry))
    a_matrix = (model.vols * np.sqrt(expiry))[:, None] * model.cholesky
    # score_i per path: (A^{-T} z)_i — solve Aᵀ x = z for each path.
    scores = np.linalg.solve(a_matrix.T, z.T).T
    samples = df * payoff.terminal(s_term)[:, None] * scores / model.spots[None, :]
    delta = samples.mean(axis=0)
    stderr = samples.std(axis=0, ddof=1) / np.sqrt(n_paths)
    return delta, stderr
