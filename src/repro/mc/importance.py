"""Importance sampling by exponential tilting of the Gaussian driver.

For deep out-of-the-money contracts almost every plain-MC path pays zero;
shifting the sampling measure so paths land near the exercise region and
reweighting by the likelihood ratio

    E[f(Z)] = E[ f(Z + μ) · exp(−μᵀZ − ‖μ‖²/2) ],   Z ~ N(0, I),

trades bias for none and variance for a lot (when μ is chosen sensibly).
:func:`drift_to_strike` picks μ automatically for basket/vanilla calls by
pushing the *mean* path's basket level onto the strike — the classical
"tilt to the money" heuristic.

The estimator is a :class:`Technique`, so it composes with the sequential
engine and the parallel pricer unchanged, and its partial is the ordinary
mergeable :class:`SampleStats` over the weighted samples.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.statistics import SampleStats
from repro.mc.variance_reduction import Technique, _discounted_payoffs
from repro.payoffs.base import Payoff

__all__ = ["ImportanceSampling", "drift_to_strike"]


def drift_to_strike(model: MultiAssetGBM, payoff: Payoff, expiry: float,
                    *, max_iter: int = 200) -> np.ndarray:
    """A z-space shift μ that moves the deterministic mean path onto the
    contract's exercise boundary.

    Works for payoffs exposing a ``strike`` and a ``basket_level``/single
    asset structure: the shift direction is the equal-weight unit vector in
    z-space (the dominant direction for exchangeable baskets); its
    magnitude solves ``level(S(μ)) = K`` by bisection. Returns the zero
    vector if the mean path already exercises.
    """
    strike = getattr(payoff, "strike", None)
    if strike is None:
        raise ValidationError(
            f"{type(payoff).__name__} exposes no strike; supply the shift explicitly"
        )
    d = model.dim
    direction = np.ones(d) / math.sqrt(d)

    def level(scale: float) -> float:
        z = (scale * direction)[None, :]
        prices = model.terminal_from_normals(z, expiry)
        level_fn = getattr(payoff, "basket_level", None)
        if level_fn is not None:
            return float(level_fn(prices)[0])
        return float(prices[0, getattr(payoff, "asset", 0)])

    if level(0.0) >= strike:
        return np.zeros(d)
    lo, hi = 0.0, 1.0
    it = 0
    while level(hi) < strike:
        hi *= 2.0
        it += 1
        if it > 60:
            raise ConvergenceError("could not bracket the strike-hitting shift")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if level(mid) < strike:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10:
            break
    return hi * direction


class ImportanceSampling(Technique):
    """Exponentially tilted estimator with a fixed z-space shift.

    Parameters
    ----------
    shift : the drift vector μ (length = model dim). Build it with
        :func:`drift_to_strike` or supply your own.
    """

    name = "importance"

    def __init__(self, shift):
        mu = np.atleast_1d(np.asarray(shift, dtype=float))
        if mu.ndim != 1 or not np.all(np.isfinite(mu)):
            raise ValidationError("shift must be a finite 1-D vector")
        self.shift = mu

    def partial(self, model, payoff, expiry, n, gen, *, steps=None) -> SampleStats:
        if payoff.is_path_dependent:
            raise ValidationError(
                "ImportanceSampling currently supports terminal payoffs only"
            )
        d = model.dim
        if self.shift.size != d:
            raise ValidationError(
                f"shift has length {self.shift.size}, model dim is {d}"
            )
        z = gen.normals(n * d).reshape(n, d)
        shifted = z + self.shift[None, :]
        y = _discounted_payoffs(model, payoff, expiry, shifted, steps=None)
        log_w = -(z @ self.shift) - 0.5 * float(self.shift @ self.shift)
        return SampleStats.from_values(y * np.exp(log_w))

    def combine(self, parts: list[SampleStats]) -> SampleStats:
        out = SampleStats()
        for p in parts:
            out = out.merge(p)
        return out

    def finalize(self, part: SampleStats) -> tuple[float, float, int]:
        return part.mean, part.stderr, part.n
