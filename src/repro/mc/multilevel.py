"""Multilevel Monte Carlo (Giles 2008) for discretely monitored payoffs.

For a path-dependent contract whose value depends on the monitoring
frequency, MLMC telescopes across refinement levels

    E[P_L] = E[P_0] + Σ_{ℓ=1}^{L} E[P_ℓ − P_{ℓ−1}],

estimating each correction with *coupled* fine/coarse paths driven by the
same Brownian increments (coarse increment = (z_{2i} + z_{2i+1})/√2). The
coupling makes Var[P_ℓ − P_{ℓ−1}] decay geometrically, so most samples run
on the cheap coarse grids; sample counts follow Giles' optimal allocation
``N_ℓ ∝ √(V_ℓ / C_ℓ)`` from a pilot pass.

This targets the *monitoring-frequency* limit (e.g. the near-continuous
Asian average): GBM sampling itself is exact at every level, so the level-ℓ
"discretization" is the payoff's own monitoring grid, the honest MLMC use
case for this library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["MLMCResult", "mlmc_price"]


@dataclass(frozen=True)
class MLMCResult:
    """Multilevel estimate with its per-level diagnostics."""

    price: float
    stderr: float
    levels: int
    n_per_level: tuple[int, ...]
    var_per_level: tuple[float, ...]
    cost_units: float
    meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"{self.price:.6f} ± {self.stderr:.6f} "
                f"(mlmc, L={self.levels}, N={list(self.n_per_level)})")


def _coarsen(z_fine: np.ndarray) -> np.ndarray:
    """Pairwise-combine fine Gaussian increments into coarse ones.

    (n, 2m, d) → (n, m, d) with each coarse draw (z₂ᵢ + z₂ᵢ₊₁)/√2 — the
    same Brownian path observed on the coarse grid.
    """
    n, m2, d = z_fine.shape
    if m2 % 2:
        raise ValidationError("fine level must have an even number of steps")
    return (z_fine[:, 0::2, :] + z_fine[:, 1::2, :]) / math.sqrt(2.0)


def _level_samples(model: MultiAssetGBM, payoff: Payoff, expiry: float,
                   level: int, base_steps: int, n: int, gen) -> np.ndarray:
    """Coupled samples of Y_ℓ = P_ℓ − P_{ℓ−1} (or P_0 at level 0)."""
    df = float(np.exp(-model.rate * expiry))
    m_fine = base_steps * (2**level)
    z = gen.normals(n * m_fine * model.dim).reshape(n, m_fine, model.dim)
    fine_paths = model.paths_from_normals(z, expiry, m_fine)
    p_fine = df * payoff.path(fine_paths)
    if level == 0:
        return p_fine
    z_coarse = _coarsen(z)
    coarse_paths = model.paths_from_normals(z_coarse, expiry, m_fine // 2)
    p_coarse = df * payoff.path(coarse_paths)
    return p_fine - p_coarse


def mlmc_price(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    *,
    base_steps: int = 4,
    levels: int = 5,
    target_stderr: float = 0.01,
    pilot: int = 2_000,
    seed: int = 0,
    max_paths_per_level: int = 4_000_000,
) -> MLMCResult:
    """Price a path-dependent payoff with multilevel Monte Carlo.

    Parameters
    ----------
    base_steps : monitoring dates at level 0.
    levels : number of correction levels L (finest grid =
        ``base_steps·2^L`` dates).
    target_stderr : the allocation aims the total standard error here.
    pilot : pilot paths per level for the variance estimates.
    """
    check_positive("expiry", expiry)
    check_positive("target_stderr", target_stderr)
    check_positive_int("base_steps", base_steps)
    check_positive_int("pilot", pilot)
    if levels < 0:
        raise ValidationError(f"levels must be non-negative, got {levels}")
    if not payoff.is_path_dependent:
        raise ValidationError(
            "MLMC refines the monitoring grid; the payoff must be path-dependent"
        )

    master = Philox4x32(seed, stream=0x317C)
    gens = master.spawn(levels + 1)

    # --- pilot pass: estimate V_ℓ and C_ℓ ---------------------------------
    variances: list[float] = []
    means: list[float] = []
    costs: list[float] = []
    pilot_stats: list[tuple[float, float, int]] = []  # (sum, sumsq, n)
    for lv in range(levels + 1):
        y = _level_samples(model, payoff, expiry, lv, base_steps, pilot, gens[lv])
        pilot_stats.append((float(y.sum()), float((y * y).sum()), pilot))
        mean = y.mean()
        var = float(y.var(ddof=1))
        means.append(float(mean))
        variances.append(max(var, 1e-30))
        # Cost ∝ fine steps (+ coarse steps for corrections).
        steps = base_steps * 2**lv
        costs.append(steps * (1.0 if lv == 0 else 1.5))

    # --- Giles allocation ----------------------------------------------------
    lagrange = sum(math.sqrt(v * c) for v, c in zip(variances, costs))
    n_opt = [
        min(
            max(int(math.ceil(lagrange * math.sqrt(v / c) / target_stderr**2)),
                pilot),
            max_paths_per_level,
        )
        for v, c in zip(variances, costs)
    ]

    # --- main pass: top up each level beyond the pilot ------------------------
    total_cost = 0.0
    level_means: list[float] = []
    level_vars: list[float] = []
    for lv in range(levels + 1):
        s, ss, n_done = pilot_stats[lv]
        extra = n_opt[lv] - n_done
        batch = 200_000
        while extra > 0:
            b = min(batch, extra)
            y = _level_samples(model, payoff, expiry, lv, base_steps, b, gens[lv])
            s += float(y.sum())
            ss += float((y * y).sum())
            n_done += b
            extra -= b
        mean = s / n_done
        var = max((ss - n_done * mean * mean) / (n_done - 1), 0.0)
        level_means.append(mean)
        level_vars.append(var)
        total_cost += n_done * costs[lv]

    price = float(sum(level_means))
    stderr = math.sqrt(sum(v / n for v, n in zip(level_vars, n_opt)))
    return MLMCResult(
        price=price,
        stderr=stderr,
        levels=levels,
        n_per_level=tuple(n_opt),
        var_per_level=tuple(level_vars),
        cost_units=total_cost,
        meta={"base_steps": base_steps, "target_stderr": target_stderr,
              "level_means": level_means},
    )
