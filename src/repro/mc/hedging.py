"""Discrete delta-hedging simulation — the end-to-end consumer of prices
and Greeks.

Simulates selling a European option, hedging it with the analytic (or a
deliberately wrong) delta at ``rebalances`` equally spaced dates, and
carrying the residual at the risk-free rate. Classical facts the tests and
benchmark F11 verify:

* with the *correct* vol, the mean P&L → 0 and its standard deviation
  shrinks like ``(number of rebalances)^{-1/2}`` (Boyle & Emanuel 1980);
* hedging with a *wrong* vol produces a systematic P&L whose sign follows
  the gamma-weighted variance gap: short-gamma hedgers lose when realized
  vol exceeds the hedge vol.

Only the hedger's delta is model-based; the market paths are exact GBM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analytic.black_scholes import bs_greeks, bs_price
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["HedgeResult", "simulate_delta_hedge"]


@dataclass(frozen=True)
class HedgeResult:
    """P&L distribution of a discretely delta-hedged short option."""

    mean_pnl: float
    std_pnl: float
    stderr_mean: float
    rebalances: int
    n_paths: int
    premium: float
    meta: dict = field(default_factory=dict)

    @property
    def pnl_per_premium(self) -> float:
        """Mean P&L as a fraction of the premium received."""
        return self.mean_pnl / self.premium if self.premium else 0.0

    def __str__(self) -> str:
        return (f"hedge P&L {self.mean_pnl:+.4f} ± {self.stderr_mean:.4f} "
                f"(std {self.std_pnl:.4f}, {self.rebalances} rebalances)")


def simulate_delta_hedge(
    model: MultiAssetGBM,
    strike: float,
    expiry: float,
    rebalances: int,
    n_paths: int,
    *,
    option: str = "call",
    hedge_vol: float | None = None,
    seed: int = 0,
) -> HedgeResult:
    """Simulate a short-option delta hedge under a 1-asset GBM market.

    Parameters
    ----------
    model : single-asset market (its vol drives the *realized* paths).
    hedge_vol : vol used for the hedger's deltas (defaults to the model's
        true vol — the correctly specified hedge).
    rebalances : number of hedge adjustments over the option's life.
    """
    if model.dim != 1:
        raise ValidationError("the hedging simulation covers single-asset options")
    check_positive("strike", strike)
    check_positive("expiry", expiry)
    m = check_positive_int("rebalances", rebalances)
    n = check_positive_int("n_paths", n_paths)
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")
    true_vol = float(model.vols[0])
    h_vol = true_vol if hedge_vol is None else check_positive("hedge_vol", hedge_vol)
    rate = model.rate
    dividend = float(model.dividends[0])

    gen = Philox4x32(seed, stream=0x4ED6)
    paths = model.sample_paths(gen, n, expiry, m)[:, :, 0]  # (n, m+1)
    dt = expiry / m
    grow = math.exp(rate * dt)

    premium = bs_price(float(model.spots[0]), strike, h_vol, rate, expiry,
                       dividend=dividend, option=option)

    # Sell the option, receive the premium, start the hedge.
    cash = np.full(n, premium)
    position = np.zeros(n)
    for k in range(m):
        tau = expiry - k * dt
        s_now = paths[:, k]
        # Vectorized BSM delta at the hedger's vol.
        sqrt_tau = math.sqrt(tau)
        d1 = (np.log(s_now / strike) + (rate - dividend + 0.5 * h_vol**2) * tau) \
            / (h_vol * sqrt_tau)
        from repro.utils.numerics import norm_cdf

        delta = np.asarray(norm_cdf(d1))
        if option == "put":
            delta = delta - 1.0
        trade = delta - position
        cash -= trade * s_now
        position = delta
        cash *= grow
        if dividend:
            cash += position * s_now * (math.exp(dividend * dt) - 1.0)
    s_final = paths[:, -1]
    intrinsic = (np.maximum(s_final - strike, 0.0) if option == "call"
                 else np.maximum(strike - s_final, 0.0))
    pnl = cash + position * s_final - intrinsic

    return HedgeResult(
        mean_pnl=float(pnl.mean()),
        std_pnl=float(pnl.std(ddof=1)),
        stderr_mean=float(pnl.std(ddof=1) / math.sqrt(n)),
        rebalances=m,
        n_paths=n,
        premium=premium,
        meta={"true_vol": true_vol, "hedge_vol": h_vol, "option": option},
    )
