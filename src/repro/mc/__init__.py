"""Monte Carlo pricing engine.

The sequential engine (:class:`MonteCarloEngine`) prices any
:class:`~repro.payoffs.Payoff` under a :class:`~repro.market.MultiAssetGBM`
by exact lognormal sampling. Estimators are built from *mergeable partial
statistics* (:class:`SampleStats` and friends) — the same objects the
parallel pricer reduces across ranks, so sequential and parallel runs are
bit-identical given the same substreams.

Variance-reduction techniques (antithetic, control variates, stratified,
randomized QMC) are strategy objects passed to the engine; American
exercise is handled by Longstaff–Schwartz regression (:mod:`repro.mc.american`).
"""

from repro.mc.statistics import SampleStats, CrossStats, StrataStats
from repro.mc.result import MCResult
from repro.mc.engine import MonteCarloEngine
from repro.mc.variance_reduction import (
    Technique,
    PlainMC,
    Antithetic,
    ControlVariate,
    Stratified,
)
from repro.mc.qmc import QMCSobol
from repro.mc.direct import DirectSampling
from repro.mc.importance import ImportanceSampling, drift_to_strike
from repro.mc.multilevel import MLMCResult, mlmc_price
from repro.mc.greeks import (
    mc_greeks_bump,
    mc_delta_pathwise,
    mc_delta_likelihood_ratio,
)
from repro.mc.american import LongstaffSchwartz, lsm_price
from repro.mc.hedging import HedgeResult, simulate_delta_hedge

__all__ = [
    "SampleStats",
    "CrossStats",
    "StrataStats",
    "MCResult",
    "MonteCarloEngine",
    "Technique",
    "PlainMC",
    "Antithetic",
    "ControlVariate",
    "Stratified",
    "QMCSobol",
    "DirectSampling",
    "ImportanceSampling",
    "drift_to_strike",
    "MLMCResult",
    "mlmc_price",
    "mc_greeks_bump",
    "mc_delta_pathwise",
    "mc_delta_likelihood_ratio",
    "LongstaffSchwartz",
    "lsm_price",
    "HedgeResult",
    "simulate_delta_hedge",
]
