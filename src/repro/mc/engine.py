"""Sequential Monte Carlo pricing engine.

This is the ``P = 1`` reference implementation the parallel pricer is
validated against: :class:`repro.core.ParallelMCPricer` with any backend and
the same master seed reproduces this engine's estimate exactly, because both
run the same technique partials over the same substreams and merge the same
sufficient statistics.
"""

from __future__ import annotations

import time

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.result import MCResult
from repro.mc.variance_reduction import PlainMC, Technique
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32
from repro.rng.base import BitGenerator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["MonteCarloEngine"]


class MonteCarloEngine:
    """Prices payoffs by exact-sampling Monte Carlo.

    Parameters
    ----------
    n_paths : number of simulated paths.
    steps : monitoring dates for path-dependent payoffs (None = terminal
        sampling only).
    technique : a :class:`~repro.mc.variance_reduction.Technique`
        (default plain MC).
    seed : master seed used when no generator is passed to :meth:`price`.
    batch_size : paths per simulation batch (bounds peak memory at roughly
        ``batch_size × steps × dim`` doubles).
    """

    def __init__(
        self,
        n_paths: int,
        *,
        steps: int | None = None,
        technique: Technique | None = None,
        seed: int = 0,
        batch_size: int = 1 << 18,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.steps = None if steps is None else check_positive_int("steps", steps)
        self.technique = technique if technique is not None else PlainMC()
        if not isinstance(self.technique, Technique):
            raise ValidationError("technique must be a Technique instance")
        self.seed = int(seed)
        self.batch_size = check_positive_int("batch_size", batch_size)

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        *,
        gen: BitGenerator | None = None,
    ) -> MCResult:
        """Price ``payoff`` under ``model``; returns an :class:`MCResult`."""
        check_positive("expiry", expiry)
        if payoff.dim != model.dim:
            raise ValidationError(
                f"payoff dim {payoff.dim} does not match model dim {model.dim}"
            )
        if payoff.is_path_dependent and self.steps is None:
            raise ValidationError(
                f"{type(payoff).__name__} is path-dependent: construct the engine "
                "with steps=<monitoring dates>"
            )
        generator = gen if gen is not None else Philox4x32(self.seed)
        t0 = time.perf_counter()
        price, stderr, n = self.technique.estimate(
            model,
            payoff,
            expiry,
            self.n_paths,
            generator,
            steps=self.steps,
            batch_size=self.batch_size,
        )
        elapsed = time.perf_counter() - t0
        return MCResult(
            price=price,
            stderr=stderr,
            n_paths=n,
            technique=self.technique.name,
            meta={"wall_time_s": elapsed, "steps": self.steps},
        )
