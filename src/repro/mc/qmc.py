"""Randomized quasi-Monte Carlo estimation with Sobol points.

Plain MC error decays as N^{−1/2}; Sobol points achieve close to N^{−1} on
smooth integrands (experiment T4 measures both slopes). Because QMC points
are *not* iid, the usual sample standard error is invalid — the estimator
here is **randomized** QMC: ``replicates`` independent digital shifts of the
same Sobol sequence, with the error estimated from the spread of replicate
means (Owen's classical recipe).

For path-dependent payoffs the Gaussian coordinates are assigned through a
**Brownian bridge**, which concentrates the path's large-scale structure in
the first (best-distributed) Sobol dimensions. When a problem needs more
dimensions than the direction-number table provides, the remaining
coordinates are filled with pseudorandom draws (hybrid QMC) — the bridge
ordering makes those the least important ones.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.statistics import SampleStats
from repro.mc.variance_reduction import Technique, _discounted_payoffs
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32, SobolSequence, SOBOL_MAX_DIM
from repro.utils.numerics import norm_ppf
from repro.utils.validation import check_positive_int

__all__ = ["QMCSobol", "BrownianBridge"]


class BrownianBridge:
    """Brownian-bridge construction order for a path of ``steps`` increments.

    Precomputes, for each construction level, the (left, mid, right) indices
    and interpolation weights such that standard normals consumed in level
    order reproduce a discretely sampled Brownian path. Level 0 fixes the
    terminal point; each following level bisects the largest remaining gap,
    so coordinate k's influence on the path shrinks roughly like 2^{−k/2}.
    """

    def __init__(self, steps: int):
        m = check_positive_int("steps", steps)
        self.steps = m
        order: list[int] = []
        left_idx: list[int] = []
        right_idx: list[int] = []
        # Work on W at times t_1..t_m (index 1..m); W_0 = 0 is implicit.
        segments = [(0, m)]  # known endpoints (as time indices; 0 is known)
        order.append(m)
        left_idx.append(0)
        right_idx.append(m)
        queue = [(0, m)]
        while queue:
            lo, hi = queue.pop(0)
            if hi - lo <= 1:
                continue
            mid = (lo + hi) // 2
            order.append(mid)
            left_idx.append(lo)
            right_idx.append(hi)
            queue.append((lo, mid))
            queue.append((mid, hi))
        # order[0] is the terminal; the rest bisect. Build weights.
        self.order = np.asarray(order[: m], dtype=np.int64)
        self.left = np.asarray(left_idx[: m], dtype=np.int64)
        self.right = np.asarray(right_idx[: m], dtype=np.int64)

    def build(self, z: np.ndarray, horizon: float) -> np.ndarray:
        """Turn normals ``(n, steps)`` (in bridge order) into increments
        ``ΔW`` of shape ``(n, steps)`` over a grid of span ``horizon``."""
        z = np.asarray(z, dtype=float)
        n, m = z.shape
        if m != self.steps:
            raise ValidationError(f"expected {self.steps} normals per path, got {m}")
        dt = horizon / m
        times = dt * np.arange(m + 1)
        w = np.zeros((n, m + 1), dtype=float)
        # Level 0: terminal point.
        w[:, self.order[0]] = math.sqrt(times[self.order[0]]) * z[:, 0]
        for k in range(1, m):
            i, lo, hi = int(self.order[k]), int(self.left[k]), int(self.right[k])
            t_lo, t_i, t_hi = times[lo], times[i], times[hi]
            a = (t_hi - t_i) / (t_hi - t_lo)
            b = (t_i - t_lo) / (t_hi - t_lo)
            sd = math.sqrt((t_i - t_lo) * (t_hi - t_i) / (t_hi - t_lo))
            w[:, i] = a * w[:, lo] + b * w[:, hi] + sd * z[:, k]
        return np.diff(w, axis=1)


class QMCSobol(Technique):
    """Randomized QMC estimator.

    Parameters
    ----------
    replicates : number of independent digital shifts (error estimation
        needs ≥ 2; 8–32 is typical).
    seed : seeds the shift generators (replicate r uses ``seed + r``).
    bridge : use Brownian-bridge coordinate ordering for path-dependent
        payoffs (recommended; ignored for terminal payoffs).
    """

    name = "qmc-sobol"

    def __init__(self, replicates: int = 8, *, seed: int = 2027, bridge: bool = True):
        self.replicates = check_positive_int("replicates", replicates)
        if self.replicates < 2:
            raise ValidationError("randomized QMC needs at least 2 replicates")
        self.seed = int(seed)
        self.bridge = bool(bridge)

    # -- dimension plan ------------------------------------------------------

    def _dims(self, model: MultiAssetGBM, payoff: Payoff, steps: int | None) -> tuple[int, int]:
        """(total Gaussian dims, Sobol dims actually used)."""
        if payoff.is_path_dependent:
            if steps is None:
                raise ValidationError("path-dependent payoff requires steps")
            total = steps * model.dim
        else:
            total = model.dim
        return total, min(total, SOBOL_MAX_DIM)

    def _normals_for(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        steps: int | None,
        n: int,
        replicate: int,
        skip: int,
    ) -> np.ndarray:
        """Generate the replicate's Gaussian block from Sobol + padding."""
        total, sdim = self._dims(model, payoff, steps)
        seq = SobolSequence(sdim, scramble=True, seed=self.seed + replicate, skip=1 + skip)
        u = seq.next(n)
        z_sobol = np.asarray(norm_ppf(u), dtype=float)
        if total > sdim:
            pad_gen = Philox4x32(self.seed ^ 0x51AB, stream=replicate + 1)
            pad_gen.jump(skip * (total - sdim))
            z_pad = pad_gen.normals(n * (total - sdim)).reshape(n, total - sdim)
            z = np.concatenate([z_sobol, z_pad], axis=1)
        else:
            z = z_sobol
        if not payoff.is_path_dependent:
            return z  # (n, d)
        m, d = steps, model.dim
        if not self.bridge:
            return z.reshape(n, m, d)
        # Bridge ordering: coordinate block k (d coords) feeds bridge level k
        # of every asset, so the best Sobol dims carry the coarsest structure.
        bb = BrownianBridge(m)
        z_levels = z.reshape(n, m, d)
        out = np.empty((n, m, d), dtype=float)
        for a in range(d):
            # Build standardized increments from bridge-ordered normals for
            # a unit-horizon path, then standardize back to N(0,1) per step.
            incr = bb.build(z_levels[:, :, a], 1.0)
            out[:, :, a] = incr / math.sqrt(1.0 / m)
        return out

    # -- Technique interface -------------------------------------------------

    def partial(self, model, payoff, expiry, n, gen, *, steps=None, skip: int = 0):
        """Partial over ``n`` paths: ``n // replicates`` points per replicate,
        starting at point offset ``skip`` within each replicate's sequence.

        ``gen`` is unused (QMC points are deterministic given the seed); it
        stays in the signature so the parallel pricer can treat all
        techniques uniformly.
        """
        r_count = self.replicates
        if n % r_count:
            raise ValidationError(
                f"path count {n} must be a multiple of replicates={r_count}"
            )
        per = n // r_count
        parts = []
        for r in range(r_count):
            z = self._normals_for(model, payoff, steps, per, r, skip)
            y = _discounted_payoffs(model, payoff, expiry, z, steps)
            parts.append(SampleStats.from_values(y))
        return tuple(parts)

    def combine(self, parts: list[tuple[SampleStats, ...]]) -> tuple[SampleStats, ...]:
        out = tuple(SampleStats() for _ in range(self.replicates))
        for p in parts:
            if len(p) != self.replicates:
                raise ValidationError("replicate count mismatch while merging QMC partials")
            out = tuple(a.merge(b) for a, b in zip(out, p))
        return out

    def finalize(self, part: tuple[SampleStats, ...]) -> tuple[float, float, int]:
        means = [s.mean for s in part]
        r_count = len(means)
        mean = float(np.mean(means))
        if r_count > 1:
            stderr = float(np.std(means, ddof=1) / math.sqrt(r_count))
        else:  # pragma: no cover - constructor forbids this
            stderr = math.inf
        return mean, stderr, sum(s.n for s in part)

    def estimate(self, model, payoff, expiry, n, gen, *, steps=None, batch_size=1 << 18):
        """Sequential estimate with per-replicate point-offset bookkeeping."""
        r_count = self.replicates
        if n % r_count:
            raise ValidationError(f"n={n} must be a multiple of replicates={r_count}")
        per_total = n // r_count
        parts = []
        done = 0
        per_batch = max(batch_size // r_count, 1)
        while done < per_total:
            b = min(per_batch, per_total - done)
            parts.append(
                self.partial(model, payoff, expiry, b * r_count, gen, steps=steps, skip=done)
            )
            done += b
        return self.finalize(self.combine(parts))
