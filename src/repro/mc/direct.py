"""Direct-sampling estimator: the technique for models that draw their own
randomness.

The standard techniques hand GBM a block of standard normals (which is what
lets antithetic/QMC reuse the mapping). Models with non-Gaussian components
— Merton jump diffusion, and any future model exposing
``sample_terminal(gen, n, horizon)`` — instead sample internally;
:class:`DirectSampling` wraps that protocol in the same
partial/combine/finalize shape, so the parallel pricer and the sequential
engine work unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.mc.statistics import SampleStats
from repro.mc.variance_reduction import Technique
from repro.payoffs.base import Payoff

__all__ = ["DirectSampling"]


class DirectSampling(Technique):
    """Plain MC over a model's own exact terminal sampler.

    Requires the model to expose ``rate``, ``dim`` and
    ``sample_terminal(gen, n, horizon) -> (n, dim)``.
    """

    name = "direct"

    def partial(self, model, payoff: Payoff, expiry, n, gen, *, steps=None) -> SampleStats:
        if payoff.is_path_dependent:
            raise ValidationError(
                "DirectSampling prices terminal payoffs only; the model owns "
                "its sampling and exposes no path protocol"
            )
        sampler = getattr(model, "sample_terminal", None)
        if sampler is None:
            raise ValidationError(
                f"{type(model).__name__} does not expose sample_terminal()"
            )
        prices = sampler(gen, n, expiry)
        df = float(np.exp(-model.rate * expiry))
        return SampleStats.from_values(df * payoff.terminal(prices))

    def combine(self, parts: list[SampleStats]) -> SampleStats:
        out = SampleStats()
        for p in parts:
            out = out.merge(p)
        return out

    def finalize(self, part: SampleStats) -> tuple[float, float, int]:
        return part.mean, part.stderr, part.n
