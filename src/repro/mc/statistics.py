"""Mergeable sufficient statistics — the reduction payload of parallel MC.

The key design decision (called out in DESIGN.md): parallel ranks never ship
raw path values. Each rank accumulates a tiny sufficient-statistics object —
``(n, Σy, Σy²)`` for plain estimators, six cross-moments for control
variates, per-stratum triples for stratified sampling — and the reduction
combines them associatively. Payloads are O(1) in the number of paths, so
communication cost is independent of the workload size.

All merge operations are exact (floating-point associativity aside) and are
property-tested against single-shot accumulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.utils.numerics import norm_ppf

__all__ = ["SampleStats", "CrossStats", "StrataStats"]


@dataclass(frozen=True)
class SampleStats:
    """Count, sum and sum of squares of a sample — enough for mean/stderr."""

    n: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    @classmethod
    def from_values(cls, values: np.ndarray) -> "SampleStats":
        v = np.asarray(values, dtype=float)
        return cls(n=int(v.size), total=float(v.sum()), total_sq=float((v * v).sum()))

    def merge(self, other: "SampleStats") -> "SampleStats":
        return SampleStats(
            n=self.n + other.n,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
        )

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValidationError("mean of an empty sample is undefined")
        return self.total / self.n

    @property
    def variance(self) -> float:
        """Unbiased sample variance (ddof = 1)."""
        if self.n < 2:
            return 0.0
        m = self.mean
        # Guard tiny negative values from cancellation.
        return max((self.total_sq - self.n * m * m) / (self.n - 1), 0.0)

    @property
    def stderr(self) -> float:
        if self.n == 0:
            return math.inf
        return math.sqrt(self.variance / self.n)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Normal-approximation CI for the mean."""
        if not 0.0 < level < 1.0:
            raise ValidationError(f"confidence level must lie in (0, 1), got {level}")
        z = float(norm_ppf(0.5 + level / 2.0))
        half = z * self.stderr
        m = self.mean
        return (m - half, m + half)

    def as_array(self) -> np.ndarray:
        """Flat (3,) float view — what actually crosses the simulated wire."""
        return np.array([float(self.n), self.total, self.total_sq])

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SampleStats":
        a = np.asarray(arr, dtype=float).reshape(3)
        return cls(n=int(round(a[0])), total=float(a[1]), total_sq=float(a[2]))


@dataclass(frozen=True)
class CrossStats:
    """Joint moments of (payoff Y, control X) for control-variate estimators.

    Carries ``(n, Σy, Σy², Σx, Σx², Σxy)``. The optimal coefficient
    ``β = Cov(Y, X)/Var(X)`` and the adjusted estimator
    ``Ȳ − β (X̄ − μ_X)`` are computed *after* the global reduction, so every
    rank contributes to one shared β — the estimator is then identical to
    the sequential one.
    """

    n: int = 0
    sy: float = 0.0
    syy: float = 0.0
    sx: float = 0.0
    sxx: float = 0.0
    sxy: float = 0.0

    @classmethod
    def from_values(cls, y: np.ndarray, x: np.ndarray) -> "CrossStats":
        y = np.asarray(y, dtype=float)
        x = np.asarray(x, dtype=float)
        if y.shape != x.shape:
            raise ValidationError("payoff and control samples must align")
        return cls(
            n=int(y.size),
            sy=float(y.sum()),
            syy=float((y * y).sum()),
            sx=float(x.sum()),
            sxx=float((x * x).sum()),
            sxy=float((y * x).sum()),
        )

    def merge(self, other: "CrossStats") -> "CrossStats":
        return CrossStats(
            n=self.n + other.n,
            sy=self.sy + other.sy,
            syy=self.syy + other.syy,
            sx=self.sx + other.sx,
            sxx=self.sxx + other.sxx,
            sxy=self.sxy + other.sxy,
        )

    @property
    def beta(self) -> float:
        """Estimated optimal control coefficient Cov(Y,X)/Var(X)."""
        if self.n < 2:
            return 0.0
        var_x = self.sxx - self.sx * self.sx / self.n
        # Relative guard: a (near-)constant control leaves only cancellation
        # noise in var_x; regressing on it would produce garbage β.
        scale = max(self.sxx, self.sx * self.sx / self.n, 1e-300)
        if var_x <= 1e-12 * scale:
            return 0.0
        cov = self.sxy - self.sx * self.sy / self.n
        return cov / var_x

    def adjusted(self, control_mean: float) -> tuple[float, float]:
        """(mean, stderr) of the control-variate-adjusted estimator."""
        if self.n == 0:
            raise ValidationError("empty control-variate sample")
        b = self.beta
        mean = self.sy / self.n - b * (self.sx / self.n - control_mean)
        if self.n < 2:
            return mean, math.inf
        var_y = max((self.syy - self.sy * self.sy / self.n) / (self.n - 1), 0.0)
        var_x = max((self.sxx - self.sx * self.sx / self.n) / (self.n - 1), 0.0)
        cov = (self.sxy - self.sx * self.sy / self.n) / (self.n - 1)
        var_adj = max(var_y - 2.0 * b * cov + b * b * var_x, 0.0)
        return mean, math.sqrt(var_adj / self.n)

    def as_array(self) -> np.ndarray:
        return np.array([float(self.n), self.sy, self.syy, self.sx, self.sxx, self.sxy])

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "CrossStats":
        a = np.asarray(arr, dtype=float).reshape(6)
        return cls(int(round(a[0])), a[1], a[2], a[3], a[4], a[5])


@dataclass(frozen=True)
class StrataStats:
    """Per-stratum :class:`SampleStats`, mergeable stratum-by-stratum.

    For proportional allocation over ``L`` equal-probability strata the
    stratified estimator is ``(1/L) Σ_l mean_l`` with variance
    ``(1/L²) Σ_l var_l / n_l``.
    """

    strata: tuple[SampleStats, ...] = field(default_factory=tuple)

    @classmethod
    def empty(cls, n_strata: int) -> "StrataStats":
        if n_strata <= 0:
            raise ValidationError(f"n_strata must be positive, got {n_strata}")
        return cls(tuple(SampleStats() for _ in range(n_strata)))

    def merge(self, other: "StrataStats") -> "StrataStats":
        if len(self.strata) != len(other.strata):
            raise ValidationError("cannot merge StrataStats with different strata counts")
        return StrataStats(tuple(a.merge(b) for a, b in zip(self.strata, other.strata)))

    def add_stratum_values(self, stratum: int, values: np.ndarray) -> "StrataStats":
        if not 0 <= stratum < len(self.strata):
            raise ValidationError(f"stratum {stratum} out of range")
        new = list(self.strata)
        new[stratum] = new[stratum].merge(SampleStats.from_values(values))
        return StrataStats(tuple(new))

    @property
    def n(self) -> int:
        return sum(s.n for s in self.strata)

    @property
    def mean(self) -> float:
        lcount = len(self.strata)
        if any(s.n == 0 for s in self.strata):
            raise ValidationError("every stratum needs at least one sample")
        return sum(s.mean for s in self.strata) / lcount

    @property
    def stderr(self) -> float:
        lcount = len(self.strata)
        if any(s.n == 0 for s in self.strata):
            return math.inf
        var = sum(s.variance / s.n for s in self.strata) / (lcount * lcount)
        return math.sqrt(var)
