"""Result object returned by every Monte Carlo pricing call."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.utils.numerics import norm_ppf

__all__ = ["MCResult"]


@dataclass(frozen=True)
class MCResult:
    """A priced contract with its statistical error.

    Attributes
    ----------
    price : discounted Monte Carlo estimate.
    stderr : standard error of the estimate (0 would mean exact).
    n_paths : number of simulated paths behind the estimate.
    technique : name of the estimator ("plain", "antithetic", ...).
    meta : free-form diagnostics (β for control variates, replicate count
        for randomized QMC, per-rank info for parallel runs, ...).
    """

    price: float
    stderr: float
    n_paths: int
    technique: str = "plain"
    meta: dict = field(default_factory=dict)

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Normal-approximation confidence interval for the price."""
        if not 0.0 < level < 1.0:
            raise ValidationError(f"confidence level must lie in (0, 1), got {level}")
        z = float(norm_ppf(0.5 + level / 2.0))
        return (self.price - z * self.stderr, self.price + z * self.stderr)

    @property
    def half_width_95(self) -> float:
        """Half-width of the 95% confidence interval."""
        lo, hi = self.confidence_interval(0.95)
        return 0.5 * (hi - lo)

    def within(self, exact: float, *, z: float = 4.0) -> bool:
        """True when ``exact`` lies inside ±z standard errors (test helper)."""
        if math.isinf(self.stderr):
            return False
        return abs(self.price - exact) <= z * max(self.stderr, 1e-12)

    def __str__(self) -> str:
        return (
            f"{self.price:.6f} ± {self.stderr:.6f} "
            f"({self.technique}, n={self.n_paths})"
        )
