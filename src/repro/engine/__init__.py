"""The unified engine pipeline: Plan → Partition → Execute → Reduce → Report.

Every parallel pricing family is one :class:`PipelineEngine` with explicit
stages, driven by the shared :func:`run_pipeline` runner that applies the
cross-cutting middleware (fault injection, tracing, metrics, chunked
backend maps, wall-clock timing) exactly once. The
:class:`EngineRegistry` maps canonical engine names
(:mod:`repro.engine.names`) to capability flags and per-subsystem factory
hooks, so the serving layer, the verification oracle, the workload suites
and the CLI all resolve engines the same way.

The legacy :mod:`repro.core` pricer classes remain the public entry points
— they are thin config adapters over these engines.
"""

from repro.engine import names
from repro.engine.names import PARALLEL_ENGINES, REFERENCE_FAMILIES
from repro.engine.pipeline import (
    Estimate,
    ExecutionPlan,
    PipelineContext,
    PipelineEngine,
    PricingJob,
    RankTask,
    StripJob,
)
from repro.engine.registry import (
    EngineCapabilities,
    EngineRegistry,
    EngineSpec,
    default_registry,
)
from repro.engine.result import ParallelRunResult
from repro.engine.runner import run_engine, run_pipeline, run_strip

__all__ = [
    "names",
    "PARALLEL_ENGINES",
    "REFERENCE_FAMILIES",
    "PricingJob",
    "StripJob",
    "ExecutionPlan",
    "RankTask",
    "Estimate",
    "PipelineContext",
    "PipelineEngine",
    "ParallelRunResult",
    "run_pipeline",
    "run_engine",
    "run_strip",
    "EngineCapabilities",
    "EngineSpec",
    "EngineRegistry",
    "default_registry",
]
