"""Canonical engine names — the single naming authority.

Every place an engine family is spelled out — ``ParallelRunResult.engine``,
trace span prefixes, serve cache keys, verification-corpus entries, CLI
``--engine`` choices — uses these constants, so a rename is a one-line
change and a typo is an import error instead of a silently empty dispatch.

Two groups overlap on purpose: ``MC``/``LATTICE``/``PDE``/``LSM`` name both
a *parallel* pipeline engine and its *sequential reference* family in the
verification corpus — same contract semantics, same canonical name.
"""

from __future__ import annotations

from typing import Final

__all__ = [
    "MC",
    "LATTICE",
    "PDE",
    "LSM",
    "GREEKS",
    "ANALYTIC",
    "QMC",
    "MLMC",
    "PARALLEL_ENGINES",
    "REFERENCE_FAMILIES",
]

#: Path-wise domain-decomposed Monte Carlo.
MC: Final[str] = "mc"
#: Level-synchronous slab-decomposed BEG lattice.
LATTICE: Final[str] = "lattice"
#: Transpose-parallel ADI finite differences.
PDE: Final[str] = "pde"
#: Distributed-regression Longstaff–Schwartz (American Monte Carlo).
LSM: Final[str] = "lsm"
#: CRN bump-and-revalue hedge parameters over the MC decomposition.
GREEKS: Final[str] = "mc-greeks"
#: Closed forms (validation anchors; reference family only).
ANALYTIC: Final[str] = "analytic"
#: Randomized Sobol quasi-Monte Carlo (reference family only).
QMC: Final[str] = "qmc"
#: Multilevel Monte Carlo (reference family only).
MLMC: Final[str] = "mlmc"

#: The five pipeline engines that run on the shared parallel runner.
PARALLEL_ENGINES: Final[tuple[str, ...]] = (MC, LATTICE, PDE, LSM, GREEKS)

#: Engine families the differential oracle can price a corpus case with.
REFERENCE_FAMILIES: Final[tuple[str, ...]] = (
    ANALYTIC, MC, QMC, MLMC, LATTICE, PDE, LSM,
)
