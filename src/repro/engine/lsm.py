"""Pipeline engine: distributed-regression Longstaff–Schwartz.

The LSM backward induction is MC's *synchronized iterative algorithm*: at
every exercise date the regression couples all paths, so ranks cannot
proceed independently the way European path-averaging does. The classical
parallel formulation (used by the era's American-MC codes):

1. paths are block-partitioned; rank r simulates and stores its own block;
2. at each exercise date, each rank builds the **normal-equation moments**
   of its in-the-money paths — ``A_r = X_rᵀX_r`` (k×k) and
   ``b_r = X_rᵀy_r`` (k) — an O(k²) payload independent of the path count;
3. one allreduce sums the moments; every rank solves the same tiny k×k
   system, so all ranks hold the *global* regression coefficients;
4. exercise decisions are applied locally; the final price is a standard
   sufficient-statistics reduction.

Communication is one O(k²) allreduce per exercise date — between MC's
single terminal reduce and the lattice's per-level halos, which is exactly
where its measured scaling lands (benchmark F12).

Paths are generated from the master seed independently of P, so the
estimate varies across P only through the allreduce's floating-point
association.

The public entry point is :class:`repro.core.lsm_parallel.ParallelLSMPricer`,
a thin config adapter over this engine.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np

from repro.engine.names import LSM
from repro.engine.pipeline import (
    Estimate,
    ExecutionPlan,
    PipelineContext,
    PipelineEngine,
    PricingJob,
)
from repro.errors import ValidationError
from repro.mc.american import polynomial_features
from repro.mc.statistics import SampleStats
from repro.parallel.faults import RunReport
from repro.parallel.partition import block_partition
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LSMEngine"]


class LSMEngine(PipelineEngine):
    """Inline pipeline engine over a ``ParallelLSMPricer`` config."""

    name = LSM

    def plan(self, job: PricingJob) -> ExecutionPlan:
        cfg = self.config
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        if job.payoff.dim != job.model.dim:
            raise ValidationError(
                f"payoff dim {job.payoff.dim} does not match model dim "
                f"{job.model.dim}"
            )
        n = cfg.n_paths
        if p > n:
            raise ValidationError(f"more ranks ({p}) than paths ({n})")
        parts = block_partition(n, p)
        # Basis size for the work model and the allreduce payload.
        k = polynomial_features(np.ones((1, job.model.dim)), cfg.degree,
                                job.model.spots).shape[1]
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"parts": parts, "k": k,
                                      "moment_bytes": (k * k + k + 1) * 8.0})

    def execute(self, plan: ExecutionPlan, ctx: PipelineContext) -> Dict[str, Any]:
        cfg = self.config
        cluster = ctx.cluster
        tracer = ctx.tracer
        model, payoff, expiry = plan.job.model, plan.job.payoff, plan.job.expiry
        n, m, d = cfg.n_paths, cfg.steps, model.dim
        parts = plan.scratch["parts"]
        k = plan.scratch["k"]
        moment_bytes = plan.scratch["moment_bytes"]

        # Paths come from the master stream regardless of P (the estimate is
        # then P-invariant up to the allreduce's float association).
        paths = model.sample_paths(Philox4x32(cfg.seed, stream=0x15A), n,
                                   expiry, m)
        dt = expiry / m
        disc = math.exp(-model.rate * dt)

        cash = payoff.intrinsic(paths[:, -1, :])
        tau = np.full(n, m, dtype=np.int64)

        path_units = cfg.work.mc_path_units(d, m)
        for r, (lo, hi) in enumerate(parts):
            cluster.compute(r, (hi - lo) * path_units)
        if tracer:
            tracer.add_span("lsm.paths", 0.0, cluster.elapsed())

        for t in range(m - 1, 0, -1):
            date_t0 = cluster.elapsed()
            s_t = paths[:, t, :]
            intrinsic = payoff.intrinsic(s_t)
            itm = intrinsic > 0.0
            realized = cash * np.power(disc, tau - t)

            # --- per-rank local moments + simulated cost -------------------
            a_global = np.zeros((k, k))
            b_global = np.zeros(k)
            count_global = 0
            for r, (lo, hi) in enumerate(parts):
                sel = np.zeros(n, dtype=bool)
                sel[lo:hi] = itm[lo:hi]
                n_sel = int(sel.sum())
                count_global += n_sel
                if n_sel:
                    x_loc = polynomial_features(s_t[sel], cfg.degree,
                                                model.spots)
                    a_global += x_loc.T @ x_loc
                    b_global += x_loc.T @ realized[sel]
                cluster.compute(r, n_sel * cfg.work.regression_per_path * k)
            cluster.allreduce(moment_bytes)
            if tracer:
                tracer.add_span("lsm.regression", date_t0, cluster.elapsed(),
                                date=t, itm_paths=count_global)

            if count_global < cfg.min_regression_paths:
                continue
            # Ridge whisker for rank-deficient dates (few ITM paths).
            coef = np.linalg.solve(
                a_global + 1e-10 * np.trace(a_global) / k * np.eye(k), b_global
            )

            # --- local exercise decisions ---------------------------------
            continuation = polynomial_features(s_t[itm], cfg.degree,
                                               model.spots) @ coef
            exercise = np.zeros(n, dtype=bool)
            exercise[itm] = intrinsic[itm] >= continuation
            cash = np.where(exercise, intrinsic, cash)
            tau = np.where(exercise, t, tau)
            for r, (lo, hi) in enumerate(parts):
                cluster.compute(r, (hi - lo) * 2.0)

        return {"paths": paths, "cash": cash, "tau": tau, "dt": dt}

    def reduce(self, plan: ExecutionPlan, state: Any, ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Estimate:
        cluster = ctx.cluster
        model, payoff = plan.job.model, plan.job.payoff
        parts = plan.scratch["parts"]
        pv = state["cash"] * np.exp(-model.rate * state["dt"] * state["tau"])
        partials = [SampleStats.from_values(pv[lo:hi]) for lo, hi in parts]
        reduce_t0 = cluster.elapsed()
        merged = cluster.reduce_data(partials, lambda a, b: a.merge(b), 24.0,
                                     root=0, topology="tree")
        if ctx.tracer:
            ctx.tracer.add_span("lsm.reduce", reduce_t0, cluster.elapsed())
        price = merged.mean
        stderr = merged.stderr
        # American floor: immediate exercise at t=0 dominates if the
        # regression-implied continuation is below intrinsic there.
        intrinsic0 = float(payoff.intrinsic(state["paths"][:, 0, :])[0])
        if intrinsic0 > price:
            price = intrinsic0
        return Estimate(price=price, stderr=stderr)

    def report(self, plan: ExecutionPlan, estimate: Estimate,
               ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Dict[str, Any]:
        cfg = self.config
        return {
            "steps": cfg.steps,
            "degree": cfg.degree,
            "basis_size": plan.scratch["k"],
            "n_paths": cfg.n_paths,
            **({"fault_report": fault_report} if fault_report else {}),
        }
