"""The engine capability registry: every pricing family, by canonical name.

One :class:`EngineSpec` per engine family records what the family *is*
(capability flags, dimension ceiling) and how each subsystem obtains an
instance of it — the serving layer a request-configured pricer, the
differential oracle a corpus adapter, the CLI a scaling/trace pricer, the
pipeline tests the :class:`~repro.engine.pipeline.PipelineEngine` class.
Consumers resolve engines **by canonical name only**
(:mod:`repro.engine.names`); none of them hard-code family lists or
if/elif dispatch anymore.

Hook callables import their targets lazily (inside the function body), so
this module stays import-light and cycle-free: it can be imported by
``repro.serve``, ``repro.verify`` and ``repro.core`` alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.engine.names import (
    ANALYTIC,
    GREEKS,
    LATTICE,
    LSM,
    MC,
    MLMC,
    PDE,
    QMC,
)
from repro.errors import ValidationError

__all__ = [
    "EngineCapabilities",
    "EngineSpec",
    "EngineRegistry",
    "default_registry",
]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine family can price, as machine-checkable flags.

    ``max_dim`` is the asset-dimension ceiling (``None`` = unlimited);
    ``degradable`` marks families whose estimator survives rank loss with
    a widened CI (the ``degrade`` fault policy); ``supports_qmc`` marks
    families that accept a quasi-Monte Carlo technique; ``batchable``
    marks families whose pipeline engine implements the fused strip
    stages (:mod:`repro.batch` groups cache-missed requests by these);
    ``schedulable`` marks families whose rank tasks a non-static
    :class:`~repro.parallel.sched.Scheduler` (LPT / work stealing) may
    re-place across workers.
    """

    stochastic: bool = False
    american: bool = False
    degradable: bool = False
    supports_qmc: bool = False
    batchable: bool = False
    schedulable: bool = False
    max_dim: Optional[int] = None

    def flags(self) -> Tuple[str, ...]:
        """The set flag names, for display."""
        out = []
        if self.stochastic:
            out.append("stochastic")
        if self.american:
            out.append("american")
        if self.degradable:
            out.append("degradable")
        if self.supports_qmc:
            out.append("qmc")
        if self.batchable:
            out.append("batchable")
        if self.schedulable:
            out.append("schedulable")
        return tuple(out)


@dataclass(frozen=True)
class EngineSpec:
    """One engine family: capabilities plus per-subsystem factory hooks.

    Every hook is optional — a family participates only in the subsystems
    it has a hook for:

    ``pipeline()``
        → the family's :class:`~repro.engine.pipeline.PipelineEngine`
        subclass (the five parallel families).
    ``serve(request)``
        → a pricer configured from a
        :class:`~repro.serve.batching.PricingRequest`.
    ``oracle(case, params)``
        → an :class:`~repro.verify.oracle.EngineCell` for one corpus case
        (the seven reference families).
    ``scaling(args, spec)``
        → ``(workload, pricer, label)`` for the ``repro scaling`` sweep.
    ``trace(args, faults=..., policy=..., tracer=..., backend=...)``
        → ``(workload, pricer)`` for the ``repro trace`` command;
        ``uses_backend`` tells the CLI to construct a real execution
        backend first.
    """

    name: str
    summary: str
    capabilities: EngineCapabilities = field(default_factory=EngineCapabilities)
    pipeline: Optional[Callable[[], Any]] = None
    serve: Optional[Callable[[Any], Any]] = None
    oracle: Optional[Callable[[Any, dict], Any]] = None
    scaling: Optional[Callable[..., Any]] = None
    trace: Optional[Callable[..., Any]] = None
    uses_backend: bool = False


class EngineRegistry:
    """Name → :class:`EngineSpec`, preserving registration order."""

    def __init__(self) -> None:
        self._specs: Dict[str, EngineSpec] = {}

    def register(self, spec: EngineSpec) -> EngineSpec:
        if spec.name in self._specs:
            raise ValidationError(f"engine {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> EngineSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ValidationError(
                f"unknown engine {name!r}; registered engines: "
                f"{tuple(self._specs)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def specs(self) -> Tuple[EngineSpec, ...]:
        return tuple(self._specs.values())

    def names(self, *, parallel: bool = False, servable: bool = False,
              reference: bool = False, scalable: bool = False,
              traceable: bool = False, batchable: bool = False,
              schedulable: bool = False) -> Tuple[str, ...]:
        """Engine names in registration order, optionally filtered by the
        subsystems the family participates in (flags AND together)."""
        out = []
        for spec in self._specs.values():
            if parallel and spec.pipeline is None:
                continue
            if servable and spec.serve is None:
                continue
            if reference and spec.oracle is None:
                continue
            if scalable and spec.scaling is None:
                continue
            if traceable and spec.trace is None:
                continue
            if batchable and not spec.capabilities.batchable:
                continue
            if schedulable and not spec.capabilities.schedulable:
                continue
            out.append(spec.name)
        return tuple(out)


# ----------------------------------------------------------------------
# Default registry wiring. All imports inside hook bodies — see module
# docstring.
# ----------------------------------------------------------------------

def _oracle_hook(family: str) -> Callable[[Any, dict], Any]:
    def run(case: Any, params: dict) -> Any:
        from repro.verify.oracle import ORACLE_ADAPTERS

        return ORACLE_ADAPTERS[family](case, params)

    run.__name__ = f"oracle_{family}"
    return run


# -- pipeline hooks ----------------------------------------------------

def _pipeline_mc() -> Any:
    from repro.engine.mc import MCEngine

    return MCEngine


def _pipeline_lattice() -> Any:
    from repro.engine.lattice import LatticeEngine

    return LatticeEngine


def _pipeline_pde() -> Any:
    from repro.engine.pde import PDEEngine

    return PDEEngine


def _pipeline_lsm() -> Any:
    from repro.engine.lsm import LSMEngine

    return LSMEngine


def _pipeline_greeks() -> Any:
    from repro.engine.greeks import GreeksEngine

    return GreeksEngine


# -- serve hooks (request → configured pricer) -------------------------

def _serve_mc(request: Any) -> Any:
    from repro.core.mc_parallel import ParallelMCPricer

    return ParallelMCPricer(request.n_paths, seed=request.seed,
                            steps=request.steps)


def _serve_lattice(request: Any) -> Any:
    from repro.core.lattice_parallel import ParallelLatticePricer

    return ParallelLatticePricer(request.steps)


def _serve_pde(request: Any) -> Any:
    from repro.core.pde_parallel import ParallelPDEPricer

    n_time = max((request.steps or request.grid // 2), 4)
    return ParallelPDEPricer(n_space=request.grid, n_time=n_time)


def _serve_lsm(request: Any) -> Any:
    from repro.core.lsm_parallel import ParallelLSMPricer

    return ParallelLSMPricer(request.n_paths, request.steps,
                             seed=request.seed)


# -- scaling hooks (CLI args + machine spec → workload, pricer, label) --

def _scaling_mc(args: Any, spec: Any) -> Any:
    from repro.core.mc_parallel import ParallelMCPricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(MC)
    pricer = ParallelMCPricer(args.paths, seed=args.seed, spec=spec)
    return w, pricer, f"MC — 4-asset basket, N={args.paths}"


def _scaling_lattice(args: Any, spec: Any) -> Any:
    from repro.core.lattice_parallel import ParallelLatticePricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(LATTICE)
    pricer = ParallelLatticePricer(args.steps, spec=spec)
    return w, pricer, f"BEG lattice — 2-asset max-call, {args.steps} steps"


def _scaling_pde(args: Any, spec: Any) -> Any:
    from repro.core.pde_parallel import ParallelPDEPricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(PDE)
    pricer = ParallelPDEPricer(n_space=args.grid,
                               n_time=max(args.steps // 8, 4), spec=spec)
    return w, pricer, f"ADI PDE — spread call, {args.grid}² grid"


def _scaling_lsm(args: Any, spec: Any) -> Any:
    from repro.core.lsm_parallel import ParallelLSMPricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(LSM)
    dates = max(args.steps // 8, 4)
    pricer = ParallelLSMPricer(args.paths, dates, seed=args.seed, spec=spec)
    return w, pricer, (f"LSM — 2-asset american basket put, "
                       f"N={args.paths}, {dates} dates")


# -- trace hooks (CLI args + middleware → workload, pricer) ------------

def _trace_mc(args: Any, *, faults: Any, policy: Any, tracer: Any,
              backend: Any) -> Any:
    from repro.core.mc_parallel import ParallelMCPricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(MC)
    return w, ParallelMCPricer(args.paths, seed=args.seed, backend=backend,
                               record=True, faults=faults, policy=policy,
                               tracer=tracer)


def _trace_lattice(args: Any, *, faults: Any, policy: Any, tracer: Any,
                   backend: Any) -> Any:
    from repro.core.lattice_parallel import ParallelLatticePricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(LATTICE)
    return w, ParallelLatticePricer(args.steps, record=True, faults=faults,
                                    policy=policy, tracer=tracer)


def _trace_pde(args: Any, *, faults: Any, policy: Any, tracer: Any,
               backend: Any) -> Any:
    from repro.core.pde_parallel import ParallelPDEPricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(PDE)
    return w, ParallelPDEPricer(n_space=args.grid,
                                n_time=max(args.steps // 8, 4), record=True,
                                faults=faults, policy=policy, tracer=tracer)


def _trace_lsm(args: Any, *, faults: Any, policy: Any, tracer: Any,
               backend: Any) -> Any:
    from repro.core.lsm_parallel import ParallelLSMPricer
    from repro.workloads.suites import scaling_workload

    w = scaling_workload(LSM)
    return w, ParallelLSMPricer(args.paths, args.steps, seed=args.seed,
                                record=True, faults=faults, policy=policy,
                                tracer=tracer)


_DEFAULT: Optional[EngineRegistry] = None


def default_registry() -> EngineRegistry:
    """The process-wide registry with every built-in family registered.

    Registration order is part of the public contract: it fixes the order
    of :data:`~repro.verify.contracts.ENGINE_FAMILIES` (the seven
    reference families first, matching the historical tuple) and of
    :data:`~repro.serve.batching.SERVE_ENGINES`.
    """
    global _DEFAULT
    if _DEFAULT is not None:
        return _DEFAULT
    reg = EngineRegistry()
    reg.register(EngineSpec(
        name=ANALYTIC,
        summary="closed forms (BS, Margrabe, Kirk, Stulz, geometric exotics)",
        oracle=_oracle_hook(ANALYTIC),
    ))
    reg.register(EngineSpec(
        name=MC,
        summary="path-partitioned Monte Carlo with tree reduction",
        capabilities=EngineCapabilities(stochastic=True, degradable=True,
                                        supports_qmc=True, batchable=True,
                                        schedulable=True),
        pipeline=_pipeline_mc,
        serve=_serve_mc,
        oracle=_oracle_hook(MC),
        scaling=_scaling_mc,
        trace=_trace_mc,
        uses_backend=True,
    ))
    reg.register(EngineSpec(
        name=QMC,
        summary="randomized Sobol quasi-Monte Carlo (replicated shifts)",
        capabilities=EngineCapabilities(stochastic=True, supports_qmc=True,
                                        batchable=True),
        oracle=_oracle_hook(QMC),
    ))
    reg.register(EngineSpec(
        name=MLMC,
        summary="multilevel Monte Carlo over time-step hierarchies",
        capabilities=EngineCapabilities(stochastic=True),
        oracle=_oracle_hook(MLMC),
    ))
    reg.register(EngineSpec(
        name=LATTICE,
        summary="level-synchronous BEG lattice with halo exchanges",
        capabilities=EngineCapabilities(american=True, batchable=True,
                                        max_dim=4),
        pipeline=_pipeline_lattice,
        serve=_serve_lattice,
        oracle=_oracle_hook(LATTICE),
        scaling=_scaling_lattice,
        trace=_trace_lattice,
    ))
    reg.register(EngineSpec(
        name=PDE,
        summary="transpose-parallel ADI finite differences (2 assets)",
        capabilities=EngineCapabilities(american=True, max_dim=2),
        pipeline=_pipeline_pde,
        serve=_serve_pde,
        oracle=_oracle_hook(PDE),
        scaling=_scaling_pde,
        trace=_trace_pde,
    ))
    reg.register(EngineSpec(
        name=LSM,
        summary="distributed-regression Longstaff–Schwartz American MC",
        capabilities=EngineCapabilities(stochastic=True, american=True),
        pipeline=_pipeline_lsm,
        serve=_serve_lsm,
        oracle=_oracle_hook(LSM),
        scaling=_scaling_lsm,
        trace=_trace_lsm,
    ))
    reg.register(EngineSpec(
        name=GREEKS,
        summary="CRN bump-and-revalue Greeks over the MC decomposition",
        capabilities=EngineCapabilities(stochastic=True, schedulable=True),
        pipeline=_pipeline_greeks,
    ))
    _DEFAULT = reg
    return reg
