"""The shared pipeline runner: one place for every cross-cutting concern.

Before this runner existed, each parallel pricer hand-wired the same
skeleton — wall-clock timing, fault-resilient mapping, simulated-cluster
construction, tracer plumbing, result assembly — five times over. The
runner applies them **once**, as a fixed middleware order around the
engine's stages:

1. ``plan`` / ``partition`` (engine) — validation and work splitting;
2. **cluster middleware** — one :class:`SimulatedCluster` per run, built
   with the config's machine spec, fault plan and tracer;
3. **execution middleware** — mapped engines go through
   :func:`~repro.parallel.faults.resilient_map` when a non-empty fault
   plan is configured (plain chunked ``backend.map`` otherwise); inline
   engines run their loops and then pass through
   :func:`~repro.parallel.faults.simulate_recovery`. A config-attached
   :class:`~repro.parallel.sched.Scheduler` (``pricer.scheduler =
   "steal"``) re-places mapped tasks across workers — LPT over the
   engine's ``task_costs`` estimates, or work stealing — without moving a
   price bit; scheduling stats land in engine metrics and the ledger
   record's ``extra["sched"]``. Either way the wall clock is measured by
   one shared :class:`~repro.perf.timer.Timer`;
4. ``account`` / ``reduce`` (engine) — simulated cost charging and the
   reduction, which travels the modeled machine's schedule;
5. **report middleware** — the runner assembles the
   :class:`~repro.engine.result.ParallelRunResult` from the cluster
   report, attaches the recorded cluster when asked, feeds the optional
   :class:`~repro.obs.metrics.MetricsRegistry`, and appends one
   :class:`~repro.obs.ledger.RunRecord` (per-stage wall timings, fault
   tallies, ``run_id``) to the configured or ambient run ledger.

Observability attachments follow one idiom — plain attribute assignment
on the engine config: ``pricer.tracer = Tracer()``,
``pricer.ledger = RunLedger(path)``, ``pricer.profiler =
SamplingProfiler()``. Each costs a single ``getattr`` when absent. When a
ledger or tracer is active the runner mints a ``run_id`` and threads it
into :func:`~repro.parallel.faults.resilient_map`, so fault/retry trace
instants, the :class:`~repro.parallel.faults.RunReport` and the ledger
row all correlate.

Because the middleware only *wraps* the engine's arithmetic (it never
reorders it), a pricer ported onto the pipeline produces bitwise-identical
prices — the property the verification subsystem's golden masters and
determinism checks gate on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import (
    Any,
    Callable,
    ContextManager,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.engine.pipeline import (
    Estimate,
    PipelineContext,
    PipelineEngine,
    PricingJob,
    RankTask,
    StripJob,
)
from repro.engine.result import ParallelRunResult
from repro.errors import ValidationError
from repro.obs.ledger import active_ledger, new_run_id, record_from_result
from repro.parallel.backends import SerialBackend
from repro.parallel.faults import FaultPolicy, resilient_map, simulate_recovery
from repro.parallel.sched import Scheduler, resolve_scheduler
from repro.parallel.simcluster import SimulatedCluster
from repro.perf.timer import Timer

__all__ = ["run_pipeline", "run_engine", "run_strip"]


def _ledger_for(cfg: Any) -> Any:
    """The run ledger for a config: explicit attribute wins, else ambient."""
    ledger = getattr(cfg, "ledger", None)
    if ledger is None:
        ledger = active_ledger()
    return ledger


def _profile_ctx(cfg: Any, label: str) -> ContextManager[Any]:
    """The execute-stage profiler context (no-op unless one is attached)."""
    profiler = getattr(cfg, "profiler", None)
    if profiler is None:
        return nullcontext()
    ctx: ContextManager[Any] = profiler.profile(label)
    return ctx


class _StageTimer:
    """One wall-clock timer feeding the ledger's per-stage ``stages{}``.

    ``with timer.stage("plan"): ...`` replaces the hand-rolled
    ``t0..t3``/``perf_counter`` bookkeeping that ``run_pipeline`` and
    ``run_strip`` used to duplicate; re-entering a name accumulates, so a
    split stage still reports one number.
    """

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.stages[name] = self.stages.get(name, 0.0) + dt


def _scheduler_for(cfg: Any, engine: PipelineEngine,
                   tasks: Optional[Sequence[RankTask]]) -> Optional[Scheduler]:
    """Resolve the config's execute-stage scheduler, gated by capability.

    ``cfg.scheduler`` follows the obs attachment idiom (plain attribute
    assignment; absent means the historical static path, bitwise). A
    non-static strategy requires a mapped engine that declares
    ``schedulable`` — inline engines run their own loops and have nothing
    to steal, and non-schedulable mapped engines have order-dependent
    reassembly the scheduler must not touch.
    """
    value = getattr(cfg, "scheduler", None)
    if value is None:
        return None
    scheduler = resolve_scheduler(value)
    if scheduler.name == "static":
        return scheduler
    if tasks is None:
        raise ValidationError(
            f"engine {engine.name!r} runs inline; only the 'static' "
            f"scheduler applies (got {scheduler.name!r})"
        )
    if not engine.schedulable:
        raise ValidationError(
            f"engine {engine.name!r} is not schedulable; see "
            f"EngineCapabilities.schedulable"
        )
    return scheduler


def _mapped_execute(
    cfg: Any,
    worker: Callable[[Any], Any],
    payloads: List[Any],
    *,
    faults: Any,
    policy: FaultPolicy,
    run_id: Optional[str],
    scheduler: Optional[Scheduler],
    costs: Optional[Sequence[float]],
) -> Tuple[list, Optional[Any], Optional[Any]]:
    """The shared mapped-engine execute stage (pipeline and strip runs).

    Returns ``(state, fault_report, sched_stats)``. With neither faults
    nor a scheduler configured this is the historical fault-free fast
    path — one ``backend.map``, one branch of overhead (benchmark F13).
    """
    backend = getattr(cfg, "backend", None)
    if backend is None:
        backend = SerialBackend()
    chunksize = getattr(cfg, "chunksize", None)
    inject = faults is not None and not faults.is_empty
    if inject:
        state, fault_report = resilient_map(
            backend, worker, payloads,
            plan=faults, policy=policy, chunksize=chunksize,
            run_id=run_id, scheduler=scheduler, costs=costs,
        )
        return state, fault_report, fault_report.sched
    if scheduler is None:
        return backend.map(worker, payloads, chunksize=chunksize), None, None
    state, sched_stats = scheduler.map(backend, worker, payloads,
                                       costs=costs, chunksize=chunksize)
    return state, None, sched_stats


def _observe_sched(cfg: Any, engine: PipelineEngine, sched_stats: Any,
                   extra: Optional[dict]) -> Optional[dict]:
    """Fold scheduling stats into engine metrics and the ledger extra."""
    if sched_stats is None:
        return extra
    metrics = getattr(cfg, "metrics", None)
    if metrics is not None:
        metrics.counter("sched.steals", engine=engine.name).inc(
            sched_stats.steals)
        metrics.counter("sched.tasks_moved", engine=engine.name).inc(
            sched_stats.tasks_moved)
    merged = dict(extra) if extra else {}
    merged["sched"] = sched_stats.ledger_extra()
    return merged


def run_pipeline(
    engine: PipelineEngine,
    model: Any,
    payoff: Any,
    expiry: float,
    p: int,
) -> Tuple[ParallelRunResult, Estimate]:
    """Drive one engine through the five stages; returns (result, estimate).

    Most callers want :func:`run_engine`; adapters that need reduce-stage
    extras (e.g. the greeks arrays) use this and read ``estimate.extras``.
    """
    cfg = engine.config
    ledger = _ledger_for(cfg)
    timer = _StageTimer()
    stages = timer.stages

    with timer.stage("plan"):
        plan = engine.plan(PricingJob(model=model, payoff=payoff,
                                      expiry=expiry, p=p))
    with timer.stage("partition"):
        tasks = engine.partition(plan)

    faults = getattr(cfg, "faults", None)
    policy: FaultPolicy = getattr(cfg, "policy", None) or FaultPolicy.parse(None)
    tracer = getattr(cfg, "tracer", None)
    record = bool(getattr(cfg, "record", False))
    run_id = new_run_id() if (ledger is not None or tracer is not None) else None
    scheduler = _scheduler_for(cfg, engine, tasks)
    cluster = SimulatedCluster(plan.p, cfg.spec, record=record,
                               faults=faults, tracer=tracer)
    ctx = PipelineContext(cluster=cluster, tracer=tracer, timer=Timer())
    sched_stats: Optional[Any] = None

    if tasks is not None:
        # Mapped engine: scheduler + fault + chunking middleware around
        # the backend map.
        payloads = [task.payload for task in tasks]
        assert engine.worker is not None, f"{engine.name} engine has no worker"
        costs = engine.task_costs(plan) if scheduler is not None else None
        with ctx.timer, _profile_ctx(cfg, f"{engine.name}.execute"):
            state, fault_report, sched_stats = _mapped_execute(
                cfg, engine.worker, payloads, faults=faults, policy=policy,
                run_id=run_id, scheduler=scheduler, costs=costs,
            )
        engine.account(plan, ctx, fault_report)
    else:
        # Inline engine: the arithmetic is the sequential reference, so
        # faults stretch the simulated timeline only (recovery is charged
        # after the compute loops, and rank loss raises).
        with ctx.timer, _profile_ctx(cfg, f"{engine.name}.execute"):
            state = engine.execute(plan, ctx)
        fault_report = simulate_recovery(cluster, faults, policy,
                                         engine=engine.name)
    stages["execute"] = ctx.timer.elapsed

    with timer.stage("reduce"):
        estimate = engine.reduce(plan, state, ctx, fault_report)
    with timer.stage("report"):
        rep = cluster.report()
        meta = engine.report(plan, estimate, ctx, fault_report)
    if record:
        meta["cluster"] = cluster

    result = ParallelRunResult(
        price=estimate.price,
        stderr=estimate.stderr,
        p=plan.p,
        sim_time=rep["elapsed"],
        wall_time=ctx.timer.elapsed,
        compute_time=rep["compute_time"],
        comm_time=rep["comm_time"],
        idle_time=rep["idle_time"],
        messages=rep["messages"],
        bytes_moved=rep["bytes_moved"],
        engine=engine.name,
        meta=meta,
    )

    metrics = getattr(cfg, "metrics", None)
    if metrics is not None:
        metrics.counter("engine.runs", engine=engine.name).inc()
        metrics.histogram("engine.wall_s", engine=engine.name).observe(
            result.wall_time)
        metrics.histogram("engine.sim_s", engine=engine.name).observe(
            result.sim_time)
    extra = _observe_sched(cfg, engine, sched_stats, None)
    if ledger is not None:
        ledger.append(record_from_result(
            result, run_id=run_id or new_run_id(), kind="engine",
            config=cfg, stages=stages, fault_report=fault_report,
            extra=extra))
    return result, estimate


def run_engine(
    engine: PipelineEngine,
    model: Any,
    payoff: Any,
    expiry: float,
    p: int,
) -> ParallelRunResult:
    """Run the pipeline and return just the :class:`ParallelRunResult`."""
    result, _ = run_pipeline(engine, model, payoff, expiry, p)
    return result


def run_strip(
    engine: PipelineEngine,
    model: Any,
    payoffs: Sequence[Any],
    expiry: float,
    p: int,
) -> List[ParallelRunResult]:
    """Price a homogeneous contract strip through one fused engine run.

    The exact middleware order of :func:`run_pipeline` — one simulated
    cluster, the fault-resilient map (or plain chunked ``backend.map``) for
    mapped engines, :func:`simulate_recovery` for inline engines, one shared
    wall-clock :class:`~repro.perf.timer.Timer` — wrapped around the
    engine's *strip* stages (``plan_strip`` / ``execute_strip`` /
    ``reduce_strip``). Because the middleware never reorders the engine's
    arithmetic and the fused kernels share draws that are identical to each
    single run's, every returned result is bitwise equal to the matching
    :func:`run_engine` call (asserted by the strip-equivalence test tier).

    Returns one :class:`~repro.engine.result.ParallelRunResult` per payoff,
    in strip order; timing/communication columns describe the *fused* run
    and are therefore shared by all members.
    """
    if not engine.batchable:
        raise ValidationError(
            f"engine {engine.name!r} is not batchable; see "
            f"EngineCapabilities.batchable"
        )
    cfg = engine.config
    ledger = _ledger_for(cfg)
    timer = _StageTimer()
    stages = timer.stages

    with timer.stage("plan"):
        job = StripJob.from_payoffs(model, payoffs, expiry, p)
        plan = engine.plan_strip(job)
    with timer.stage("partition"):
        tasks = engine.partition(plan)

    faults = getattr(cfg, "faults", None)
    policy: FaultPolicy = getattr(cfg, "policy", None) or FaultPolicy.parse(None)
    tracer = getattr(cfg, "tracer", None)
    record = bool(getattr(cfg, "record", False))
    run_id = new_run_id() if (ledger is not None or tracer is not None) else None
    scheduler = _scheduler_for(cfg, engine, tasks)
    cluster = SimulatedCluster(plan.p, cfg.spec, record=record,
                               faults=faults, tracer=tracer)
    ctx = PipelineContext(cluster=cluster, tracer=tracer, timer=Timer())
    sched_stats: Optional[Any] = None

    if tasks is not None:
        payloads = [task.payload for task in tasks]
        assert engine.strip_worker is not None, (
            f"{engine.name} engine has no strip worker")
        costs = engine.task_costs(plan) if scheduler is not None else None
        with ctx.timer, _profile_ctx(cfg, f"{engine.name}.execute_strip"):
            state, fault_report, sched_stats = _mapped_execute(
                cfg, engine.strip_worker, payloads, faults=faults,
                policy=policy, run_id=run_id, scheduler=scheduler,
                costs=costs,
            )
        engine.account(plan, ctx, fault_report)
    else:
        with ctx.timer, _profile_ctx(cfg, f"{engine.name}.execute_strip"):
            state = engine.execute_strip(plan, ctx)
        fault_report = simulate_recovery(cluster, faults, policy,
                                         engine=engine.name)
    stages["execute"] = ctx.timer.elapsed

    with timer.stage("reduce"):
        estimates = engine.reduce_strip(plan, state, ctx, fault_report)
    rep = cluster.report()
    results: List[ParallelRunResult] = []
    for index, estimate in enumerate(estimates):
        meta = engine.report(plan, estimate, ctx, fault_report)
        meta["strip"] = {"contracts": len(estimates), "index": index}
        if record:
            meta["cluster"] = cluster
        results.append(ParallelRunResult(
            price=estimate.price,
            stderr=estimate.stderr,
            p=plan.p,
            sim_time=rep["elapsed"],
            wall_time=ctx.timer.elapsed,
            compute_time=rep["compute_time"],
            comm_time=rep["comm_time"],
            idle_time=rep["idle_time"],
            messages=rep["messages"],
            bytes_moved=rep["bytes_moved"],
            engine=engine.name,
            meta=meta,
        ))

    metrics = getattr(cfg, "metrics", None)
    if metrics is not None:
        metrics.counter("engine.strip_runs", engine=engine.name).inc()
        metrics.histogram("engine.strip_contracts",
                          engine=engine.name).observe(float(len(estimates)))
        metrics.histogram("engine.wall_s", engine=engine.name).observe(
            ctx.timer.elapsed)
        metrics.histogram("engine.sim_s", engine=engine.name).observe(
            rep["elapsed"])
    extra = _observe_sched(cfg, engine, sched_stats,
                           {"contracts": len(results)})
    if ledger is not None and results:
        ledger.append(record_from_result(
            results[0], run_id=run_id or new_run_id(), kind="strip",
            config=cfg, stages=stages, fault_report=fault_report,
            extra=extra))
    return results
