"""Pipeline engine: CRN bump-and-revalue hedge parameters (Greeks).

A risk run revalues the same contract under ``1 + 4d`` bumped models
(base, spot up/down and vol up/down per asset) with **common random
numbers**. The parallel structure mirrors the MC pricer — paths are
block-partitioned, every rank replays its substream for each bumped model
— but each rank now ships ``1 + 4d`` sufficient-statistics payloads in one
reduction, and the per-rank compute is ``(1 + 4d)×`` the pricing work.
Communication stays O(d) per rank versus O(N·d) compute, so Greeks scale
as well as pricing (benchmark F12).

CRN is preserved across ranks *and* bumps: rank r clones its substream for
every model, so the differences delta/gamma/vega are smooth at any P and
identical to the sequential :func:`repro.mc.mc_greeks_bump` estimator run
on the same substream layout.

The public entry point is
:class:`repro.core.greeks_parallel.ParallelMCGreeks`, a thin config
adapter over this engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.names import GREEKS
from repro.engine.pipeline import (
    Estimate,
    ExecutionPlan,
    PipelineContext,
    PipelineEngine,
    PricingJob,
    RankTask,
)
from repro.errors import ValidationError
from repro.mc.variance_reduction import PlainMC
from repro.parallel.faults import RunReport
from repro.parallel.partition import block_sizes
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["GreeksEngine", "_greeks_rank_task"]


def _greeks_rank_task(task: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Module-level worker (picklable for the process backend).

    Replays the rank's substream for every bumped model — cloning per
    valuation, exactly as the sequential CRN estimator does.
    """
    models, payoff, expiry, n, gen = task
    technique = PlainMC()
    return tuple(
        technique.partial(m_j, payoff, expiry, n, gen.clone()) for m_j in models
    )


class GreeksEngine(PipelineEngine):
    """Backend-mapped pipeline engine over a ``ParallelMCGreeks`` config."""

    name = GREEKS
    worker = staticmethod(_greeks_rank_task)
    # CRN substreams are cloned per rank and merged by index, so a
    # scheduler may re-place rank tasks freely (greeks stay bitwise).
    schedulable = True

    def plan(self, job: PricingJob) -> ExecutionPlan:
        cfg = self.config
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        if job.payoff.dim != job.model.dim:
            raise ValidationError(
                f"payoff dim {job.payoff.dim} does not match model dim "
                f"{job.model.dim}"
            )
        if p > cfg.n_paths:
            raise ValidationError(
                f"more ranks ({p}) than paths ({cfg.n_paths})"
            )
        models, spot_bumps = cfg._bumped_models(job.model)
        counts = block_sizes(cfg.n_paths, p)
        if min(counts) == 0:
            raise ValidationError("some rank would receive zero paths; lower p")
        master = Philox4x32(cfg.seed, stream=0x9E)
        subs = master.spawn(p)
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"models": models,
                                      "spot_bumps": spot_bumps,
                                      "counts": counts, "subs": subs})

    def partition(self, plan: ExecutionPlan) -> Sequence[RankTask]:
        job = plan.job
        models = plan.scratch["models"]
        counts = plan.scratch["counts"]
        subs = plan.scratch["subs"]
        return [
            RankTask(rank=r, payload=(models, job.payoff, job.expiry,
                                      counts[r], subs[r]))
            for r in range(plan.p)
        ]

    def task_costs(self, plan: ExecutionPlan) -> Sequence[float]:
        """Per-rank path counts — the LPT scheduler's cost estimates."""
        return [float(c) for c in plan.scratch["counts"]]

    def account(self, plan: ExecutionPlan, ctx: PipelineContext,
                fault_report: Optional[RunReport]) -> None:
        cfg = self.config
        counts: List[int] = plan.scratch["counts"]
        units = cfg.work.mc_path_units(plan.job.model.dim, None) * len(
            plan.scratch["models"])
        ctx.cluster.compute_all([c * units for c in counts])
        if ctx.tracer:
            ctx.tracer.add_span("greeks.paths", 0.0, ctx.cluster.elapsed())

    def reduce(self, plan: ExecutionPlan, state: Any, ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Estimate:
        cfg = self.config
        model = plan.job.model
        d = model.dim
        n_models = len(plan.scratch["models"])
        spot_bumps = plan.scratch["spot_bumps"]
        merged = ctx.cluster.reduce_data(
            state,
            lambda a, b: tuple(x.merge(y) for x, y in zip(a, b)),
            24.0 * n_models,
            root=0,
            topology="tree",
        )
        values = [s.mean for s in merged]
        price = values[0]
        stderr = merged[0].stderr

        delta = np.empty(d)
        gamma = np.empty(d)
        vega = np.empty(d)
        for i in range(d):
            h = spot_bumps[i]
            up, dn = values[1 + 2 * i], values[2 + 2 * i]
            delta[i] = (up - dn) / (2.0 * h)
            gamma[i] = (up - 2.0 * price + dn) / (h * h)
        offset = 1 + 2 * d
        for i in range(d):
            vu_val = values[offset + 2 * i]
            vd_val = values[offset + 2 * i + 1]
            v_hi = float(model.vols[i]) + cfg.vol_bump
            v_lo = max(float(model.vols[i]) - cfg.vol_bump, 1e-8)
            vega[i] = (vu_val - vd_val) / (v_hi - v_lo)
        return Estimate(price=price, stderr=stderr,
                        extras={"delta": delta, "gamma": gamma, "vega": vega})

    def report(self, plan: ExecutionPlan, estimate: Estimate,
               ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Dict[str, Any]:
        return {
            "n_models": len(plan.scratch["models"]),
            "counts": plan.scratch["counts"],
        }
