"""Pipeline engine: transpose-based sweep decomposition of the two-asset
ADI solver.

Within one Peaceman–Rachford step every tridiagonal line is independent of
its neighbors, so:

* the **x-implicit** half-step distributes the ``n_y`` column systems over
  ranks (rank r solves a contiguous block of columns);
* the **y-implicit** half-step distributes the ``n_x`` row systems;
* switching between the two layouts is a **data transpose** — an
  all-to-all in which each rank pair exchanges ``n_x·n_y/P²`` grid values.

Per time step the decomposition therefore pays two all-to-alls; their cost
grows with P (pairwise model: (P−1)(α + b·β)), which gives the PDE engine
its characteristic efficiency roll-off between the embarrassing MC curve
and the latency-bound lattice curve (experiment T7).

The rank-block computations here are *actually executed* block by block
(each rank's columns solved independently) and reassembled; the integration
tests assert the assembled plane is bit-identical to the sequential
:class:`~repro.pde.ADISolver` step for every P.

The public entry point is
:class:`repro.core.pde_parallel.ParallelPDEPricer`, a thin config adapter
over this engine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.engine.names import PDE
from repro.engine.pipeline import (
    Estimate,
    ExecutionPlan,
    PipelineContext,
    PipelineEngine,
    PricingJob,
)
from repro.errors import ValidationError
from repro.parallel.faults import RunReport
from repro.parallel.partition import block_partition
from repro.parallel.simcluster import SimulatedCluster
from repro.pde.adi2d import ADISolver
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["PDEEngine"]


class PDEEngine(PipelineEngine):
    """Inline pipeline engine over a ``ParallelPDEPricer`` config."""

    name = PDE

    def plan(self, job: PricingJob) -> ExecutionPlan:
        cfg = self.config
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        if job.model.dim != 2:
            raise ValidationError(
                f"PDE pricer requires a 2-asset model, got dim={job.model.dim}"
            )
        solver = ADISolver(job.model, job.expiry, n_space=cfg.n_space,
                           n_time=cfg.n_time)
        sx, sy = solver.grid_x.s, solver.grid_y.s
        mesh = np.stack(np.meshgrid(sx, sy, indexing="ij"),
                        axis=-1).reshape(-1, 2)
        values = job.payoff.terminal(mesh).reshape(sx.size, sy.size)
        obstacle = values.copy() if cfg.american else None
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"solver": solver, "values": values,
                                      "obstacle": obstacle})

    # -- execute helpers ------------------------------------------------

    def _transpose(self, ctx: PipelineContext, nbytes: float) -> None:
        """All-to-all layout switch, traced as a ``pde.transpose`` span."""
        cluster = ctx.cluster
        t0 = cluster.elapsed()
        cluster.alltoall(nbytes)
        if ctx.tracer:
            ctx.tracer.add_span("pde.transpose", t0, cluster.elapsed())

    def _parallel_step(
        self, solver: ADISolver, v: np.ndarray, p: int, ctx: PipelineContext,
        obstacle: Optional[np.ndarray],
    ) -> np.ndarray:
        """One ADI step computed block-by-block with cost accounting."""
        cluster: SimulatedCluster = ctx.cluster
        nx, ny = v.shape
        w = self.config.work
        # Phase 0 (row layout): explicit_y + mixed term on row blocks.
        mixed = 0.5 * solver.dt * solver.mixed_term(v)
        rhs1 = solver.explicit_y(v) + mixed
        row_parts = block_partition(nx, min(p, nx))
        for r, (lo, hi) in enumerate(row_parts):
            cluster.compute(r, (hi - lo) * ny * (w.fd_explicit_point + w.fd_mixed_point))

        # Transpose rows → columns.
        self._transpose(ctx, nx * ny * 8.0 / (p * p))

        # Phase 1 (column layout): x-implicit solves on column blocks.
        col_parts = block_partition(ny, min(p, ny))
        v_star = np.empty_like(v)
        for r, (lo, hi) in enumerate(col_parts):
            v_star[:, lo:hi] = solver.implicit_x(rhs1[:, lo:hi])
            cluster.compute(r, (hi - lo) * nx * w.fd_point)
        # explicit_x is also column-independent; stay in column layout.
        rhs2 = solver.explicit_x(v_star) + mixed
        for r, (lo, hi) in enumerate(col_parts):
            cluster.compute(r, (hi - lo) * nx * w.fd_explicit_point)

        # Transpose columns → rows.
        self._transpose(ctx, nx * ny * 8.0 / (p * p))

        # Phase 2 (row layout): y-implicit solves on row blocks.
        v_new = np.empty_like(v)
        for r, (lo, hi) in enumerate(row_parts):
            v_new[lo:hi, :] = solver.implicit_y(rhs2[lo:hi, :])
            cluster.compute(r, (hi - lo) * ny * w.fd_point)
        if obstacle is not None:
            np.maximum(v_new, obstacle, out=v_new)
            for r, (lo, hi) in enumerate(row_parts):
                cluster.compute(r, (hi - lo) * ny * 1.0)
        return v_new

    def execute(self, plan: ExecutionPlan, ctx: PipelineContext) -> np.ndarray:
        cfg = self.config
        solver: ADISolver = plan.scratch["solver"]
        values: np.ndarray = plan.scratch["values"]
        obstacle: Optional[np.ndarray] = plan.scratch["obstacle"]
        for step in range(cfg.n_time):
            step_t0 = ctx.cluster.elapsed()
            values = self._parallel_step(solver, values, plan.p, ctx, obstacle)
            if ctx.tracer:
                ctx.tracer.add_span("pde.step", step_t0, ctx.cluster.elapsed(),
                                    step=step)
        return values

    def reduce(self, plan: ExecutionPlan, state: Any, ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Estimate:
        ctx.cluster.bcast(8.0, root=0)
        solver: ADISolver = plan.scratch["solver"]
        i, j = solver.grid_x.spot_index, solver.grid_y.spot_index
        return Estimate(price=float(state[i, j]), stderr=0.0)

    def report(self, plan: ExecutionPlan, estimate: Estimate,
               ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Dict[str, Any]:
        cfg = self.config
        return {
            "n_space": cfg.n_space,
            "n_time": cfg.n_time,
            "american": cfg.american,
            **({"fault_report": fault_report} if fault_report else {}),
        }
