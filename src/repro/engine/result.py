"""Result object shared by all parallel pipeline engines.

Lives in :mod:`repro.engine` (the bottom of the engine stack) so the
pipeline, the registry and the legacy :mod:`repro.core` adapters can all
share one class without import cycles; :mod:`repro.core.result` re-exports
it for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ParallelRunResult"]


@dataclass(frozen=True)
class ParallelRunResult:
    """One parallel pricing run on ``p`` ranks.

    Attributes
    ----------
    price, stderr : the estimate (stderr 0.0 for deterministic engines).
    p : rank count.
    sim_time : simulated parallel execution time T(P) in seconds — the
        quantity the paper's tables report.
    wall_time : actual wall-clock seconds of this run (backend-dependent;
        meaningless as a speedup measure on a single-core host).
    compute_time, comm_time, idle_time : simulated per-rank maxima, the
        overhead decomposition of ``sim_time``.
    messages, bytes_moved : simulated communication volume.
    engine : canonical engine name — one of the
        :data:`repro.engine.names.PARALLEL_ENGINES` constants exported by
        the :class:`~repro.engine.registry.EngineRegistry` (``"mc"``,
        ``"lattice"``, ``"pde"``, ``"lsm"``, ``"mc-greeks"``).
    meta : engine-specific diagnostics.
    """

    price: float
    stderr: float
    p: int
    sim_time: float
    wall_time: float
    compute_time: float
    comm_time: float
    idle_time: float
    messages: int
    bytes_moved: float
    engine: str
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        """Share of simulated time spent communicating (0 when sim_time=0)."""
        return self.comm_time / self.sim_time if self.sim_time > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"{self.price:.6f} [{self.engine}, P={self.p}] "
            f"T_sim={self.sim_time:.4g}s (comm {100 * self.comm_fraction:.1f}%)"
        )
