"""Pipeline engine: level-synchronous slab decomposition of the BEG
backward induction.

At level ``t`` the value tensor has ``(t+1)^d`` nodes. Its leading axis is
block-partitioned into (at most) P contiguous slabs; each rank updates its
slab with :meth:`BEGLattice.step_rows`, which needs exactly one halo plane
(``(t+2)^{d−1}`` values) from the next rank — the corner-stencil offsets
along the sliced axis are only 0 or 1. One halo exchange per level is the
entire communication; the level-synchronous structure is also the
algorithm's weakness: near the root, levels hold fewer rows than ranks, so
extra ranks idle (charged as idle time), and per-level latency is paid ``n``
times. That is why lattice speedup saturates (experiments F3/T3) while MC's
does not — the central comparison of the paper's evaluation.

American exercise adds a per-level intrinsic evaluation on each slab
(charged as extra work) and a max; values remain bit-identical to the
sequential sweep, which the integration tests assert for every P.

The public entry point is
:class:`repro.core.lattice_parallel.ParallelLatticePricer`, a thin config
adapter over this engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.engine.names import LATTICE
from repro.engine.pipeline import (
    Estimate,
    ExecutionPlan,
    PipelineContext,
    PipelineEngine,
    PricingJob,
    StripJob,
)
from repro.errors import ValidationError
from repro.lattice.beg import BEGLattice
from repro.parallel.faults import RunReport
from repro.parallel.partition import block_partition
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LatticeEngine"]


class LatticeEngine(PipelineEngine):
    """Inline pipeline engine over a ``ParallelLatticePricer`` config."""

    name = LATTICE
    batchable = True

    def plan(self, job: PricingJob) -> ExecutionPlan:
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        lattice = BEGLattice(job.model, job.expiry, self.config.steps)
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"lattice": lattice})

    def execute(self, plan: ExecutionPlan, ctx: PipelineContext) -> np.ndarray:
        cfg = self.config
        cluster = ctx.cluster
        tracer = ctx.tracer
        lattice: BEGLattice = plan.scratch["lattice"]
        model, payoff = plan.job.model, plan.job.payoff
        p = plan.p
        d = model.dim
        n = cfg.steps
        node_units = cfg.work.lattice_node_units(d)
        intr_units = cfg.work.intrinsic_node_units(d)

        values = lattice.payoff_values(payoff, n)
        # Leaf evaluation is parallel over slabs of the terminal tensor.
        leaf_parts = block_partition(n + 1, min(p, n + 1))
        plane_leaf = (n + 1) ** (d - 1)
        for r, (lo, hi) in enumerate(leaf_parts):
            cluster.compute(r, (hi - lo) * plane_leaf * intr_units)
        if tracer:
            tracer.add_span("lattice.leaves", 0.0, cluster.elapsed())

        for t in range(n - 1, -1, -1):
            level_t0 = cluster.elapsed()
            rows = t + 1
            p_eff = min(p, rows)
            parts = block_partition(rows, p_eff)
            slabs = []
            for lo, hi in parts:
                slab = lattice.step_rows(values[lo : hi + 1], t, lo, hi - lo)
                slabs.append(slab)
            new_values = np.concatenate(slabs, axis=0)
            if cfg.american:
                intrinsic = lattice.payoff_values(payoff, t)
                np.maximum(new_values, intrinsic, out=new_values)
            values = new_values

            # --- simulated cost of this level ---
            plane = rows ** (d - 1)
            for r, (lo, hi) in enumerate(parts):
                work_units = (hi - lo) * plane * node_units
                if cfg.american:
                    work_units += (hi - lo) * plane * intr_units
                cluster.compute(r, work_units)
            # One halo plane of level t+1 moves across each slab boundary.
            halo_bytes = ((t + 2) ** (d - 1)) * 8.0
            halo_t0 = cluster.elapsed()
            cluster.halo_exchange(halo_bytes)
            if tracer:
                tracer.add_span("lattice.halo", halo_t0, cluster.elapsed(),
                                level=t, nbytes=halo_bytes)
                tracer.add_span("lattice.level", level_t0, cluster.elapsed(),
                                level=t, rows=rows)
        return values

    def reduce(self, plan: ExecutionPlan, state: Any, ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Estimate:
        # Root value lives on rank 0; share it (the paper's codes broadcast
        # the final price so every node can report).
        ctx.cluster.bcast(8.0, root=0)
        price = float(np.asarray(state).reshape(-1)[0])
        return Estimate(price=price, stderr=0.0)

    # -- strip stages ---------------------------------------------------

    def plan_strip(self, job: StripJob) -> ExecutionPlan:
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        for j, payoff in enumerate(job.payoffs):
            if payoff.dim != job.model.dim:
                raise ValidationError(
                    f"strip payoff {j} dim {payoff.dim} does not match model "
                    f"dim {job.model.dim}"
                )
            if payoff.is_path_dependent:
                raise ValidationError(
                    f"strip payoff {j} is path-dependent; the lattice prices "
                    f"terminal payoffs only"
                )
        lattice = BEGLattice(job.model, job.expiry, self.config.steps)
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"lattice": lattice,
                                      "contracts": len(job.payoffs)})

    def execute_strip(self, plan: ExecutionPlan,
                      ctx: PipelineContext) -> List[np.ndarray]:
        """Fused backward induction: one lattice mesh, C value tensors.

        The price mesh at each level is built once and every contract's
        payoff (and intrinsic value, when American) is evaluated on it;
        each contract's induction then runs the *same* ``step_rows`` slab
        arithmetic as its single run — bitwise-identical values — while the
        per-level halo exchange moves one fused C-plane message instead of
        C separate ones (latency amortization).
        """
        cfg = self.config
        cluster = ctx.cluster
        tracer = ctx.tracer
        lattice: BEGLattice = plan.scratch["lattice"]
        model = plan.job.model
        payoffs = plan.job.payoffs  # type: ignore[attr-defined]
        contracts = len(payoffs)
        p = plan.p
        d = model.dim
        n = cfg.steps
        node_units = cfg.work.lattice_node_units(d)
        intr_units = cfg.work.intrinsic_node_units(d)

        # Shared leaf mesh: one level_prices(n) for the whole strip.
        leaf_pts = lattice.level_prices(n).reshape(-1, d)
        shape_n = (n + 1,) * d
        values = [py.terminal(leaf_pts).reshape(shape_n) for py in payoffs]
        leaf_parts = block_partition(n + 1, min(p, n + 1))
        plane_leaf = (n + 1) ** (d - 1)
        for r, (lo, hi) in enumerate(leaf_parts):
            cluster.compute(r, (hi - lo) * plane_leaf * intr_units * contracts)
        if tracer:
            tracer.add_span("lattice.leaves", 0.0, cluster.elapsed(),
                            contracts=contracts)

        for t in range(n - 1, -1, -1):
            level_t0 = cluster.elapsed()
            rows = t + 1
            p_eff = min(p, rows)
            parts = block_partition(rows, p_eff)
            if cfg.american:
                pts = lattice.level_prices(t).reshape(-1, d)
                shape_t = (t + 1,) * d
                intrinsics = [py.terminal(pts).reshape(shape_t)
                              for py in payoffs]
            for j in range(contracts):
                slabs = []
                for lo, hi in parts:
                    slab = lattice.step_rows(values[j][lo : hi + 1], t, lo,
                                             hi - lo)
                    slabs.append(slab)
                new_values = np.concatenate(slabs, axis=0)
                if cfg.american:
                    np.maximum(new_values, intrinsics[j], out=new_values)
                values[j] = new_values

            plane = rows ** (d - 1)
            for r, (lo, hi) in enumerate(parts):
                work_units = (hi - lo) * plane * node_units * contracts
                if cfg.american:
                    work_units += (hi - lo) * plane * intr_units * contracts
                cluster.compute(r, work_units)
            # Fused halo: each boundary moves one message carrying every
            # contract's plane — C× the bytes, 1× the latency.
            halo_bytes = ((t + 2) ** (d - 1)) * 8.0 * contracts
            halo_t0 = cluster.elapsed()
            cluster.halo_exchange(halo_bytes)
            if tracer:
                tracer.add_span("lattice.halo", halo_t0, cluster.elapsed(),
                                level=t, nbytes=halo_bytes)
                tracer.add_span("lattice.level", level_t0, cluster.elapsed(),
                                level=t, rows=rows)
        return values

    def reduce_strip(self, plan: ExecutionPlan, state: Any,
                     ctx: PipelineContext,
                     fault_report: Optional[RunReport]) -> List[Estimate]:
        contracts = int(plan.scratch["contracts"])
        ctx.cluster.bcast(8.0 * contracts, root=0)
        return [
            Estimate(price=float(np.asarray(v).reshape(-1)[0]), stderr=0.0)
            for v in state
        ]

    def report(self, plan: ExecutionPlan, estimate: Estimate,
               ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Dict[str, Any]:
        cfg = self.config
        d = plan.job.model.dim
        n = cfg.steps
        nodes = sum((t + 1) ** d for t in range(n + 1))
        return {
            "steps": n,
            "dim": d,
            "branching": 2 ** d,
            "nodes": nodes,
            "american": cfg.american,
            **({"fault_report": fault_report} if fault_report else {}),
        }
