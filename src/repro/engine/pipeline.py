"""The engine pipeline contract: Plan → Partition → Execute → Reduce → Report.

Every parallel pricer is one :class:`PipelineEngine` with five explicit
stages, driven by the shared runner (:mod:`repro.engine.runner`):

``plan(job)``
    Validate the job and build an :class:`ExecutionPlan` (per-rank path
    counts, lattice/solver objects, partition tables — anything the later
    stages need). No simulated time is charged here.
``partition(plan)``
    Split the plan into :class:`RankTask`\\ s for the execution backend, or
    return ``None`` for *inline* engines (lattice / PDE / LSM) whose
    arithmetic is the sequential reference re-run slab-by-slab in-process.
``execute`` / ``account``
    Mapped engines (``partition`` returned tasks) have their picklable
    :attr:`~PipelineEngine.worker` mapped over the task payloads by the
    runner — through the fault middleware, chunked, and wall-clock timed —
    and then charge the simulated cluster in :meth:`~PipelineEngine.account`.
    Inline engines implement :meth:`~PipelineEngine.execute`, which runs
    the level/step/date loops and charges the cluster as it goes.
``reduce(plan, state, ctx, fault_report)``
    Combine per-rank state into the final :class:`Estimate`, travelling the
    simulated reduction schedule so the floating-point association matches
    the modeled machine.
``report(plan, estimate, ctx, fault_report)``
    Engine-specific diagnostics for ``ParallelRunResult.meta``; the runner
    assembles the result object itself from the cluster report.

Engines are deliberately *thin wrappers around a config object* (the
legacy ``repro.core`` pricer classes double as configs), so pickled
configs, constructor signatures and attribute names are unchanged by the
pipeline port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, Sequence

from repro.engine.names import PARALLEL_ENGINES
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tracer import Tracer
    from repro.parallel.faults import RunReport
    from repro.parallel.simcluster import SimulatedCluster
    from repro.perf.timer import Timer

__all__ = [
    "PricingJob",
    "StripJob",
    "ExecutionPlan",
    "RankTask",
    "Estimate",
    "PipelineContext",
    "PipelineEngine",
]


@dataclass(frozen=True)
class PricingJob:
    """What to price: one contract on ``p`` simulated ranks."""

    model: Any
    payoff: Any
    expiry: float
    p: int


@dataclass(frozen=True)
class StripJob(PricingJob):
    """A homogeneous contract strip: one model/expiry, many payoffs.

    Subclasses :class:`PricingJob` so every existing plan/report stage that
    reads ``job.model`` / ``job.expiry`` / ``job.p`` works unchanged;
    ``payoff`` is the strip's first member (the exemplar), ``payoffs`` the
    full tuple the fused kernel evaluates over the strip axis.
    """

    payoffs: tuple = ()

    @classmethod
    def from_payoffs(cls, model: Any, payoffs: Iterable[Any], expiry: float,
                     p: int) -> "StripJob":
        members = tuple(payoffs)
        if not members:
            raise ValidationError("a contract strip needs at least one payoff")
        return cls(model=model, payoff=members[0], expiry=expiry, p=p,
                   payoffs=members)


@dataclass
class ExecutionPlan:
    """Stage-1 output: the validated job plus engine planning state.

    ``scratch`` is the engine's private hand-off between stages (per-rank
    counts, solver objects, partition tables); nothing outside the engine
    reads it.
    """

    engine: str
    job: PricingJob
    p: int
    scratch: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.engine not in PARALLEL_ENGINES:
            raise ValidationError(
                f"plan names unknown engine {self.engine!r}; expected one of "
                f"{PARALLEL_ENGINES}"
            )


@dataclass(frozen=True)
class RankTask:
    """One rank's unit of backend-mapped work (payload must be picklable)."""

    rank: int
    payload: Any


@dataclass(frozen=True)
class Estimate:
    """Stage-4 output: the estimate plus engine-specific extras.

    ``extras`` carries reduce-stage by-products that belong neither in the
    result's headline fields nor in its meta (effective path counts, the
    greeks arrays) — adapters that need them use
    :func:`repro.engine.runner.run_pipeline` directly.
    """

    price: float
    stderr: float
    extras: dict[str, Any] = field(default_factory=dict)


@dataclass
class PipelineContext:
    """Cross-cutting state the runner threads through the stages."""

    cluster: "SimulatedCluster"
    tracer: Optional["Tracer"]
    timer: "Timer"


class PipelineEngine:
    """Base class for pipeline engines: five stages around a config object.

    ``config`` is any object exposing this engine family's settings — in
    practice the legacy :mod:`repro.core` pricer instance, which keeps its
    public constructor and becomes a thin adapter over the pipeline.
    Mapped engines set :attr:`worker` to a module-level picklable function
    and implement :meth:`partition` + :meth:`account`; inline engines
    return ``None`` from :meth:`partition` and implement :meth:`execute`.
    """

    #: Canonical engine name (a :mod:`repro.engine.names` constant).
    name: str = ""
    #: Module-level worker the backend maps over task payloads, or ``None``.
    worker: Optional[Callable[[Any], Any]] = None
    #: Whether the engine implements the strip stages (fused multi-contract
    #: pricing); mirrored by the registry's ``batchable`` capability flag.
    batchable: bool = False
    #: Module-level worker mapped over strip task payloads, or ``None``.
    strip_worker: Optional[Callable[[Any], Any]] = None
    #: Whether the engine's rank tasks may be re-placed by a non-static
    #: :class:`~repro.parallel.sched.Scheduler` (LPT / work stealing).
    #: True only for mapped engines whose tasks are independent and
    #: reassembled by index; mirrored by the registry's ``schedulable``
    #: capability flag.
    schedulable: bool = False

    def __init__(self, config: Any):
        self.config = config

    # -- stages ---------------------------------------------------------

    def plan(self, job: PricingJob) -> ExecutionPlan:
        raise NotImplementedError

    def partition(self, plan: ExecutionPlan) -> Optional[Sequence[RankTask]]:
        """Rank tasks for the backend map; ``None`` for inline engines."""
        return None

    def task_costs(self, plan: ExecutionPlan) -> Optional[Sequence[float]]:
        """Per-task cost estimates for cost-aware schedulers (LPT), in
        :meth:`partition` order; ``None`` when the engine has no estimate
        (schedulers then fall back to submission order)."""
        return None

    def execute(self, plan: ExecutionPlan, ctx: PipelineContext) -> Any:
        """Inline engines: run the compute loops, charging the cluster."""
        raise NotImplementedError(
            f"{type(self).__name__} is backend-mapped; it has no inline "
            f"execute stage"
        )

    def account(self, plan: ExecutionPlan, ctx: PipelineContext,
                fault_report: Optional["RunReport"]) -> None:
        """Mapped engines: charge the simulated cluster for the map."""
        raise NotImplementedError(
            f"{type(self).__name__} runs inline; it has no mapped account "
            f"stage"
        )

    def reduce(self, plan: ExecutionPlan, state: Any, ctx: PipelineContext,
               fault_report: Optional["RunReport"]) -> Estimate:
        raise NotImplementedError

    def report(self, plan: ExecutionPlan, estimate: Estimate,
               ctx: PipelineContext,
               fault_report: Optional["RunReport"]) -> dict[str, Any]:
        """Engine-specific ``meta`` entries (fault/cross-cutting entries
        the engine owns semantically are added here too)."""
        return {}

    # -- strip stages (batchable engines only) --------------------------

    def plan_strip(self, job: StripJob) -> ExecutionPlan:
        """Validate a strip job and plan the fused run (batchable engines)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not price contract strips"
        )

    def execute_strip(self, plan: ExecutionPlan,
                      ctx: PipelineContext) -> Any:
        """Inline batchable engines: fused compute loops over the strip."""
        raise NotImplementedError(
            f"{type(self).__name__} does not price contract strips"
        )

    def reduce_strip(self, plan: ExecutionPlan, state: Any,
                     ctx: PipelineContext,
                     fault_report: Optional["RunReport"]) -> List[Estimate]:
        """Per-contract estimates from the fused run, in strip order."""
        raise NotImplementedError(
            f"{type(self).__name__} does not price contract strips"
        )
