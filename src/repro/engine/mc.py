"""Pipeline engine: path-wise domain-decomposed Monte Carlo.

Algorithm (per rank r of P):

1. the path count is block-partitioned: rank r simulates ``n_r`` paths,
   ``|n_r − n/P| ≤ 1``;
2. rank r owns substream r of the master generator (key-split, block-split
   or leapfrog — chosen at construction), so its draws are disjoint from
   every other rank's by construction;
3. rank r accumulates its technique's sufficient statistics — an O(1)
   payload regardless of ``n_r`` (e.g. 24 bytes for plain MC);
4. a binomial-tree reduction combines partials to rank 0 in ⌈log₂ P⌉
   rounds; rank 0 finalizes the estimator.

The *estimate* is a pure function of (master seed, partition scheme, P),
not of which backend executes the ranks or in what order — asserted in the
integration tests by pricing the same job on serial, thread and process
backends. Simulated time charges each rank its per-path work and the
reduction its α–β cost; with O(1) payloads the communication term is
⌈log₂ P⌉(α + 24β), which is why this workload scales almost linearly
(experiments T2/F1/F2).

The public entry point is :class:`repro.core.mc_parallel.ParallelMCPricer`,
a thin config adapter over this engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.names import MC
from repro.engine.pipeline import (
    Estimate,
    ExecutionPlan,
    PipelineContext,
    PipelineEngine,
    PricingJob,
    RankTask,
    StripJob,
)
from repro.errors import ValidationError
from repro.mc.qmc import QMCSobol
from repro.mc.statistics import CrossStats, SampleStats, StrataStats
from repro.parallel.faults import RunReport, charge_report
from repro.parallel.partition import block_sizes
from repro.parallel.simcluster import combine_on_schedule
from repro.rng import Philox4x32
from repro.rng.streams import make_substreams
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["MCEngine", "_rank_task", "_strip_rank_task", "_partial_nbytes"]


def _partial_nbytes(partial: Any) -> float:
    """Wire size (bytes) of one technique partial — the reduce payload."""
    if isinstance(partial, SampleStats):
        return 3 * 8
    if isinstance(partial, CrossStats):
        return 6 * 8
    if isinstance(partial, StrataStats):
        return 3 * 8 * len(partial.strata)
    if isinstance(partial, tuple):  # QMC replicate tuple
        return sum(_partial_nbytes(p) for p in partial)
    raise ValidationError(f"unknown partial type {type(partial).__name__}")


def _rank_task(task: Tuple[Any, ...]) -> Any:
    """Module-level worker (picklable for the process backend)."""
    technique, model, payoff, expiry, n, gen, steps, skip = task
    if skip is None:
        return technique.partial(model, payoff, expiry, n, gen, steps=steps)
    return technique.partial(model, payoff, expiry, n, gen, steps=steps, skip=skip)


def _strip_rank_task(task: Tuple[Any, ...]) -> Any:
    """Module-level strip worker: one rank's partials for every contract.

    Same task tuple shape as :func:`_rank_task` with the payoff slot holding
    the strip's payoff tuple; returns one technique partial per contract,
    each bitwise equal to the partial the matching single-contract task
    would have produced (the fused kernel shares the draws, not the
    arithmetic order). Imported lazily so pickled single-contract tasks
    never pull :mod:`repro.batch` into workers that don't need it.
    """
    from repro.batch.kernels import strip_partial

    technique, model, payoffs, expiry, n, gen, steps, skip = task
    return strip_partial(technique, model, payoffs, expiry, n, gen,
                         steps=steps, skip=skip)


class MCEngine(PipelineEngine):
    """Backend-mapped pipeline engine over a ``ParallelMCPricer`` config."""

    name = MC
    worker = staticmethod(_rank_task)
    batchable = True
    strip_worker = staticmethod(_strip_rank_task)
    # Rank tasks are independent substreams reduced by index, so a
    # scheduler may re-place them freely (prices stay bitwise).
    schedulable = True

    # -- plan -----------------------------------------------------------

    def _build_tasks(self, model: Any, payoff: Any, expiry: float,
                     p: int) -> Tuple[List[Tuple[Any, ...]], List[int]]:
        """Per-rank task tuples plus per-rank path counts."""
        cfg = self.config
        if isinstance(cfg.technique, QMCSobol):
            reps = cfg.technique.replicates
            if cfg.n_paths % reps:
                raise ValidationError(
                    f"n_paths={cfg.n_paths} must be a multiple of the QMC "
                    f"replicate count {reps}"
                )
            per_rep = cfg.n_paths // reps
            sizes = block_sizes(per_rep, p)
            offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
            gens = [Philox4x32(cfg.seed, stream=r) for r in range(p)]  # unused by QMC
            tasks = []
            counts = []
            for r in range(p):
                n_r = sizes[r] * reps
                counts.append(n_r)
                tasks.append(
                    (cfg.technique, model, payoff, expiry, n_r, gens[r],
                     cfg.steps, int(offsets[r]))
                )
            return tasks, counts
        master = Philox4x32(cfg.seed)
        subs = make_substreams(master, p, cfg.scheme)
        counts = block_sizes(cfg.n_paths, p)
        tasks = [
            (cfg.technique, model, payoff, expiry, counts[r], subs[r],
             cfg.steps, None)
            for r in range(p)
        ]
        return tasks, counts

    def plan(self, job: PricingJob) -> ExecutionPlan:
        cfg = self.config
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        if p > cfg.n_paths:
            raise ValidationError(f"more ranks ({p}) than paths ({cfg.n_paths})")
        if job.payoff.dim != job.model.dim:
            raise ValidationError(
                f"payoff dim {job.payoff.dim} does not match model dim "
                f"{job.model.dim}"
            )
        tasks, counts = self._build_tasks(job.model, job.payoff, job.expiry, p)
        zero_ranks = [r for r, c in enumerate(counts) if c == 0]
        if zero_ranks:
            raise ValidationError(
                f"ranks {zero_ranks} would receive zero paths; reduce p or "
                f"raise n_paths"
            )
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"tasks": tasks, "counts": counts})

    def partition(self, plan: ExecutionPlan) -> Sequence[RankTask]:
        return [RankTask(rank=r, payload=task)
                for r, task in enumerate(plan.scratch["tasks"])]

    def task_costs(self, plan: ExecutionPlan) -> Sequence[float]:
        """Per-rank path counts — the LPT scheduler's cost estimates."""
        return [float(c) for c in plan.scratch["counts"]]

    def plan_strip(self, job: StripJob) -> ExecutionPlan:
        """Plan a fused strip run: the single-contract plan with the payoff
        slot holding the whole payoff tuple (the task shape is otherwise
        identical, so partitioning and substream assignment are unchanged —
        the bitwise-equivalence guarantee rests on exactly that)."""
        cfg = self.config
        check_positive("expiry", job.expiry)
        p = check_positive_int("p", job.p)
        if p > cfg.n_paths:
            raise ValidationError(f"more ranks ({p}) than paths ({cfg.n_paths})")
        path_dep = {bool(py.is_path_dependent) for py in job.payoffs}
        if len(path_dep) > 1:
            raise ValidationError(
                "a contract strip must be homogeneous in path dependence; "
                "mixing terminal and path-dependent payoffs changes the "
                "shared draw shape"
            )
        for j, payoff in enumerate(job.payoffs):
            if payoff.dim != job.model.dim:
                raise ValidationError(
                    f"strip payoff {j} dim {payoff.dim} does not match model "
                    f"dim {job.model.dim}"
                )
        tasks, counts = self._build_tasks(job.model, job.payoffs, job.expiry, p)
        zero_ranks = [r for r, c in enumerate(counts) if c == 0]
        if zero_ranks:
            raise ValidationError(
                f"ranks {zero_ranks} would receive zero paths; reduce p or "
                f"raise n_paths"
            )
        return ExecutionPlan(engine=self.name, job=job, p=p,
                             scratch={"tasks": tasks, "counts": counts,
                                      "contracts": len(job.payoffs)})

    # -- account --------------------------------------------------------

    def account(self, plan: ExecutionPlan, ctx: PipelineContext,
                fault_report: Optional[RunReport]) -> None:
        cfg = self.config
        cluster = ctx.cluster
        counts: List[int] = plan.scratch["counts"]
        units = cfg.work.mc_path_units(plan.job.model.dim, cfg.steps)
        contracts = int(plan.scratch.get("contracts", 1))
        if contracts > 1:
            # A fused strip shares path generation and the price transform;
            # each extra contract only re-runs the payoff on the shared
            # paths, so the per-path work grows by the payoff term alone —
            # the amortization the batched throughput gate measures.
            dim = plan.job.model.dim
            units += (contracts - 1) * (
                dim * cfg.work.payoff_per_asset + cfg.work.payoff_base
            )
        if fault_report is None:
            cluster.compute_all([c * units for c in counts])
        else:
            # Recovery first (wasted attempts + backoff), then the charge
            # for the attempt that finally succeeded; lost ranks only ever
            # burned fault time.
            base_seconds = [
                counts[r] * units * cfg.spec.flop_time * cfg.faults.slowdown(r)
                for r in range(plan.p)
            ]
            charge_report(cluster, fault_report, base_seconds, cfg.policy)
            for r in range(plan.p):
                if r not in fault_report.lost_ranks:
                    cluster.compute(r, counts[r] * units)
        if ctx.tracer:
            ctx.tracer.add_span("mc.paths", 0.0, cluster.elapsed())

    # -- reduce ---------------------------------------------------------

    def reduce(self, plan: ExecutionPlan, state: Any, ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Estimate:
        cfg = self.config
        cluster = ctx.cluster
        partials: List[Any] = state
        reduce_t0 = cluster.elapsed()
        if fault_report is not None and fault_report.lost_ranks:
            # Degraded repricing: merge the survivors in rank order and
            # charge the reduction schedule; the estimator sees fewer
            # paths, so its standard error (the reported CI) widens.
            survivors = [partials[r] for r in range(plan.p)
                         if r not in fault_report.lost_ranks]
            merged = cfg.technique.combine(survivors)
            cluster.reduce(_partial_nbytes(survivors[0]), root=0,
                           topology=cfg.reduce_topology)
        else:
            # The partials travel the simulated reduction schedule: the
            # merged value (including its floating-point association order)
            # is exactly what the modeled machine's reduce would deliver at
            # rank 0. Shared by the fault-free and fully-recovered paths,
            # so a retry-recovered price equals the fault-free one bitwise.
            merged = cluster.reduce_data(
                partials,
                lambda a, b: cfg.technique.combine([a, b]),
                _partial_nbytes(partials[0]),
                root=0,
                topology=cfg.reduce_topology,
            )
        if ctx.tracer:
            ctx.tracer.add_span("mc.reduce", reduce_t0, cluster.elapsed(),
                                topology=cfg.reduce_topology)
        price, stderr, n_eff = cfg.technique.finalize(merged)
        return Estimate(price=price, stderr=stderr, extras={"n_eff": n_eff})

    def reduce_strip(self, plan: ExecutionPlan, state: Any,
                     ctx: PipelineContext,
                     fault_report: Optional[RunReport]) -> List[Estimate]:
        """Per-contract reductions over the fused per-rank partials.

        ``state[r]`` is rank r's tuple of per-contract partials. The strip
        travels the reduction schedule *once* (one message per edge carrying
        all contracts' partials — the comm amortization), but each
        contract's partials are combined in exactly the schedule's
        association order via :func:`combine_on_schedule`, so every
        finalized estimate is bitwise equal to its single-contract run.
        """
        cfg = self.config
        cluster = ctx.cluster
        contracts = int(plan.scratch["contracts"])
        reduce_t0 = cluster.elapsed()
        per_rank: List[Any] = state
        nbytes_one = _partial_nbytes(per_rank[0][0])
        if fault_report is not None and fault_report.lost_ranks:
            survivors = [r for r in range(plan.p)
                         if r not in fault_report.lost_ranks]
            merged = [
                cfg.technique.combine([per_rank[r][j] for r in survivors])
                for j in range(contracts)
            ]
            cluster.reduce(contracts * nbytes_one, root=0,
                           topology=cfg.reduce_topology)
        else:
            # One charged reduce for the whole strip; per-contract merges
            # replay that schedule's exact association order.
            cluster.reduce(contracts * nbytes_one, root=0,
                           topology=cfg.reduce_topology)
            merged = [
                combine_on_schedule(
                    [per_rank[r][j] for r in range(plan.p)],
                    lambda a, b: cfg.technique.combine([a, b]),
                    root=0,
                    topology=cfg.reduce_topology,
                )
                for j in range(contracts)
            ]
        if ctx.tracer:
            ctx.tracer.add_span("mc.reduce", reduce_t0, cluster.elapsed(),
                                topology=cfg.reduce_topology,
                                contracts=contracts)
        estimates = []
        for part in merged:
            price, stderr, n_eff = cfg.technique.finalize(part)
            estimates.append(Estimate(price=price, stderr=stderr,
                                      extras={"n_eff": n_eff}))
        return estimates

    # -- report ---------------------------------------------------------

    def report(self, plan: ExecutionPlan, estimate: Estimate,
               ctx: PipelineContext,
               fault_report: Optional[RunReport]) -> Dict[str, Any]:
        cfg = self.config
        return {
            "technique": cfg.technique.name,
            "n_paths": estimate.extras["n_eff"],
            "scheme": cfg.scheme.value,
            "reduce_topology": cfg.reduce_topology,
            "counts": plan.scratch["counts"],
            **(
                {
                    "fault_report": fault_report,
                    "degraded": fault_report.degraded,
                    "lost_ranks": fault_report.lost_ranks,
                }
                if fault_report is not None
                else {}
            ),
        }
