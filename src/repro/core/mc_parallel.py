"""Parallel Monte Carlo pricer: path-wise domain decomposition.

Algorithm (per rank r of P):

1. the path count is block-partitioned: rank r simulates ``n_r`` paths,
   ``|n_r − n/P| ≤ 1``;
2. rank r owns substream r of the master generator (key-split, block-split
   or leapfrog — chosen at construction), so its draws are disjoint from
   every other rank's by construction;
3. rank r accumulates its technique's sufficient statistics — an O(1)
   payload regardless of ``n_r`` (e.g. 24 bytes for plain MC);
4. a binomial-tree reduction combines partials to rank 0 in ⌈log₂ P⌉
   rounds; rank 0 finalizes the estimator.

The *estimate* is a pure function of (master seed, partition scheme, P),
not of which backend executes the ranks or in what order — asserted in the
integration tests by pricing the same job on serial, thread and process
backends. Simulated time charges each rank its per-path work and the
reduction its α–β cost; with O(1) payloads the communication term is
⌈log₂ P⌉(α + 24β), which is why this workload scales almost linearly
(experiments T2/F1/F2).

This class is the configuration + public entry point; the staged
implementation lives in :class:`repro.engine.mc.MCEngine`, driven by the
shared pipeline runner (:mod:`repro.engine.runner`), which applies the
fault, tracing, chunking, timing and metrics middleware once for every
engine family.
"""

from __future__ import annotations

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.engine.mc import MCEngine, _partial_nbytes, _rank_task  # noqa: F401 — re-exported for backward compatibility (portfolio, pickled tasks)
from repro.engine.runner import run_engine
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.variance_reduction import PlainMC, Technique
from repro.parallel.backends import ExecutionBackend, SerialBackend
from repro.parallel.faults import FaultPlan, FaultPolicy
from repro.parallel.simcluster import MachineSpec
from repro.payoffs.base import Payoff
from repro.rng.streams import StreamPartition
from repro.utils.validation import check_positive_int

__all__ = ["ParallelMCPricer"]


class ParallelMCPricer:
    """Parallel Monte Carlo over a simulated (and optionally real) machine.

    Parameters
    ----------
    n_paths : total paths across all ranks.
    technique : estimator strategy (default :class:`PlainMC`); QMC is
        supported — ranks then split the *same* Sobol point set by blocks.
    steps : monitoring dates for path-dependent payoffs.
    scheme : RNG substream scheme (default key splitting).
    seed : master seed.
    spec : simulated machine parameters.
    backend : real execution backend (default serial).
    reduce_topology : "tree" (default) or "linear" — ablated in F7.
    work : work-unit model for simulated compute accounting.
    faults : optional :class:`~repro.parallel.faults.FaultPlan`; when given
        (and non-empty), rank tasks run through the resilient map and the
        run report lands in ``result.meta["fault_report"]``. The fault-free
        path is untouched (zero overhead, benchmark F13).
    policy : :class:`~repro.parallel.faults.FaultPolicy` or mode string
        ("fail_fast" | "retry" | "degrade"); default retry. Under retry,
        a recovered run is bitwise equal to the fault-free run (each
        attempt replays a fresh copy of the rank task, so RNG substreams
        are never consumed twice). Under degrade, exhausted ranks are
        dropped and the estimator reprices with the survivors — fewer
        paths, so the reported CI widens honestly.
    tracer : optional :class:`~repro.obs.Tracer` recording the run on the
        **simulated** timeline: per-rank compute/comm/idle/fault spans
        (via the cluster) plus ``mc.paths`` / ``mc.reduce`` phase spans on
        the main track. Real-backend worker spans live on the *backend's*
        tracer instead (wall clock) — keep the two separate.
    metrics : optional :class:`~repro.obs.MetricsRegistry`; each run feeds
        the shared ``engine.runs`` / ``engine.wall_s`` / ``engine.sim_s``
        series, labeled by engine name.
    scheduler : optional :class:`~repro.parallel.sched.Scheduler` or
        strategy name ("static" | "lpt" | "steal") deciding how rank
        tasks meet the backend's workers. Placement only — the estimate
        is scheduler-invariant bitwise (the ``scheduler`` determinism
        check gates this). Default ``None``: the historical static path.
    """

    def __init__(
        self,
        n_paths: int,
        *,
        technique: Technique | None = None,
        steps: int | None = None,
        scheme: StreamPartition | str = StreamPartition.KEYED,
        seed: int = 0,
        spec: MachineSpec | None = None,
        backend: ExecutionBackend | None = None,
        reduce_topology: str = "tree",
        work: WorkModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
        chunksize: int | str | None = None,
        metrics=None,
        scheduler=None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.technique = technique if technique is not None else PlainMC()
        self.steps = None if steps is None else check_positive_int("steps", steps)
        self.scheme = StreamPartition(scheme)
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.backend = backend if backend is not None else SerialBackend()
        if reduce_topology not in ("tree", "linear"):
            raise ValidationError(
                f"reduce_topology must be 'tree' or 'linear', got {reduce_topology!r}"
            )
        self.reduce_topology = reduce_topology
        self.work = work if work is not None else WorkModel()
        #: When set, each run's cluster keeps an event trace and is attached
        #: to the result meta under "cluster" (render with perf.gantt).
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer
        #: Forwarded to every backend.map: rank tasks per IPC dispatch
        #: (None = one, "auto" = suggest_chunksize). Transport only — the
        #: estimate is chunking-invariant (asserted in the backend tests).
        self.chunksize = chunksize
        self.metrics = metrics
        #: Execute-stage scheduler (None = static). The runner resolves
        #: names via repro.parallel.sched.resolve_scheduler.
        self.scheduler = scheduler

    # ------------------------------------------------------------------

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Price on ``p`` simulated ranks; returns estimate + T(P) breakdown."""
        return run_engine(MCEngine(self), model, payoff, expiry, p)

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list`` (fresh cluster per point)."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
