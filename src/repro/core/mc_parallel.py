"""Parallel Monte Carlo pricer: path-wise domain decomposition.

Algorithm (per rank r of P):

1. the path count is block-partitioned: rank r simulates ``n_r`` paths,
   ``|n_r − n/P| ≤ 1``;
2. rank r owns substream r of the master generator (key-split, block-split
   or leapfrog — chosen at construction), so its draws are disjoint from
   every other rank's by construction;
3. rank r accumulates its technique's sufficient statistics — an O(1)
   payload regardless of ``n_r`` (e.g. 24 bytes for plain MC);
4. a binomial-tree reduction combines partials to rank 0 in ⌈log₂ P⌉
   rounds; rank 0 finalizes the estimator.

The *estimate* is a pure function of (master seed, partition scheme, P),
not of which backend executes the ranks or in what order — asserted in the
integration tests by pricing the same job on serial, thread and process
backends. Simulated time charges each rank its per-path work and the
reduction its α–β cost; with O(1) payloads the communication term is
⌈log₂ P⌉(α + 24β), which is why this workload scales almost linearly
(experiments T2/F1/F2).
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ValidationError
from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.market.gbm import MultiAssetGBM
from repro.mc.qmc import QMCSobol
from repro.mc.statistics import CrossStats, SampleStats, StrataStats
from repro.mc.variance_reduction import PlainMC, Technique
from repro.parallel.backends import ExecutionBackend, SerialBackend
from repro.parallel.faults import FaultPlan, FaultPolicy, charge_report, resilient_map
from repro.parallel.partition import block_sizes
from repro.parallel.simcluster import MachineSpec, SimulatedCluster
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32
from repro.rng.streams import StreamPartition, make_substreams
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelMCPricer"]


def _partial_nbytes(partial) -> float:
    """Wire size (bytes) of one technique partial — the reduce payload."""
    if isinstance(partial, SampleStats):
        return 3 * 8
    if isinstance(partial, CrossStats):
        return 6 * 8
    if isinstance(partial, StrataStats):
        return 3 * 8 * len(partial.strata)
    if isinstance(partial, tuple):  # QMC replicate tuple
        return sum(_partial_nbytes(p) for p in partial)
    raise ValidationError(f"unknown partial type {type(partial).__name__}")


def _rank_task(task):
    """Module-level worker (picklable for the process backend)."""
    technique, model, payoff, expiry, n, gen, steps, skip = task
    if skip is None:
        return technique.partial(model, payoff, expiry, n, gen, steps=steps)
    return technique.partial(model, payoff, expiry, n, gen, steps=steps, skip=skip)


class ParallelMCPricer:
    """Parallel Monte Carlo over a simulated (and optionally real) machine.

    Parameters
    ----------
    n_paths : total paths across all ranks.
    technique : estimator strategy (default :class:`PlainMC`); QMC is
        supported — ranks then split the *same* Sobol point set by blocks.
    steps : monitoring dates for path-dependent payoffs.
    scheme : RNG substream scheme (default key splitting).
    seed : master seed.
    spec : simulated machine parameters.
    backend : real execution backend (default serial).
    reduce_topology : "tree" (default) or "linear" — ablated in F7.
    work : work-unit model for simulated compute accounting.
    faults : optional :class:`~repro.parallel.faults.FaultPlan`; when given
        (and non-empty), rank tasks run through the resilient map and the
        run report lands in ``result.meta["fault_report"]``. The fault-free
        path is untouched (zero overhead, benchmark F13).
    policy : :class:`~repro.parallel.faults.FaultPolicy` or mode string
        ("fail_fast" | "retry" | "degrade"); default retry. Under retry,
        a recovered run is bitwise equal to the fault-free run (each
        attempt replays a fresh copy of the rank task, so RNG substreams
        are never consumed twice). Under degrade, exhausted ranks are
        dropped and the estimator reprices with the survivors — fewer
        paths, so the reported CI widens honestly.
    tracer : optional :class:`~repro.obs.Tracer` recording the run on the
        **simulated** timeline: per-rank compute/comm/idle/fault spans
        (via the cluster) plus ``mc.paths`` / ``mc.reduce`` phase spans on
        the main track. Real-backend worker spans live on the *backend's*
        tracer instead (wall clock) — keep the two separate.
    """

    def __init__(
        self,
        n_paths: int,
        *,
        technique: Technique | None = None,
        steps: int | None = None,
        scheme: StreamPartition | str = StreamPartition.KEYED,
        seed: int = 0,
        spec: MachineSpec | None = None,
        backend: ExecutionBackend | None = None,
        reduce_topology: str = "tree",
        work: WorkModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
        chunksize: int | str | None = None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.technique = technique if technique is not None else PlainMC()
        self.steps = None if steps is None else check_positive_int("steps", steps)
        self.scheme = StreamPartition(scheme)
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.backend = backend if backend is not None else SerialBackend()
        if reduce_topology not in ("tree", "linear"):
            raise ValidationError(
                f"reduce_topology must be 'tree' or 'linear', got {reduce_topology!r}"
            )
        self.reduce_topology = reduce_topology
        self.work = work if work is not None else WorkModel()
        #: When set, each run's cluster keeps an event trace and is attached
        #: to the result meta under "cluster" (render with perf.gantt).
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer
        #: Forwarded to every backend.map: rank tasks per IPC dispatch
        #: (None = one, "auto" = suggest_chunksize). Transport only — the
        #: estimate is chunking-invariant (asserted in the backend tests).
        self.chunksize = chunksize

    # ------------------------------------------------------------------

    def _build_tasks(self, model, payoff, expiry, p):
        """Per-rank task tuples plus per-rank path counts."""
        if isinstance(self.technique, QMCSobol):
            reps = self.technique.replicates
            if self.n_paths % reps:
                raise ValidationError(
                    f"n_paths={self.n_paths} must be a multiple of the QMC "
                    f"replicate count {reps}"
                )
            per_rep = self.n_paths // reps
            sizes = block_sizes(per_rep, p)
            offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
            gens = [Philox4x32(self.seed, stream=r) for r in range(p)]  # unused by QMC
            tasks = []
            counts = []
            for r in range(p):
                n_r = sizes[r] * reps
                counts.append(n_r)
                tasks.append(
                    (self.technique, model, payoff, expiry, n_r, gens[r],
                     self.steps, int(offsets[r]))
                )
            return tasks, counts
        master = Philox4x32(self.seed)
        subs = make_substreams(master, p, self.scheme)
        counts = block_sizes(self.n_paths, p)
        tasks = [
            (self.technique, model, payoff, expiry, counts[r], subs[r], self.steps, None)
            for r in range(p)
        ]
        return tasks, counts

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Price on ``p`` simulated ranks; returns estimate + T(P) breakdown."""
        check_positive("expiry", expiry)
        p = check_positive_int("p", p)
        if p > self.n_paths:
            raise ValidationError(f"more ranks ({p}) than paths ({self.n_paths})")
        if payoff.dim != model.dim:
            raise ValidationError(
                f"payoff dim {payoff.dim} does not match model dim {model.dim}"
            )
        tasks, counts = self._build_tasks(model, payoff, expiry, p)
        zero_ranks = [r for r, c in enumerate(counts) if c == 0]
        if zero_ranks:
            raise ValidationError(
                f"ranks {zero_ranks} would receive zero paths; reduce p or raise n_paths"
            )

        inject = self.faults is not None and not self.faults.is_empty
        wall0 = time.perf_counter()
        if inject:
            partials, fault_report = resilient_map(
                self.backend, _rank_task, tasks,
                plan=self.faults, policy=self.policy,
                chunksize=self.chunksize,
            )
        else:
            # Fault-free fast path: identical to the pre-resilience code
            # (one branch of overhead — asserted <5% by benchmark F13).
            partials = self.backend.map(_rank_task, tasks,
                                        chunksize=self.chunksize)
            fault_report = None
        wall = time.perf_counter() - wall0

        # --- simulated machine accounting ---
        cluster = SimulatedCluster(p, self.spec, record=self.record,
                                   faults=self.faults, tracer=self.tracer)
        tracer = self.tracer
        units = self.work.mc_path_units(model.dim, self.steps)
        if fault_report is None:
            cluster.compute_all([c * units for c in counts])
        else:
            # Recovery first (wasted attempts + backoff), then the charge
            # for the attempt that finally succeeded; lost ranks only ever
            # burned fault time.
            base_seconds = [
                counts[r] * units * self.spec.flop_time * self.faults.slowdown(r)
                for r in range(p)
            ]
            charge_report(cluster, fault_report, base_seconds, self.policy)
            for r in range(p):
                if r not in fault_report.lost_ranks:
                    cluster.compute(r, counts[r] * units)
        if tracer:
            tracer.add_span("mc.paths", 0.0, cluster.elapsed())
        reduce_t0 = cluster.elapsed()

        if fault_report is not None and fault_report.lost_ranks:
            # Degraded repricing: merge the survivors in rank order and
            # charge the reduction schedule; the estimator sees fewer
            # paths, so its standard error (the reported CI) widens.
            survivors = [partials[r] for r in range(p)
                         if r not in fault_report.lost_ranks]
            merged = self.technique.combine(survivors)
            cluster.reduce(_partial_nbytes(survivors[0]), root=0,
                           topology=self.reduce_topology)
        else:
            # The partials travel the simulated reduction schedule: the
            # merged value (including its floating-point association order)
            # is exactly what the modeled machine's reduce would deliver at
            # rank 0. Shared by the fault-free and fully-recovered paths,
            # so a retry-recovered price equals the fault-free one bitwise.
            merged = cluster.reduce_data(
                partials,
                lambda a, b: self.technique.combine([a, b]),
                _partial_nbytes(partials[0]),
                root=0,
                topology=self.reduce_topology,
            )
        if tracer:
            tracer.add_span("mc.reduce", reduce_t0, cluster.elapsed(),
                            topology=self.reduce_topology)
        price, stderr, n_eff = self.technique.finalize(merged)
        rep = cluster.report()
        return ParallelRunResult(
            price=price,
            stderr=stderr,
            p=p,
            sim_time=rep["elapsed"],
            wall_time=wall,
            compute_time=rep["compute_time"],
            comm_time=rep["comm_time"],
            idle_time=rep["idle_time"],
            messages=rep["messages"],
            bytes_moved=rep["bytes_moved"],
            engine="mc",
            meta={
                "technique": self.technique.name,
                "n_paths": n_eff,
                "scheme": self.scheme.value,
                "reduce_topology": self.reduce_topology,
                "counts": counts,
                **({"cluster": cluster} if self.record else {}),
                **(
                    {
                        "fault_report": fault_report,
                        "degraded": fault_report.degraded,
                        "lost_ranks": fault_report.lost_ranks,
                    }
                    if fault_report is not None
                    else {}
                ),
            },
        )

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list`` (fresh cluster per point)."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
