"""Work-unit accounting: how many abstract "flops" each pricing kernel
charges to the simulated machine.

The absolute constants only set the time scale; the *ratios* between
compute and communication terms are what shape the speedup curves. They
are rough operation counts of the vectorized kernels:

* one Gaussian variate ≈ 10 units (uniform generation + Φ⁻¹ polynomial);
* turning normals into a terminal price ≈ 4 units per asset
  (correlate + drift + exp);
* a payoff evaluation ≈ 3 units per asset + 2;
* one lattice node update = 2 units per branch (multiply–add) + discount;
* one FD grid-point half-step ≈ 8 units (tridiagonal forward+back sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["WorkModel"]


@dataclass(frozen=True)
class WorkModel:
    """Tunable per-operation work constants (abstract units)."""

    normal: float = 10.0
    price_per_asset: float = 4.0
    payoff_per_asset: float = 3.0
    payoff_base: float = 2.0
    lattice_branch: float = 2.0
    lattice_node_base: float = 2.0
    intrinsic_per_asset: float = 3.0
    fd_point: float = 8.0
    fd_explicit_point: float = 6.0
    fd_mixed_point: float = 6.0
    regression_per_path: float = 12.0

    def mc_path_units(self, dim: int, steps: int | None) -> float:
        """Work to simulate and evaluate one Monte Carlo path."""
        check_positive_int("dim", dim)
        m = 1 if steps is None else check_positive_int("steps", steps)
        normals = m * dim
        return (
            normals * self.normal
            + m * dim * self.price_per_asset
            + dim * self.payoff_per_asset
            + self.payoff_base
        )

    def lattice_node_units(self, dim: int) -> float:
        """Work for one backward-induction node update (2^dim branches)."""
        check_positive_int("dim", dim)
        return (2 ** dim) * self.lattice_branch + self.lattice_node_base

    def intrinsic_node_units(self, dim: int) -> float:
        """Work to evaluate the early-exercise value at one node."""
        check_positive_int("dim", dim)
        return dim * self.intrinsic_per_asset + self.payoff_base

    def adi_step_units(self, nx: int, ny: int) -> float:
        """Total work of one full ADI step on an nx × ny grid."""
        check_positive_int("nx", nx)
        check_positive_int("ny", ny)
        points = nx * ny
        return points * (
            2.0 * self.fd_point          # two implicit sweeps
            + 2.0 * self.fd_explicit_point  # two explicit applications
            + self.fd_mixed_point        # mixed-derivative stencil
        )

    def scaled(self, factor: float) -> "WorkModel":
        """A uniformly rescaled copy (changes the time unit, not the shape)."""
        check_positive("factor", factor)
        return WorkModel(
            **{k: v * factor for k, v in self.__dict__.items()}
        )
