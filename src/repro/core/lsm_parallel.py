"""Parallel Longstaff–Schwartz: American Monte Carlo with distributed
regression.

The LSM backward induction is MC's *synchronized iterative algorithm*: at
every exercise date the regression couples all paths, so ranks cannot
proceed independently the way European path-averaging does. The classical
parallel formulation (used by the era's American-MC codes):

1. paths are block-partitioned; rank r simulates and stores its own block;
2. at each exercise date, each rank builds the **normal-equation moments**
   of its in-the-money paths — ``A_r = X_rᵀX_r`` (k×k) and
   ``b_r = X_rᵀy_r`` (k) — an O(k²) payload independent of the path count;
3. one allreduce sums the moments; every rank solves the same tiny k×k
   system, so all ranks hold the *global* regression coefficients;
4. exercise decisions are applied locally; the final price is a standard
   sufficient-statistics reduction.

Communication is one O(k²) allreduce per exercise date — between MC's
single terminal reduce and the lattice's per-level halos, which is exactly
where its measured scaling lands (benchmark F12).

The sequential reference solves the same normal equations
(:class:`LongstaffSchwartz` with ``rcond``-free lstsq is numerically
equivalent for these small, scaled bases); paths are generated from the
master seed independently of P, so the estimate varies across P only
through the allreduce's floating-point association.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.american import polynomial_features
from repro.mc.statistics import SampleStats
from repro.parallel.faults import FaultPlan, FaultPolicy, simulate_recovery
from repro.parallel.partition import block_partition
from repro.parallel.simcluster import MachineSpec, SimulatedCluster
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelLSMPricer"]


class ParallelLSMPricer:
    """Distributed-regression LSM over the simulated machine.

    Parameters
    ----------
    n_paths : total simulated paths.
    steps : exercise dates.
    degree : regression polynomial degree.
    seed, spec, work : as in the other parallel pricers.
    faults, policy : optional fault plan / failure policy (simulated
        timeline only; values stay bit-identical and rank loss raises —
        the per-date allreduce couples every rank).
    record : keep the cluster's event trace and attach the cluster to
        ``result.meta["cluster"]`` (render with perf.gantt).
    tracer : optional :class:`~repro.obs.Tracer` (simulated timeline):
        per-rank spans via the cluster plus ``lsm.paths`` / per-date
        ``lsm.regression`` / ``lsm.reduce`` phase spans on the main track.
    """

    def __init__(
        self,
        n_paths: int,
        steps: int,
        *,
        degree: int = 2,
        seed: int = 0,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        min_regression_paths: int = 32,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.steps = check_positive_int("steps", steps)
        self.degree = check_positive_int("degree", degree)
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        self.min_regression_paths = check_positive_int(
            "min_regression_paths", min_regression_paths
        )
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Price an American/Bermudan contract on ``p`` simulated ranks."""
        check_positive("expiry", expiry)
        p = check_positive_int("p", p)
        if payoff.dim != model.dim:
            raise ValidationError(
                f"payoff dim {payoff.dim} does not match model dim {model.dim}"
            )
        n, m, d = self.n_paths, self.steps, model.dim
        if p > n:
            raise ValidationError(f"more ranks ({p}) than paths ({n})")
        parts = block_partition(n, p)

        wall0 = time.perf_counter()
        # Paths come from the master stream regardless of P (the estimate is
        # then P-invariant up to the allreduce's float association).
        paths = model.sample_paths(Philox4x32(self.seed, stream=0x15A), n,
                                   expiry, m)
        dt = expiry / m
        disc = math.exp(-model.rate * dt)

        cash = payoff.intrinsic(paths[:, -1, :])
        tau = np.full(n, m, dtype=np.int64)

        cluster = SimulatedCluster(p, self.spec, record=self.record,
                                   faults=self.faults, tracer=self.tracer)
        tracer = self.tracer
        path_units = self.work.mc_path_units(d, m)
        for r, (lo, hi) in enumerate(parts):
            cluster.compute(r, (hi - lo) * path_units)
        if tracer:
            tracer.add_span("lsm.paths", 0.0, cluster.elapsed())

        # Basis size for the work model and the allreduce payload.
        k = polynomial_features(np.ones((1, d)), self.degree,
                                model.spots).shape[1]
        moment_bytes = (k * k + k + 1) * 8.0

        for t in range(m - 1, 0, -1):
            date_t0 = cluster.elapsed()
            s_t = paths[:, t, :]
            intrinsic = payoff.intrinsic(s_t)
            itm = intrinsic > 0.0
            realized = cash * np.power(disc, tau - t)

            # --- per-rank local moments + simulated cost -------------------
            a_global = np.zeros((k, k))
            b_global = np.zeros(k)
            count_global = 0
            for r, (lo, hi) in enumerate(parts):
                sel = np.zeros(n, dtype=bool)
                sel[lo:hi] = itm[lo:hi]
                n_sel = int(sel.sum())
                count_global += n_sel
                if n_sel:
                    x_loc = polynomial_features(s_t[sel], self.degree,
                                                model.spots)
                    a_global += x_loc.T @ x_loc
                    b_global += x_loc.T @ realized[sel]
                cluster.compute(r, n_sel * self.work.regression_per_path * k)
            cluster.allreduce(moment_bytes)
            if tracer:
                tracer.add_span("lsm.regression", date_t0, cluster.elapsed(),
                                date=t, itm_paths=count_global)

            if count_global < self.min_regression_paths:
                continue
            # Ridge whisker for rank-deficient dates (few ITM paths).
            coef = np.linalg.solve(
                a_global + 1e-10 * np.trace(a_global) / k * np.eye(k), b_global
            )

            # --- local exercise decisions ---------------------------------
            continuation = polynomial_features(s_t[itm], self.degree,
                                               model.spots) @ coef
            exercise = np.zeros(n, dtype=bool)
            exercise[itm] = intrinsic[itm] >= continuation
            cash = np.where(exercise, intrinsic, cash)
            tau = np.where(exercise, t, tau)
            for r, (lo, hi) in enumerate(parts):
                cluster.compute(r, (hi - lo) * 2.0)

        fault_report = simulate_recovery(cluster, self.faults, self.policy,
                                         engine="lsm")
        pv = cash * np.exp(-model.rate * dt * tau)
        partials = [SampleStats.from_values(pv[lo:hi]) for lo, hi in parts]
        reduce_t0 = cluster.elapsed()
        merged = cluster.reduce_data(partials, lambda a, b: a.merge(b), 24.0,
                                     root=0, topology="tree")
        if tracer:
            tracer.add_span("lsm.reduce", reduce_t0, cluster.elapsed())
        price = merged.mean
        stderr = merged.stderr
        intrinsic0 = float(payoff.intrinsic(paths[:, 0, :])[0])
        if intrinsic0 > price:
            price = intrinsic0
        wall = time.perf_counter() - wall0

        rep = cluster.report()
        return ParallelRunResult(
            price=price,
            stderr=stderr,
            p=p,
            sim_time=rep["elapsed"],
            wall_time=wall,
            compute_time=rep["compute_time"],
            comm_time=rep["comm_time"],
            idle_time=rep["idle_time"],
            messages=rep["messages"],
            bytes_moved=rep["bytes_moved"],
            engine="lsm",
            meta={"steps": m, "degree": self.degree, "basis_size": k,
                  "n_paths": n,
                  **({"cluster": cluster} if self.record else {}),
                  **({"fault_report": fault_report} if fault_report else {})},
        )

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list``."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
