"""Parallel Longstaff–Schwartz: American Monte Carlo with distributed
regression.

The LSM backward induction is MC's *synchronized iterative algorithm*: at
every exercise date the regression couples all paths, so ranks cannot
proceed independently the way European path-averaging does. The classical
parallel formulation (used by the era's American-MC codes):

1. paths are block-partitioned; rank r simulates and stores its own block;
2. at each exercise date, each rank builds the **normal-equation moments**
   of its in-the-money paths — ``A_r = X_rᵀX_r`` (k×k) and
   ``b_r = X_rᵀy_r`` (k) — an O(k²) payload independent of the path count;
3. one allreduce sums the moments; every rank solves the same tiny k×k
   system, so all ranks hold the *global* regression coefficients;
4. exercise decisions are applied locally; the final price is a standard
   sufficient-statistics reduction.

Communication is one O(k²) allreduce per exercise date — between MC's
single terminal reduce and the lattice's per-level halos, which is exactly
where its measured scaling lands (benchmark F12).

The sequential reference solves the same normal equations
(:class:`LongstaffSchwartz` with ``rcond``-free lstsq is numerically
equivalent for these small, scaled bases); paths are generated from the
master seed independently of P, so the estimate varies across P only
through the allreduce's floating-point association.

This class is the configuration + public entry point; the staged
implementation lives in :class:`repro.engine.lsm.LSMEngine`, driven by
the shared pipeline runner (:mod:`repro.engine.runner`).
"""

from __future__ import annotations

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.engine.lsm import LSMEngine
from repro.engine.runner import run_engine
from repro.market.gbm import MultiAssetGBM
from repro.parallel.faults import FaultPlan, FaultPolicy
from repro.parallel.simcluster import MachineSpec
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive_int

__all__ = ["ParallelLSMPricer"]


class ParallelLSMPricer:
    """Distributed-regression LSM over the simulated machine.

    Parameters
    ----------
    n_paths : total simulated paths.
    steps : exercise dates.
    degree : regression polynomial degree.
    seed, spec, work : as in the other parallel pricers.
    faults, policy : optional fault plan / failure policy (simulated
        timeline only; values stay bit-identical and rank loss raises —
        the per-date allreduce couples every rank).
    record : keep the cluster's event trace and attach the cluster to
        ``result.meta["cluster"]`` (render with perf.gantt).
    tracer : optional :class:`~repro.obs.Tracer` (simulated timeline):
        per-rank spans via the cluster plus ``lsm.paths`` / per-date
        ``lsm.regression`` / ``lsm.reduce`` phase spans on the main track.
    metrics : optional :class:`~repro.obs.MetricsRegistry` fed by the
        shared runner (``engine.runs`` / ``engine.wall_s`` /
        ``engine.sim_s``, labeled by engine name).
    """

    def __init__(
        self,
        n_paths: int,
        steps: int,
        *,
        degree: int = 2,
        seed: int = 0,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        min_regression_paths: int = 32,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
        metrics=None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.steps = check_positive_int("steps", steps)
        self.degree = check_positive_int("degree", degree)
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        self.min_regression_paths = check_positive_int(
            "min_regression_paths", min_regression_paths
        )
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer
        self.metrics = metrics

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Price an American/Bermudan contract on ``p`` simulated ranks."""
        return run_engine(LSMEngine(self), model, payoff, expiry, p)

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list``."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
