"""Parallel hedge-parameter (Greeks) computation.

A risk run revalues the same contract under ``1 + 4d`` bumped models
(base, spot up/down and vol up/down per asset) with **common random
numbers**. The parallel structure mirrors the MC pricer — paths are
block-partitioned, every rank replays its substream for each bumped model
— but each rank now ships ``1 + 4d`` sufficient-statistics payloads in one
reduction, and the per-rank compute is ``(1 + 4d)×`` the pricing work.
Communication stays O(d) per rank versus O(N·d) compute, so Greeks scale
as well as pricing (benchmark F12).

CRN is preserved across ranks *and* bumps: rank r clones its substream for
every model, so the differences delta/gamma/vega are smooth at any P and
identical to the sequential :func:`repro.mc.mc_greeks_bump` estimator run
on the same substream layout.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.mc.variance_reduction import PlainMC
from repro.parallel.partition import block_sizes
from repro.parallel.simcluster import MachineSpec, SimulatedCluster
from repro.payoffs.base import Payoff
from repro.rng import Philox4x32
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelGreeksResult", "ParallelMCGreeks"]


@dataclass(frozen=True)
class ParallelGreeksResult:
    """Greeks plus the parallel-run diagnostics."""

    price: float
    stderr: float
    delta: np.ndarray
    gamma: np.ndarray
    vega: np.ndarray
    run: ParallelRunResult
    meta: dict = field(default_factory=dict)


class ParallelMCGreeks:
    """CRN bump-and-revalue Greeks over the simulated machine.

    Parameters
    ----------
    n_paths : paths per valuation (each of the ``1+4d`` bumped models
        replays the same draws).
    rel_bump, vol_bump : bump sizes as in :func:`repro.mc.mc_greeks_bump`.
    """

    def __init__(
        self,
        n_paths: int,
        *,
        rel_bump: float = 0.01,
        vol_bump: float = 0.01,
        seed: int = 0,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.rel_bump = check_positive("rel_bump", rel_bump)
        self.vol_bump = check_positive("vol_bump", vol_bump)
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()

    def _bumped_models(self, model: MultiAssetGBM):
        """base + per-asset spot up/down + per-asset vol up/down."""
        models = [model]
        d = model.dim
        bumps = []
        for i in range(d):
            h = self.rel_bump * float(model.spots[i])
            up = model.spots.copy(); up[i] += h
            dn = model.spots.copy(); dn[i] -= h
            models.append(model.with_spots(up))
            models.append(model.with_spots(dn))
            bumps.append(h)
        for i in range(d):
            vu = model.vols.copy(); vu[i] += self.vol_bump
            vd = model.vols.copy(); vd[i] = max(vd[i] - self.vol_bump, 1e-8)
            models.append(model.with_vols(vu))
            models.append(model.with_vols(vd))
        return models, bumps

    def compute(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelGreeksResult:
        """Run the risk sweep on ``p`` simulated ranks."""
        check_positive("expiry", expiry)
        p = check_positive_int("p", p)
        if payoff.dim != model.dim:
            raise ValidationError(
                f"payoff dim {payoff.dim} does not match model dim {model.dim}"
            )
        if p > self.n_paths:
            raise ValidationError(f"more ranks ({p}) than paths ({self.n_paths})")
        d = model.dim
        models, spot_bumps = self._bumped_models(model)
        n_models = len(models)
        technique = PlainMC()
        counts = block_sizes(self.n_paths, p)
        if min(counts) == 0:
            raise ValidationError("some rank would receive zero paths; lower p")
        master = Philox4x32(self.seed, stream=0x9E)
        subs = master.spawn(p)

        wall0 = time.perf_counter()
        # partials[r][j]: rank r's stats for bumped model j, same draws ∀j.
        partials = []
        for r in range(p):
            row = []
            for m_j in models:
                row.append(
                    technique.partial(m_j, payoff, expiry, counts[r],
                                      subs[r].clone())
                )
            partials.append(tuple(row))
        wall = time.perf_counter() - wall0

        cluster = SimulatedCluster(p, self.spec)
        units = self.work.mc_path_units(d, None) * n_models
        cluster.compute_all([c * units for c in counts])
        merged = cluster.reduce_data(
            partials,
            lambda a, b: tuple(x.merge(y) for x, y in zip(a, b)),
            24.0 * n_models,
            root=0,
            topology="tree",
        )
        values = [s.mean for s in merged]
        price = values[0]
        stderr = merged[0].stderr

        delta = np.empty(d)
        gamma = np.empty(d)
        vega = np.empty(d)
        for i in range(d):
            h = spot_bumps[i]
            up, dn = values[1 + 2 * i], values[2 + 2 * i]
            delta[i] = (up - dn) / (2.0 * h)
            gamma[i] = (up - 2.0 * price + dn) / (h * h)
        offset = 1 + 2 * d
        for i in range(d):
            vu_val = values[offset + 2 * i]
            vd_val = values[offset + 2 * i + 1]
            v_hi = float(model.vols[i]) + self.vol_bump
            v_lo = max(float(model.vols[i]) - self.vol_bump, 1e-8)
            vega[i] = (vu_val - vd_val) / (v_hi - v_lo)

        rep = cluster.report()
        run = ParallelRunResult(
            price=price,
            stderr=stderr,
            p=p,
            sim_time=rep["elapsed"],
            wall_time=wall,
            compute_time=rep["compute_time"],
            comm_time=rep["comm_time"],
            idle_time=rep["idle_time"],
            messages=rep["messages"],
            bytes_moved=rep["bytes_moved"],
            engine="mc-greeks",
            meta={"n_models": n_models, "counts": counts},
        )
        return ParallelGreeksResult(
            price=price, stderr=stderr, delta=delta, gamma=gamma, vega=vega,
            run=run, meta={"rel_bump": self.rel_bump, "vol_bump": self.vol_bump},
        )
