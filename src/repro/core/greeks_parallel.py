"""Parallel hedge-parameter (Greeks) computation.

A risk run revalues the same contract under ``1 + 4d`` bumped models
(base, spot up/down and vol up/down per asset) with **common random
numbers**. The parallel structure mirrors the MC pricer — paths are
block-partitioned, every rank replays its substream for each bumped model
— but each rank now ships ``1 + 4d`` sufficient-statistics payloads in one
reduction, and the per-rank compute is ``(1 + 4d)×`` the pricing work.
Communication stays O(d) per rank versus O(N·d) compute, so Greeks scale
as well as pricing (benchmark F12).

CRN is preserved across ranks *and* bumps: rank r clones its substream for
every model, so the differences delta/gamma/vega are smooth at any P and
identical to the sequential :func:`repro.mc.mc_greeks_bump` estimator run
on the same substream layout.

This class is the configuration + public entry point; the staged
implementation lives in :class:`repro.engine.greeks.GreeksEngine`, driven
by the shared pipeline runner (:mod:`repro.engine.runner`) — which also
makes the risk sweep backend-mappable (thread/process pools) like the MC
pricer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.engine.greeks import GreeksEngine
from repro.engine.runner import run_pipeline
from repro.market.gbm import MultiAssetGBM
from repro.parallel.backends import ExecutionBackend
from repro.parallel.simcluster import MachineSpec
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelGreeksResult", "ParallelMCGreeks"]


@dataclass(frozen=True)
class ParallelGreeksResult:
    """Greeks plus the parallel-run diagnostics."""

    price: float
    stderr: float
    delta: np.ndarray
    gamma: np.ndarray
    vega: np.ndarray
    run: ParallelRunResult
    meta: dict = field(default_factory=dict)


class ParallelMCGreeks:
    """CRN bump-and-revalue Greeks over the simulated machine.

    Parameters
    ----------
    n_paths : paths per valuation (each of the ``1+4d`` bumped models
        replays the same draws).
    rel_bump, vol_bump : bump sizes as in :func:`repro.mc.mc_greeks_bump`.
    backend : real execution backend (default serial); the per-rank bump
        revaluations are backend-mapped like the MC pricer's rank tasks.
    chunksize : rank tasks per backend dispatch (transport only).
    record, tracer, metrics : shared-runner middleware, as in the other
        parallel pricers.
    scheduler : optional execute-stage scheduler (instance or strategy
        name); placement only — the Greeks are scheduler-invariant
        bitwise. Default ``None``: the historical static path.
    """

    def __init__(
        self,
        n_paths: int,
        *,
        rel_bump: float = 0.01,
        vol_bump: float = 0.01,
        seed: int = 0,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        backend: ExecutionBackend | None = None,
        chunksize: int | str | None = None,
        record: bool = False,
        tracer=None,
        metrics=None,
        scheduler=None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        self.rel_bump = check_positive("rel_bump", rel_bump)
        self.vol_bump = check_positive("vol_bump", vol_bump)
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        self.backend = backend
        self.chunksize = chunksize
        self.record = bool(record)
        self.tracer = tracer
        self.metrics = metrics
        #: Execute-stage scheduler (None = static), as in ParallelMCPricer.
        self.scheduler = scheduler

    def _bumped_models(self, model: MultiAssetGBM):
        """base + per-asset spot up/down + per-asset vol up/down."""
        models = [model]
        d = model.dim
        bumps = []
        for i in range(d):
            h = self.rel_bump * float(model.spots[i])
            up = model.spots.copy(); up[i] += h
            dn = model.spots.copy(); dn[i] -= h
            models.append(model.with_spots(up))
            models.append(model.with_spots(dn))
            bumps.append(h)
        for i in range(d):
            vu = model.vols.copy(); vu[i] += self.vol_bump
            vd = model.vols.copy(); vd[i] = max(vd[i] - self.vol_bump, 1e-8)
            models.append(model.with_vols(vu))
            models.append(model.with_vols(vd))
        return models, bumps

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Run the risk sweep; returns just the base-price run result."""
        return self.compute(model, payoff, expiry, p).run

    def compute(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelGreeksResult:
        """Run the risk sweep on ``p`` simulated ranks."""
        run, estimate = run_pipeline(GreeksEngine(self), model, payoff,
                                     expiry, p)
        return ParallelGreeksResult(
            price=run.price, stderr=run.stderr,
            delta=estimate.extras["delta"], gamma=estimate.extras["gamma"],
            vega=estimate.extras["vega"], run=run,
            meta={"rel_bump": self.rel_bump, "vol_bump": self.vol_bump},
        )
