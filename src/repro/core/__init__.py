"""The paper's contribution: parallel pricing algorithms for
multidimensional derivatives, with a deterministic performance model.

* :class:`ParallelMCPricer` — path-wise domain decomposition of Monte
  Carlo: paths are block-partitioned across ranks, each rank owns a
  provably disjoint RNG substream and accumulates O(1)-size sufficient
  statistics, which a tree reduction combines. Embarrassingly parallel
  compute with a logarithmic reduction — the near-linear-speedup workload.
* :class:`ParallelLatticePricer` — level-synchronous slab decomposition of
  the (multidimensional) BEG lattice: each backward step splits the value
  tensor's leading axis into contiguous slabs, exchanges one halo plane per
  boundary, and synchronizes. Communication per step is O(level surface),
  so efficiency falls as P approaches the level width — the
  synchronization-bound workload.
* :class:`ParallelPDEPricer` — ADI with transpose-based sweep
  parallelization: tridiagonal lines are independent within each half-step;
  the data transpose between x- and y-sweeps is an all-to-all.

Every pricer produces *numerically identical* values to its sequential
reference engine (asserted in the integration tests) while charging
compute/communication costs to a :class:`~repro.parallel.SimulatedCluster`,
from which the evaluation's T(P)/speedup/efficiency tables are read.
"""

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.core.mc_parallel import ParallelMCPricer
from repro.core.lattice_parallel import ParallelLatticePricer
from repro.core.pde_parallel import ParallelPDEPricer
from repro.core.portfolio import PortfolioPricer, PortfolioRun
from repro.core.lsm_parallel import ParallelLSMPricer
from repro.core.greeks_parallel import ParallelGreeksResult, ParallelMCGreeks

__all__ = [
    "PortfolioPricer",
    "PortfolioRun",
    "ParallelLSMPricer",
    "ParallelGreeksResult",
    "ParallelMCGreeks",
    "ParallelRunResult",
    "WorkModel",
    "ParallelMCPricer",
    "ParallelLatticePricer",
    "ParallelPDEPricer",
]
