"""Parallel two-asset ADI pricer: transpose-based sweep decomposition.

Within one Peaceman–Rachford step every tridiagonal line is independent of
its neighbors, so:

* the **x-implicit** half-step distributes the ``n_y`` column systems over
  ranks (rank r solves a contiguous block of columns);
* the **y-implicit** half-step distributes the ``n_x`` row systems;
* switching between the two layouts is a **data transpose** — an
  all-to-all in which each rank pair exchanges ``n_x·n_y/P²`` grid values.

Per time step the decomposition therefore pays two all-to-alls; their cost
grows with P (pairwise model: (P−1)(α + b·β)), which gives the PDE engine
its characteristic efficiency roll-off between the embarrassing MC curve
and the latency-bound lattice curve (experiment T7).

The rank-block computations here are *actually executed* block by block
(each rank's columns solved independently) and reassembled; the integration
tests assert the assembled plane is bit-identical to the sequential
:class:`~repro.pde.ADISolver` step for every P.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.parallel.faults import FaultPlan, FaultPolicy, simulate_recovery
from repro.parallel.partition import block_partition
from repro.parallel.simcluster import MachineSpec, SimulatedCluster
from repro.pde.adi2d import ADISolver
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelPDEPricer"]


class ParallelPDEPricer:
    """Transpose-parallel ADI valuation with simulated timing.

    Parameters
    ----------
    n_space : spatial intervals per axis (even).
    n_time : time steps.
    american : project onto the obstacle after each full step.
    spec, work : simulated machine and work models.
    faults, policy : optional fault plan / failure policy (simulated
        timeline only; values stay bit-identical and rank loss raises).
    tracer : optional :class:`~repro.obs.Tracer` (simulated timeline):
        per-rank spans via the cluster plus per-step ``pde.step`` spans
        with nested ``pde.transpose`` exchanges on the main track.
    """

    def __init__(
        self,
        *,
        n_space: int = 200,
        n_time: int = 100,
        american: bool = False,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
    ):
        self.n_space = check_positive_int("n_space", n_space)
        self.n_time = check_positive_int("n_time", n_time)
        self.american = bool(american)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        #: When set, each run's cluster keeps an event trace (result meta
        #: key "cluster"; render with perf.gantt).
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer

    def _transpose(self, cluster: SimulatedCluster, nbytes: float) -> None:
        """All-to-all layout switch, traced as a ``pde.transpose`` span."""
        t0 = cluster.elapsed()
        cluster.alltoall(nbytes)
        if self.tracer:
            self.tracer.add_span("pde.transpose", t0, cluster.elapsed())

    def _parallel_step(
        self, solver: ADISolver, v: np.ndarray, p: int, cluster: SimulatedCluster,
        obstacle: np.ndarray | None,
    ) -> np.ndarray:
        """One ADI step computed block-by-block with cost accounting."""
        nx, ny = v.shape
        w = self.work
        # Phase 0 (row layout): explicit_y + mixed term on row blocks.
        mixed = 0.5 * solver.dt * solver.mixed_term(v)
        rhs1 = solver.explicit_y(v) + mixed
        row_parts = block_partition(nx, min(p, nx))
        for r, (lo, hi) in enumerate(row_parts):
            cluster.compute(r, (hi - lo) * ny * (w.fd_explicit_point + w.fd_mixed_point))

        # Transpose rows → columns.
        self._transpose(cluster, nx * ny * 8.0 / (p * p))

        # Phase 1 (column layout): x-implicit solves on column blocks.
        col_parts = block_partition(ny, min(p, ny))
        v_star = np.empty_like(v)
        for r, (lo, hi) in enumerate(col_parts):
            v_star[:, lo:hi] = solver.implicit_x(rhs1[:, lo:hi])
            cluster.compute(r, (hi - lo) * nx * w.fd_point)
        # explicit_x is also column-independent; stay in column layout.
        rhs2 = solver.explicit_x(v_star) + mixed
        for r, (lo, hi) in enumerate(col_parts):
            cluster.compute(r, (hi - lo) * nx * w.fd_explicit_point)

        # Transpose columns → rows.
        self._transpose(cluster, nx * ny * 8.0 / (p * p))

        # Phase 2 (row layout): y-implicit solves on row blocks.
        v_new = np.empty_like(v)
        for r, (lo, hi) in enumerate(row_parts):
            v_new[lo:hi, :] = solver.implicit_y(rhs2[lo:hi, :])
            cluster.compute(r, (hi - lo) * ny * w.fd_point)
        if obstacle is not None:
            np.maximum(v_new, obstacle, out=v_new)
            for r, (lo, hi) in enumerate(row_parts):
                cluster.compute(r, (hi - lo) * ny * 1.0)
        return v_new

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Value a 2-asset contract on ``p`` simulated ranks."""
        check_positive("expiry", expiry)
        p = check_positive_int("p", p)
        if model.dim != 2:
            raise ValidationError(f"PDE pricer requires a 2-asset model, got dim={model.dim}")
        solver = ADISolver(
            model, expiry, n_space=self.n_space, n_time=self.n_time
        )
        sx, sy = solver.grid_x.s, solver.grid_y.s
        mesh = np.stack(np.meshgrid(sx, sy, indexing="ij"), axis=-1).reshape(-1, 2)
        values = payoff.terminal(mesh).reshape(sx.size, sy.size)
        obstacle = values.copy() if self.american else None
        cluster = SimulatedCluster(p, self.spec, record=self.record,
                                   faults=self.faults, tracer=self.tracer)

        wall0 = time.perf_counter()
        for step in range(self.n_time):
            step_t0 = cluster.elapsed()
            values = self._parallel_step(solver, values, p, cluster, obstacle)
            if self.tracer:
                self.tracer.add_span("pde.step", step_t0, cluster.elapsed(),
                                     step=step)
        wall = time.perf_counter() - wall0

        fault_report = simulate_recovery(cluster, self.faults, self.policy,
                                         engine="pde")
        cluster.bcast(8.0, root=0)
        i, j = solver.grid_x.spot_index, solver.grid_y.spot_index
        price = float(values[i, j])
        rep = cluster.report()
        return ParallelRunResult(
            price=price,
            stderr=0.0,
            p=p,
            sim_time=rep["elapsed"],
            wall_time=wall,
            compute_time=rep["compute_time"],
            comm_time=rep["comm_time"],
            idle_time=rep["idle_time"],
            messages=rep["messages"],
            bytes_moved=rep["bytes_moved"],
            engine="pde",
            meta={
                "n_space": self.n_space,
                "n_time": self.n_time,
                "american": self.american,
                **({"cluster": cluster} if self.record else {}),
                **({"fault_report": fault_report} if fault_report else {}),
            },
        )

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list``."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
