"""Parallel two-asset ADI pricer: transpose-based sweep decomposition.

Within one Peaceman–Rachford step every tridiagonal line is independent of
its neighbors, so:

* the **x-implicit** half-step distributes the ``n_y`` column systems over
  ranks (rank r solves a contiguous block of columns);
* the **y-implicit** half-step distributes the ``n_x`` row systems;
* switching between the two layouts is a **data transpose** — an
  all-to-all in which each rank pair exchanges ``n_x·n_y/P²`` grid values.

Per time step the decomposition therefore pays two all-to-alls; their cost
grows with P (pairwise model: (P−1)(α + b·β)), which gives the PDE engine
its characteristic efficiency roll-off between the embarrassing MC curve
and the latency-bound lattice curve (experiment T7).

The rank-block computations here are *actually executed* block by block
(each rank's columns solved independently) and reassembled; the integration
tests assert the assembled plane is bit-identical to the sequential
:class:`~repro.pde.ADISolver` step for every P.

This class is the configuration + public entry point; the staged
implementation lives in :class:`repro.engine.pde.PDEEngine`, driven by
the shared pipeline runner (:mod:`repro.engine.runner`).
"""

from __future__ import annotations

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.engine.pde import PDEEngine
from repro.engine.runner import run_engine
from repro.market.gbm import MultiAssetGBM
from repro.parallel.faults import FaultPlan, FaultPolicy
from repro.parallel.simcluster import MachineSpec
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive_int

__all__ = ["ParallelPDEPricer"]


class ParallelPDEPricer:
    """Transpose-parallel ADI valuation with simulated timing.

    Parameters
    ----------
    n_space : spatial intervals per axis (even).
    n_time : time steps.
    american : project onto the obstacle after each full step.
    spec, work : simulated machine and work models.
    faults, policy : optional fault plan / failure policy (simulated
        timeline only; values stay bit-identical and rank loss raises).
    tracer : optional :class:`~repro.obs.Tracer` (simulated timeline):
        per-rank spans via the cluster plus per-step ``pde.step`` spans
        with nested ``pde.transpose`` exchanges on the main track.
    metrics : optional :class:`~repro.obs.MetricsRegistry` fed by the
        shared runner (``engine.runs`` / ``engine.wall_s`` /
        ``engine.sim_s``, labeled by engine name).
    """

    def __init__(
        self,
        *,
        n_space: int = 200,
        n_time: int = 100,
        american: bool = False,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
        metrics=None,
    ):
        self.n_space = check_positive_int("n_space", n_space)
        self.n_time = check_positive_int("n_time", n_time)
        self.american = bool(american)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        #: When set, each run's cluster keeps an event trace (result meta
        #: key "cluster"; render with perf.gantt).
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer
        self.metrics = metrics

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Value a 2-asset contract on ``p`` simulated ranks."""
        return run_engine(PDEEngine(self), model, payoff, expiry, p)

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list``."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
