"""Parallel multidimensional lattice pricer: level-synchronous slab
decomposition of the BEG backward induction.

At level ``t`` the value tensor has ``(t+1)^d`` nodes. Its leading axis is
block-partitioned into (at most) P contiguous slabs; each rank updates its
slab with :meth:`BEGLattice.step_rows`, which needs exactly one halo plane
(``(t+2)^{d−1}`` values) from the next rank — the corner-stencil offsets
along the sliced axis are only 0 or 1. One halo exchange per level is the
entire communication; the level-synchronous structure is also the
algorithm's weakness: near the root, levels hold fewer rows than ranks, so
extra ranks idle (charged as idle time), and per-level latency is paid ``n``
times. That is why lattice speedup saturates (experiments F3/T3) while MC's
does not — the central comparison of the paper's evaluation.

American exercise adds a per-level intrinsic evaluation on each slab
(charged as extra work) and a max; values remain bit-identical to the
sequential sweep, which the integration tests assert for every P.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.errors import ValidationError
from repro.lattice.beg import BEGLattice
from repro.market.gbm import MultiAssetGBM
from repro.parallel.faults import FaultPlan, FaultPolicy, simulate_recovery
from repro.parallel.partition import block_partition
from repro.parallel.simcluster import MachineSpec, SimulatedCluster
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ParallelLatticePricer"]


class ParallelLatticePricer:
    """Slab-parallel BEG lattice valuation with simulated timing.

    Parameters
    ----------
    steps : lattice time steps ``n``.
    american : apply early exercise at every level.
    spec : simulated machine parameters.
    work : work-unit model.
    faults, policy : optional fault plan / failure policy. Values stay
        bit-identical (the arithmetic is the sequential reference);
        faults stretch and extend the simulated timeline only, and a
        permanently lost rank raises (this engine cannot degrade).
    tracer : optional :class:`~repro.obs.Tracer` (simulated timeline):
        per-rank spans via the cluster plus ``lattice.level`` /
        ``lattice.halo`` phase spans on the main track.
    """

    def __init__(
        self,
        steps: int,
        *,
        american: bool = False,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
    ):
        self.steps = check_positive_int("steps", steps)
        self.american = bool(american)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        #: When set, each run's cluster keeps an event trace (result meta
        #: key "cluster"; render with perf.gantt).
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Value ``payoff`` on ``p`` simulated ranks."""
        check_positive("expiry", expiry)
        p = check_positive_int("p", p)
        lattice = BEGLattice(model, expiry, self.steps)
        d = model.dim
        n = self.steps
        node_units = self.work.lattice_node_units(d)
        intr_units = self.work.intrinsic_node_units(d)
        cluster = SimulatedCluster(p, self.spec, record=self.record,
                                   faults=self.faults, tracer=self.tracer)
        tracer = self.tracer

        wall0 = time.perf_counter()
        values = lattice.payoff_values(payoff, n)
        # Leaf evaluation is parallel over slabs of the terminal tensor.
        leaf_parts = block_partition(n + 1, min(p, n + 1))
        plane_leaf = (n + 1) ** (d - 1)
        for r, (lo, hi) in enumerate(leaf_parts):
            cluster.compute(r, (hi - lo) * plane_leaf * intr_units)
        if tracer:
            tracer.add_span("lattice.leaves", 0.0, cluster.elapsed())

        for t in range(n - 1, -1, -1):
            level_t0 = cluster.elapsed()
            rows = t + 1
            p_eff = min(p, rows)
            parts = block_partition(rows, p_eff)
            slabs = []
            for lo, hi in parts:
                slab = lattice.step_rows(values[lo : hi + 1], t, lo, hi - lo)
                slabs.append(slab)
            new_values = np.concatenate(slabs, axis=0)
            if self.american:
                intrinsic = lattice.payoff_values(payoff, t)
                np.maximum(new_values, intrinsic, out=new_values)
            values = new_values

            # --- simulated cost of this level ---
            plane = rows ** (d - 1)
            for r, (lo, hi) in enumerate(parts):
                work_units = (hi - lo) * plane * node_units
                if self.american:
                    work_units += (hi - lo) * plane * intr_units
                cluster.compute(r, work_units)
            # One halo plane of level t+1 moves across each slab boundary.
            halo_bytes = ((t + 2) ** (d - 1)) * 8.0
            halo_t0 = cluster.elapsed()
            cluster.halo_exchange(halo_bytes)
            if tracer:
                tracer.add_span("lattice.halo", halo_t0, cluster.elapsed(),
                                level=t, nbytes=halo_bytes)
                tracer.add_span("lattice.level", level_t0, cluster.elapsed(),
                                level=t, rows=rows)
        wall = time.perf_counter() - wall0

        fault_report = simulate_recovery(cluster, self.faults, self.policy,
                                         engine="lattice")

        # Root value lives on rank 0; share it (the paper's codes broadcast
        # the final price so every node can report).
        cluster.bcast(8.0, root=0)

        price = float(np.asarray(values).reshape(-1)[0])
        rep = cluster.report()
        nodes = sum((t + 1) ** d for t in range(n + 1))
        return ParallelRunResult(
            price=price,
            stderr=0.0,
            p=p,
            sim_time=rep["elapsed"],
            wall_time=wall,
            compute_time=rep["compute_time"],
            comm_time=rep["comm_time"],
            idle_time=rep["idle_time"],
            messages=rep["messages"],
            bytes_moved=rep["bytes_moved"],
            engine="lattice",
            meta={
                "steps": n,
                "dim": d,
                "branching": 2 ** d,
                "nodes": nodes,
                "american": self.american,
                **({"cluster": cluster} if self.record else {}),
                **({"fault_report": fault_report} if fault_report else {}),
            },
        )

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list``."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
