"""Parallel multidimensional lattice pricer: level-synchronous slab
decomposition of the BEG backward induction.

At level ``t`` the value tensor has ``(t+1)^d`` nodes. Its leading axis is
block-partitioned into (at most) P contiguous slabs; each rank updates its
slab with :meth:`BEGLattice.step_rows`, which needs exactly one halo plane
(``(t+2)^{d−1}`` values) from the next rank — the corner-stencil offsets
along the sliced axis are only 0 or 1. One halo exchange per level is the
entire communication; the level-synchronous structure is also the
algorithm's weakness: near the root, levels hold fewer rows than ranks, so
extra ranks idle (charged as idle time), and per-level latency is paid ``n``
times. That is why lattice speedup saturates (experiments F3/T3) while MC's
does not — the central comparison of the paper's evaluation.

American exercise adds a per-level intrinsic evaluation on each slab
(charged as extra work) and a max; values remain bit-identical to the
sequential sweep, which the integration tests assert for every P.

This class is the configuration + public entry point; the staged
implementation lives in :class:`repro.engine.lattice.LatticeEngine`,
driven by the shared pipeline runner (:mod:`repro.engine.runner`).
"""

from __future__ import annotations

from repro.core.result import ParallelRunResult
from repro.core.work import WorkModel
from repro.engine.lattice import LatticeEngine
from repro.engine.runner import run_engine
from repro.market.gbm import MultiAssetGBM
from repro.parallel.faults import FaultPlan, FaultPolicy
from repro.parallel.simcluster import MachineSpec
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive_int

__all__ = ["ParallelLatticePricer"]


class ParallelLatticePricer:
    """Slab-parallel BEG lattice valuation with simulated timing.

    Parameters
    ----------
    steps : lattice time steps ``n``.
    american : apply early exercise at every level.
    spec : simulated machine parameters.
    work : work-unit model.
    faults, policy : optional fault plan / failure policy. Values stay
        bit-identical (the arithmetic is the sequential reference);
        faults stretch and extend the simulated timeline only, and a
        permanently lost rank raises (this engine cannot degrade).
    tracer : optional :class:`~repro.obs.Tracer` (simulated timeline):
        per-rank spans via the cluster plus ``lattice.level`` /
        ``lattice.halo`` phase spans on the main track.
    metrics : optional :class:`~repro.obs.MetricsRegistry` fed by the
        shared runner (``engine.runs`` / ``engine.wall_s`` /
        ``engine.sim_s``, labeled by engine name).
    """

    def __init__(
        self,
        steps: int,
        *,
        american: bool = False,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        record: bool = False,
        faults: FaultPlan | None = None,
        policy: FaultPolicy | str | None = None,
        tracer=None,
        metrics=None,
    ):
        self.steps = check_positive_int("steps", steps)
        self.american = bool(american)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        #: When set, each run's cluster keeps an event trace (result meta
        #: key "cluster"; render with perf.gantt).
        self.record = bool(record)
        self.faults = faults
        self.policy = FaultPolicy.parse(policy)
        self.tracer = tracer
        self.metrics = metrics

    def price(
        self,
        model: MultiAssetGBM,
        payoff: Payoff,
        expiry: float,
        p: int,
    ) -> ParallelRunResult:
        """Value ``payoff`` on ``p`` simulated ranks."""
        return run_engine(LatticeEngine(self), model, payoff, expiry, p)

    def sweep(self, model, payoff, expiry, p_list) -> list[ParallelRunResult]:
        """Price at each P in ``p_list``."""
        return [self.price(model, payoff, expiry, p) for p in p_list]
