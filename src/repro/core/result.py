"""Result object shared by all parallel pricers.

The dataclass now lives in :mod:`repro.engine.result` (the pipeline runner
assembles it); this module remains the historical import path.
"""

from __future__ import annotations

from repro.engine.result import ParallelRunResult

__all__ = ["ParallelRunResult"]
