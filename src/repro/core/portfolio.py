"""Contract-level parallelism: the pricing *task farm*.

Besides parallelizing inside one valuation, a pricing system parallelizes
*across* a book: each contract is an independent task of heterogeneous cost
(cost ∝ paths × dimension × steps). The scheduling question — how to
assign contracts to ranks — is the classical load-balancing problem, and
experiment F10 ablates the three canonical answers:

* ``block`` — contiguous chunks of the book (great locality, terrible when
  expensive contracts cluster);
* ``cyclic`` — round-robin deal (good average balance, still blind to
  costs);
* ``lpt`` — Longest-Processing-Time list scheduling on *estimated* costs
  (Graham's 4/3-approximation; the greedy near-optimum);
* ``dynamic`` — master–worker self-scheduling: contracts are handed out in
  arrival order to whichever rank frees up first, paying one dispatch
  latency (α) per assignment. Balances well without cost estimates, at the
  price of the dispatch overhead — the classic trade-off.

Every schedule produces the same prices (the tasks are independent); only
the simulated makespan changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.work import WorkModel
from repro.errors import ValidationError
from repro.mc.result import MCResult
from repro.mc.variance_reduction import PlainMC
from repro.parallel.backends import ExecutionBackend
from repro.parallel.partition import block_partition
from repro.parallel.simcluster import MachineSpec, SimulatedCluster
from repro.rng import Philox4x32
from repro.serve.cache import PriceCache, stable_key
from repro.utils.validation import check_positive_int
from repro.verify.contracts import describe_workload
from repro.workloads.generators import Workload

__all__ = ["PortfolioPricer", "PortfolioRun"]

_SCHEDULES = ("block", "cyclic", "lpt", "dynamic")


@dataclass(frozen=True)
class PortfolioRun:
    """A priced book plus the scheduling diagnostics."""

    results: tuple[MCResult, ...]
    p: int
    schedule: str
    sim_time: float
    per_rank_times: tuple[float, ...]
    assignment: tuple[int, ...]
    meta: dict = field(default_factory=dict)

    @property
    def imbalance(self) -> float:
        """makespan / mean rank time − 1 (0 = perfectly balanced)."""
        mean = float(np.mean(self.per_rank_times))
        if mean == 0.0:
            return 0.0
        return self.sim_time / mean - 1.0

    @property
    def total_value(self) -> float:
        return float(sum(r.price for r in self.results))


class PortfolioPricer:
    """Prices a list of :class:`Workload` contracts across ``p`` ranks.

    Parameters
    ----------
    n_paths : MC paths per contract (cost heterogeneity comes from the
        contracts' dimensions/steps).
    schedule : "block" | "cyclic" | "lpt".
    seed : master seed; contract ``i`` always prices on substream ``i``, so
        prices are schedule- and P-invariant.
    backend : optional real :class:`~repro.parallel.backends.
        ExecutionBackend` — contract valuations then run through one
        chunked ``backend.map`` (true multi-core for a process backend)
        instead of the in-process loop. Prices are bitwise identical
        either way: each contract's substream travels with its task.
    cache : optional :class:`~repro.serve.cache.PriceCache` consulted
        before any contract is valued. Keys cover the contract config
        *and* its substream index, so only true replays hit — e.g. the
        ``repro portfolio`` CLI pricing one book under four schedules
        computes the prices once. Caching (like the backend choice) only
        affects wall-clock: the simulated makespan still charges every
        contract, because the schedule ablation models the compute.
    chunksize : forwarded to ``backend.map`` (int | "auto" | None).
    """

    def __init__(
        self,
        n_paths: int,
        *,
        schedule: str = "block",
        seed: int = 0,
        spec: MachineSpec | None = None,
        work: WorkModel | None = None,
        steps: int | None = None,
        backend: ExecutionBackend | None = None,
        cache: PriceCache | None = None,
        chunksize: int | str | None = None,
    ):
        self.n_paths = check_positive_int("n_paths", n_paths)
        if schedule not in _SCHEDULES:
            raise ValidationError(f"schedule must be one of {_SCHEDULES}, got {schedule!r}")
        self.schedule = schedule
        self.seed = int(seed)
        self.spec = spec if spec is not None else MachineSpec()
        self.work = work if work is not None else WorkModel()
        self.steps = None if steps is None else check_positive_int("steps", steps)
        self.backend = backend
        self.cache = cache
        self.chunksize = chunksize

    # ------------------------------------------------------------------

    def contract_key(self, workload: Workload, index: int) -> str:
        """Cache key for contract ``index`` of a book priced by this config.

        Includes the master seed and the substream index — the price of a
        contract depends on *where in the book it sits* (substream ``i``),
        so only a true replay of the same slot may hit.
        """
        return stable_key({
            "contract": describe_workload(workload),
            # Unlike serve quotes, MCResult.meta carries the contract name,
            # so a hit must match it too.
            "name": workload.name,
            "technique": "plain",
            "n_paths": self.n_paths,
            "steps": self.steps,
            "seed": self.seed,
            "substream": index,
        })

    def _price_contracts(self, workloads: list[Workload]) -> list[MCResult]:
        """Value every contract (cache front, then inline or backend.map)."""
        from repro.engine.mc import _rank_task

        technique = PlainMC()
        master = Philox4x32(self.seed, stream=0xB00C)
        gens = master.spawn(len(workloads))

        results: list[MCResult | None] = [None] * len(workloads)
        miss = list(range(len(workloads)))
        keys: list[str] | None = None
        if self.cache is not None:
            keys = [self.contract_key(w, i) for i, w in enumerate(workloads)]
            miss = []
            for i in range(len(workloads)):
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                else:
                    miss.append(i)

        tasks = [
            (technique, workloads[i].model, workloads[i].payoff,
             workloads[i].expiry, self.n_paths, gens[i], self.steps, None)
            for i in miss
        ]
        if self.backend is not None:
            partials = self.backend.map(_rank_task, tasks,
                                        chunksize=self.chunksize)
        else:
            partials = [_rank_task(t) for t in tasks]
        for i, part in zip(miss, partials):
            price, stderr, n_eff = technique.finalize(part)
            res = MCResult(price=price, stderr=stderr, n_paths=n_eff,
                           technique="plain",
                           meta={"contract": workloads[i].name})
            results[i] = res
            if self.cache is not None and keys is not None:
                self.cache.put(keys[i], res)
        return results  # type: ignore[return-value]

    def contract_cost(self, workload: Workload) -> float:
        """Estimated work units to price one contract."""
        return self.n_paths * self.work.mc_path_units(workload.dim, self.steps)

    def _assign(self, costs: list[float], p: int) -> list[int]:
        """Contract → rank map under the configured schedule."""
        n = len(costs)
        if self.schedule == "block":
            owner = [0] * n
            for r, (lo, hi) in enumerate(block_partition(n, p)):
                for i in range(lo, hi):
                    owner[i] = r
            return owner
        if self.schedule == "cyclic":
            return [i % p for i in range(n)]
        if self.schedule == "dynamic":
            # Self-scheduling: arrival order, earliest-free rank wins. The
            # per-dispatch latency is charged in run().
            owner = [0] * n
            loads = [0.0] * p
            dispatch = self.spec.alpha / self.spec.flop_time  # in work units
            for i in range(n):
                r = int(np.argmin(loads))
                owner[i] = r
                loads[r] += costs[i] + dispatch
            return owner
        # LPT: sort by estimated cost descending, give each task to the
        # currently least-loaded rank.
        owner = [0] * n
        loads = [0.0] * p
        for i in sorted(range(n), key=lambda k: -costs[k]):
            r = int(np.argmin(loads))
            owner[i] = r
            loads[r] += costs[i]
        return owner

    def run(self, workloads: list[Workload], p: int) -> PortfolioRun:
        """Price the book on ``p`` simulated ranks."""
        p = check_positive_int("p", p)
        if not workloads:
            raise ValidationError("the portfolio must contain at least one contract")
        costs = [self.contract_cost(w) for w in workloads]
        owner = self._assign(costs, p)

        # Valuation (real wall-clock: cache front + optional backend.map) is
        # decoupled from the simulated schedule accounting below — prices
        # are bitwise invariant to backend/cache, makespans charge all work.
        results = self._price_contracts(workloads)

        cluster = SimulatedCluster(p, self.spec)
        for i in range(len(workloads)):
            if self.schedule == "dynamic":
                # One master→worker dispatch message per contract.
                cluster.delay(owner[i], self.spec.alpha, kind="comm")
            cluster.compute(owner[i], costs[i])
        # Collect the book value at rank 0: one tiny message per contract.
        cluster.reduce(16.0, root=0, topology="tree")

        per_rank = tuple(float(a.compute) for a in cluster.accounts)
        return PortfolioRun(
            results=tuple(results),
            p=p,
            schedule=self.schedule,
            sim_time=cluster.elapsed(),
            per_rank_times=per_rank,
            assignment=tuple(owner),
            meta={"n_contracts": len(workloads), "costs": costs},
        )
