"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so downstream users can catch one base class. Subclasses
partition failures by subsystem:

* :class:`ValidationError` — bad user input (shapes, signs, ranges).
* :class:`ModelError` — an internally inconsistent market model
  (e.g. a correlation matrix that is not positive semi-definite).
* :class:`ConvergenceError` — an iterative numerical routine failed to
  converge within its iteration budget (PSOR, isoefficiency solver, ...).
* :class:`PartitionError` — a work-partitioning request that cannot be
  satisfied (zero workers, negative work, ...).
* :class:`BackendError` — failures in a parallel execution backend.
* :class:`FaultError` — an injected or detected fault that the active
  failure policy could not (or was told not to) recover from.
* :class:`StabilityError` — a finite-difference scheme was configured
  outside its stability region.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ModelError",
    "ConvergenceError",
    "PartitionError",
    "BackendError",
    "FaultError",
    "StabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied arguments fail validation.

    Also derives from :class:`ValueError` so generic callers that guard
    with ``except ValueError`` keep working.
    """


class ModelError(ReproError):
    """Raised when a market model is internally inconsistent."""


class ConvergenceError(ReproError):
    """Raised when an iterative numerical method fails to converge."""

    def __init__(self, message: str, iterations: int | None = None, residual: float | None = None):
        super().__init__(message)
        #: Number of iterations performed before giving up, if known.
        self.iterations = iterations
        #: Final residual when iteration stopped, if known.
        self.residual = residual


class PartitionError(ReproError, ValueError):
    """Raised when a work-partitioning request is unsatisfiable."""


class BackendError(ReproError, RuntimeError):
    """Raised when a parallel execution backend fails."""


class FaultError(ReproError, RuntimeError):
    """Raised when a fault exceeds the active failure policy's budget.

    Under ``fail_fast`` any fault raises; under ``retry`` a rank whose
    retry budget is exhausted raises; under ``degrade`` losing *every*
    rank raises (there is nothing left to reprice with).
    """


class StabilityError(ReproError):
    """Raised when an explicit FD scheme is configured unstably.

    Carries the offending CFL-like number so callers can resize the grid.
    """

    def __init__(self, message: str, cfl: float | None = None):
        super().__init__(message)
        #: The stability number that exceeded its bound, if known.
        self.cfl = cfl
