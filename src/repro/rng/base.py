"""Uniform bit-source interface shared by all generators.

A :class:`BitGenerator` produces blocks of raw ``uint64`` words; uniforms and
Gaussians are derived views on those words. Implementations must be
*reproducible* (same seed → same stream) and *jumpable or splittable* so the
parallel engines can hand each rank a provably disjoint substream.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ValidationError

__all__ = ["BitGenerator"]

# 53-bit mantissa scaling: maps the top 53 bits of a uint64 to [0, 1).
_UNIFORM_SCALE = float(2.0 ** -53)


class BitGenerator(abc.ABC):
    """Abstract uniform random bit source.

    Subclasses implement :meth:`random_raw` (and optionally :meth:`jump` /
    :meth:`spawn`); uniform and Gaussian sampling are provided on top.
    """

    @abc.abstractmethod
    def random_raw(self, n: int) -> np.ndarray:
        """Return the next ``n`` raw ``uint64`` words of the stream."""

    @abc.abstractmethod
    def clone(self) -> "BitGenerator":
        """Return an independent copy at the current stream position."""

    def uniforms(self, n: int) -> np.ndarray:
        """Next ``n`` doubles uniform on ``[0, 1)`` (53-bit resolution)."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        raw = self.random_raw(n)
        return (raw >> np.uint64(11)).astype(np.float64) * _UNIFORM_SCALE

    def uniforms_open(self, n: int) -> np.ndarray:
        """Next ``n`` doubles uniform on the *open* interval ``(0, 1)``.

        Zero values (probability 2^-53 per draw) are nudged to half an ulp so
        inverse-CDF transforms never produce ``-inf``.
        """
        u = self.uniforms(n)
        tiny = 0.5 * _UNIFORM_SCALE
        np.maximum(u, tiny, out=u)
        return u

    def normals(self, n: int, method: str = "inverse") -> np.ndarray:
        """Next ``n`` standard Gaussian variates.

        ``method`` selects the transform: ``"inverse"`` (default; strictly one
        uniform per normal, the property QMC and leapfrog streams rely on),
        ``"boxmuller"`` or ``"polar"``.
        """
        from repro.rng import normal as _normal

        if method == "inverse":
            return _normal.normals_inverse(self, n)
        if method == "boxmuller":
            return _normal.normals_boxmuller(self, n)
        if method == "polar":
            return _normal.normals_polar(self, n)
        raise ValidationError(f"unknown normal sampling method {method!r}")

    def integers(self, n: int, high: int) -> np.ndarray:
        """Next ``n`` integers uniform on ``[0, high)`` via Lemire-style rejection."""
        if high <= 0:
            raise ValidationError(f"high must be positive, got {high}")
        if high == 1:
            return np.zeros(n, dtype=np.int64)
        # Rejection zone keeps the distribution exactly uniform. When high
        # divides 2^64 the zone is the whole range and no rejection happens.
        limit = (2**64 // high) * high
        reject = limit < 2**64
        out = np.empty(n, dtype=np.int64)
        filled = 0
        while filled < n:
            raw = self.random_raw(max(n - filled, 16))
            take = (raw[raw < np.uint64(limit)] if reject else raw)[: n - filled]
            out[filled : filled + take.size] = (take % np.uint64(high)).astype(np.int64)
            filled += take.size
        return out

    # Optional capabilities ------------------------------------------------

    def jump(self, steps: int) -> None:
        """Advance the stream by ``steps`` draws in O(log steps), if supported."""
        raise NotImplementedError(f"{type(self).__name__} does not support jump()")

    def spawn(self, n: int) -> list["BitGenerator"]:
        """Return ``n`` statistically independent child generators, if supported."""
        raise NotImplementedError(f"{type(self).__name__} does not support spawn()")
