"""Parallel substream construction.

The parallel Monte Carlo pricer must give every rank a stream that is
(a) reproducible independently of the number of ranks actually running, and
(b) provably non-overlapping with every other rank's stream. Three classical
schemes are provided (Coddington, "Random number generators for parallel
computers", 1997):

* **Block splitting** — rank ``r`` jumps ahead ``r · block_size`` draws.
  Requires a jumpable generator (:class:`Lcg64`, :class:`Philox4x32`).
* **Leapfrog** — rank ``r`` takes draws ``r, r+P, r+2P, ...``. Exact and
  cheap for the LCG (the leapfrogged LCG is itself an LCG).
* **Key splitting** — rank ``r`` gets an independently keyed generator.
  The natural scheme for counter-based generators (:class:`Philox4x32`).

``make_substreams`` is the façade used by :mod:`repro.core`.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.errors import ValidationError
from repro.rng.base import BitGenerator
from repro.rng.lcg import Lcg64

__all__ = ["StreamPartition", "make_substreams", "block_substream", "leapfrog_substream"]

#: Default block size for block splitting: far larger than any realistic
#: per-rank consumption, so blocks never collide.
DEFAULT_BLOCK = 1 << 44


class StreamPartition(enum.Enum):
    """How a master stream is divided among parallel ranks."""

    BLOCK = "block"
    LEAPFROG = "leapfrog"
    KEYED = "keyed"


def block_substream(master: BitGenerator, rank: int, block_size: int = DEFAULT_BLOCK) -> BitGenerator:
    """Clone ``master`` and jump it ahead ``rank · block_size`` draws."""
    if rank < 0:
        raise ValidationError(f"rank must be non-negative, got {rank}")
    if block_size <= 0:
        raise ValidationError(f"block_size must be positive, got {block_size}")
    sub = master.clone()
    sub.jump(rank * block_size)
    return sub


def leapfrog_substream(master: BitGenerator, rank: int, nranks: int) -> BitGenerator:
    """Rank ``r``'s leapfrog view (every ``nranks``-th draw starting at ``r``).

    Only the LCG supports constant-cost leapfrogging (the strided sequence is
    itself an LCG with composed constants); other generators raise.
    """
    if nranks <= 0:
        raise ValidationError(f"nranks must be positive, got {nranks}")
    if not 0 <= rank < nranks:
        raise ValidationError(f"rank must lie in [0, {nranks}), got {rank}")
    if isinstance(master, Lcg64):
        return master.leapfrog(rank, nranks)
    raise ValidationError(
        f"leapfrog substreams require an Lcg64 master, got {type(master).__name__}"
    )


def make_substreams(
    master: BitGenerator,
    nranks: int,
    scheme: StreamPartition | str = StreamPartition.KEYED,
    *,
    block_size: int = DEFAULT_BLOCK,
) -> list[BitGenerator]:
    """Build one substream per rank from a master generator.

    The result is deterministic given (master state, nranks, scheme): the
    same seed prices to the same value no matter which backend executes the
    ranks or in which order they run.
    """
    if nranks <= 0:
        raise ValidationError(f"nranks must be positive, got {nranks}")
    scheme = StreamPartition(scheme)
    if scheme is StreamPartition.BLOCK:
        return [block_substream(master, r, block_size) for r in range(nranks)]
    if scheme is StreamPartition.LEAPFROG:
        return [leapfrog_substream(master, r, nranks) for r in range(nranks)]
    if scheme is StreamPartition.KEYED:
        return master.spawn(nranks)
    raise ValidationError(f"unknown stream partition scheme {scheme!r}")


def streams_are_disjoint(consumptions: Sequence[int], block_size: int) -> bool:
    """True when per-rank draw counts all fit inside their blocks.

    A guard used by the engines when block splitting: if any rank would
    consume more draws than ``block_size``, adjacent blocks would overlap and
    results would silently correlate.
    """
    return all(0 <= c <= block_size for c in consumptions)
