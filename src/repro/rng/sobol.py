"""Sobol low-discrepancy sequences (quasi-Monte Carlo substrate).

Direction numbers follow the Joe–Kuo construction: dimension 1 is the van
der Corput sequence in base 2; higher dimensions are built from a primitive
polynomial over GF(2) plus initial direction integers ``m_k`` via the
recurrence

    m_k = 2 a_1 m_{k-1} ⊕ 2² a_2 m_{k-2} ⊕ ... ⊕ 2^{s} m_{k-s} ⊕ m_{k-s}.

Points are generated with the Antonov–Saleev Gray-code formulation, fully
vectorized: point ``k`` is the XOR of ``v_j`` over the set bits of
``gray(k) = k ⊕ (k >> 1)``, which costs 32 NumPy passes per batch regardless
of the batch size.

A random *digital shift* (XOR with a per-dimension random word) provides the
randomization used for QMC error estimation; it preserves the (t, s)-net
structure of the sequence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["SobolSequence", "SOBOL_MAX_DIM"]

_BITS = 32
_SCALE = float(2.0 ** -_BITS)

# Joe–Kuo "new-joe-kuo-6" initialisation for dimensions 2..21:
# (degree s, polynomial coefficient a, initial m values m_1..m_s).
_JOE_KUO: list[tuple[int, int, tuple[int, ...]]] = [
    (1, 0, (1,)),
    (2, 1, (1, 3)),
    (3, 1, (1, 3, 1)),
    (3, 2, (1, 1, 1)),
    (4, 1, (1, 1, 3, 3)),
    (4, 4, (1, 3, 5, 13)),
    (5, 2, (1, 1, 5, 5, 17)),
    (5, 4, (1, 1, 5, 5, 5)),
    (5, 7, (1, 1, 7, 11, 19)),
    (5, 11, (1, 1, 5, 1, 1)),
    (5, 13, (1, 1, 1, 3, 11)),
    (5, 14, (1, 3, 5, 5, 31)),
    (6, 1, (1, 3, 3, 9, 7, 49)),
    (6, 13, (1, 1, 1, 15, 21, 21)),
    (6, 16, (1, 3, 1, 13, 27, 49)),
    (6, 19, (1, 1, 1, 15, 7, 5)),
    (6, 22, (1, 3, 1, 15, 13, 25)),
    (6, 25, (1, 1, 5, 5, 19, 61)),
    (7, 1, (1, 3, 7, 11, 23, 15, 103)),
    (7, 4, (1, 3, 7, 13, 13, 15, 69)),
]

#: Largest supported dimensionality (dimension 1 + the Joe–Kuo table above).
SOBOL_MAX_DIM = 1 + len(_JOE_KUO)


def _direction_numbers(dim: int) -> np.ndarray:
    """Build the (dim, 32) table of direction numbers ``v_j`` (uint32-valued).

    ``v_j`` is stored left-justified in 32 bits: ``v_j = m_j << (32 - j)``.
    """
    v = np.zeros((dim, _BITS), dtype=np.uint64)
    # Dimension 0: van der Corput — m_j = 1 for all j.
    for j in range(_BITS):
        v[0, j] = np.uint64(1) << np.uint64(_BITS - 1 - j)
    for d in range(1, dim):
        s, a, m_init = _JOE_KUO[d - 1]
        m = list(m_init)
        for k in range(s, _BITS):
            # recurrence over GF(2)
            val = m[k - s] ^ (m[k - s] << s)
            for i in range(1, s):
                if (a >> (s - 1 - i)) & 1:
                    val ^= m[k - i] << i
            m.append(val)
        for j in range(_BITS):
            v[d, j] = np.uint64(m[j]) << np.uint64(_BITS - 1 - j)
    return v


class SobolSequence:
    """A ``dim``-dimensional Sobol sequence with optional digital-shift
    scrambling and O(1) skipping.

    Parameters
    ----------
    dim : int
        Number of coordinates per point (1 ≤ dim ≤ :data:`SOBOL_MAX_DIM`).
    scramble : bool
        Apply a random digital shift drawn from ``seed``.
    seed : int
        Seed for the scrambling words (ignored when ``scramble=False``).
    skip : int
        Index of the first point returned (supports block partitioning of
        one sequence across parallel ranks).

    Notes
    -----
    Point index 0 of the unscrambled sequence is the origin (all zeros);
    many applications skip it (``skip=1``) to avoid Φ⁻¹(0) = −∞. The
    :meth:`uniforms` accessor offsets outputs by half an ulp so values lie
    strictly inside (0, 1) either way.
    """

    def __init__(self, dim: int, *, scramble: bool = False, seed: int = 0, skip: int = 0):
        if dim < 1 or dim > SOBOL_MAX_DIM:
            raise ValidationError(
                f"Sobol dimension must lie in [1, {SOBOL_MAX_DIM}], got {dim}"
            )
        if skip < 0:
            raise ValidationError(f"skip must be non-negative, got {skip}")
        self.dim = int(dim)
        self._v = _direction_numbers(self.dim)
        self._index = int(skip)
        if scramble:
            from repro.rng.lcg import Lcg64

            shift_gen = Lcg64(seed)
            self._shift = shift_gen.random_raw(self.dim) >> np.uint64(64 - _BITS)
        else:
            self._shift = np.zeros(self.dim, dtype=np.uint64)

    # ------------------------------------------------------------------

    def _raw_points(self, start: int, n: int) -> np.ndarray:
        """Integer-valued Sobol points for indices [start, start+n) — (n, dim)."""
        idx = start + np.arange(n, dtype=np.uint64)
        gray = idx ^ (idx >> np.uint64(1))
        x = np.zeros((n, self.dim), dtype=np.uint64)
        for j in range(_BITS):
            sel = ((gray >> np.uint64(j)) & np.uint64(1)).astype(bool)
            if sel.any():
                x[sel] ^= self._v[:, j]
        x ^= self._shift
        return x

    def next(self, n: int) -> np.ndarray:
        """Return the next ``n`` points as an ``(n, dim)`` float array in (0, 1)."""
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        x = self._raw_points(self._index, n)
        self._index += n
        # +0.5 centers each point in its dyadic cell and keeps outputs off 0.
        return (x.astype(np.float64) + 0.5) * _SCALE

    def skip(self, n: int) -> None:
        """Advance the sequence position by ``n`` points (O(1))."""
        if n < 0:
            raise ValidationError(f"skip distance must be non-negative, got {n}")
        self._index += n

    @property
    def position(self) -> int:
        """Index of the next point to be generated."""
        return self._index

    def spawn_block(self, rank: int, block: int) -> "SobolSequence":
        """A view of the same sequence starting at ``position + rank·block``.

        Used by the parallel QMC pricer: rank ``r`` integrates points
        ``[r·block, (r+1)·block)`` of one common sequence, so the union over
        ranks is exactly the sequential point set.
        """
        if rank < 0 or block <= 0:
            raise ValidationError("rank must be ≥ 0 and block > 0")
        out = SobolSequence.__new__(SobolSequence)
        out.dim = self.dim
        out._v = self._v
        out._shift = self._shift
        out._index = self._index + rank * block
        return out
