"""64-bit linear congruential generator with O(log k) jump-ahead.

The LCG is the classical substrate for *deterministic* parallel substreams:
because the recurrence ``x' = a·x + c (mod 2^64)`` composes in closed form,
both **block splitting** (jump each rank ahead by a fixed block) and
**leapfrogging** (rank r takes every P-th draw) are exact O(log k) operations
(F. Brown, "Random number generation with arbitrary strides", 1994).

Raw LCG words have weak low bits, so the output is passed through a
stateless splitmix64-style finalizer; jumping operates on the underlying
state and is unaffected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.rng.base import BitGenerator

__all__ = ["Lcg64"]

_MASK64 = (1 << 64) - 1
#: Knuth's MMIX multiplier/increment.
_A = 6364136223846793005
_C = 1442695040888963407

# splitmix64 finalizer constants (stateless output scrambling).
_FIN1 = np.uint64(0xBF58476D1CE4E5B9)
_FIN2 = np.uint64(0x94D049BB133111EB)

#: Number of vector lanes used to amortize the Python-level recurrence.
_LANES = 256


def _splitmix64(x: int) -> int:
    """One splitmix64 step; used to diffuse user seeds."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _compose(a: int, c: int, k: int) -> tuple[int, int]:
    """Return ``(a^k mod 2^64, c·(a^k−1)/(a−1) mod 2^64)``.

    Computed by binary decomposition of ``k`` without any division
    (Brown's algorithm), so it works even though ``a−1`` is even.
    """
    if k < 0:
        raise ValidationError(f"jump distance must be non-negative, got {k}")
    a_out, c_out = 1, 0
    a_cur, c_cur = a, c
    while k:
        if k & 1:
            a_out = (a_out * a_cur) & _MASK64
            c_out = (c_out * a_cur + c_cur) & _MASK64
        c_cur = ((a_cur + 1) * c_cur) & _MASK64
        a_cur = (a_cur * a_cur) & _MASK64
        k >>= 1
    return a_out, c_out


def _finalize(state: np.ndarray) -> np.ndarray:
    """Apply the stateless splitmix64 output finalizer to an array of states."""
    z = state.copy()
    z ^= z >> np.uint64(30)
    z *= _FIN1
    z ^= z >> np.uint64(27)
    z *= _FIN2
    z ^= z >> np.uint64(31)
    return z


class Lcg64(BitGenerator):
    """MMIX 64-bit LCG with splitmix64 output finalization.

    Parameters
    ----------
    seed : int
        Any Python integer; it is diffused through splitmix64 so small or
        equal-low-bit seeds still give well-separated states.
    _a, _c : int, optional
        Internal: override the multiplier/increment. Used by
        :meth:`leapfrog` to build the stride-composed generator; not part of
        the public API.
    """

    def __init__(self, seed: int = 0, *, _a: int = _A, _c: int = _C, _state: int | None = None):
        self._a = _a
        self._c = _c
        self._state = _splitmix64(int(seed) & _MASK64) if _state is None else (_state & _MASK64)

    # -- BitGenerator interface -------------------------------------------

    def random_raw(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        lanes = min(_LANES, n)
        # Lane i holds state x_{i}; one vector step advances every lane by
        # `lanes`, so iteration j emits x_{j·lanes} .. x_{j·lanes+lanes−1}
        # in exact sequence order.
        lane_states = np.empty(lanes, dtype=np.uint64)
        s = self._state
        for i in range(lanes):
            lane_states[i] = s
            s = (self._a * s + self._c) & _MASK64
        a_l, c_l = _compose(self._a, self._c, lanes)
        a_vec = np.uint64(a_l)
        c_vec = np.uint64(c_l)

        steps = -(-n // lanes)  # ceil
        out = np.empty(steps * lanes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for j in range(steps):
                out[j * lanes : (j + 1) * lanes] = lane_states
                lane_states = lane_states * a_vec + c_vec
        # Advance the scalar state past the n draws actually consumed.
        self.jump(n)
        return _finalize(out[:n])

    def clone(self) -> "Lcg64":
        return Lcg64(_a=self._a, _c=self._c, _state=self._state)

    def jump(self, steps: int) -> None:
        a_k, c_k = _compose(self._a, self._c, steps)
        self._state = (a_k * self._state + c_k) & _MASK64

    def spawn(self, n: int) -> list["Lcg64"]:
        """Children are block-split 2^40 draws apart — disjoint for any
        realistic simulation length."""
        children = []
        for i in range(n):
            child = self.clone()
            child.jump((i + 1) << 40)
            children.append(child)
        return children

    # -- LCG-specific operations -------------------------------------------

    def leapfrog(self, rank: int, stride: int) -> "Lcg64":
        """Return the generator of every ``stride``-th draw, starting at ``rank``.

        The leapfrogged sequence of an LCG is itself an LCG with composed
        constants ``(a^stride, c·(a^stride−1)/(a−1))``, so each rank's
        substream costs the same per draw as the master stream.
        """
        if stride <= 0:
            raise ValidationError(f"stride must be positive, got {stride}")
        if not 0 <= rank < stride:
            raise ValidationError(f"rank must lie in [0, {stride}), got {rank}")
        a_r, c_r = _compose(self._a, self._c, rank)
        start = (a_r * self._state + c_r) & _MASK64
        a_s, c_s = _compose(self._a, self._c, stride)
        return Lcg64(_a=a_s, _c=c_s, _state=start)

    @property
    def state(self) -> int:
        """The raw 64-bit internal state (for checkpointing)."""
        return self._state
