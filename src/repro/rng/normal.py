"""Gaussian sampling transforms on top of a :class:`BitGenerator`.

Three classical transforms are provided:

* :func:`normals_inverse` — inverse-CDF. Consumes exactly one uniform per
  normal, preserving the low-discrepancy structure of QMC points and the
  alignment of leapfrogged substreams. This is the default everywhere.
* :func:`normals_boxmuller` — exact Box–Muller pairs (two uniforms → two
  normals).
* :func:`normals_polar` — Marsaglia's polar (rejection) method; consumes a
  *random* number of uniforms, so it must not be used with stream-splitting
  schemes that rely on fixed consumption — the engines only use it when
  explicitly requested.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.numerics import norm_ppf

__all__ = ["normals_inverse", "normals_boxmuller", "normals_polar"]


def normals_inverse(gen, n: int) -> np.ndarray:
    """``n`` standard normals via Φ⁻¹ of open-interval uniforms."""
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    u = gen.uniforms_open(n)
    return np.asarray(norm_ppf(u), dtype=float).reshape(n)


def normals_boxmuller(gen, n: int) -> np.ndarray:
    """``n`` standard normals via Box–Muller (pairs; one extra draw if odd)."""
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    m = (n + 1) // 2
    u1 = gen.uniforms_open(m)
    u2 = gen.uniforms(m)
    r = np.sqrt(-2.0 * np.log(u1))
    theta = 2.0 * np.pi * u2
    out = np.empty(2 * m, dtype=float)
    out[0::2] = r * np.cos(theta)
    out[1::2] = r * np.sin(theta)
    return out[:n]


def normals_polar(gen, n: int, *, max_rounds: int = 64) -> np.ndarray:
    """``n`` standard normals via Marsaglia's polar method.

    Vectorized rejection: each round draws a batch of candidate pairs and
    keeps those inside the unit disc (acceptance ≈ π/4).
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    out = np.empty(n, dtype=float)
    filled = 0
    for _ in range(max_rounds):
        if filled >= n:
            break
        need_pairs = max((n - filled + 1) // 2, 8)
        # Oversample by 1/(π/4) ≈ 1.27 to usually finish in one round.
        m = int(need_pairs * 1.4) + 8
        v1 = 2.0 * gen.uniforms(m) - 1.0
        v2 = 2.0 * gen.uniforms(m) - 1.0
        s = v1 * v1 + v2 * v2
        ok = (s > 0.0) & (s < 1.0)
        v1, v2, s = v1[ok], v2[ok], s[ok]
        factor = np.sqrt(-2.0 * np.log(s) / s)
        pair = np.empty(2 * v1.size, dtype=float)
        pair[0::2] = v1 * factor
        pair[1::2] = v2 * factor
        take = min(pair.size, n - filled)
        out[filled : filled + take] = pair[:take]
        filled += take
    if filled < n:  # pragma: no cover - astronomically unlikely
        raise ValidationError("polar method failed to fill the request")
    return out
