"""Halton low-discrepancy sequences — the second QMC family.

The Halton sequence uses the radical-inverse function in a distinct prime
base per dimension. Unscrambled Halton degrades badly in high dimensions
(strong correlation between large-prime coordinates), so a deterministic
**permuted** variant is provided as well, using per-base digit scrambles
derived from the library's own Philox generator. Benchmark T8 compares
plain MC / Halton / scrambled Halton / Sobol on the same integrand.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["HaltonSequence", "first_primes", "radical_inverse", "HALTON_MAX_DIM"]

#: Enough primes for 32 dimensions.
_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53,
    59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
)

HALTON_MAX_DIM = len(_PRIMES)


def first_primes(k: int) -> tuple[int, ...]:
    """The first ``k`` primes (k ≤ 32)."""
    if not 1 <= k <= HALTON_MAX_DIM:
        raise ValidationError(f"k must lie in [1, {HALTON_MAX_DIM}], got {k}")
    return _PRIMES[:k]


def radical_inverse(indices: np.ndarray, base: int,
                    permutation: np.ndarray | None = None) -> np.ndarray:
    """Vectorized radical inverse Φ_b(i): digit-reverse ``i`` in base ``b``.

    With ``permutation`` (a permutation of ``0..b−1`` fixing 0 is *not*
    required; the classic Faure/Owen scrambles permute all digits), each
    digit is remapped before reflection — the standard scrambled-Halton
    construction.
    """
    if base < 2:
        raise ValidationError(f"base must be ≥ 2, got {base}")
    idx = np.asarray(indices, dtype=np.int64).copy()
    if np.any(idx < 0):
        raise ValidationError("indices must be non-negative")
    out = np.zeros(idx.shape, dtype=float)
    factor = 1.0 / base
    if permutation is not None:
        perm = np.asarray(permutation, dtype=np.int64)
        if sorted(perm.tolist()) != list(range(base)):
            raise ValidationError("permutation must permute 0..base-1")
    while np.any(idx > 0):
        digits = idx % base
        if permutation is not None:
            digits = perm[digits]
        out += digits * factor
        idx //= base
        factor /= base
    return out


class HaltonSequence:
    """A ``dim``-dimensional (optionally scrambled) Halton sequence.

    Parameters
    ----------
    dim : 1 ≤ dim ≤ 32 (prime bases 2, 3, 5, ...).
    scramble : apply deterministic per-base digit permutations (recommended
        for dim ≳ 6).
    seed : seeds the scrambling permutations.
    skip : index of the first point returned (index 0 is the origin, so a
        positive skip — conventionally 1 or the first prime power — avoids
        the degenerate corner, mirroring :class:`SobolSequence`).
    """

    def __init__(self, dim: int, *, scramble: bool = False, seed: int = 0,
                 skip: int = 0):
        self.dim = check_positive_int("dim", dim)
        if self.dim > HALTON_MAX_DIM:
            raise ValidationError(
                f"Halton dimension must be ≤ {HALTON_MAX_DIM}, got {dim}"
            )
        if skip < 0:
            raise ValidationError(f"skip must be non-negative, got {skip}")
        self.bases = first_primes(self.dim)
        self._index = int(skip)
        self._perms: list[np.ndarray | None]
        if scramble:
            from repro.rng import Philox4x32

            gen = Philox4x32(seed, stream=0x4A17)
            perms = []
            for b in self.bases:
                # Fisher–Yates with library randomness, but keep 0 → 0 so
                # the point at index 0 stays at the origin (Faure-style
                # scrambles fixing zero preserve the net structure cleanly).
                perm = np.arange(b, dtype=np.int64)
                for i in range(b - 1, 1, -1):
                    j = 1 + int(gen.integers(1, i)[0])
                    perm[i], perm[j] = perm[j], perm[i]
                perms.append(perm)
            self._perms = perms
        else:
            self._perms = [None] * self.dim

    def next(self, n: int) -> np.ndarray:
        """Return the next ``n`` points, shape ``(n, dim)``, in ``[0, 1)``.

        A half-cell offset in the smallest base keeps coordinates strictly
        positive (as with Sobol), so Φ⁻¹ transforms never see 0.
        """
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        idx = self._index + np.arange(n, dtype=np.int64)
        out = np.empty((n, self.dim), dtype=float)
        for j, base in enumerate(self.bases):
            out[:, j] = radical_inverse(idx, base, self._perms[j])
        self._index += n
        # Nudge exact zeros (only the origin point) off the boundary.
        np.maximum(out, 1e-12, out=out)
        return out

    def skip(self, n: int) -> None:
        """Advance the sequence position by ``n`` points (O(1))."""
        if n < 0:
            raise ValidationError(f"skip distance must be non-negative, got {n}")
        self._index += n

    @property
    def position(self) -> int:
        return self._index
