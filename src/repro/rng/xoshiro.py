"""xoshiro256** — a modern 256-bit-state generator (Blackman & Vigna 2018).

Provided as the high-statistical-quality alternative to the LCG. The
implementation is lane-parallel: ``K`` independent lanes are placed 2^128
apart with the published jump polynomial and the output stream interleaves
them round-robin. This keeps bulk generation in NumPy (no per-draw Python
loop) while every lane retains xoshiro's full period guarantees. The
interleaved stream is deterministic for a given seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.rng.base import BitGenerator
from repro.rng.lcg import _splitmix64, _MASK64

__all__ = ["Xoshiro256StarStar"]

#: Published jump polynomial for a 2^128 jump.
_JUMP = (0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C)

_LANES = 64

_U5 = np.uint64(5)
_U7 = np.uint64(7)
_U9 = np.uint64(9)
_U17 = np.uint64(17)
_U45 = np.uint64(45)
_U57 = np.uint64(57)
_U19 = np.uint64(19)


def _rotl(x: np.ndarray, k: np.uint64) -> np.ndarray:
    return (x << k) | (x >> (np.uint64(64) - k))


def _rotl_int(x: int, k: int) -> int:
    return ((x << k) | (x >> (64 - k))) & _MASK64


def _next_scalar(s: list[int]) -> int:
    """One scalar xoshiro256** step (used only for seeding/jumping lanes)."""
    result = (_rotl_int((s[1] * 5) & _MASK64, 7) * 9) & _MASK64
    t = (s[1] << 17) & _MASK64
    s[2] ^= s[0]
    s[3] ^= s[1]
    s[1] ^= s[2]
    s[0] ^= s[3]
    s[2] ^= t
    s[3] = _rotl_int(s[3], 45)
    return result


def _jump_scalar(s: list[int]) -> None:
    """Advance a scalar state by 2^128 steps using the jump polynomial."""
    s0 = s1 = s2 = s3 = 0
    for word in _JUMP:
        for b in range(64):
            if (word >> b) & 1:
                s0 ^= s[0]
                s1 ^= s[1]
                s2 ^= s[2]
                s3 ^= s[3]
            _next_scalar(s)
    s[0], s[1], s[2], s[3] = s0, s1, s2, s3


class Xoshiro256StarStar(BitGenerator):
    """Lane-parallel xoshiro256**.

    Parameters
    ----------
    seed : int
        Diffused through splitmix64 to initialize lane 0; lanes 1..K−1 are
        2^128, 2·2^128, ... steps ahead, so lanes never overlap.
    """

    def __init__(self, seed: int = 0, *, _lanes: np.ndarray | None = None,
                 _buffer: np.ndarray | None = None):
        if _lanes is not None:
            self._s = _lanes.copy()
            self._buffer = (
                np.empty(0, dtype=np.uint64) if _buffer is None else _buffer.copy()
            )
            return
        x = int(seed) & _MASK64
        state = []
        for _ in range(4):
            x = _splitmix64(x)
            state.append(x)
        lanes = np.empty((4, _LANES), dtype=np.uint64)
        cur = list(state)
        for lane in range(_LANES):
            for j in range(4):
                lanes[j, lane] = cur[j]
            _jump_scalar(cur)
        self._s = lanes
        # Generated-but-undelivered words: lane steps produce _LANES draws at
        # a time, so the tail of a partial request is buffered to keep the
        # output stream contiguous across calls.
        self._buffer = np.empty(0, dtype=np.uint64)

    def random_raw(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        if self._buffer.size >= n:
            out, self._buffer = self._buffer[:n].copy(), self._buffer[n:]
            return out
        need = n - self._buffer.size
        s0, s1, s2, s3 = self._s[0], self._s[1], self._s[2], self._s[3]
        lanes = s0.shape[0]
        steps = -(-need // lanes)
        fresh = np.empty(steps * lanes, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for j in range(steps):
                fresh[j * lanes : (j + 1) * lanes] = _rotl(s1 * _U5, _U7) * _U9
                t = s1 << _U17
                s2 = s2 ^ s0
                s3 = s3 ^ s1
                s1 = s1 ^ s2
                s0 = s0 ^ s3
                s2 = s2 ^ t
                s3 = _rotl(s3, _U45)
        self._s[0], self._s[1], self._s[2], self._s[3] = s0, s1, s2, s3
        combined = np.concatenate([self._buffer, fresh])
        out, self._buffer = combined[:n], combined[n:]
        return out

    def clone(self) -> "Xoshiro256StarStar":
        return Xoshiro256StarStar(_lanes=self._s, _buffer=self._buffer)

    def spawn(self, n: int) -> list["Xoshiro256StarStar"]:
        """Children seeded by splitmix64 cascade — independent key-split streams."""
        base = int(self._s[0, 0])
        children = []
        for i in range(n):
            child_seed = _splitmix64((base + 0x9E3779B97F4A7C15 * (i + 1)) & _MASK64)
            children.append(Xoshiro256StarStar(child_seed))
        return children
