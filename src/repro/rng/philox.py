"""Philox-4x32-10 — a counter-based, splittable generator (Salmon et al.,
"Parallel random numbers: as easy as 1, 2, 3", SC'11).

Counter-based generators are the natural fit for parallel Monte Carlo: the
k-th random word is a pure function ``philox(key, k)``, so

* **jumping** is integer addition on the counter (exact, O(1)),
* **splitting** hands each rank its own key — streams are independent by
  construction, with no block-size guesswork.

The whole 10-round bijection is evaluated with vectorized uint32/uint64
NumPy arithmetic; there is no per-draw Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.rng.base import BitGenerator
from repro.rng.lcg import _splitmix64, _MASK64

__all__ = ["Philox4x32"]

_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)  # Weyl constants added to the key each round
_W1 = np.uint32(0xBB67AE85)
_ROUNDS = 10
_LO32 = np.uint64(0xFFFFFFFF)


def _philox_blocks(counters: np.ndarray, key0: np.uint32, key1: np.uint32) -> np.ndarray:
    """Apply the 10-round Philox-4x32 bijection to an (n, 4) uint32 counter array.

    Returns an (n, 4) uint32 array of random words.
    """
    x0 = counters[:, 0].astype(np.uint64)
    x1 = counters[:, 1].astype(np.uint64)
    x2 = counters[:, 2].astype(np.uint64)
    x3 = counters[:, 3].astype(np.uint64)
    k0 = np.uint64(key0)
    k1 = np.uint64(key1)
    w0 = np.uint64(_W0)
    w1 = np.uint64(_W1)
    with np.errstate(over="ignore"):
        for _ in range(_ROUNDS):
            p0 = _M0 * x0
            p1 = _M1 * x2
            hi0, lo0 = p0 >> np.uint64(32), p0 & _LO32
            hi1, lo1 = p1 >> np.uint64(32), p1 & _LO32
            y0 = (hi1 ^ x1 ^ k0) & _LO32
            y1 = lo1
            y2 = (hi0 ^ x3 ^ k1) & _LO32
            y3 = lo0
            x0, x1, x2, x3 = y0, y1, y2, y3
            k0 = (k0 + w0) & _LO32
            k1 = (k1 + w1) & _LO32
    out = np.empty((counters.shape[0], 4), dtype=np.uint32)
    out[:, 0] = x0.astype(np.uint32)
    out[:, 1] = x1.astype(np.uint32)
    out[:, 2] = x2.astype(np.uint32)
    out[:, 3] = x3.astype(np.uint32)
    return out


class Philox4x32(BitGenerator):
    """Philox-4x32-10 with a 128-bit block counter and 64-bit key.

    Each 128-bit block yields two ``uint64`` outputs. The generator tracks an
    absolute *raw-output index*, so :meth:`jump` is exact even across block
    boundaries.

    Parameters
    ----------
    seed : int
        Diffused into the 64-bit key via splitmix64.
    stream : int
        Optional extra stream discriminator mixed into the key; two
        generators with the same seed and different streams are independent.
    """

    def __init__(self, seed: int = 0, stream: int = 0, *, _key: tuple[int, int] | None = None,
                 _index: int = 0):
        if _key is not None:
            self._key0, self._key1 = np.uint32(_key[0]), np.uint32(_key[1])
        else:
            k = _splitmix64((int(seed) & _MASK64) ^ _splitmix64(int(stream) & _MASK64))
            self._key0 = np.uint32(k & 0xFFFFFFFF)
            self._key1 = np.uint32((k >> 32) & 0xFFFFFFFF)
        self._index = int(_index)  # absolute index of the next uint64 output

    def random_raw(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValidationError(f"n must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        first_block = self._index // 2
        last_block = (self._index + n - 1) // 2
        nblocks = last_block - first_block + 1
        # 128-bit counter laid out little-endian in four 32-bit words.
        blocks = first_block + np.arange(nblocks, dtype=np.uint64)
        counters = np.empty((nblocks, 4), dtype=np.uint32)
        counters[:, 0] = (blocks & _LO32).astype(np.uint32)
        counters[:, 1] = ((blocks >> np.uint64(32)) & _LO32).astype(np.uint32)
        counters[:, 2] = 0
        counters[:, 3] = 0
        words = _philox_blocks(counters, self._key0, self._key1)
        u64 = np.empty(nblocks * 2, dtype=np.uint64)
        u64[0::2] = (words[:, 0].astype(np.uint64) << np.uint64(32)) | words[:, 1].astype(np.uint64)
        u64[1::2] = (words[:, 2].astype(np.uint64) << np.uint64(32)) | words[:, 3].astype(np.uint64)
        offset = self._index - first_block * 2
        self._index += n
        return u64[offset : offset + n]

    def clone(self) -> "Philox4x32":
        return Philox4x32(_key=(int(self._key0), int(self._key1)), _index=self._index)

    def jump(self, steps: int) -> None:
        if steps < 0:
            raise ValidationError(f"jump distance must be non-negative, got {steps}")
        self._index += steps

    def spawn(self, n: int) -> list["Philox4x32"]:
        """Key-split children: child i re-keys with ``splitmix(key ⊕ i+1)``."""
        base = (int(self._key1) << 32) | int(self._key0)
        children = []
        for i in range(n):
            k = _splitmix64(base ^ _splitmix64(i + 1))
            children.append(
                Philox4x32(_key=(k & 0xFFFFFFFF, (k >> 32) & 0xFFFFFFFF))
            )
        return children

    @property
    def position(self) -> int:
        """Absolute index of the next raw output (for checkpointing)."""
        return self._index
