"""Random-number substrate.

Everything the parallel Monte Carlo engines need is implemented here from
scratch:

* :class:`~repro.rng.base.BitGenerator` — the uniform-bit-source interface.
* :class:`~repro.rng.lcg.Lcg64` — a 64-bit LCG with O(log k) jump-ahead,
  the classical substrate for leapfrog / block-splitting parallel streams.
* :class:`~repro.rng.xoshiro.Xoshiro256StarStar` — a modern small-state
  generator with a 2^128 jump polynomial.
* :class:`~repro.rng.philox.Philox4x32` — a counter-based (splittable)
  generator: each parallel rank gets an independent key, no jumping needed.
* :mod:`~repro.rng.normal` — Box–Muller, polar and inverse-CDF Gaussian
  transforms.
* :class:`~repro.rng.sobol.SobolSequence` — a Sobol quasi-random sequence
  (Joe–Kuo direction numbers) with optional digital-shift scrambling.
* :mod:`~repro.rng.streams` — rank→substream factories (block splitting,
  leapfrog, key splitting) used by the parallel pricers.
"""

from repro.rng.base import BitGenerator
from repro.rng.lcg import Lcg64
from repro.rng.xoshiro import Xoshiro256StarStar
from repro.rng.philox import Philox4x32
from repro.rng.normal import normals_boxmuller, normals_inverse, normals_polar
from repro.rng.sobol import SobolSequence, SOBOL_MAX_DIM
from repro.rng.halton import HaltonSequence, HALTON_MAX_DIM
from repro.rng.streams import (
    StreamPartition,
    make_substreams,
    block_substream,
    leapfrog_substream,
)

__all__ = [
    "BitGenerator",
    "Lcg64",
    "Xoshiro256StarStar",
    "Philox4x32",
    "normals_boxmuller",
    "normals_inverse",
    "normals_polar",
    "SobolSequence",
    "SOBOL_MAX_DIM",
    "HaltonSequence",
    "HALTON_MAX_DIM",
    "StreamPartition",
    "make_substreams",
    "block_substream",
    "leapfrog_substream",
]
