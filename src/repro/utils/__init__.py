"""Shared utilities: argument validation, small numerics, table formatting."""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
    check_positive_int,
    check_correlation_matrix,
    check_1d_lengths,
)
from repro.utils.numerics import (
    norm_cdf,
    norm_pdf,
    norm_ppf,
    solve_tridiagonal,
    nearest_psd,
    relative_error,
    rmse,
    geometric_mean,
)
from repro.utils.formatting import format_table, format_series, Table

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_positive_int",
    "check_correlation_matrix",
    "check_1d_lengths",
    "norm_cdf",
    "norm_pdf",
    "norm_ppf",
    "solve_tridiagonal",
    "nearest_psd",
    "relative_error",
    "rmse",
    "geometric_mean",
    "format_table",
    "format_series",
    "Table",
]
