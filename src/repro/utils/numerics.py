"""Small numerical kernels shared across the library.

These are deliberately self-contained (normal distribution functions, the
Thomas tridiagonal solver, a nearest-PSD repair) so the pricing engines do not
depend on any closed-source numerics: everything the paper's algorithms need
is implemented here or in the engine packages.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "norm_cdf",
    "norm_pdf",
    "norm_ppf",
    "solve_tridiagonal",
    "nearest_psd",
    "relative_error",
    "rmse",
    "geometric_mean",
]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def norm_pdf(x):
    """Standard normal density, vectorized over ``x``."""
    x = np.asarray(x, dtype=float)
    out = _INV_SQRT_2PI * np.exp(-0.5 * x * x)
    return float(out) if out.ndim == 0 else out


def norm_cdf(x):
    """Standard normal CDF ``Φ(x)``, vectorized, via the error function."""
    x = np.asarray(x, dtype=float)
    try:  # scipy's vectorized erf when available (it is a declared dependency)
        from scipy.special import erf as _erf

        out = 0.5 * (1.0 + _erf(x / _SQRT2))
    except Exception:  # pragma: no cover - scipy is installed in CI
        out = 0.5 * (1.0 + np.vectorize(math.erf)(x / _SQRT2))
    return float(out) if np.ndim(out) == 0 else out


# Beasley–Springer–Moro coefficients for the inverse normal CDF.
_BSM_A = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
          1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
_BSM_B = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
          6.680131188771972e01, -1.328068155288572e01)
_BSM_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
          -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
_BSM_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
          3.754408661907416e00)
_BSM_PLOW = 0.02425


def _ppf_scalar(p: float) -> float:
    """Acklam/BSM rational approximation of ``Φ⁻¹(p)`` with one Halley step."""
    if p <= 0.0:
        return -math.inf
    if p >= 1.0:
        return math.inf
    if p < _BSM_PLOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((_BSM_C[0] * q + _BSM_C[1]) * q + _BSM_C[2]) * q + _BSM_C[3]) * q
              + _BSM_C[4]) * q + _BSM_C[5]) / \
            ((((_BSM_D[0] * q + _BSM_D[1]) * q + _BSM_D[2]) * q + _BSM_D[3]) * q + 1.0)
    elif p <= 1.0 - _BSM_PLOW:
        q = p - 0.5
        r = q * q
        x = (((((_BSM_A[0] * r + _BSM_A[1]) * r + _BSM_A[2]) * r + _BSM_A[3]) * r
              + _BSM_A[4]) * r + _BSM_A[5]) * q / \
            (((((_BSM_B[0] * r + _BSM_B[1]) * r + _BSM_B[2]) * r + _BSM_B[3]) * r
              + _BSM_B[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((_BSM_C[0] * q + _BSM_C[1]) * q + _BSM_C[2]) * q + _BSM_C[3]) * q
               + _BSM_C[4]) * q + _BSM_C[5]) / \
            ((((_BSM_D[0] * q + _BSM_D[1]) * q + _BSM_D[2]) * q + _BSM_D[3]) * q + 1.0)
    # One Halley refinement using the exact CDF brings the error to ~1e-15.
    e = 0.5 * math.erfc(-x / _SQRT2) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


_ppf_vec = np.vectorize(_ppf_scalar, otypes=[float])


def norm_ppf(p):
    """Inverse standard normal CDF ``Φ⁻¹(p)``, vectorized.

    The reference implementation is the Beasley–Springer–Moro / Acklam
    rational approximation refined with a Halley step (accurate to machine
    precision across ``(0, 1)``; see :func:`norm_ppf_reference`). For bulk
    arrays the vectorized ``scipy.special.ndtri`` is used — the two agree to
    ~1e-15 (asserted in the test suite). This is the map that turns Sobol
    points into Gaussian variates.
    """
    arr = np.asarray(p, dtype=float)
    if np.any((arr < 0.0) | (arr > 1.0)):
        raise ValidationError("norm_ppf requires probabilities in [0, 1]")
    try:
        from scipy.special import ndtri as _ndtri

        out = _ndtri(arr)
    except Exception:  # pragma: no cover - scipy is installed in CI
        out = _ppf_vec(arr)
    return float(out) if np.ndim(out) == 0 else out


def norm_ppf_reference(p):
    """Self-contained Φ⁻¹ (BSM/Acklam + Halley step); oracle for norm_ppf."""
    arr = np.asarray(p, dtype=float)
    if np.any((arr < 0.0) | (arr > 1.0)):
        raise ValidationError("norm_ppf requires probabilities in [0, 1]")
    out = _ppf_vec(arr)
    return float(out) if out.ndim == 0 else out


def solve_tridiagonal(lower, diag, upper, rhs):
    """Solve a tridiagonal system with the Thomas algorithm.

    Parameters
    ----------
    lower : array of length n (``lower[0]`` ignored) — sub-diagonal.
    diag : array of length n — main diagonal.
    upper : array of length n (``upper[-1]`` ignored) — super-diagonal.
    rhs : array of length n, or (n, k) for multiple right-hand sides.

    Returns the solution with the same trailing shape as ``rhs``.
    The Thomas algorithm is O(n) and is the building block of the implicit
    and Crank–Nicolson FD schemes and of each ADI half-step.
    """
    a = np.asarray(lower, dtype=float)
    b = np.asarray(diag, dtype=float).copy()
    c = np.asarray(upper, dtype=float)
    d = np.asarray(rhs, dtype=float).copy()
    n = b.shape[0]
    if a.shape[0] != n or c.shape[0] != n or d.shape[0] != n:
        raise ValidationError("tridiagonal bands and rhs must share their first dimension")
    if n == 0:
        return d
    if np.any(b == 0.0):
        # zero pivot on the raw diagonal is almost always a setup bug
        raise ValidationError("tridiagonal solver encountered a zero diagonal entry")
    # Forward sweep.
    for i in range(1, n):
        w = a[i] / b[i - 1]
        b[i] = b[i] - w * c[i - 1]
        if b[i] == 0.0:
            raise ValidationError("tridiagonal solver encountered a zero pivot")
        d[i] = d[i] - w * d[i - 1]
    # Back substitution.
    d[n - 1] = d[n - 1] / b[n - 1]
    for i in range(n - 2, -1, -1):
        d[i] = (d[i] - c[i] * d[i + 1]) / b[i]
    return d


def nearest_psd(matrix: np.ndarray, *, unit_diagonal: bool = True) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone (Higham-style, one shot).

    Eigenvalues are clipped at zero and, when ``unit_diagonal`` is set, the
    result is rescaled back to a correlation matrix. Used to repair
    empirically estimated correlation matrices before Cholesky factorization.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValidationError(f"nearest_psd requires a square matrix, got shape {m.shape}")
    sym = 0.5 * (m + m.T)
    vals, vecs = np.linalg.eigh(sym)
    vals = np.clip(vals, 0.0, None)
    out = (vecs * vals) @ vecs.T
    if unit_diagonal:
        d = np.sqrt(np.clip(np.diag(out), 1e-300, None))
        out = out / np.outer(d, d)
        np.fill_diagonal(out, 1.0)
    return 0.5 * (out + out.T)


def relative_error(approx: float, exact: float) -> float:
    """``|approx - exact| / max(|exact|, eps)`` — scale-free accuracy metric."""
    denom = max(abs(float(exact)), np.finfo(float).tiny)
    return abs(float(approx) - float(exact)) / denom


def rmse(approx, exact) -> float:
    """Root-mean-square error between two arrays (broadcast-compatible)."""
    a = np.asarray(approx, dtype=float)
    e = np.asarray(exact, dtype=float)
    return float(np.sqrt(np.mean((a - e) ** 2)))


def geometric_mean(values) -> float:
    """Geometric mean of positive values; raises on non-positive input."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValidationError("geometric_mean requires at least one value")
    if np.any(arr <= 0.0):
        raise ValidationError("geometric_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
