"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print paper-style tables (T1..T7) and figure series
(F1..F9) as aligned ASCII so they can be diffed and recorded in
EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Table", "format_table", "format_series"]


def _fmt_cell(value, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


@dataclass
class Table:
    """An incrementally built ASCII table.

    Example
    -------
    >>> t = Table(["P", "T(P) [s]", "speedup"], title="MC scaling")
    >>> t.add_row([1, 1.0, 1.0])
    >>> t.add_row([2, 0.52, 1.92])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str | None = None
    floatfmt: str = ".4g"
    rows: list[list] = field(default_factory=list)

    def add_row(self, row: Iterable) -> None:
        row = list(row)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        cells = [[_fmt_cell(v, self.floatfmt) for v in row] for row in self.rows]
        headers = [str(h) for h in self.headers]
        widths = [
            max(len(headers[j]), *(len(r[j]) for r in cells)) if cells else len(headers[j])
            for j in range(len(headers))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append(sep)
        for r in cells:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_table(headers: Sequence[str], rows: Iterable[Iterable], *,
                 title: str | None = None, floatfmt: str = ".4g") -> str:
    """One-shot table rendering; see :class:`Table`."""
    t = Table(list(headers), title=title, floatfmt=floatfmt)
    for row in rows:
        t.add_row(row)
    return t.render()


def format_series(name: str, xs: Sequence, ys: Sequence, *,
                  xlabel: str = "x", ylabel: str = "y", floatfmt: str = ".4g") -> str:
    """Render a figure series as a two-column table (one per plotted curve)."""
    if len(xs) != len(ys):
        raise ValueError("series xs and ys must have equal length")
    return format_table([xlabel, ylabel], zip(xs, ys), title=name, floatfmt=floatfmt)
