"""Argument-validation helpers.

All pricing entry points validate their inputs through these helpers so that
misuse fails fast with a :class:`repro.errors.ValidationError` naming the
offending parameter, rather than propagating NaNs through a simulation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_positive_int",
    "check_correlation_matrix",
    "check_1d_lengths",
]


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive and finite, else raise."""
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return v


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if non-negative and finite, else raise."""
    v = float(value)
    if not np.isfinite(v) or v < 0.0:
        raise ValidationError(f"{name} must be a finite non-negative number, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if in the closed unit interval, else raise."""
    v = float(value)
    if not np.isfinite(v) or v < 0.0 or v > 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies in ``[lo, hi]`` (or ``(lo, hi)``), else raise."""
    v = float(value)
    ok = (lo <= v <= hi) if inclusive else (lo < v < hi)
    if not np.isfinite(v) or not ok:
        brackets = "[]" if inclusive else "()"
        raise ValidationError(
            f"{name} must lie in {brackets[0]}{lo}, {hi}{brackets[1]}, got {value!r}"
        )
    return v


def check_positive_int(name: str, value: int) -> int:
    """Return ``value`` as int if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    v = int(value)
    if v <= 0:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return v


def check_correlation_matrix(
    name: str,
    matrix: np.ndarray,
    *,
    atol: float = 1e-8,
    require_psd: bool = True,
) -> np.ndarray:
    """Validate a correlation matrix and return it as a float ndarray.

    Checks: square, symmetric, unit diagonal, entries in [-1, 1], and
    (optionally) positive semi-definiteness via an eigenvalue bound.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {m.shape}")
    if not np.all(np.isfinite(m)):
        raise ValidationError(f"{name} contains non-finite entries")
    if not np.allclose(m, m.T, atol=atol):
        raise ValidationError(f"{name} must be symmetric")
    if not np.allclose(np.diag(m), 1.0, atol=atol):
        raise ValidationError(f"{name} must have a unit diagonal")
    if np.any(np.abs(m) > 1.0 + atol):
        raise ValidationError(f"{name} entries must lie in [-1, 1]")
    if require_psd:
        eigmin = float(np.linalg.eigvalsh(m).min())
        if eigmin < -1e-8:
            raise ValidationError(
                f"{name} is not positive semi-definite (min eigenvalue {eigmin:.3e}); "
                "repair it with repro.utils.nearest_psd first"
            )
    return m


def check_1d_lengths(expected: int, **arrays: Sequence[float]) -> dict[str, np.ndarray]:
    """Coerce keyword arrays to 1-D float ndarrays of length ``expected``.

    Scalars broadcast to the expected length. Returns a dict keyed by the
    original keyword names.
    """
    out: dict[str, np.ndarray] = {}
    for name, value in arrays.items():
        arr = np.atleast_1d(np.asarray(value, dtype=float))
        if arr.ndim != 1:
            raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
        if arr.size == 1 and expected > 1:
            arr = np.full(expected, float(arr[0]))
        if arr.size != expected:
            raise ValidationError(
                f"{name} must have length {expected}, got length {arr.size}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError(f"{name} contains non-finite entries")
        out[name] = arr
    return out
