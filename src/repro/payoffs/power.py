"""Power options: payoff on ``S^p`` (leveraged exposure).

``S^p`` of a lognormal is again lognormal, so the closed form
(:mod:`repro.analytic.power`) is exact — a useful extra baseline exercising
payoff nonlinearity beyond vanilla kinks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive

__all__ = ["PowerCall", "PowerPut"]


class _Power(Payoff):
    def __init__(self, strike: float, power: float, *, asset: int = 0,
                 dim: int | None = None):
        self.strike = check_positive("strike", strike)
        self.power = check_positive("power", power)
        self.asset = int(asset)
        self.dim = int(dim) if dim is not None else self.asset + 1
        if not 0 <= self.asset < self.dim:
            raise ValidationError(f"asset index {self.asset} out of range for dim={self.dim}")

    def _powered(self, prices: np.ndarray) -> np.ndarray:
        s = self._check_prices(prices)[:, self.asset]
        if np.any(s < 0):
            raise ValidationError("power payoffs require non-negative prices")
        return s**self.power


class PowerCall(_Power):
    """``max(S^p − K, 0)``."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self._powered(prices) - self.strike, 0.0)


class PowerPut(_Power):
    """``max(K − S^p, 0)``."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self.strike - self._powered(prices), 0.0)
