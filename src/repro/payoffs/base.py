"""Payoff interface.

A :class:`Payoff` is a pure function of market observables plus metadata the
engines need: the number of underlyings ``dim`` and whether the contract is
path-dependent (in which case Monte Carlo must simulate full monitoring
paths, and the lattice/PDE engines will refuse it unless they support the
specific structure).
"""

from __future__ import annotations

import abc
import enum

import numpy as np

from repro.errors import ValidationError

__all__ = ["Payoff", "ExerciseStyle"]


class ExerciseStyle(enum.Enum):
    """When the holder may exercise."""

    EUROPEAN = "european"
    AMERICAN = "american"
    BERMUDAN = "bermudan"


class Payoff(abc.ABC):
    """Abstract payoff on ``dim`` underlyings.

    Subclasses implement :meth:`terminal`; path-dependent contracts override
    :meth:`path` as well and set ``is_path_dependent = True``.
    """

    #: Number of underlying assets the payoff reads.
    dim: int = 1
    #: Whether the payoff needs the whole monitoring path.
    is_path_dependent: bool = False

    @abc.abstractmethod
    def terminal(self, prices: np.ndarray) -> np.ndarray:
        """Payoff from terminal prices.

        Parameters
        ----------
        prices : (n, dim) array of terminal prices.

        Returns
        -------
        (n,) array of payoffs.
        """

    def path(self, paths: np.ndarray) -> np.ndarray:
        """Payoff from full paths ``(n, m+1, dim)`` (includes ``t = 0``).

        The default delegates to :meth:`terminal` on the last time slice,
        which is correct for every non-path-dependent contract.
        """
        paths = self._check_paths(paths)
        return self.terminal(paths[:, -1, :])

    def intrinsic(self, prices: np.ndarray) -> np.ndarray:
        """Immediate-exercise value at intermediate times.

        For most contracts this equals :meth:`terminal`; it is what the
        lattice and LSMC engines compare continuation values against for
        American exercise.
        """
        return self.terminal(prices)

    # -- helpers -----------------------------------------------------------

    def _check_prices(self, prices: np.ndarray) -> np.ndarray:
        arr = np.asarray(prices, dtype=float)
        if arr.ndim == 1:
            arr = arr[None, :] if self.dim > 1 else arr[:, None]
        if arr.ndim != 2 or arr.shape[1] != self.dim:
            raise ValidationError(
                f"{type(self).__name__} expects prices of shape (n, {self.dim}), "
                f"got {np.asarray(prices).shape}"
            )
        return arr

    def _check_paths(self, paths: np.ndarray) -> np.ndarray:
        arr = np.asarray(paths, dtype=float)
        if arr.ndim != 3 or arr.shape[2] != self.dim:
            raise ValidationError(
                f"{type(self).__name__} expects paths of shape (n, m+1, {self.dim}), "
                f"got {arr.shape}"
            )
        if arr.shape[1] < 2:
            raise ValidationError("paths must contain at least t=0 and one monitoring date")
        return arr

    def __call__(self, prices_or_paths: np.ndarray) -> np.ndarray:
        """Dispatch on array rank: 2-D → terminal, 3-D → path."""
        arr = np.asarray(prices_or_paths, dtype=float)
        if arr.ndim == 3:
            return self.path(arr)
        return self.terminal(arr)

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"
