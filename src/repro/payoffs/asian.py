"""Asian (average-price) payoffs with discrete monitoring.

The average is taken over the ``m`` monitoring dates *after* t = 0, i.e.
over ``paths[:, 1:, asset]``. The geometric version has a closed form under
GBM with discrete monitoring (see :mod:`repro.analytic.asian`), making it
the accuracy baseline and control variate for the arithmetic version.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive

__all__ = [
    "AsianArithmeticCall",
    "AsianArithmeticPut",
    "AsianGeometricCall",
    "AsianGeometricPut",
]


class _Asian(Payoff):
    is_path_dependent = True

    def __init__(self, strike: float, *, asset: int = 0, dim: int | None = None):
        self.strike = check_positive("strike", strike)
        self.asset = int(asset)
        self.dim = int(dim) if dim is not None else self.asset + 1
        if not 0 <= self.asset < self.dim:
            raise ValidationError(f"asset index {self.asset} out of range for dim={self.dim}")

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        raise ValidationError(
            f"{type(self).__name__} is path-dependent; price it with full paths"
        )

    def _monitored(self, paths: np.ndarray) -> np.ndarray:
        return self._check_paths(paths)[:, 1:, self.asset]


class AsianArithmeticCall(_Asian):
    """``max(mean(S_t) − K, 0)`` over the monitoring dates."""

    def path(self, paths: np.ndarray) -> np.ndarray:
        avg = self._monitored(paths).mean(axis=1)
        return np.maximum(avg - self.strike, 0.0)


class AsianArithmeticPut(_Asian):
    """``max(K − mean(S_t), 0)``."""

    def path(self, paths: np.ndarray) -> np.ndarray:
        avg = self._monitored(paths).mean(axis=1)
        return np.maximum(self.strike - avg, 0.0)


class AsianGeometricCall(_Asian):
    """``max(geomean(S_t) − K, 0)`` — exact closed form under GBM."""

    def path(self, paths: np.ndarray) -> np.ndarray:
        s = self._monitored(paths)
        if np.any(s <= 0):
            raise ValidationError("geometric Asian requires strictly positive prices")
        gavg = np.exp(np.log(s).mean(axis=1))
        return np.maximum(gavg - self.strike, 0.0)


class AsianGeometricPut(_Asian):
    """``max(K − geomean(S_t), 0)``."""

    def path(self, paths: np.ndarray) -> np.ndarray:
        s = self._monitored(paths)
        if np.any(s <= 0):
            raise ValidationError("geometric Asian requires strictly positive prices")
        gavg = np.exp(np.log(s).mean(axis=1))
        return np.maximum(self.strike - gavg, 0.0)
