"""Single-asset vanilla payoffs."""

from __future__ import annotations

import numpy as np

from repro.payoffs.base import Payoff
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["Call", "Put", "DigitalCall", "DigitalPut", "Straddle", "Forward"]


class _SingleAsset(Payoff):
    """Base for payoffs reading one column of a multi-asset price block."""

    def __init__(self, *, asset: int = 0, dim: int | None = None):
        self.asset = int(asset)
        self.dim = int(dim) if dim is not None else self.asset + 1
        if not 0 <= self.asset < self.dim:
            from repro.errors import ValidationError

            raise ValidationError(
                f"asset index {self.asset} out of range for dim={self.dim}"
            )

    def _col(self, prices: np.ndarray) -> np.ndarray:
        return self._check_prices(prices)[:, self.asset]


class Call(_SingleAsset):
    """European call: ``max(S − K, 0)``."""

    def __init__(self, strike: float, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self._col(prices) - self.strike, 0.0)


class Put(_SingleAsset):
    """European put: ``max(K − S, 0)``."""

    def __init__(self, strike: float, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self.strike - self._col(prices), 0.0)


class DigitalCall(_SingleAsset):
    """Cash-or-nothing call: pays ``cash`` when ``S > K``."""

    def __init__(self, strike: float, cash: float = 1.0, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)
        self.cash = check_non_negative("cash", cash)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.where(self._col(prices) > self.strike, self.cash, 0.0)


class DigitalPut(_SingleAsset):
    """Cash-or-nothing put: pays ``cash`` when ``S < K``."""

    def __init__(self, strike: float, cash: float = 1.0, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)
        self.cash = check_non_negative("cash", cash)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.where(self._col(prices) < self.strike, self.cash, 0.0)


class Straddle(_SingleAsset):
    """Call + put at the same strike: ``|S − K|``."""

    def __init__(self, strike: float, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.abs(self._col(prices) - self.strike)


class Forward(_SingleAsset):
    """Linear forward payoff ``S − K`` (can be negative; useful as a control
    variate because its expectation is known in closed form)."""

    def __init__(self, strike: float = 0.0, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_non_negative("strike", strike)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return self._col(prices) - self.strike
