"""Single-barrier options with discrete monitoring.

All eight knock types are expressed by two flags: barrier *direction*
(``up``/``down``) and *knock* (``in``/``out``), on a call or put. The
barrier is monitored at the path's discrete dates (including t = 0, matching
how a discretely monitored contract would observe the fixing at inception).
Continuous-monitoring closed forms (Reiner–Rubinstein) live in
:mod:`repro.analytic.barrier`; discrete monitoring converges to them as the
monitoring frequency grows (up to the well-known Broadie–Glasserman–Kou
barrier-shift effect, which the tests account for with tolerance).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.payoffs.base import Payoff
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["BarrierOption"]

_KINDS = ("up-and-out", "up-and-in", "down-and-out", "down-and-in")
_OPTIONS = ("call", "put")


class BarrierOption(Payoff):
    """A discretely monitored single-barrier option.

    Parameters
    ----------
    kind : one of ``"up-and-out"``, ``"up-and-in"``, ``"down-and-out"``,
        ``"down-and-in"``.
    option : ``"call"`` or ``"put"``.
    strike, barrier : positive levels. ``up`` barriers must start above the
        spot path to be meaningful, but that is the caller's modelling
        choice and is not enforced here.
    rebate : cash paid when an *out* option knocks out (at expiry,
        undiscounted within the payoff) or an *in* option fails to knock in.
    """

    is_path_dependent = True

    def __init__(
        self,
        kind: str,
        option: str,
        strike: float,
        barrier: float,
        *,
        rebate: float = 0.0,
        asset: int = 0,
        dim: int | None = None,
    ):
        if kind not in _KINDS:
            raise ValidationError(f"kind must be one of {_KINDS}, got {kind!r}")
        if option not in _OPTIONS:
            raise ValidationError(f"option must be one of {_OPTIONS}, got {option!r}")
        self.kind = kind
        self.option = option
        self.strike = check_positive("strike", strike)
        self.barrier = check_positive("barrier", barrier)
        self.rebate = check_non_negative("rebate", rebate)
        self.asset = int(asset)
        self.dim = int(dim) if dim is not None else self.asset + 1
        if not 0 <= self.asset < self.dim:
            raise ValidationError(f"asset index {self.asset} out of range for dim={self.dim}")

    @property
    def direction(self) -> str:
        """``"up"`` or ``"down"``."""
        return self.kind.split("-")[0]

    @property
    def knock(self) -> str:
        """``"in"`` or ``"out"``."""
        return self.kind.split("-")[-1]

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        raise ValidationError("BarrierOption is path-dependent; price it with full paths")

    def _vanilla(self, s_term: np.ndarray) -> np.ndarray:
        if self.option == "call":
            return np.maximum(s_term - self.strike, 0.0)
        return np.maximum(self.strike - s_term, 0.0)

    def path(self, paths: np.ndarray) -> np.ndarray:
        p = self._check_paths(paths)[:, :, self.asset]
        if self.direction == "up":
            hit = (p >= self.barrier).any(axis=1)
        else:
            hit = (p <= self.barrier).any(axis=1)
        vanilla = self._vanilla(p[:, -1])
        if self.knock == "out":
            return np.where(hit, self.rebate, vanilla)
        return np.where(hit, vanilla, self.rebate)
