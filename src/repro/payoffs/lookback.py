"""Lookback payoffs with discrete monitoring (extrema include t = 0)."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive

__all__ = [
    "FloatingStrikeLookbackCall",
    "FloatingStrikeLookbackPut",
    "FixedStrikeLookbackCall",
    "FixedStrikeLookbackPut",
]


class _Lookback(Payoff):
    is_path_dependent = True

    def __init__(self, *, asset: int = 0, dim: int | None = None):
        self.asset = int(asset)
        self.dim = int(dim) if dim is not None else self.asset + 1
        if not 0 <= self.asset < self.dim:
            raise ValidationError(f"asset index {self.asset} out of range for dim={self.dim}")

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        raise ValidationError(
            f"{type(self).__name__} is path-dependent; price it with full paths"
        )

    def _series(self, paths: np.ndarray) -> np.ndarray:
        return self._check_paths(paths)[:, :, self.asset]


class FloatingStrikeLookbackCall(_Lookback):
    """``S_T − min_t S_t`` — always non-negative by construction."""

    def path(self, paths: np.ndarray) -> np.ndarray:
        s = self._series(paths)
        return s[:, -1] - s.min(axis=1)


class FloatingStrikeLookbackPut(_Lookback):
    """``max_t S_t − S_T``."""

    def path(self, paths: np.ndarray) -> np.ndarray:
        s = self._series(paths)
        return s.max(axis=1) - s[:, -1]


class FixedStrikeLookbackCall(_Lookback):
    """``max(max_t S_t − K, 0)``."""

    def __init__(self, strike: float, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)

    def path(self, paths: np.ndarray) -> np.ndarray:
        return np.maximum(self._series(paths).max(axis=1) - self.strike, 0.0)


class FixedStrikeLookbackPut(_Lookback):
    """``max(K − min_t S_t, 0)``."""

    def __init__(self, strike: float, *, asset: int = 0, dim: int | None = None):
        super().__init__(asset=asset, dim=dim)
        self.strike = check_positive("strike", strike)

    def path(self, paths: np.ndarray) -> np.ndarray:
        return np.maximum(self.strike - self._series(paths).min(axis=1), 0.0)
