"""Rainbow (best-of / worst-of) and spread payoffs on several assets."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.payoffs.base import Payoff
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["CallOnMax", "CallOnMin", "PutOnMax", "PutOnMin", "SpreadCall", "ExchangeOption"]


class _Rainbow(Payoff):
    def __init__(self, strike: float, dim: int = 2):
        self.strike = check_positive("strike", strike)
        self.dim = check_positive_int("dim", dim)
        if self.dim < 2:
            raise ValidationError("rainbow payoffs need at least two assets")


class CallOnMax(_Rainbow):
    """``max(max_i S_i − K, 0)`` — call on the best performer."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        p = self._check_prices(prices)
        return np.maximum(p.max(axis=1) - self.strike, 0.0)


class CallOnMin(_Rainbow):
    """``max(min_i S_i − K, 0)`` — call on the worst performer."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        p = self._check_prices(prices)
        return np.maximum(p.min(axis=1) - self.strike, 0.0)


class PutOnMax(_Rainbow):
    """``max(K − max_i S_i, 0)``."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        p = self._check_prices(prices)
        return np.maximum(self.strike - p.max(axis=1), 0.0)


class PutOnMin(_Rainbow):
    """``max(K − min_i S_i, 0)``."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        p = self._check_prices(prices)
        return np.maximum(self.strike - p.min(axis=1), 0.0)


class SpreadCall(Payoff):
    """``max(S_a − S_b − K, 0)`` — a two-asset spread call.

    With ``K = 0`` this degenerates to the Margrabe exchange option, which
    has an exact closed form (see :mod:`repro.analytic.margrabe`); with
    ``K > 0`` the Kirk approximation applies.
    """

    def __init__(self, strike: float = 0.0, *, long_asset: int = 0, short_asset: int = 1,
                 dim: int | None = None):
        self.strike = check_non_negative("strike", strike)
        self.long_asset = int(long_asset)
        self.short_asset = int(short_asset)
        if self.long_asset == self.short_asset:
            raise ValidationError("spread legs must be distinct assets")
        self.dim = int(dim) if dim is not None else max(self.long_asset, self.short_asset) + 1
        if not (0 <= self.long_asset < self.dim and 0 <= self.short_asset < self.dim):
            raise ValidationError("spread asset indices out of range")

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        p = self._check_prices(prices)
        return np.maximum(p[:, self.long_asset] - p[:, self.short_asset] - self.strike, 0.0)


class ExchangeOption(SpreadCall):
    """Margrabe's option to exchange asset ``b`` for asset ``a``: ``max(S_a − S_b, 0)``."""

    def __init__(self, *, long_asset: int = 0, short_asset: int = 1, dim: int | None = None):
        # strike fixed at zero — that's what makes the closed form exact
        super().__init__(0.0, long_asset=long_asset, short_asset=short_asset, dim=dim)

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        p = self._check_prices(prices)
        return np.maximum(p[:, self.long_asset] - p[:, self.short_asset], 0.0)
