"""Basket payoffs — the canonical *multidimensional* contracts of the paper.

An arithmetic basket option pays on the weighted average of ``d`` asset
prices; it has no closed form and is the workhorse workload of the parallel
Monte Carlo evaluation. Its geometric sibling *does* have a closed form
under GBM (a geometric average of lognormals is lognormal), which makes it
both an accuracy baseline (experiment T1) and the classical control variate
for the arithmetic basket (experiment T5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.payoffs.base import Payoff
from repro.utils.validation import check_positive

__all__ = ["BasketCall", "BasketPut", "GeometricBasketCall", "GeometricBasketPut"]


def _normalize_weights(weights, dim_hint: int | None) -> np.ndarray:
    if isinstance(weights, (int, np.integer)) and dim_hint is None:
        # Interpret a bare integer as "equal weights on that many assets".
        w = np.full(int(weights), 1.0 / int(weights))
    else:
        w = np.atleast_1d(np.asarray(weights, dtype=float))
    if w.ndim != 1 or w.size == 0:
        raise ValidationError("weights must be a non-empty 1-D array")
    if not np.all(np.isfinite(w)):
        raise ValidationError("weights must be finite")
    if np.any(w < 0):
        raise ValidationError("basket weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValidationError("basket weights must sum to a positive number")
    return w / total


class _Basket(Payoff):
    """Common base: stores normalized weights and the strike."""

    def __init__(self, weights, strike: float):
        self.weights = _normalize_weights(weights, None)
        self.dim = self.weights.size
        self.strike = check_positive("strike", strike)

    def basket_level(self, prices: np.ndarray) -> np.ndarray:
        """The weighted arithmetic average ``Σ w_i S_i`` per row."""
        return self._check_prices(prices) @ self.weights


class BasketCall(_Basket):
    """``max(Σ w_i S_i − K, 0)`` with weights normalized to sum to one."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self.basket_level(prices) - self.strike, 0.0)


class BasketPut(_Basket):
    """``max(K − Σ w_i S_i, 0)``."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self.strike - self.basket_level(prices), 0.0)


class _GeometricBasket(Payoff):
    """Common base for geometric-average baskets."""

    def __init__(self, weights, strike: float):
        self.weights = _normalize_weights(weights, None)
        self.dim = self.weights.size
        self.strike = check_positive("strike", strike)

    def basket_level(self, prices: np.ndarray) -> np.ndarray:
        """The weighted geometric average ``Π S_i^{w_i}`` per row."""
        p = self._check_prices(prices)
        if np.any(p <= 0):
            raise ValidationError("geometric basket requires strictly positive prices")
        return np.exp(np.log(p) @ self.weights)


class GeometricBasketCall(_GeometricBasket):
    """``max(Π S_i^{w_i} − K, 0)`` — closed form available under GBM."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self.basket_level(prices) - self.strike, 0.0)


class GeometricBasketPut(_GeometricBasket):
    """``max(K − Π S_i^{w_i}, 0)``."""

    def terminal(self, prices: np.ndarray) -> np.ndarray:
        return np.maximum(self.strike - self.basket_level(prices), 0.0)
