"""Contracts and payoff functions for multidimensional derivatives.

Every payoff maps a block of terminal prices ``(n, d)`` (or full paths
``(n, m+1, d)`` for path-dependent contracts) to a vector of ``n`` payoffs,
fully vectorized. The same objects drive all three engines: Monte Carlo
applies them to simulated paths, the lattice applies :meth:`terminal` at
the leaves and as the early-exercise intrinsic value, and the PDE engines
use them for terminal and boundary conditions.
"""

from repro.payoffs.base import Payoff, ExerciseStyle
from repro.payoffs.vanilla import (
    Call,
    Put,
    DigitalCall,
    DigitalPut,
    Straddle,
    Forward,
)
from repro.payoffs.basket import (
    BasketCall,
    BasketPut,
    GeometricBasketCall,
    GeometricBasketPut,
)
from repro.payoffs.rainbow import (
    CallOnMax,
    CallOnMin,
    PutOnMax,
    PutOnMin,
    SpreadCall,
    ExchangeOption,
)
from repro.payoffs.asian import (
    AsianArithmeticCall,
    AsianArithmeticPut,
    AsianGeometricCall,
    AsianGeometricPut,
)
from repro.payoffs.barrier import BarrierOption
from repro.payoffs.power import PowerCall, PowerPut
from repro.payoffs.lookback import (
    FloatingStrikeLookbackCall,
    FloatingStrikeLookbackPut,
    FixedStrikeLookbackCall,
    FixedStrikeLookbackPut,
)

__all__ = [
    "Payoff",
    "ExerciseStyle",
    "Call",
    "Put",
    "DigitalCall",
    "DigitalPut",
    "Straddle",
    "Forward",
    "BasketCall",
    "BasketPut",
    "GeometricBasketCall",
    "GeometricBasketPut",
    "CallOnMax",
    "CallOnMin",
    "PutOnMax",
    "PutOnMin",
    "SpreadCall",
    "ExchangeOption",
    "AsianArithmeticCall",
    "AsianArithmeticPut",
    "AsianGeometricCall",
    "AsianGeometricPut",
    "BarrierOption",
    "PowerCall",
    "PowerPut",
    "FloatingStrikeLookbackCall",
    "FloatingStrikeLookbackPut",
    "FixedStrikeLookbackCall",
    "FixedStrikeLookbackPut",
]
