"""Closed-form prices used as accuracy baselines (experiment T1) and as
control variates for variance reduction (experiment T5).

All formulas are classical results re-derived and implemented here:
Black–Scholes–Merton (1973), Margrabe's exchange option (1978), Stulz's
two-asset min/max rainbow (1982), Reiner–Rubinstein single barriers (1991),
the lognormal geometric basket / discrete geometric Asian, and Kirk's
spread approximation (1995).
"""

from repro.analytic.black_scholes import (
    bs_price,
    bs_greeks,
    bs_implied_vol,
    BSGreeks,
)
from repro.analytic.bivariate import bvn_cdf, bvn_cdf_quadrature
from repro.analytic.margrabe import margrabe_price
from repro.analytic.geometric_basket import geometric_basket_price
from repro.analytic.stulz import rainbow_two_asset_price
from repro.analytic.barrier import barrier_price
from repro.analytic.asian import geometric_asian_price
from repro.analytic.kirk import kirk_spread_price
from repro.analytic.merton import merton_price
from repro.analytic.heston import heston_price, heston_charfn
from repro.analytic.power import power_option_price
from repro.analytic.geske import compound_call_price, critical_spot

__all__ = [
    "power_option_price",
    "compound_call_price",
    "critical_spot",
    "merton_price",
    "heston_price",
    "heston_charfn",
    "bs_price",
    "bs_greeks",
    "bs_implied_vol",
    "BSGreeks",
    "bvn_cdf",
    "bvn_cdf_quadrature",
    "margrabe_price",
    "geometric_basket_price",
    "rainbow_two_asset_price",
    "barrier_price",
    "geometric_asian_price",
    "kirk_spread_price",
]
