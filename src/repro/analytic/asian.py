"""Exact price of the discretely monitored geometric Asian option.

With monitoring dates ``t_i = iΔt``, ``i = 1..m``, ``Δt = T/m``, the
geometric average ``G = (Π S_{t_i})^{1/m}`` of a GBM is lognormal:

    E[log G]   = log S₀ + (r − q − σ²/2) · T (m+1)/(2m)
    Var[log G] = σ² T (m+1)(2m+1) / (6 m²)

(the variance uses ``Σ_{i,j} min(i,j) = m(m+1)(2m+1)/6``). The Black
formula on ``G`` then gives the exact price — the baseline for MC Asian
tests and the control variate for arithmetic Asians.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["geometric_asian_price", "geometric_asian_moments"]


def geometric_asian_moments(
    spot: float, vol: float, rate: float, expiry: float, steps: int,
    *, dividend: float = 0.0,
) -> tuple[float, float]:
    """Mean and std-dev of ``log G`` for discrete monitoring with ``steps`` dates."""
    check_positive("spot", spot)
    check_positive("vol", vol)
    check_positive("expiry", expiry)
    m = check_positive_int("steps", steps)
    drift = rate - dividend - 0.5 * vol * vol
    mean = math.log(spot) + drift * expiry * (m + 1) / (2.0 * m)
    var = vol * vol * expiry * (m + 1) * (2 * m + 1) / (6.0 * m * m)
    return mean, math.sqrt(var)


def geometric_asian_price(
    spot: float,
    strike: float,
    vol: float,
    rate: float,
    expiry: float,
    steps: int,
    *,
    dividend: float = 0.0,
    option: str = "call",
) -> float:
    """Exact discretely monitored geometric Asian call/put price."""
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")
    check_positive("strike", strike)
    mean, std = geometric_asian_moments(spot, vol, rate, expiry, steps, dividend=dividend)
    df = math.exp(-rate * expiry)
    forward = math.exp(mean + 0.5 * std * std)
    d1 = (mean - math.log(strike) + std * std) / std
    d2 = d1 - std
    if option == "call":
        return df * (forward * norm_cdf(d1) - strike * norm_cdf(d2))
    return df * (strike * norm_cdf(-d2) - forward * norm_cdf(-d1))
