"""Geske (1979) compound option: a call on a call.

At ``t₁`` the holder may pay ``K₁`` for a European call with strike ``K₂``
expiring at ``t₂ > t₁``. With ``S*`` the critical spot where the inner call
is worth exactly ``K₁`` at ``t₁``, and ``ρ = √(t₁/t₂)``:

    CoC = S e^{−q t₂} M(a₁, b₁; ρ) − K₂ e^{−r t₂} M(a₂, b₂; ρ)
          − K₁ e^{−r t₁} Φ(a₂),

``a₁ = [ln(S/S*) + (b + σ²/2)t₁]/(σ√t₁)``, ``a₂ = a₁ − σ√t₁``, and ``b₁,
b₂`` the same with ``(K₂, t₂)``. ``M`` is the bivariate normal CDF
(:mod:`repro.analytic.bivariate`). Cross-checked by nested-valuation Monte
Carlo in the tests (simulate S(t₁), evaluate the inner Black–Scholes value,
discount the compound exercise).
"""

from __future__ import annotations

import math

from repro.analytic.bivariate import bvn_cdf
from repro.analytic.black_scholes import bs_price
from repro.errors import ConvergenceError, ValidationError
from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_positive

__all__ = ["compound_call_price", "critical_spot"]


def critical_spot(
    strike_inner: float,
    strike_compound: float,
    vol: float,
    rate: float,
    tau: float,
    *,
    dividend: float = 0.0,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Spot S* with ``BS_call(S*, K₂, τ) = K₁`` (bisection; always exists
    because the call value is increasing and unbounded in S)."""
    check_positive("strike_inner", strike_inner)
    check_positive("strike_compound", strike_compound)
    lo, hi = 1e-8, strike_inner + strike_compound
    while bs_price(hi, strike_inner, vol, rate, tau, dividend=dividend) < strike_compound:
        hi *= 2.0
        if hi > 1e12:
            raise ConvergenceError("critical spot bracket failed")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if bs_price(mid, strike_inner, vol, rate, tau, dividend=dividend) < strike_compound:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * hi:
            break
    return 0.5 * (lo + hi)


def compound_call_price(
    spot: float,
    strike_compound: float,
    strike_inner: float,
    t_compound: float,
    t_inner: float,
    vol: float,
    rate: float,
    *,
    dividend: float = 0.0,
) -> float:
    """Geske price of a call (strike K₁, expiry t₁) on a call (K₂, t₂)."""
    check_positive("spot", spot)
    check_positive("strike_compound", strike_compound)
    check_positive("strike_inner", strike_inner)
    check_positive("t_compound", t_compound)
    check_positive("t_inner", t_inner)
    check_positive("vol", vol)
    if t_inner <= t_compound:
        raise ValidationError(
            f"the inner option must outlive the compound one: t₂={t_inner} ≤ t₁={t_compound}"
        )
    b = rate - dividend
    tau = t_inner - t_compound
    s_star = critical_spot(strike_inner, strike_compound, vol, rate, tau,
                           dividend=dividend)
    sq1 = vol * math.sqrt(t_compound)
    sq2 = vol * math.sqrt(t_inner)
    a1 = (math.log(spot / s_star) + (b + 0.5 * vol * vol) * t_compound) / sq1
    a2 = a1 - sq1
    b1 = (math.log(spot / strike_inner) + (b + 0.5 * vol * vol) * t_inner) / sq2
    b2 = b1 - sq2
    rho = math.sqrt(t_compound / t_inner)
    return (
        spot * math.exp(-dividend * t_inner) * bvn_cdf(a1, b1, rho)
        - strike_inner * math.exp(-rate * t_inner) * bvn_cdf(a2, b2, rho)
        - strike_compound * math.exp(-rate * t_compound) * float(norm_cdf(a2))
    )
