"""Semi-analytic Heston pricing via the characteristic function.

Uses the numerically stable "little Heston trap" formulation of the
characteristic function (Albrecher, Mayer, Schoutens & Tistaert 2007) —
branch-cut-safe for long maturities — and prices the European call with the
two Gil-Pelaez probabilities:

    C = e^{−rT} [ F·P₁ − K·P₂ ],  F = S₀e^{(r−q)T},
    P₂ = ½ + (1/π) ∫₀^∞ Re[ e^{−iu ln K} φ(u) / (iu) ] du,
    P₁ = ½ + (1/π) ∫₀^∞ Re[ e^{−iu ln K} φ(u − i) / (iu F) ] du.

The integrals are evaluated with adaptive quadrature. Puts follow from
parity. This is the baseline for the Heston Monte Carlo sampler.
"""

from __future__ import annotations

import cmath
import math

from repro.errors import ValidationError
from repro.utils.validation import check_in_range, check_non_negative, check_positive

__all__ = ["heston_price", "heston_charfn"]


def heston_charfn(
    u: complex,
    spot: float,
    v0: float,
    kappa: float,
    theta: float,
    xi: float,
    rho: float,
    rate: float,
    expiry: float,
    dividend: float = 0.0,
) -> complex:
    """Characteristic function ``E[e^{iu ln S_T}]`` (little-trap form)."""
    iu = 1j * u
    x = math.log(spot) + (rate - dividend) * expiry
    a = kappa - rho * xi * iu
    d = cmath.sqrt(a * a + xi * xi * (iu + u * u))
    g = (a - d) / (a + d)
    exp_dt = cmath.exp(-d * expiry)
    log_term = cmath.log((1.0 - g * exp_dt) / (1.0 - g))
    big_c = (kappa * theta / (xi * xi)) * ((a - d) * expiry - 2.0 * log_term)
    big_d = ((a - d) / (xi * xi)) * (1.0 - exp_dt) / (1.0 - g * exp_dt)
    return cmath.exp(iu * x + big_c + big_d * v0)


def heston_price(
    spot: float,
    strike: float,
    expiry: float,
    *,
    v0: float,
    kappa: float,
    theta: float,
    xi: float,
    rho: float,
    rate: float,
    dividend: float = 0.0,
    option: str = "call",
) -> float:
    """European option price under Heston (Gil-Pelaez inversion)."""
    check_positive("spot", spot)
    check_positive("strike", strike)
    check_positive("expiry", expiry)
    check_non_negative("v0", v0)
    check_positive("kappa", kappa)
    check_positive("theta", theta)
    check_positive("xi", xi)
    check_in_range("rho", rho, -1.0, 1.0, inclusive=False)
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")

    from scipy.integrate import quad

    params = dict(spot=spot, v0=v0, kappa=kappa, theta=theta, xi=xi,
                  rho=rho, rate=rate, expiry=expiry, dividend=dividend)
    forward = spot * math.exp((rate - dividend) * expiry)
    log_k = math.log(strike)

    def integrand_p2(u: float) -> float:
        phi = heston_charfn(u, **params)
        return (cmath.exp(-1j * u * log_k) * phi / (1j * u)).real

    def integrand_p1(u: float) -> float:
        phi = heston_charfn(u - 1j, **params)
        return (cmath.exp(-1j * u * log_k) * phi / (1j * u * forward)).real

    # The integrands decay exponentially; split [0, ∞) at a parameter-aware
    # point to help the adaptive rule.
    split = max(10.0, 2.0 / math.sqrt(max(v0, theta) * expiry))
    int_p1 = (quad(integrand_p1, 0.0, split, limit=200)[0]
              + quad(integrand_p1, split, math.inf, limit=200)[0])
    int_p2 = (quad(integrand_p2, 0.0, split, limit=200)[0]
              + quad(integrand_p2, split, math.inf, limit=200)[0])
    p1 = 0.5 + int_p1 / math.pi
    p2 = 0.5 + int_p2 / math.pi
    df = math.exp(-rate * expiry)
    call = df * (forward * p1 - strike * p2)
    # Clip tiny negative noise from the quadrature.
    call = max(call, 0.0)
    if option == "call":
        return call
    return call - df * (forward - strike)
