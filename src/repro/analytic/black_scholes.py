"""Black–Scholes–Merton closed forms: price, Greeks, implied volatility."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConvergenceError, ValidationError
from repro.utils.numerics import norm_cdf, norm_pdf
from repro.utils.validation import check_positive

__all__ = ["bs_price", "bs_greeks", "bs_implied_vol", "BSGreeks"]


def _d1_d2(spot: float, strike: float, vol: float, rate: float, dividend: float,
           expiry: float) -> tuple[float, float]:
    v_sqrt_t = vol * math.sqrt(expiry)
    d1 = (math.log(spot / strike) + (rate - dividend + 0.5 * vol * vol) * expiry) / v_sqrt_t
    return d1, d1 - v_sqrt_t


def bs_price(
    spot: float,
    strike: float,
    vol: float,
    rate: float,
    expiry: float,
    *,
    dividend: float = 0.0,
    option: str = "call",
) -> float:
    """Black–Scholes–Merton price of a European call or put.

    Continuous dividend yield ``dividend``; at ``expiry <= 0`` the intrinsic
    value is returned (useful as a terminal condition).
    """
    check_positive("spot", spot)
    check_positive("strike", strike)
    check_positive("vol", vol)
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")
    if expiry <= 0.0:
        intrinsic = spot - strike if option == "call" else strike - spot
        return max(intrinsic, 0.0)
    d1, d2 = _d1_d2(spot, strike, vol, rate, dividend, expiry)
    df_r = math.exp(-rate * expiry)
    df_q = math.exp(-dividend * expiry)
    if option == "call":
        return spot * df_q * norm_cdf(d1) - strike * df_r * norm_cdf(d2)
    return strike * df_r * norm_cdf(-d2) - spot * df_q * norm_cdf(-d1)


@dataclass(frozen=True)
class BSGreeks:
    """First- and second-order sensitivities of a BSM option."""

    price: float
    delta: float
    gamma: float
    vega: float
    theta: float
    rho: float


def bs_greeks(
    spot: float,
    strike: float,
    vol: float,
    rate: float,
    expiry: float,
    *,
    dividend: float = 0.0,
    option: str = "call",
) -> BSGreeks:
    """Analytic BSM Greeks (per unit of underlying, vol, year, and rate)."""
    check_positive("expiry", expiry)
    price = bs_price(spot, strike, vol, rate, expiry, dividend=dividend, option=option)
    d1, d2 = _d1_d2(spot, strike, vol, rate, dividend, expiry)
    sqrt_t = math.sqrt(expiry)
    df_r = math.exp(-rate * expiry)
    df_q = math.exp(-dividend * expiry)
    pdf_d1 = norm_pdf(d1)
    gamma = df_q * pdf_d1 / (spot * vol * sqrt_t)
    vega = spot * df_q * pdf_d1 * sqrt_t
    if option == "call":
        delta = df_q * norm_cdf(d1)
        theta = (
            -spot * df_q * pdf_d1 * vol / (2.0 * sqrt_t)
            - rate * strike * df_r * norm_cdf(d2)
            + dividend * spot * df_q * norm_cdf(d1)
        )
        rho = strike * expiry * df_r * norm_cdf(d2)
    else:
        delta = -df_q * norm_cdf(-d1)
        theta = (
            -spot * df_q * pdf_d1 * vol / (2.0 * sqrt_t)
            + rate * strike * df_r * norm_cdf(-d2)
            - dividend * spot * df_q * norm_cdf(-d1)
        )
        rho = -strike * expiry * df_r * norm_cdf(-d2)
    return BSGreeks(price=price, delta=delta, gamma=gamma, vega=vega, theta=theta, rho=rho)


def bs_implied_vol(
    price: float,
    spot: float,
    strike: float,
    rate: float,
    expiry: float,
    *,
    dividend: float = 0.0,
    option: str = "call",
    tol: float = 1e-10,
    max_iter: int = 100,
) -> float:
    """Implied volatility by safeguarded Newton (bisection fallback).

    Raises :class:`ConvergenceError` if the target price is outside the
    no-arbitrage band or the iteration stalls.
    """
    check_positive("expiry", expiry)
    df_r = math.exp(-rate * expiry)
    df_q = math.exp(-dividend * expiry)
    if option == "call":
        lower = max(spot * df_q - strike * df_r, 0.0)
        upper = spot * df_q
    else:
        lower = max(strike * df_r - spot * df_q, 0.0)
        upper = strike * df_r
    if not (lower - 1e-12 <= price <= upper + 1e-12):
        raise ConvergenceError(
            f"target price {price} violates no-arbitrage bounds [{lower:.6g}, {upper:.6g}]"
        )
    # Brenner–Subrahmanyam seed, clipped to a sane band.
    sigma = max(min(math.sqrt(2.0 * math.pi / expiry) * price / max(spot, 1e-12), 3.0), 1e-3)
    lo, hi = 1e-8, 10.0
    for _ in range(max_iter):
        p = bs_price(spot, strike, sigma, rate, expiry, dividend=dividend, option=option)
        diff = p - price
        if abs(diff) < tol:
            return sigma
        if diff > 0:
            hi = sigma
        else:
            lo = sigma
        d1, _ = _d1_d2(spot, strike, sigma, rate, dividend, expiry)
        vega = spot * df_q * norm_pdf(d1) * math.sqrt(expiry)
        if vega > 1e-12:
            step = sigma - diff / vega
            sigma = step if lo < step < hi else 0.5 * (lo + hi)
        else:
            sigma = 0.5 * (lo + hi)
    raise ConvergenceError(
        f"implied vol did not converge to {tol} in {max_iter} iterations",
        iterations=max_iter,
    )
