"""Stulz (1982) closed forms for two-asset rainbow options.

Calls/puts on the minimum or maximum of two correlated GBM assets, via the
bivariate normal CDF. The building block is the call-on-min formula; the
others follow from the identities

    max(S₁,S₂) = S₁ + S₂ − min(S₁,S₂)
    C_max(K)   = C₁(K) + C₂(K) − C_min(K)
    P_min(K)   = K·e^{−rT} − PV[min] + C_min(K)   (min/max parity)

with ``PV[min] = S₁e^{−q₁T} − Margrabe(S₁ → S₂)``.
"""

from __future__ import annotations

import math

from repro.analytic.bivariate import bvn_cdf
from repro.analytic.black_scholes import bs_price
from repro.analytic.margrabe import margrabe_price
from repro.errors import ValidationError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["rainbow_two_asset_price", "call_on_min_price"]


def call_on_min_price(
    spot1: float, spot2: float, strike: float,
    vol1: float, vol2: float, rho: float,
    rate: float, expiry: float,
    *, dividend1: float = 0.0, dividend2: float = 0.0,
) -> float:
    """Stulz call on ``min(S₁, S₂)`` with strike ``K``."""
    check_positive("spot1", spot1)
    check_positive("spot2", spot2)
    check_positive("strike", strike)
    check_positive("vol1", vol1)
    check_positive("vol2", vol2)
    check_in_range("rho", rho, -1.0, 1.0)
    check_positive("expiry", expiry)
    b1 = rate - dividend1
    b2 = rate - dividend2
    sigma_sq = vol1 * vol1 - 2.0 * rho * vol1 * vol2 + vol2 * vol2
    sigma = math.sqrt(max(sigma_sq, 1e-300))
    sqrt_t = math.sqrt(expiry)
    d = (math.log(spot1 / spot2) + (b1 - b2 + 0.5 * sigma_sq) * expiry) / (sigma * sqrt_t)
    y1 = (math.log(spot1 / strike) + (b1 + 0.5 * vol1 * vol1) * expiry) / (vol1 * sqrt_t)
    y2 = (math.log(spot2 / strike) + (b2 + 0.5 * vol2 * vol2) * expiry) / (vol2 * sqrt_t)
    rho1 = (vol1 - rho * vol2) / sigma
    rho2 = (vol2 - rho * vol1) / sigma
    term1 = spot1 * math.exp((b1 - rate) * expiry) * bvn_cdf(y1, -d, -rho1)
    term2 = spot2 * math.exp((b2 - rate) * expiry) * bvn_cdf(y2, d - sigma * sqrt_t, -rho2)
    term3 = strike * math.exp(-rate * expiry) * bvn_cdf(
        y1 - vol1 * sqrt_t, y2 - vol2 * sqrt_t, rho
    )
    return term1 + term2 - term3


def rainbow_two_asset_price(
    spot1: float, spot2: float, strike: float,
    vol1: float, vol2: float, rho: float,
    rate: float, expiry: float,
    *, kind: str = "call-on-min", dividend1: float = 0.0, dividend2: float = 0.0,
) -> float:
    """Price any of the four two-asset rainbow contracts.

    ``kind`` ∈ {"call-on-min", "call-on-max", "put-on-min", "put-on-max"}.
    """
    kinds = ("call-on-min", "call-on-max", "put-on-min", "put-on-max")
    if kind not in kinds:
        raise ValidationError(f"kind must be one of {kinds}, got {kind!r}")
    common = dict(dividend1=dividend1, dividend2=dividend2)
    cmin = call_on_min_price(spot1, spot2, strike, vol1, vol2, rho, rate, expiry, **common)
    if kind == "call-on-min":
        return cmin
    df = math.exp(-rate * expiry)
    c1 = bs_price(spot1, strike, vol1, rate, expiry, dividend=dividend1, option="call")
    c2 = bs_price(spot2, strike, vol2, rate, expiry, dividend=dividend2, option="call")
    cmax = c1 + c2 - cmin
    if kind == "call-on-max":
        return cmax
    # Present values of the extremes themselves (K = 0 limits).
    exch_12 = margrabe_price(spot1, spot2, vol1, vol2, rho, expiry, **common)
    pv_min = spot1 * math.exp(-dividend1 * expiry) - exch_12
    pv_max = (
        spot1 * math.exp(-dividend1 * expiry)
        + spot2 * math.exp(-dividend2 * expiry)
        - pv_min
    )
    if kind == "put-on-min":
        return strike * df - pv_min + cmin
    return strike * df - pv_max + cmax
