"""Bivariate standard normal CDF ``Φ₂(h, k; ρ)``.

Needed by the Stulz two-asset rainbow formulas. Two implementations:

* :func:`bvn_cdf_quadrature` — self-contained: integrates the identity
  ``∂Φ₂/∂ρ = φ₂(h, k; ρ)`` (Plackett, 1954) from the independent case with
  high-order Gauss–Legendre nodes, with the correlation path split near the
  |ρ| → 1 singularity.
* :func:`bvn_cdf` — uses SciPy's specialized bivariate routine when
  available and falls back to the quadrature otherwise. The test suite
  asserts the two agree to ~1e-10 across a (h, k, ρ) grid.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.utils.numerics import norm_cdf

__all__ = ["bvn_cdf", "bvn_cdf_quadrature"]

_GL_NODES, _GL_WEIGHTS = np.polynomial.legendre.leggauss(64)


def _bvn_density(h: float, k: float, rho: np.ndarray) -> np.ndarray:
    """φ₂(h, k; ρ) as a function of ρ (vectorized over ρ)."""
    one_minus = 1.0 - rho * rho
    expo = -(h * h - 2.0 * rho * h * k + k * k) / (2.0 * one_minus)
    return np.exp(expo) / (2.0 * math.pi * np.sqrt(one_minus))


def bvn_cdf_quadrature(h: float, k: float, rho: float) -> float:
    """``P(X ≤ h, Y ≤ k)`` for standard bivariate normals with correlation ρ.

    Plackett's identity gives ``Φ₂(h,k;ρ) = Φ(h)Φ(k) + ∫₀^ρ φ₂(h,k;t) dt``;
    the integral is evaluated with 64-point Gauss–Legendre per segment,
    subdividing the path as |t| → 1 where the density steepens.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValidationError(f"correlation must lie in [-1, 1], got {rho}")
    if math.isinf(h) or math.isinf(k):
        if h == -math.inf or k == -math.inf:
            return 0.0
        if h == math.inf:
            return float(norm_cdf(k))
        return float(norm_cdf(h))
    if rho == 0.0:
        return float(norm_cdf(h) * norm_cdf(k))
    if rho >= 1.0:
        return float(norm_cdf(min(h, k)))
    if rho <= -1.0:
        # X = -Y: P(X<=h, -X<=k) = P(-k <= X <= h)
        return float(max(norm_cdf(h) - norm_cdf(-k), 0.0))
    # Split [0, rho] so nodes concentrate near the endpoint as |rho|→1.
    breaks = [0.0, 0.5 * rho, 0.9 * rho, 0.99 * rho, 0.999 * rho, rho]
    total = 0.0
    for a, b in zip(breaks[:-1], breaks[1:]):
        if a == b:
            continue
        mid = 0.5 * (a + b)
        half = 0.5 * (b - a)
        t = mid + half * _GL_NODES
        total += half * float(np.dot(_GL_WEIGHTS, _bvn_density(h, k, t)))
    return float(norm_cdf(h) * norm_cdf(k)) + total


def bvn_cdf(h: float, k: float, rho: float) -> float:
    """``P(X ≤ h, Y ≤ k)``; SciPy fast path with quadrature fallback."""
    try:
        from scipy.stats import multivariate_normal

        if not -1.0 <= rho <= 1.0:
            raise ValidationError(f"correlation must lie in [-1, 1], got {rho}")
        if abs(rho) >= 1.0 or math.isinf(h) or math.isinf(k):
            return bvn_cdf_quadrature(h, k, rho)
        cov = [[1.0, rho], [rho, 1.0]]
        return float(multivariate_normal(mean=[0.0, 0.0], cov=cov).cdf([h, k]))
    except ValidationError:
        raise
    except Exception:  # pragma: no cover - scipy installed in CI
        return bvn_cdf_quadrature(h, k, rho)
