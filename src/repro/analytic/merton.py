"""Merton's (1976) closed-form series for European options under jump
diffusion.

Conditioning on the jump count ``k`` makes the terminal price lognormal, so

    V = Σ_{k≥0}  e^{−λ'T} (λ'T)^k / k!  ·  BS(S, K, σ_k, r_k, T),

with ``λ' = λ(1+κ)``, ``σ_k² = σ² + k σ_J²/T`` and
``r_k = r − λκ + k·ln(1+κ)/T``. The series is truncated once the Poisson
tail weight is negligible. This is the accuracy baseline for the Merton MC
sampler (experiment T8).
"""

from __future__ import annotations

import math

from repro.analytic.black_scholes import bs_price
from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["merton_price"]


def merton_price(
    spot: float,
    strike: float,
    vol: float,
    rate: float,
    expiry: float,
    *,
    jump_intensity: float,
    jump_mean: float,
    jump_vol: float,
    dividend: float = 0.0,
    option: str = "call",
    tol: float = 1e-12,
    max_terms: int = 200,
) -> float:
    """European option price under Merton jump diffusion (series form)."""
    check_positive("spot", spot)
    check_positive("strike", strike)
    check_positive("vol", vol)
    check_positive("expiry", expiry)
    check_non_negative("jump_intensity", jump_intensity)
    check_non_negative("jump_vol", jump_vol)
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")

    lam = jump_intensity
    if lam == 0.0:
        return bs_price(spot, strike, vol, rate, expiry, dividend=dividend,
                        option=option)
    kappa = math.exp(jump_mean + 0.5 * jump_vol**2) - 1.0
    lam_prime_t = lam * (1.0 + kappa) * expiry
    log_one_plus_kappa = math.log1p(kappa)

    total = 0.0
    weight = math.exp(-lam_prime_t)  # k = 0 Poisson weight
    cumulative = 0.0
    for k in range(max_terms):
        if k > 0:
            weight *= lam_prime_t / k
        cumulative += weight
        sigma_k = math.sqrt(vol * vol + k * jump_vol * jump_vol / expiry)
        r_k = rate - lam * kappa + k * log_one_plus_kappa / expiry
        total += weight * bs_price(spot, strike, sigma_k, r_k, expiry,
                                   dividend=dividend, option=option)
        if cumulative > 1.0 - tol and k > lam_prime_t:
            break
    return total
