"""Margrabe (1978) exchange option: the right to swap asset 2 for asset 1.

Payoff ``max(S₁(T) − S₂(T), 0)``. Taking asset 2 as numéraire reduces the
problem to Black–Scholes with zero strike drift and effective volatility
``σ² = σ₁² − 2ρσ₁σ₂ + σ₂²``; the rate drops out entirely.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_in_range, check_positive

__all__ = ["margrabe_price"]


def margrabe_price(
    spot1: float,
    spot2: float,
    vol1: float,
    vol2: float,
    rho: float,
    expiry: float,
    *,
    dividend1: float = 0.0,
    dividend2: float = 0.0,
) -> float:
    """Exact price of ``max(S₁(T) − S₂(T), 0)`` under correlated GBM."""
    check_positive("spot1", spot1)
    check_positive("spot2", spot2)
    check_positive("vol1", vol1)
    check_positive("vol2", vol2)
    check_in_range("rho", rho, -1.0, 1.0)
    check_positive("expiry", expiry)
    sigma_sq = vol1 * vol1 - 2.0 * rho * vol1 * vol2 + vol2 * vol2
    if sigma_sq <= 0.0:
        # Perfectly correlated identical-vol legs: the spread is deterministic.
        fwd1 = spot1 * math.exp(-dividend1 * expiry)
        fwd2 = spot2 * math.exp(-dividend2 * expiry)
        return max(fwd1 - fwd2, 0.0)
    sigma = math.sqrt(sigma_sq)
    v_sqrt_t = sigma * math.sqrt(expiry)
    d1 = (math.log(spot1 / spot2) + (dividend2 - dividend1 + 0.5 * sigma_sq) * expiry) / v_sqrt_t
    d2 = d1 - v_sqrt_t
    return (
        spot1 * math.exp(-dividend1 * expiry) * norm_cdf(d1)
        - spot2 * math.exp(-dividend2 * expiry) * norm_cdf(d2)
    )


def margrabe_from_model(model, expiry: float, *, long_asset: int = 0, short_asset: int = 1) -> float:
    """Margrabe price read off a :class:`~repro.market.MultiAssetGBM`."""
    if long_asset == short_asset:
        raise ValidationError("exchange legs must be distinct assets")
    return margrabe_price(
        float(model.spots[long_asset]),
        float(model.spots[short_asset]),
        float(model.vols[long_asset]),
        float(model.vols[short_asset]),
        float(model.correlation[long_asset, short_asset]),
        expiry,
        dividend1=float(model.dividends[long_asset]),
        dividend2=float(model.dividends[short_asset]),
    )
