"""Closed form for power options under GBM.

``ln S_T ~ N(m, s²)`` with ``m = ln S₀ + (r − q − σ²/2)T``, ``s = σ√T``, so
``ln S_T^p ~ N(pm, p²s²)`` and the Black formula applies to the lognormal
``S^p`` directly.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_positive

__all__ = ["power_option_price"]


def power_option_price(
    spot: float,
    strike: float,
    power: float,
    vol: float,
    rate: float,
    expiry: float,
    *,
    dividend: float = 0.0,
    option: str = "call",
) -> float:
    """Exact price of ``max(±(S_T^p − K), 0)`` under GBM."""
    check_positive("spot", spot)
    check_positive("strike", strike)
    check_positive("power", power)
    check_positive("vol", vol)
    check_positive("expiry", expiry)
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")
    m = math.log(spot) + (rate - dividend - 0.5 * vol * vol) * expiry
    s = vol * math.sqrt(expiry)
    pm = power * m
    ps = power * s
    df = math.exp(-rate * expiry)
    forward_p = math.exp(pm + 0.5 * ps * ps)  # E[S^p]
    d2 = (pm - math.log(strike)) / ps
    d1 = d2 + ps
    if option == "call":
        return df * (forward_p * norm_cdf(d1) - strike * norm_cdf(d2))
    return df * (strike * norm_cdf(-d2) - forward_p * norm_cdf(-d1))
