"""Kirk's (1995) approximation for spread options ``max(S₁ − S₂ − K, 0)``.

Not exact (hence "approximation"), but accurate to a few basis points for
moderate strikes; it reduces to Margrabe exactly at ``K = 0``. Used as a
sanity band for MC spread prices in the accuracy experiments.
"""

from __future__ import annotations

import math

from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_in_range, check_non_negative, check_positive

__all__ = ["kirk_spread_price"]


def kirk_spread_price(
    spot1: float,
    spot2: float,
    strike: float,
    vol1: float,
    vol2: float,
    rho: float,
    rate: float,
    expiry: float,
    *,
    dividend1: float = 0.0,
    dividend2: float = 0.0,
) -> float:
    """Approximate price of a European spread call ``max(S₁ − S₂ − K, 0)``."""
    check_positive("spot1", spot1)
    check_positive("spot2", spot2)
    check_non_negative("strike", strike)
    check_positive("vol1", vol1)
    check_positive("vol2", vol2)
    check_in_range("rho", rho, -1.0, 1.0)
    check_positive("expiry", expiry)
    f1 = spot1 * math.exp((rate - dividend1) * expiry)
    f2 = spot2 * math.exp((rate - dividend2) * expiry)
    w = f2 / (f2 + strike)
    sigma_sq = vol1 * vol1 - 2.0 * rho * vol1 * vol2 * w + vol2 * vol2 * w * w
    sigma = math.sqrt(max(sigma_sq, 1e-300))
    v_sqrt_t = sigma * math.sqrt(expiry)
    if v_sqrt_t <= 0:
        return math.exp(-rate * expiry) * max(f1 - f2 - strike, 0.0)
    d1 = (math.log(f1 / (f2 + strike)) + 0.5 * sigma_sq * expiry) / v_sqrt_t
    d2 = d1 - v_sqrt_t
    return math.exp(-rate * expiry) * (f1 * norm_cdf(d1) - (f2 + strike) * norm_cdf(d2))
