"""Reiner–Rubinstein (1991) closed forms for continuously monitored single
barriers (Haug's A–F decomposition).

Used to validate the Monte Carlo barrier pricer: a discretely monitored MC
estimate converges to these values as the monitoring frequency grows
(modulo the Broadie–Glasserman–Kou √Δt barrier displacement, which the
tests absorb in their tolerance).
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["barrier_price"]

_KINDS = ("up-and-out", "up-and-in", "down-and-out", "down-and-in")


def barrier_price(
    spot: float,
    strike: float,
    barrier: float,
    vol: float,
    rate: float,
    expiry: float,
    *,
    kind: str,
    option: str = "call",
    dividend: float = 0.0,
    rebate: float = 0.0,
) -> float:
    """Price a continuously monitored single-barrier option.

    ``kind`` ∈ {"up-and-out", "up-and-in", "down-and-out", "down-and-in"};
    ``option`` ∈ {"call", "put"}. Knocked-in rebates pay at expiry; knocked-
    out rebates pay at the (first-passage) knock-out via the F term.

    If the spot already breaches the barrier, the contract resolves
    immediately: *out* options are worth the rebate, *in* options the
    vanilla price.
    """
    check_positive("spot", spot)
    check_positive("strike", strike)
    check_positive("barrier", barrier)
    check_positive("vol", vol)
    check_positive("expiry", expiry)
    check_non_negative("rebate", rebate)
    if kind not in _KINDS:
        raise ValidationError(f"kind must be one of {_KINDS}, got {kind!r}")
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")

    from repro.analytic.black_scholes import bs_price

    direction, knock = kind.split("-")[0], kind.split("-")[-1]
    breached = spot >= barrier if direction == "up" else spot <= barrier
    if breached:
        if knock == "out":
            return rebate
        return bs_price(spot, strike, vol, rate, expiry, dividend=dividend, option=option)

    b = rate - dividend  # cost of carry
    sigma_sq = vol * vol
    sqrt_t = math.sqrt(expiry)
    v_sqrt_t = vol * sqrt_t
    mu = (b - 0.5 * sigma_sq) / sigma_sq
    lam = math.sqrt(mu * mu + 2.0 * rate / sigma_sq)
    h_over_s = barrier / spot
    x1 = math.log(spot / strike) / v_sqrt_t + (1.0 + mu) * v_sqrt_t
    x2 = math.log(spot / barrier) / v_sqrt_t + (1.0 + mu) * v_sqrt_t
    y1 = math.log(barrier * barrier / (spot * strike)) / v_sqrt_t + (1.0 + mu) * v_sqrt_t
    y2 = math.log(barrier / spot) / v_sqrt_t + (1.0 + mu) * v_sqrt_t
    z = math.log(barrier / spot) / v_sqrt_t + lam * v_sqrt_t

    phi = 1.0 if option == "call" else -1.0
    eta = -1.0 if direction == "up" else 1.0

    s_carry = spot * math.exp((b - rate) * expiry)
    k_disc = strike * math.exp(-rate * expiry)

    def _a_like(xx: float) -> float:
        return phi * s_carry * norm_cdf(phi * xx) - phi * k_disc * norm_cdf(
            phi * xx - phi * v_sqrt_t
        )

    def _c_like(yy: float) -> float:
        return (
            phi * s_carry * h_over_s ** (2.0 * (mu + 1.0)) * norm_cdf(eta * yy)
            - phi * k_disc * h_over_s ** (2.0 * mu) * norm_cdf(eta * yy - eta * v_sqrt_t)
        )

    term_a = _a_like(x1)
    term_b = _a_like(x2)
    term_c = _c_like(y1)
    term_d = _c_like(y2)
    term_e = rebate * math.exp(-rate * expiry) * (
        norm_cdf(eta * x2 - eta * v_sqrt_t)
        - h_over_s ** (2.0 * mu) * norm_cdf(eta * y2 - eta * v_sqrt_t)
    )
    term_f = rebate * (
        h_over_s ** (mu + lam) * norm_cdf(eta * z)
        + h_over_s ** (mu - lam) * norm_cdf(eta * z - 2.0 * eta * lam * v_sqrt_t)
    )

    above = strike > barrier
    if kind == "down-and-in":
        core = (term_c if above else term_a - term_b + term_d) if option == "call" else (
            term_b - term_c + term_d if above else term_a
        )
        return core + term_e
    if kind == "up-and-in":
        core = (term_a if above else term_b - term_c + term_d) if option == "call" else (
            term_a - term_b + term_d if above else term_c
        )
        return core + term_e
    if kind == "down-and-out":
        core = (term_a - term_c if above else term_b - term_d) if option == "call" else (
            term_a - term_b + term_c - term_d if above else 0.0
        )
        return core + term_f
    # up-and-out
    core = (0.0 if above else term_a - term_b + term_c - term_d) if option == "call" else (
        term_b - term_d if above else term_a - term_c
    )
    return core + term_f
