"""Closed form for geometric-basket options under multi-asset GBM.

A weighted geometric average of correlated lognormals is itself lognormal:
with ``G(T) = Π S_i(T)^{w_i}`` (weights summing to one),

    log G(T) ~ N(m, v²),
    m  = Σ w_i [ log S_i(0) + (r − q_i − σ_i²/2) T ],
    v² = T · wᵀ Σ w,   Σ_ij = ρ_ij σ_i σ_j,

so the option prices by the Black formula on the lognormal ``G``. This is
the exact multidimensional baseline for experiment T1 and the control
variate for arithmetic baskets in T5.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.utils.numerics import norm_cdf
from repro.utils.validation import check_positive

__all__ = ["geometric_basket_price", "geometric_basket_moments"]


def geometric_basket_moments(model, weights, expiry: float) -> tuple[float, float]:
    """Return ``(m, v)``: mean and std-dev of ``log G(T)`` under the model."""
    check_positive("expiry", expiry)
    w = np.atleast_1d(np.asarray(weights, dtype=float))
    if w.size != model.dim:
        raise ValidationError(
            f"weights length {w.size} does not match model dim {model.dim}"
        )
    if np.any(w < 0) or w.sum() <= 0:
        raise ValidationError("weights must be non-negative with positive sum")
    w = w / w.sum()
    m = float(np.dot(w, np.log(model.spots) + model.drifts * expiry))
    cov = model.correlation * np.outer(model.vols, model.vols)
    v2 = float(w @ cov @ w) * expiry
    return m, math.sqrt(max(v2, 0.0))


def geometric_basket_price(
    model,
    weights,
    strike: float,
    expiry: float,
    *,
    option: str = "call",
) -> float:
    """Exact price of a European geometric-basket call/put.

    Parameters
    ----------
    model : :class:`~repro.market.MultiAssetGBM`
    weights : basket weights (normalized internally).
    strike, expiry : contract terms.
    option : ``"call"`` or ``"put"``.
    """
    if option not in ("call", "put"):
        raise ValidationError(f"option must be 'call' or 'put', got {option!r}")
    check_positive("strike", strike)
    m, v = geometric_basket_moments(model, weights, expiry)
    df = math.exp(-model.rate * expiry)
    forward = math.exp(m + 0.5 * v * v)
    if v <= 0.0:
        intrinsic = forward - strike if option == "call" else strike - forward
        return df * max(intrinsic, 0.0)
    d1 = (m - math.log(strike) + v * v) / v
    d2 = d1 - v
    if option == "call":
        return df * (forward * norm_cdf(d1) - strike * norm_cdf(d2))
    return df * (strike * norm_cdf(-d2) - forward * norm_cdf(-d1))
