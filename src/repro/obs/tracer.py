"""Span-based tracer: one event stream for simulated and real timelines.

The repo measures the same quantity two ways — the :class:`SimulatedCluster`
advances virtual per-rank clocks, the real backends advance
``time.perf_counter`` — and before this module each kept a private record.
The tracer unifies them: every instrumented layer appends **spans**
(named, timed intervals on a *track*) and **instant events** (points in
time) to one stream, which the exporters in :mod:`repro.obs.export` turn
into Perfetto/``chrome://tracing`` JSON, CSV, or a terminal summary.

Clock substitution is the design center, mirroring DESIGN.md's machine
substitution:

* real backends measure with the tracer's ``clock`` (default
  ``time.perf_counter``) via the :meth:`Tracer.span` context manager;
* the simulated machine reports *virtual* timestamps explicitly via
  :meth:`Tracer.add_span` / :meth:`Tracer.instant` — its timeline is
  retrospective (a rank's interval is known only once charged), so it does
  not tick a clock, it states the interval.

Never mix the two time bases in one tracer: a simulated trace and a
wall-clock trace are different coordinate systems and belong in separate
:class:`Tracer` instances (the CLI writes them to separate files).

Disabled fast path: ``Tracer(enabled=False)`` (or the shared
:data:`NULL_TRACER`) makes every recording call an immediate no-op and the
tracer itself falsy, so call sites gate whole instrumentation blocks with
``if tracer:`` — benchmark F14 holds this to noise-level overhead.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError

__all__ = [
    "SpanRecord",
    "EventRecord",
    "Tracer",
    "NULL_TRACER",
    "track_sort_key",
]


@dataclass
class SpanRecord:
    """A named, closed time interval on one track."""

    name: str
    t0: float
    t1: float
    track: str
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class EventRecord:
    """A named instant (retry fired, rank degraded, ...) on one track."""

    name: str
    t: float
    track: str
    args: dict = field(default_factory=dict)


def _resolve_track(rank, track) -> str:
    if track is not None:
        return str(track)
    if rank is None:
        return "main"
    return f"rank{int(rank)}"


_TRACK_NUM = re.compile(r"^(.*?)(\d+)$")


def track_sort_key(track: str):
    """Display order for tracks: ``main`` first, then numeric-suffixed
    families in index order (rank0..rankN, worker0..workerM), then the
    rest alphabetically."""
    if track == "main":
        return (0, "", 0)
    m = _TRACK_NUM.match(track)
    if m:
        return (1, m.group(1), int(m.group(2)))
    return (2, track, 0)


class _NullSpan:
    """Reusable no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: reads the clock on enter/exit, records on exit."""

    __slots__ = ("_tracer", "_name", "_track", "_args", "t0")

    def __init__(self, tracer: "Tracer", name: str, track: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._args = args
        self.t0: float | None = None

    def __enter__(self) -> "_Span":
        self.t0 = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = self._tracer.clock()
        self._tracer.spans.append(
            SpanRecord(self._name, self.t0, t1, self._track, self._args)
        )
        return False


class Tracer:
    """Collects spans and instant events on named tracks.

    Parameters
    ----------
    enabled : False makes every call a no-op and the tracer falsy.
    clock : zero-argument callable returning seconds; used by the
        :meth:`span` context manager and as the default ``t`` of
        :meth:`instant`. Real code keeps the ``perf_counter`` default;
        tests substitute deterministic clocks; the simulated machine
        bypasses the clock entirely via :meth:`add_span`.
    """

    def __init__(self, *, enabled: bool = True,
                 clock: Callable[[], float] = time.perf_counter):
        self.enabled = bool(enabled)
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []

    def __bool__(self) -> bool:
        return self.enabled

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, *, rank: int | None = None,
             track: str | None = None, **args):
        """Context manager timing a block with the tracer's clock.

        ``rank=r`` places the span on track ``rank{r}``; ``track=`` names
        one explicitly; neither means the ``main`` track.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, str(name), _resolve_track(rank, track), args)

    def add_span(self, name: str, t0: float, t1: float, *,
                 rank: int | None = None, track: str | None = None,
                 **args) -> None:
        """Record a span with explicit timestamps (the simulated timeline)."""
        if not self.enabled:
            return
        t0 = float(t0)
        t1 = float(t1)
        if t1 < t0:
            raise ValidationError(f"span {name!r} ends before it starts: "
                                  f"[{t0}, {t1}]")
        self.spans.append(SpanRecord(str(name), t0, t1,
                                     _resolve_track(rank, track), args))

    def instant(self, name: str, *, rank: int | None = None,
                track: str | None = None, t: float | None = None,
                **args) -> None:
        """Record a point event at ``t`` (clock time when omitted)."""
        if not self.enabled:
            return
        when = self.clock() if t is None else float(t)
        self.events.append(EventRecord(str(name), when,
                                       _resolve_track(rank, track), args))

    # -- queries -------------------------------------------------------------

    def tracks(self) -> list[str]:
        """All tracks seen so far, in display order."""
        seen = {s.track for s in self.spans} | {e.track for e in self.events}
        return sorted(seen, key=track_sort_key)

    def clear(self) -> None:
        """Drop every recorded span and event (the tracer stays usable)."""
        self.spans.clear()
        self.events.clear()


#: Shared disabled tracer: pass where an API wants a tracer but the caller
#: wants zero recording (equivalent to passing None at every call site).
NULL_TRACER = Tracer(enabled=False)
