"""Ledger analysis: per-engine/per-stage summaries and regression diffs.

The consumer side of :mod:`repro.obs.ledger`. Two operations:

* :func:`summarize_ledger` — collapse a ledger's records into per-
  ``(kind, engine, stage)`` timing statistics (count, mean, p50/p99 via
  the quantile :class:`~repro.obs.metrics.Histogram`, coefficient of
  variation).
* :func:`diff_ledgers` — compare two summaries stage by stage with
  **noise-aware tolerance bands**: a stage's warn band widens with the
  baseline's observed run-to-run noise (``1 + warn_margin + z·cv``), so a
  stage that already jitters 30% between identical runs does not page
  anyone at 1.3x — while the *fail* band is an absolute ratio (default
  2x) that no amount of measured noise excuses. Sub-resolution stages
  (mean below ``min_seconds``) are reported but never warned/failed:
  microsecond stages are all noise.

Exit-code policy (used by ``repro obs diff``): ``fail`` entries →
nonzero; ``warn`` entries alone → zero but printed loudly. Diffing a
ledger against itself yields ratio 1.0 everywhere and is silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ValidationError
from repro.obs.ledger import RunRecord
from repro.obs.metrics import Histogram
from repro.utils.formatting import Table

__all__ = [
    "StageStats",
    "DiffEntry",
    "summarize_ledger",
    "diff_ledgers",
    "report_table",
    "diff_table",
]


@dataclass
class StageStats:
    """Timing distribution of one (kind, engine, stage) across records.

    ``wall`` rows additionally aggregate the records' scheduler fields
    (``extra["sched"]``: strategy, steals, tasks moved) — display only;
    the diff bands never read them, so scheduling metadata can never flip
    a perf gate.
    """

    kind: str
    engine: str
    stage: str
    histogram: Histogram = field(default_factory=Histogram)
    sched_strategies: set = field(default_factory=set)
    steals: int = 0
    tasks_moved: int = 0

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def mean(self) -> float:
        return self.histogram.mean

    @property
    def cv(self) -> float:
        """Coefficient of variation — the stage's observed relative noise."""
        return self.histogram.std / self.mean if self.mean > 0 else 0.0

    def quantile(self, q: float) -> float:
        return self.histogram.quantile(q)

    def observe_sched(self, sched: dict) -> None:
        """Fold one record's ``extra["sched"]`` into the aggregate."""
        strategy = sched.get("strategy")
        if strategy:
            self.sched_strategies.add(str(strategy))
        self.steals += int(sched.get("steals", 0))
        self.tasks_moved += int(sched.get("tasks_moved", 0))

    @property
    def sched_label(self) -> str:
        """Compact scheduler column: ``strategy:steals/moved`` or ``-``."""
        if not self.sched_strategies:
            return "-"
        names = ",".join(sorted(self.sched_strategies))
        return f"{names}:{self.steals}/{self.tasks_moved}"


def _key(record: RunRecord, stage: str) -> tuple[str, str, str]:
    return (record.kind, record.engine, stage)


def summarize_ledger(records: Iterable[RunRecord]) -> dict[tuple[str, str, str],
                                                           StageStats]:
    """Per-(kind, engine, stage) stats over a ledger, plus a ``wall`` row
    per (kind, engine) so coarse totals diff even for stage-less records."""
    out: dict[tuple[str, str, str], StageStats] = {}

    def _observe(key: tuple[str, str, str], seconds: float) -> None:
        stats = out.get(key)
        if stats is None:
            stats = out[key] = StageStats(kind=key[0], engine=key[1],
                                          stage=key[2])
        stats.histogram.observe(seconds)

    n = 0
    for record in records:
        n += 1
        for stage, seconds in record.stages.items():
            _observe(_key(record, stage), seconds)
        _observe(_key(record, "wall"), record.wall_s)
        sched = (record.extra or {}).get("sched")
        if isinstance(sched, dict):
            out[_key(record, "wall")].observe_sched(sched)
    if n == 0:
        raise ValidationError("ledger holds no records to summarize")
    return out


@dataclass(frozen=True)
class DiffEntry:
    """One stage's baseline-vs-candidate comparison."""

    kind: str
    engine: str
    stage: str
    base_mean: float
    new_mean: float
    base_cv: float
    warn_band: float          # ratio above which this stage warns
    fail_band: float          # ratio above which this stage fails
    status: str               # "ok" | "info" | "warn" | "fail"

    @property
    def ratio(self) -> float:
        if self.base_mean <= 0.0:
            return math.inf if self.new_mean > 0.0 else 1.0
        return self.new_mean / self.base_mean

    def __str__(self) -> str:
        return (f"{self.kind}/{self.engine}/{self.stage}: "
                f"{self.base_mean:.4g}s -> {self.new_mean:.4g}s "
                f"({self.ratio:.2f}x, warn>{self.warn_band:.2f}x, "
                f"fail>{self.fail_band:.2f}x) [{self.status}]")


def diff_ledgers(base: Iterable[RunRecord], new: Iterable[RunRecord], *,
                 warn_margin: float = 0.25, fail_ratio: float = 2.0,
                 noise_z: float = 3.0,
                 min_seconds: float = 1e-4) -> list[DiffEntry]:
    """Stage-by-stage regression check of ``new`` against ``base``.

    Band construction per stage:

    * ``warn_band = 1 + warn_margin + noise_z * base_cv`` — the noise-aware
      part: baseline jitter (coefficient of variation across the baseline's
      own records) widens the warning threshold, so only movement *outside*
      the stage's demonstrated noise warns.
    * ``fail_band = fail_ratio`` — the hard gate; defaults to 2x, the
      "this is not noise" line the CI perf job enforces. Deliberately
      **not** widened by noise: a stage noisy enough to jitter past 2x
      between identical runs is a regression in itself.

    Stages present in only one ledger, and stages whose baseline mean is
    below ``min_seconds``, are reported as ``info`` — visible, never fatal.
    """
    if warn_margin < 0:
        raise ValidationError(f"warn_margin must be >= 0, got {warn_margin}")
    if fail_ratio <= 1.0:
        raise ValidationError(f"fail_ratio must exceed 1, got {fail_ratio}")
    base_stats = summarize_ledger(base)
    new_stats = summarize_ledger(new)
    entries: list[DiffEntry] = []
    for key in sorted(set(base_stats) | set(new_stats)):
        b = base_stats.get(key)
        n = new_stats.get(key)
        kind, engine, stage = key
        if b is None or n is None:
            entries.append(DiffEntry(
                kind, engine, stage,
                base_mean=b.mean if b else 0.0,
                new_mean=n.mean if n else 0.0,
                base_cv=b.cv if b else 0.0,
                warn_band=math.inf, fail_band=math.inf, status="info"))
            continue
        warn_band = 1.0 + warn_margin + noise_z * b.cv
        fail_band = fail_ratio
        if b.mean < min_seconds:
            status = "info"   # sub-resolution: all noise, never gate on it
        else:
            ratio = n.mean / b.mean if b.mean > 0 else math.inf
            if ratio >= fail_band:
                status = "fail"
            elif ratio >= warn_band:
                status = "warn"
            else:
                status = "ok"
        entries.append(DiffEntry(kind, engine, stage, base_mean=b.mean,
                                 new_mean=n.mean, base_cv=b.cv,
                                 warn_band=warn_band, fail_band=fail_band,
                                 status=status))
    return entries


# ---------------------------------------------------------------------------
# Terminal rendering.
# ---------------------------------------------------------------------------


def report_table(stats: dict[tuple[str, str, str], StageStats], *,
                 title: str = "run-ledger summary") -> Table:
    """Per-stage table: runs, mean, p50, p99, max, relative noise and the
    scheduler aggregate (``strategy:steals/moved``, ``wall`` rows only)."""
    table = Table(["kind", "engine", "stage", "runs", "mean [s]", "p50 [s]",
                   "p99 [s]", "max [s]", "cv", "sched"],
                  title=title, floatfmt=".4g")
    for key in sorted(stats):
        s = stats[key]
        table.add_row([s.kind, s.engine, s.stage, s.count, s.mean,
                       s.quantile(0.5), s.quantile(0.99),
                       s.histogram.max if s.count else 0.0, s.cv,
                       s.sched_label])
    return table


def diff_table(entries: Sequence[DiffEntry], *,
               title: str = "ledger diff") -> Table:
    """Baseline-vs-candidate table, regressions first."""
    order = {"fail": 0, "warn": 1, "ok": 2, "info": 3}
    table = Table(["status", "kind", "engine", "stage", "base [s]",
                   "new [s]", "ratio", "warn band", "fail band"],
                  title=title, floatfmt=".4g")
    for e in sorted(entries, key=lambda e: (order[e.status], e.kind,
                                            e.engine, e.stage)):
        table.add_row([e.status, e.kind, e.engine, e.stage, e.base_mean,
                       e.new_mean,
                       e.ratio if math.isfinite(e.ratio) else float("inf"),
                       e.warn_band if math.isfinite(e.warn_band) else float("inf"),
                       e.fail_band if math.isfinite(e.fail_band) else float("inf")])
    return table
