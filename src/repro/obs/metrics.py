"""Metrics registry: named counters, gauges and histograms with labels.

The perf harness derives speedup/efficiency *after* a run from
``ParallelRunResult``; the metrics registry is the complementary view —
cumulative, name-addressed series (paths/sec, messages, bytes moved,
retries, per-worker task latency) that any layer can bump while running
and that snapshot to **canonical JSON** (sorted keys, fixed separators),
so two identical runs produce byte-identical snapshots, matching the
fault layer's reproducibility contract.

Series identity is ``name`` plus sorted ``label=value`` pairs, rendered
``name{k=v,...}`` in snapshots — a deliberately Prometheus-shaped naming
scheme without the dependency.
"""

from __future__ import annotations

import json
import math

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_from_report",
    "metrics_from_run",
]


class Counter:
    """Monotonically increasing total (messages, retries, bytes)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = float(amount)
        if amount < 0:
            raise ValidationError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins level (elapsed seconds, paths/sec, rank count)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


#: Log-spaced bucket geometry: 4 buckets per octave (bucket boundaries at
#: ``2**(i/4)``, ~19% wide), clamped to ``[2**-30, 2**30)`` seconds — wide
#: enough for sub-nanosecond task latencies up to year-long walls. The
#: geometry is FIXED (not adaptive), so two histograms filled on different
#: ranks/workers bucket identically and merge exactly.
_BUCKETS_PER_OCTAVE = 4
_MIN_BUCKET = -30 * _BUCKETS_PER_OCTAVE
_MAX_BUCKET = 30 * _BUCKETS_PER_OCTAVE
#: Sentinel bucket for non-positive observations (log-undefined).
_NONPOS_BUCKET = _MIN_BUCKET - 1


def _bucket_index(value: float) -> int:
    """Fixed log-spaced bucket index for a positive observation."""
    idx = math.floor(math.log2(value) * _BUCKETS_PER_OCTAVE)
    return max(_MIN_BUCKET, min(idx, _MAX_BUCKET))


def _bucket_bounds(idx: int) -> tuple[float, float]:
    """The ``[lo, hi)`` value range bucket ``idx`` covers."""
    if idx == _NONPOS_BUCKET:
        return 0.0, 0.0
    return (2.0 ** (idx / _BUCKETS_PER_OCTAVE),
            2.0 ** ((idx + 1) / _BUCKETS_PER_OCTAVE))


class Histogram:
    """Streaming distribution summary (task latency, per-rank seconds).

    Observing is O(1): running moments (count/sum/sumsq/min/max) plus one
    increment into **fixed log-spaced buckets** (see ``_BUCKETS_PER_OCTAVE``)
    from which :meth:`quantile` estimates p50/p90/p99/p999 by cumulative
    rank with linear interpolation inside the hit bucket, clamped to the
    observed ``[min, max]``.

    Because the bucket geometry is fixed, histograms are **mergeable**:
    :meth:`merge` adds another histogram's counts in, and the merged
    quantiles are *exactly* the quantiles of observing every value into one
    histogram — independent of merge order and observation permutation
    (bucket counts are integers; asserted by the hypothesis property suite).
    Snapshots are canonical-JSON stable: buckets render as a sorted
    ``[index, count]`` list.
    """

    kind = "histogram"
    __slots__ = ("count", "total", "sumsq", "min", "max", "buckets")

    #: Quantiles every snapshot reports.
    QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999"))

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        idx = _bucket_index(value) if value > 0.0 else _NONPOS_BUCKET
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram's observations into this one (in place).

        Exact for everything rank-based: bucket counts are integers and the
        geometry is shared, so quantiles of a merge equal quantiles of the
        union, whatever the merge association.
        """
        if not isinstance(other, Histogram):
            raise ValidationError("Histogram.merge expects a Histogram")
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        var = (self.sumsq - self.total * self.total / self.count) / (self.count - 1)
        return math.sqrt(max(var, 0.0))

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the bucket counts.

        Cumulative-rank walk over the sorted buckets; the hit bucket is
        linearly interpolated and the estimate clamped to the observed
        ``[min, max]`` (so p999 of a tight distribution never exceeds the
        true maximum). Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile q must lie in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cum = 0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            if cum + n >= target:
                lo, hi = _bucket_bounds(idx)
                est = lo + (hi - lo) * ((target - cum) / n)
                return min(max(est, self.min), self.max)
            cum += n
        return self.max  # pragma: no cover - rank always lands in a bucket

    def snapshot(self) -> dict:
        snap = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "std": self.std,
            "buckets": [[idx, self.buckets[idx]]
                        for idx in sorted(self.buckets)],
        }
        for q, name in self.QUANTILES:
            snap[name] = self.quantile(q)
        return snap


def _series_key(name: str, labels: dict) -> str:
    if not labels:
        return str(name)
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self):
        self._series: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._series)

    def _get(self, cls, name: str, labels: dict):
        key = _series_key(name, labels)
        metric = self._series.get(key)
        if metric is None:
            metric = cls()
            self._series[key] = metric
        elif not isinstance(metric, cls):
            raise ValidationError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def matching(self, name: str) -> dict[str, object]:
        """Every series with base name ``name``, keyed by its rendered
        series key (sorted) — e.g. ``matching("serve.cache_hits")`` on a
        sharded registry yields ``{"serve.cache_hits{shard=0}": ...,
        "serve.cache_hits{shard=1}": ...}``. Reading only; series are
        not created."""
        return {key: self._series[key] for key in sorted(self._series)
                if key == name or key.startswith(name + "{")}

    def sum_counters(self, name: str) -> float:
        """Total across every labeled variant of counter ``name`` — the
        registry-wide aggregate of per-shard tallies."""
        return sum(m.value for m in self.matching(name).values()
                   if isinstance(m, Counter))

    # -- export --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Kind-grouped dict of every series (insertion-order independent)."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self._series):
            metric = self._series[key]
            out[metric.kind + "s"][key] = metric.snapshot()
        return out

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical metric contents."""
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))


# ---------------------------------------------------------------------------
# Bridges from the existing accounting objects.
# ---------------------------------------------------------------------------


def metrics_from_report(report: dict,
                        registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fill a registry from :meth:`SimulatedCluster.report`.

    ``sim.messages`` / ``sim.bytes_moved`` counters mirror the cluster's
    communication volume exactly (asserted in the obs test suite); the
    per-rank breakdown becomes ``sim.rank_seconds{account=...,rank=r}``
    gauges plus one histogram per account across ranks.
    """
    if registry is None:
        registry = MetricsRegistry()
    registry.counter("sim.messages").inc(report["messages"])
    registry.counter("sim.bytes_moved").inc(report["bytes_moved"])
    registry.gauge("sim.p").set(report["p"])
    for key in ("elapsed", "compute_time", "comm_time", "idle_time",
                "fault_time"):
        registry.gauge(f"sim.{key}").set(report[key])
    for r, account in enumerate(report.get("ranks", [])):
        for kind, seconds in account.items():
            registry.gauge("sim.rank_seconds", account=kind, rank=r).set(seconds)
            registry.histogram("sim.rank_seconds_dist", account=kind).observe(seconds)
    return registry


def metrics_from_run(result,
                     registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fill a registry from a :class:`ParallelRunResult`.

    Adds engine-labeled run gauges (``run.sim_time``, ``run.paths_per_sec``
    when the engine reports a path count) and fault-recovery counters when
    a :class:`RunReport` rode along in the result meta.
    """
    if registry is None:
        registry = MetricsRegistry()
    eng = result.engine
    registry.gauge("run.sim_time", engine=eng).set(result.sim_time)
    registry.gauge("run.wall_time", engine=eng).set(result.wall_time)
    registry.gauge("run.p", engine=eng).set(result.p)
    n_paths = result.meta.get("n_paths")
    if n_paths and result.sim_time > 0:
        registry.gauge("run.paths_per_sec", engine=eng).set(
            n_paths / result.sim_time
        )
    report = result.meta.get("fault_report")
    if report is not None:
        registry.counter("run.retries", engine=eng).inc(report.n_retries)
        registry.counter("run.faults_injected", engine=eng).inc(
            report.faults_injected
        )
        registry.counter("run.fault_recoveries", engine=eng).inc(
            len(report.recovered_ranks)
        )
        registry.counter("run.lost_ranks", engine=eng).inc(
            len(report.lost_ranks)
        )
    return registry
