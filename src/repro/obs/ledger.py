"""The run ledger: a durable, diffable record of every measured run.

The benchmarks answer "how fast is it *now*"; the ledger answers "how fast
was it *then*" — without rerunning anything. Every pipeline run
(:func:`repro.engine.runner.run_pipeline`), every
:class:`~repro.serve.PricingService` batch and every benchmark invocation
can append one :class:`RunRecord` — a canonical-JSON line in an append-only
JSONL file — carrying the engine name, a config digest, the backend and
worker count, **per-stage wall timings** from the shared
:class:`~repro.perf.timer.Timer`, the run's headline metrics, fault/retry
counts and the git SHA, under a versioned schema
(:data:`LEDGER_SCHEMA_VERSION`).

Design rules:

* **Opt-in and out-of-band.** Nothing is recorded unless a ledger is
  configured — either explicitly (``pricer.ledger = RunLedger(path)`` /
  ``PricingService(ledger=...)``) or ambiently via the ``REPRO_LEDGER``
  environment variable (the CI bench lanes set it). The fast path when no
  ledger is active is one attribute read.
* **Canonical serialization.** ``RunRecord.to_json()`` sorts keys and
  fixes separators, so records are byte-stable functions of their
  contents; the *contents* include wall timings, which legitimately vary
  run to run — comparability across runs is the job of
  :mod:`repro.obs.diff`, which applies noise-aware tolerance bands.
* **Correlatable.** Each record carries a ``run_id`` that the runner also
  threads into :func:`~repro.parallel.faults.resilient_map` (so the
  :class:`~repro.parallel.faults.RunReport` and the tracer's fault/retry
  instants name the same id) — a retried task in a trace joins to its
  ledger row.

``repro obs report`` / ``repro obs diff`` are the CLI consumers.
"""

from __future__ import annotations

import json
import os
import subprocess
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import ValidationError

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "RunRecord",
    "RunLedger",
    "new_run_id",
    "git_sha",
    "config_digest",
    "active_ledger",
    "set_active_ledger",
    "read_ledger",
    "record_from_result",
]

#: Bump when a field is added/renamed/retyped; readers accept <= current.
LEDGER_SCHEMA_VERSION = 1

#: Environment variable naming the ambient ledger path (CI bench lanes).
LEDGER_ENV_VAR = "REPRO_LEDGER"


def new_run_id() -> str:
    """A fresh 12-hex-digit correlation id (unique per run, not per rank)."""
    return uuid.uuid4().hex[:12]


_GIT_SHA: str | None = None


def git_sha() -> str:
    """The repo's short HEAD SHA, cached per process.

    Honours ``REPRO_GIT_SHA`` (set it in containers without git metadata);
    falls back to ``"unknown"`` rather than failing a pricing run over
    missing VCS state.
    """
    global _GIT_SHA
    if _GIT_SHA is None:
        sha = os.environ.get("REPRO_GIT_SHA")
        if not sha:
            try:
                sha = subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"],
                    capture_output=True, text=True, timeout=5.0,
                    cwd=os.path.dirname(os.path.abspath(__file__)),
                ).stdout.strip() or "unknown"
            except (OSError, subprocess.SubprocessError):
                sha = "unknown"
        _GIT_SHA = sha
    return _GIT_SHA


def _primitive(value: object) -> object | None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)) and all(
            v is None or isinstance(v, (bool, int, float, str)) for v in value):
        return list(value)
    return None


def config_digest(config: object) -> str:
    """A stable 12-hex digest of a config object's primitive settings.

    Walks ``vars(config)`` (or the mapping itself), keeps JSON-stable
    primitives (bool/int/float/str/None) plus flat tuples/lists of them,
    and hashes the sorted canonical JSON — so two identically configured
    pricers digest identically whatever their attribute insertion order,
    and attached machinery (backends, tracers, plans) never leaks in.
    """
    import hashlib

    source = config if isinstance(config, dict) else vars(config)
    doc = {}
    for key, value in source.items():
        kept = _primitive(value)
        if kept is not None or value is None:
            doc[str(key)] = kept
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class RunRecord:
    """One ledger line: the comparable fingerprint of one measured run.

    ``stages`` maps stage name → wall seconds (``plan`` / ``partition`` /
    ``execute`` / ``reduce`` / ``report`` for pipeline runs, ``batch`` for
    service batches); ``faults`` carries the recovery tallies; ``extra``
    is free-form per-kind detail (price, request counts, ...).
    """

    run_id: str
    kind: str                      # "engine" | "strip" | "serve" | "bench"
    engine: str
    config: str                    # config_digest of the run's settings
    backend: str
    workers: int
    p: int
    stages: dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    sim_s: float = 0.0
    faults: dict[str, int] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    git: str = ""
    schema: int = LEDGER_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "engine": self.engine,
            "config": self.config,
            "backend": self.backend,
            "workers": self.workers,
            "p": self.p,
            "stages": dict(self.stages),
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "faults": dict(self.faults),
            "extra": dict(self.extra),
            "git": self.git,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed separators) — one JSONL line."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, doc: dict) -> "RunRecord":
        if not isinstance(doc, dict):
            raise ValidationError(f"ledger record must be an object, got "
                                  f"{type(doc).__name__}")
        schema = doc.get("schema")
        if not isinstance(schema, int) or schema < 1:
            raise ValidationError(f"ledger record has no valid schema "
                                  f"version: {schema!r}")
        if schema > LEDGER_SCHEMA_VERSION:
            raise ValidationError(
                f"ledger record schema v{schema} is newer than this "
                f"reader (v{LEDGER_SCHEMA_VERSION}); upgrade repro"
            )
        try:
            return cls(
                run_id=str(doc["run_id"]),
                kind=str(doc["kind"]),
                engine=str(doc["engine"]),
                config=str(doc["config"]),
                backend=str(doc["backend"]),
                workers=int(doc["workers"]),
                p=int(doc["p"]),
                stages={str(k): float(v)
                        for k, v in dict(doc.get("stages", {})).items()},
                wall_s=float(doc.get("wall_s", 0.0)),
                sim_s=float(doc.get("sim_s", 0.0)),
                faults={str(k): int(v)
                        for k, v in dict(doc.get("faults", {})).items()},
                extra=dict(doc.get("extra", {})),
                git=str(doc.get("git", "")),
                schema=schema,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed ledger record: {exc}") from exc


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord`\\ s.

    Appends open/close the file per record — crash-safe (a half-written
    process loses at most its last line) and safely shareable between the
    runner, the service and benchmark mains in one process.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.appended = 0

    def append(self, record: RunRecord) -> RunRecord:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(record.to_json() + "\n")
        self.appended += 1
        return record

    def records(self) -> list[RunRecord]:
        return list(read_ledger(self.path))

    def __len__(self) -> int:
        return len(self.records()) if self.path.exists() else 0


def read_ledger(path: str | Path) -> Iterator[RunRecord]:
    """Yield the records of a JSONL ledger file (validating each line)."""
    p = Path(path)
    if not p.exists():
        raise ValidationError(f"ledger file not found: {p}")
    with p.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{p}:{lineno}: not valid JSON: {exc}") from exc
            yield RunRecord.from_dict(doc)


# ---------------------------------------------------------------------------
# Ambient ledger: the REPRO_LEDGER hook the runner/service/benches consult.
# ---------------------------------------------------------------------------

_ACTIVE: RunLedger | None = None
_ACTIVE_RESOLVED = False


def set_active_ledger(ledger: RunLedger | str | Path | None) -> RunLedger | None:
    """Install (or clear, with ``None``) the process-wide ambient ledger."""
    global _ACTIVE, _ACTIVE_RESOLVED
    if ledger is not None and not isinstance(ledger, RunLedger):
        ledger = RunLedger(ledger)
    _ACTIVE = ledger
    _ACTIVE_RESOLVED = True
    return _ACTIVE


def active_ledger() -> RunLedger | None:
    """The ambient ledger: explicit install wins, else ``$REPRO_LEDGER``.

    Resolved lazily once per process (and re-resolvable via
    :func:`set_active_ledger`); returns ``None`` when neither is set — the
    no-observability fast path.
    """
    global _ACTIVE, _ACTIVE_RESOLVED
    if not _ACTIVE_RESOLVED:
        path = os.environ.get(LEDGER_ENV_VAR)
        _ACTIVE = RunLedger(path) if path else None
        _ACTIVE_RESOLVED = True
    return _ACTIVE


def record_from_result(result, *, run_id: str, kind: str, config: object,
                       stages: dict[str, float],
                       fault_report=None, extra: dict | None = None) -> RunRecord:
    """Build a :class:`RunRecord` from a ``ParallelRunResult``.

    The runner calls this after assembling the result; benchmark drivers
    may call it directly on any result they hold.
    """
    backend = getattr(config, "backend", None)
    faults: dict[str, int] = {}
    if fault_report is not None:
        faults = {
            "injected": fault_report.faults_injected,
            "retries": fault_report.n_retries,
            "recovered": len(fault_report.recovered_ranks),
            "lost": len(fault_report.lost_ranks),
        }
    doc_extra = {"price": result.price, "stderr": result.stderr}
    if extra:
        doc_extra.update(extra)
    return RunRecord(
        run_id=run_id,
        kind=kind,
        engine=result.engine,
        config=config_digest(config),
        backend=getattr(backend, "name", "none"),
        workers=int(getattr(backend, "max_workers", 1) or 1),
        p=result.p,
        stages=dict(stages),
        wall_s=result.wall_time,
        sim_s=result.sim_time,
        faults=faults,
        extra=doc_extra,
        git=git_sha(),
    )
