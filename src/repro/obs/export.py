"""Exporters for the unified trace/metrics stream.

Three consumers, three forms:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format, loadable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing``. One named track per rank/worker, complete
  (``ph: "X"``) events for spans with microsecond ``ts``/``dur``, instant
  (``ph: "i"``) events for retries/faults, ``thread_name`` metadata so
  tracks are labeled.
* :func:`spans_to_csv` — a flat span table following the
  :mod:`repro.perf.reporting` conventions (full-precision floats by
  default, opt-in ``floatfmt``) for spreadsheets and artifact diffs.
* :func:`summary_table` — a per-span-name aggregate
  :class:`~repro.utils.formatting.Table` for terminal output.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.tracer import Tracer, track_sort_key
from repro.perf.reporting import table_to_csv, write_text
from repro.utils.formatting import Table

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "spans_to_csv",
    "summary_table",
]

#: Seconds → trace-event microseconds.
_US = 1e6


def _check_tracer(tracer) -> None:
    if not isinstance(tracer, Tracer):
        raise ValidationError("expected a repro.obs.Tracer")


def chrome_trace(tracer: Tracer, *, process_name: str = "repro") -> dict:
    """Render the tracer as a Chrome trace-event dict.

    Tracks map to ``tid`` in display order (``main`` = 0, then ranks,
    workers, ...); everything shares ``pid`` 0. Span args survive in each
    event's ``args``, so Perfetto shows e.g. the lattice level or the MC
    rank under the slice.
    """
    _check_tracer(tracer)
    tids = {track: tid for tid, track in enumerate(tracer.tracks())}
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": process_name}},
    ]
    for track, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": track}})
    for s in tracer.spans:
        events.append({
            "name": s.name,
            "cat": "span",
            "ph": "X",
            "ts": s.t0 * _US,
            "dur": s.duration * _US,
            "pid": 0,
            "tid": tids[s.track],
            "args": dict(s.args),
        })
    for e in tracer.events:
        events.append({
            "name": e.name,
            "cat": "instant",
            "ph": "i",
            "s": "t",
            "ts": e.t * _US,
            "pid": 0,
            "tid": tids[e.track],
            "args": dict(e.args),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer: Tracer, *, process_name: str = "repro") -> str:
    """Canonical JSON text of :func:`chrome_trace`."""
    return json.dumps(chrome_trace(tracer, process_name=process_name),
                      sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Write the Perfetto-loadable trace JSON to ``path``."""
    return write_text(path, chrome_trace_json(tracer))


def spans_to_csv(tracer: Tracer, *, floatfmt: str | None = None) -> str:
    """Flat CSV of all spans (track, name, start, end, duration, args)."""
    _check_tracer(tracer)
    table = Table(["track", "name", "t_start [s]", "t_end [s]", "dur [s]",
                   "args"])
    for s in sorted(tracer.spans,
                    key=lambda s: (track_sort_key(s.track), s.t0, -s.t1)):
        table.add_row([s.track, s.name, s.t0, s.t1, s.duration,
                       json.dumps(s.args, sort_keys=True) if s.args else ""])
    return table_to_csv(table, floatfmt=floatfmt)


def summary_table(tracer: Tracer, *, floatfmt: str = ".4g") -> Table:
    """Per-span-name aggregate (count/total/mean/max), busiest first."""
    _check_tracer(tracer)
    agg: dict[str, list[float]] = {}
    for s in tracer.spans:
        entry = agg.setdefault(s.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += s.duration
        entry[2] = max(entry[2], s.duration)
    n_events = len(tracer.events)
    table = Table(
        ["span", "count", "total [s]", "mean [s]", "max [s]"],
        title=f"trace summary — {len(tracer.spans)} span(s), "
              f"{n_events} instant event(s) on {len(tracer.tracks())} track(s)",
        floatfmt=floatfmt,
    )
    for name, (count, total, peak) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]):
        table.add_row([name, count, total, total / count, peak])
    return table
