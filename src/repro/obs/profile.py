"""Opt-in sampling profiler: collapsed stacks attributed to active spans.

A :class:`SamplingProfiler` watches one target thread from a background
sampler thread: every ``interval_s`` it snapshots the target's Python
stack via ``sys._current_frames()`` and counts the collapsed frame chain
(``leafward;...;rootward`` reversed to flamegraph's ``root;...;leaf``
order). Samples taken while a labeled region is active are prefixed with
that label, so the profile splits by pipeline stage/engine — the runner
wraps the execute stage in :meth:`profile` when a profiler is attached to
the engine config (``pricer.profiler = SamplingProfiler()``), exactly like
the tracer attachment idiom.

The output is the **collapsed-stack** format consumed by flamegraph.pl,
speedscope and Perfetto's flame importer: one line per distinct stack,
``frame;frame;frame count``. ``repro obs flame`` is the CLI wrapper.

Design constraints:

* **Opt-in, zero ambient cost** — nothing samples unless a profiler is
  attached *and* started; the runner's check is one ``getattr``.
* **Sampling, not tracing** — no ``sys.settrace``; the target thread is
  never slowed beyond the GIL cost of a stack walk every few ms (the
  interval defaults to 5 ms ≈ 200 Hz).
* **Honest about bias** — samples land only when the sampler thread gets
  the GIL; long native sections (NumPy kernels) attribute to the Python
  frame that called them, which is precisely the attribution a pricing
  profile wants.
"""

from __future__ import annotations

import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.errors import ValidationError
from repro.perf.reporting import write_text
from repro.utils.validation import check_positive

__all__ = ["SamplingProfiler", "collapse_frames"]

#: Stacks deeper than this are truncated root-side (keep the leaves: the
#: hot code is at the leaf end; the root end is interpreter scaffolding).
_MAX_DEPTH = 64


def collapse_frames(frame) -> str:
    """Collapse a frame chain into ``root;...;leaf`` flamegraph order."""
    parts: list[str] = []
    while frame is not None and len(parts) < _MAX_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", Path(code.co_filename).stem)
        parts.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples one thread's stack into labeled collapsed-stack counts.

    Parameters
    ----------
    interval_s : seconds between samples (default 5 ms).
    target_ident : thread to sample; defaults to the *starting* thread at
        :meth:`start` time (the pricing thread).

    Usage::

        prof = SamplingProfiler()
        pricer.profiler = prof            # runner starts/stops per stage
        pricer.price(model, payoff, expiry, p)
        prof.write_collapsed("out.collapsed")
    """

    def __init__(self, interval_s: float = 0.005, *,
                 target_ident: int | None = None):
        self.interval_s = check_positive("interval_s", interval_s)
        self.target_ident = target_ident
        #: collapsed stack -> sample count (the flamegraph input).
        self.samples: dict[str, int] = {}
        #: total samples taken (== sum of ``samples.values()``).
        self.n_samples = 0
        self._label: str | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- sampling -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Begin sampling the target thread (idempotent)."""
        if self._thread is not None:
            return self
        if self.target_ident is None:
            self.target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._sample_loop,
                                        name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread and join it (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self.target_ident)
            if frame is not None:
                self._record(collapse_frames(frame))

    def _record(self, stack: str) -> None:
        """Count one collapsed stack under the active label (test seam)."""
        label = self._label
        key = f"{label};{stack}" if label else stack
        self.samples[key] = self.samples.get(key, 0) + 1
        self.n_samples += 1

    # -- span attribution ----------------------------------------------

    @contextmanager
    def profile(self, label: str) -> Iterator["SamplingProfiler"]:
        """Label samples taken inside the block and keep the sampler live.

        Nested labels join with ``;`` so a stage inside a run shows as a
        flamegraph child (``mc.execute;reduce`` etc.). Starts the sampler
        on first entry; the sampler keeps running between blocks (unlabeled
        samples still count) until :meth:`stop`.
        """
        if not label:
            raise ValidationError("profile label must be non-empty")
        self.start()
        previous = self._label
        self._label = f"{previous};{label}" if previous else str(label)
        try:
            yield self
        finally:
            self._label = previous

    # -- export ---------------------------------------------------------

    def collapsed(self) -> str:
        """The collapsed-stack text: ``stack count`` per line, sorted by
        descending count then stack (stable across runs of equal counts)."""
        lines = [f"{stack} {count}" for stack, count in
                 sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path) -> Path:
        """Write :meth:`collapsed` to ``path`` (flamegraph.pl input)."""
        return write_text(path, self.collapsed())

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` hottest stacks (count-descending)."""
        return sorted(self.samples.items(),
                      key=lambda kv: (-kv[1], kv[0]))[:n]

    def clear(self) -> None:
        self.samples.clear()
        self.n_samples = 0

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _busy(seconds: float) -> None:  # pragma: no cover - manual smoke helper
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        sum(i * i for i in range(100))
