"""Unified observability layer: spans, metrics, exporters.

One event stream for both time bases the repo measures in (the simulated
cluster's virtual clocks and the real backends' wall clock):

* :mod:`~repro.obs.tracer` — span/instant recording with a pluggable
  clock and a zero-overhead disabled fast path.
* :mod:`~repro.obs.metrics` — labeled counter/gauge/histogram registry
  with canonical-JSON snapshots.
* :mod:`~repro.obs.export` — Perfetto/``chrome://tracing`` JSON, flat
  span CSV, terminal summary table.

See the "Observability" section of docs/architecture.md for the design
and docs/tutorial.md for a chaos-trace walkthrough.
"""

from repro.obs.tracer import (
    EventRecord,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    track_sort_key,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_report,
    metrics_from_run,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    spans_to_csv,
    summary_table,
    write_chrome_trace,
)

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "SpanRecord",
    "EventRecord",
    "track_sort_key",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_from_report",
    "metrics_from_run",
    "chrome_trace",
    "chrome_trace_json",
    "spans_to_csv",
    "summary_table",
    "write_chrome_trace",
]
