"""Unified observability layer: spans, metrics, exporters.

One event stream for both time bases the repo measures in (the simulated
cluster's virtual clocks and the real backends' wall clock):

* :mod:`~repro.obs.tracer` — span/instant recording with a pluggable
  clock and a zero-overhead disabled fast path.
* :mod:`~repro.obs.metrics` — labeled counter/gauge/histogram registry
  with canonical-JSON snapshots; histograms keep fixed log-spaced bucket
  counts with p50/p90/p99/p999 estimation and exact merging.
* :mod:`~repro.obs.export` — Perfetto/``chrome://tracing`` JSON, flat
  span CSV, terminal summary table.
* :mod:`~repro.obs.ledger` — the append-only JSONL run ledger: one
  canonical record per measured run (stages, backend, faults, git SHA).
* :mod:`~repro.obs.diff` — ledger summaries and noise-aware regression
  diffs (the ``repro obs report`` / ``repro obs diff`` engine).
* :mod:`~repro.obs.profile` — opt-in sampling profiler exporting
  flamegraph collapsed stacks attributed to the active pipeline stage.

See the "Observability" section of docs/architecture.md for the design
and docs/tutorial.md for chaos-trace and ledger-diff walkthroughs.
"""

from repro.obs.tracer import (
    EventRecord,
    NULL_TRACER,
    SpanRecord,
    Tracer,
    track_sort_key,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_report,
    metrics_from_run,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    spans_to_csv,
    summary_table,
    write_chrome_trace,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunRecord,
    active_ledger,
    config_digest,
    git_sha,
    new_run_id,
    read_ledger,
    record_from_result,
    set_active_ledger,
)
from repro.obs.diff import (
    DiffEntry,
    StageStats,
    diff_ledgers,
    diff_table,
    report_table,
    summarize_ledger,
)
from repro.obs.profile import SamplingProfiler, collapse_frames

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "SpanRecord",
    "EventRecord",
    "track_sort_key",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_from_report",
    "metrics_from_run",
    "chrome_trace",
    "chrome_trace_json",
    "spans_to_csv",
    "summary_table",
    "write_chrome_trace",
    "LEDGER_SCHEMA_VERSION",
    "RunRecord",
    "RunLedger",
    "new_run_id",
    "git_sha",
    "config_digest",
    "active_ledger",
    "set_active_ledger",
    "read_ledger",
    "record_from_result",
    "StageStats",
    "DiffEntry",
    "summarize_ledger",
    "diff_ledgers",
    "report_table",
    "diff_table",
    "SamplingProfiler",
    "collapse_frames",
]
