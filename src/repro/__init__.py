"""repro — parallel algorithms for pricing multidimensional financial
derivatives, with a reproducible performance-evaluation harness.

A from-scratch reproduction of the system behind *"Performance Evaluation
of Parallel Algorithms for Pricing Multidimensional [Financial
Derivatives]"* (ICPP 2002). See DESIGN.md for the system inventory and the
paper-text-mismatch note; EXPERIMENTS.md for measured results.

Quick start::

    from repro import MultiAssetGBM, BasketCall, ParallelMCPricer

    model = MultiAssetGBM.equicorrelated(4, spot=100, vol=0.25, rate=0.05, rho=0.3)
    payoff = BasketCall([0.25] * 4, strike=100.0)
    pricer = ParallelMCPricer(n_paths=200_000, seed=42)
    for p in (1, 2, 4, 8):
        r = pricer.price(model, payoff, expiry=1.0, p=p)
        print(p, r.price, r.sim_time)

Subpackages
-----------
``repro.rng``       RNG substrate (LCG, xoshiro, Philox, Sobol, substreams)
``repro.market``    multi-asset GBM, correlation, term structures
``repro.payoffs``   contracts (vanilla/basket/rainbow/Asian/barrier/...)
``repro.analytic``  closed-form baselines
``repro.mc``        sequential Monte Carlo + variance reduction + LSM
``repro.lattice``   binomial/trinomial/BEG lattices
``repro.pde``       finite differences (θ-scheme, PSOR, ADI)
``repro.parallel``  partitioners, backends, simulated cluster
``repro.core``      the parallel pricers (the paper's contribution)
``repro.perf``      speedup/efficiency/isoefficiency harness
``repro.obs``       tracing + metrics (Perfetto traces, snapshots)
``repro.workloads`` seeded synthetic workloads
"""

from repro.errors import (
    ReproError,
    ValidationError,
    ModelError,
    ConvergenceError,
    PartitionError,
    BackendError,
    StabilityError,
)
from repro.market import MultiAssetGBM, FlatCurve, ZeroCurve, constant_correlation
from repro.payoffs import (
    Payoff,
    Call,
    Put,
    DigitalCall,
    DigitalPut,
    BasketCall,
    BasketPut,
    GeometricBasketCall,
    GeometricBasketPut,
    CallOnMax,
    CallOnMin,
    PutOnMax,
    PutOnMin,
    SpreadCall,
    ExchangeOption,
    AsianArithmeticCall,
    AsianGeometricCall,
    BarrierOption,
)
from repro.mc import (
    MonteCarloEngine,
    MCResult,
    PlainMC,
    Antithetic,
    ControlVariate,
    Stratified,
    QMCSobol,
    LongstaffSchwartz,
    lsm_price,
)
from repro.lattice import binomial_price, trinomial_price, beg_price, BEGLattice
from repro.pde import fd_price, adi_price, ADISolver
from repro.parallel import (
    MachineSpec,
    SimulatedCluster,
    SerialBackend,
    ThreadBackend,
    ProcessBackend,
)
from repro.core import (
    ParallelMCPricer,
    ParallelLatticePricer,
    ParallelPDEPricer,
    ParallelLSMPricer,
    ParallelRunResult,
    WorkModel,
)
from repro.obs import MetricsRegistry, Tracer, write_chrome_trace
from repro.perf import ScalingSeries, ScalingExperiment
from repro.rng import Lcg64, Xoshiro256StarStar, Philox4x32, SobolSequence

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ValidationError",
    "ModelError",
    "ConvergenceError",
    "PartitionError",
    "BackendError",
    "StabilityError",
    "MultiAssetGBM",
    "FlatCurve",
    "ZeroCurve",
    "constant_correlation",
    "Payoff",
    "Call",
    "Put",
    "DigitalCall",
    "DigitalPut",
    "BasketCall",
    "BasketPut",
    "GeometricBasketCall",
    "GeometricBasketPut",
    "CallOnMax",
    "CallOnMin",
    "PutOnMax",
    "PutOnMin",
    "SpreadCall",
    "ExchangeOption",
    "AsianArithmeticCall",
    "AsianGeometricCall",
    "BarrierOption",
    "MonteCarloEngine",
    "MCResult",
    "PlainMC",
    "Antithetic",
    "ControlVariate",
    "Stratified",
    "QMCSobol",
    "LongstaffSchwartz",
    "lsm_price",
    "binomial_price",
    "trinomial_price",
    "beg_price",
    "BEGLattice",
    "fd_price",
    "adi_price",
    "ADISolver",
    "MachineSpec",
    "SimulatedCluster",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ParallelMCPricer",
    "ParallelLatticePricer",
    "ParallelPDEPricer",
    "ParallelLSMPricer",
    "ParallelRunResult",
    "WorkModel",
    "Tracer",
    "MetricsRegistry",
    "write_chrome_trace",
    "ScalingSeries",
    "ScalingExperiment",
    "Lcg64",
    "Xoshiro256StarStar",
    "Philox4x32",
    "SobolSequence",
    "__version__",
]
