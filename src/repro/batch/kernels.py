"""Fused strip kernels: shared draws, per-contract arithmetic, bitwise prices.

Every kernel here obeys one invariant: for each contract in the strip it
performs *exactly* the floating-point operations, in exactly the order,
of that contract's single run — only the **inputs** those operations read
(the normal block, the terminal-price matrix, the lattice mesh) are
computed once and shared. Sharing an identical input array is invisible
to IEEE-754 arithmetic, so every strip price is bitwise equal to its
single-run price; the strip-equivalence tests assert the bits, not a
tolerance.

What is shared per strip:

* the Gaussian block ``z`` (one Philox/Sobol draw instead of C) and with
  it the model's correlation Cholesky, applied once inside
  ``terminal_from_normals`` / ``paths_from_normals``;
* the terminal-price matrix or path tensor those normals map to;
* for the lattice, the per-level price mesh the payoffs and intrinsic
  values are evaluated on.

What is never shared: anything downstream of a payoff — each contract's
discounted values, sufficient statistics, reduction and finalize run
independently, matching the single-run code path operation for
operation. Techniques without a fused form (control variates, stratified,
user subclasses) fall back to per-contract runs on identically-seeded
generator copies — slower, still bitwise.
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.lattice.beg import BEGLattice
from repro.mc.qmc import QMCSobol
from repro.mc.statistics import SampleStats
from repro.mc.variance_reduction import Antithetic, PlainMC, _draw_normals
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "strip_partial",
    "strip_estimate",
    "beg_strip_prices",
    "price_strip",
    "price_task",
]


def _check_homogeneous(payoffs: Sequence[Any]) -> bool:
    """Validate the strip's shared draw shape; returns path dependence."""
    if not payoffs:
        raise ValidationError("a strip kernel needs at least one payoff")
    flags = {bool(p.is_path_dependent) for p in payoffs}
    if len(flags) > 1:
        raise ValidationError(
            "strip payoffs must be homogeneous in path dependence; mixing "
            "terminal and path-dependent contracts changes the shared draws"
        )
    return flags.pop()


def _shared_values(model: Any, payoffs: Sequence[Any], expiry: float,
                   z: np.ndarray, steps: Optional[int]) -> List[np.ndarray]:
    """Per-contract discounted payoff samples from one shared normal block.

    Mirrors ``repro.mc.variance_reduction._discounted_payoffs`` with the
    model transform hoisted out of the per-payoff loop: the price matrix /
    path tensor is identical to what each single run computes from the
    same ``z``, so each contract's samples match its single run bitwise.
    """
    df = float(np.exp(-model.rate * expiry))
    if payoffs[0].is_path_dependent:
        if steps is None:
            raise ValidationError(
                f"{type(payoffs[0]).__name__} is path-dependent: pass steps= "
                f"to the engine"
            )
        paths = model.paths_from_normals(z, expiry, steps)
        return [df * p.path(paths) for p in payoffs]
    prices = model.terminal_from_normals(z, expiry)
    return [df * p.terminal(prices) for p in payoffs]


def strip_partial(technique: Any, model: Any, payoffs: Sequence[Any],
                  expiry: float, n: int, gen: Any, *,
                  steps: Optional[int] = None,
                  skip: Optional[int] = None) -> List[Any]:
    """One rank's fused partials: element j matches ``technique.partial``
    for payoff j on an identically-seeded generator, bitwise.

    ``skip`` is the QMC point offset (``None`` for stream techniques,
    matching the single-run task tuples). The shared master ``gen`` ends
    in the same state a single run's generator would — the fused draw
    consumes the same block — so batched estimate loops stay aligned.
    """
    payoffs = tuple(payoffs)
    path_dep = _check_homogeneous(payoffs)

    kind = type(technique)
    if kind is PlainMC:
        z = _draw_normals(model, gen, n, steps, path_dep)
        return [SampleStats.from_values(y)
                for y in _shared_values(model, payoffs, expiry, z, steps)]

    if kind is Antithetic:
        if n % 2:
            raise ValidationError(
                "antithetic sampling requires an even path count"
            )
        half = n // 2
        z = _draw_normals(model, gen, half, steps, path_dep)
        ys_plus = _shared_values(model, payoffs, expiry, z, steps)
        ys_minus = _shared_values(model, payoffs, expiry, -z, steps)
        return [SampleStats.from_values(0.5 * (yp + ym))
                for yp, ym in zip(ys_plus, ys_minus)]

    if kind is QMCSobol:
        r_count = technique.replicates
        if n % r_count:
            raise ValidationError(
                f"path count {n} must be a multiple of replicates={r_count}"
            )
        per = n // r_count
        offset = 0 if skip is None else int(skip)
        parts: List[List[SampleStats]] = [[] for _ in payoffs]
        for r in range(r_count):
            # One Sobol block per replicate for the whole strip; the
            # exemplar payoff only sets the dimension plan, which the
            # homogeneity check makes strip-wide.
            z = technique._normals_for(model, payoffs[0], steps, per, r,
                                       offset)
            for j, y in enumerate(
                    _shared_values(model, payoffs, expiry, z, steps)):
                parts[j].append(SampleStats.from_values(y))
        return [tuple(p) for p in parts]

    # Generic fallback: no fused form for this technique (control
    # variates, stratified, subclasses). Contract 0 runs on the master
    # generator (advancing it exactly as a single run would); the rest run
    # on copies of its pre-call state, i.e. on the identically-seeded
    # fresh substream each single run receives.
    pre = copy.deepcopy(gen)
    out: List[Any] = []
    for j, payoff in enumerate(payoffs):
        g = gen if j == 0 else copy.deepcopy(pre)
        if skip is None:
            out.append(technique.partial(model, payoff, expiry, n, g,
                                         steps=steps))
        else:
            out.append(technique.partial(model, payoff, expiry, n, g,
                                         steps=steps, skip=skip))
    return out


def strip_estimate(technique: Any, model: Any, payoffs: Sequence[Any],
                   expiry: float, n: int, gen: Any, *,
                   steps: Optional[int] = None,
                   batch_size: int = 1 << 18) -> List[Tuple[float, float, int]]:
    """Sequential fused estimate: element j matches ``technique.estimate``
    for payoff j — same batching loop, same skip bookkeeping, bitwise.

    This is the kernel the batched golden-master replay runs: it must
    mirror :meth:`repro.mc.variance_reduction.Technique.estimate` (and the
    QMC override's per-replicate offsets) exactly, or the corpus digests
    would flag the batched path as a silent rebaseline.
    """
    payoffs = tuple(payoffs)
    check_positive_int("n", n)
    check_positive("expiry", expiry)
    parts: List[List[Any]] = [[] for _ in payoffs]

    if type(technique) is QMCSobol:
        r_count = technique.replicates
        if n % r_count:
            raise ValidationError(
                f"n={n} must be a multiple of replicates={r_count}"
            )
        per_total = n // r_count
        done = 0
        per_batch = max(batch_size // r_count, 1)
        while done < per_total:
            b = min(per_batch, per_total - done)
            fused = strip_partial(technique, model, payoffs, expiry,
                                  b * r_count, gen, steps=steps, skip=done)
            for j, part in enumerate(fused):
                parts[j].append(part)
            done += b
    else:
        done = 0
        while done < n:
            b = min(batch_size, n - done)
            fused = strip_partial(technique, model, payoffs, expiry, b, gen,
                                  steps=steps)
            for j, part in enumerate(fused):
                parts[j].append(part)
            done += b

    return [technique.finalize(technique.combine(p)) for p in parts]


def beg_strip_prices(model: Any, payoffs: Sequence[Any], expiry: float,
                     steps: int, *, american: bool = False) -> List[float]:
    """Fused BEG backward induction: one lattice, one mesh per level,
    C value tensors; element j matches ``beg_price(...).price`` bitwise.

    The lattice geometry (axes, branch probabilities, discount) and each
    level's price mesh are built once; every contract's induction then
    performs the single-run :meth:`BEGLattice.step` arithmetic on its own
    tensor, so sharing the mesh changes nothing downstream of it.
    """
    payoffs = tuple(payoffs)
    if not payoffs:
        raise ValidationError("a strip kernel needs at least one payoff")
    lattice = BEGLattice(model, expiry, steps)
    d = lattice.dim
    for j, payoff in enumerate(payoffs):
        if payoff.dim != d:
            raise ValidationError(
                f"strip payoff {j} dim {payoff.dim} does not match model "
                f"dim {d}"
            )
        if payoff.is_path_dependent:
            raise ValidationError(
                "BEG lattice prices non-path-dependent payoffs only"
            )

    pts = lattice.level_prices(steps).reshape(-1, d)
    shape = (steps + 1,) * d
    values = [p.terminal(pts).reshape(shape) for p in payoffs]
    for t in range(steps - 1, -1, -1):
        if american:
            pts_t = lattice.level_prices(t).reshape(-1, d)
            shape_t = (t + 1,) * d
        for j, payoff in enumerate(payoffs):
            v = lattice.step(values[j], t)
            if american:
                v = np.maximum(v, payoff.terminal(pts_t).reshape(shape_t))
            values[j] = v
    return [float(v.reshape(-1)[0]) for v in values]


# ---------------------------------------------------------------------------
# Serving-layer entry points (lazy imports: these run inside backend
# workers, and repro.serve imports repro.batch lazily in the other
# direction).
# ---------------------------------------------------------------------------


def price_strip(strip: Any) -> List[Any]:
    """Price one :class:`~repro.batch.strip.ContractStrip` through the
    fused engine run; returns one ``PriceQuote`` per member, in order.

    Builds the engine from the exemplar request exactly as the single-path
    worker would (the registry serve hook reads only the settings every
    member shares), then drives the strip stages via
    :func:`repro.engine.runner.run_strip`. Price and stderr match each
    member's single-request quote bitwise; ``sim_time`` describes the
    fused run and is shared by all members.
    """
    from repro.engine.registry import default_registry
    from repro.engine.runner import run_strip
    from repro.serve.service import PriceQuote

    spec = default_registry().get(strip.engine)
    if spec.serve is None or spec.pipeline is None:
        raise ValidationError(
            f"engine {strip.engine!r} cannot price strips (no serve or "
            f"pipeline hook)"
        )
    pricer = spec.serve(strip.exemplar_request())
    engine = spec.pipeline()(pricer)
    results = run_strip(engine, strip.model, list(strip.payoffs),
                        strip.expiry, strip.p)
    return [PriceQuote(engine=strip.engine, price=r.price, stderr=r.stderr,
                       sim_time=r.sim_time) for r in results]


def price_task(task: Any) -> Any:
    """Polymorphic batch worker: a strip prices fused, a request single.

    Module-level and picklable, so the pricing service keeps exactly one
    ``backend.map`` call per batch whether or not strips formed.
    """
    from repro.batch.strip import ContractStrip

    if isinstance(task, ContractStrip):
        return price_strip(task)
    from repro.serve.service import price_request

    return price_request(task)
