"""The columnar contract strip: one model, one engine config, many payoffs.

A :class:`ContractStrip` keeps the member requests themselves (so the
round trip back to single requests is exact) and exposes the
structure-of-arrays view the fused kernels consume: the shared model /
expiry / rank count on one side, the payoff column — and, via
:meth:`ContractStrip.column`, any numeric payoff attribute as a dense
array — on the other.

Grouping identity is :func:`batch_key`: everything a fused kernel must
hold fixed across the strip (market model, expiry, engine family, engine
settings **including the seed**, path dependence) and nothing it
vectorizes over (the payoff). Two requests share a strip iff their batch
keys are equal; each member keeps its own :func:`request_key` untouched,
so batching can never change what the price cache stores a quote under.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.serve.batching import PricingRequest, request_key
from repro.serve.cache import stable_key
from repro.verify.contracts import describe_workload

__all__ = ["ContractStrip", "batch_key"]


def batch_key(request: PricingRequest) -> str:
    """Canonical SHA-256 grouping key: the request minus its payoff.

    Covers the market model, expiry, engine family, the engine settings
    dict (which includes the seed for seeded families — strip members
    must share one master stream) and the payoff's path dependence (it
    fixes the shared draw shape). Deliberately excludes the payoff's
    parameters and every display label: those are the strip axis.
    """
    desc = describe_workload(request.workload)
    return stable_key({
        "model": desc["model"],
        "expiry": desc["expiry"],
        "engine": request.engine,
        "settings": request.settings(),
        "path_dependent": bool(request.workload.payoff.is_path_dependent),
    })


@dataclass(frozen=True)
class ContractStrip:
    """A homogeneous, ordered group of pricing requests.

    Construct with :meth:`from_requests` (it validates homogeneity);
    the dataclass fields are the member tuple plus the batch key they
    share. Frozen and picklable: a strip is one backend task.
    """

    requests: Tuple[PricingRequest, ...]
    key: str

    @classmethod
    def from_requests(cls, requests: Iterable[PricingRequest]) -> "ContractStrip":
        members = tuple(requests)
        if not members:
            raise ValidationError("a contract strip needs at least one request")
        keys = {batch_key(r) for r in members}
        if len(keys) > 1:
            raise ValidationError(
                "strip members must share one batch key (same model, expiry, "
                f"engine and settings); got {len(keys)} distinct keys"
            )
        return cls(requests=members, key=keys.pop())

    # -- shared (scalar) side ------------------------------------------

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def engine(self) -> str:
        return self.requests[0].engine

    @property
    def model(self) -> Any:
        return self.requests[0].workload.model

    @property
    def expiry(self) -> float:
        return self.requests[0].workload.expiry

    @property
    def p(self) -> int:
        return self.requests[0].p

    def exemplar_request(self) -> PricingRequest:
        """The first member — carries the shared engine settings."""
        return self.requests[0]

    # -- columnar (per-contract) side ----------------------------------

    @property
    def payoffs(self) -> Tuple[Any, ...]:
        return tuple(r.workload.payoff for r in self.requests)

    def keys(self) -> List[str]:
        """Each member's own cache key, in strip order — *preserved*:
        identical to the keys the unbatched path would compute."""
        return [request_key(r) for r in self.requests]

    def column(self, attr: str) -> np.ndarray:
        """A payoff attribute as a dense strip-axis array (e.g. strikes)."""
        try:
            return np.asarray([getattr(r.workload.payoff, attr)
                               for r in self.requests])
        except AttributeError:
            raise ValidationError(
                f"payoff {type(self.requests[0].workload.payoff).__name__} "
                f"has no attribute {attr!r}"
            ) from None

    def to_requests(self) -> List[PricingRequest]:
        """The exact member requests back, in strip order (round trip)."""
        return list(self.requests)
