"""Vectorized batch pricing: columnar contract strips through fused kernels.

The serving layer's unit of amortization. A :class:`ContractStrip` is a
structure-of-arrays view of a *homogeneous* group of
:class:`~repro.serve.batching.PricingRequest`\\ s — one market model, one
expiry, one engine family, identical engine settings, many payoffs — and
:func:`plan_batches` is the planning stage that groups a batch's
cache-missed requests into such strips. One backend task then prices the
whole strip through a fused kernel (:mod:`repro.batch.kernels`): path
generation, the correlation Cholesky and the Sobol/Philox block are paid
once per strip, with only the payoff evaluation vectorized over the strip
axis.

The contract that makes this safe is **bitwise strip equivalence**: every
contract's price out of a fused strip equals the price of its own
single-request run, bit for bit — the fused kernels share the *draws*,
never the per-contract arithmetic or its order. The strip-equivalence test
tier (``tests/test_batch_strip.py``), the ``strip-batching`` determinism
check and the batched golden-master replay all gate on exactly that.
"""

from repro.batch.plan import BatchPlan, plan_batches
from repro.batch.strip import ContractStrip, batch_key

__all__ = [
    "ContractStrip",
    "batch_key",
    "BatchPlan",
    "plan_batches",
]
