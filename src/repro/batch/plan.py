"""Batch planning: cache-missed requests → strips + leftover singles.

:func:`plan_batches` is the grouping stage between the pricing service's
cache dedup and its one ``backend.map``: requests whose engine family is
*batchable* (per the registry's capability flag) are grouped by
:func:`~repro.batch.strip.batch_key`, groups that reach ``min_strip``
members become :class:`~repro.batch.strip.ContractStrip`\\ s, and
everything else — non-batchable families, undersized groups — stays a
single request. Ordering is deterministic: strips appear in first-seen
key order with members in submission order, then singles (non-batchable
in submission order, undersized groups after them in first-seen order),
so the plan (and therefore the map's task list) is a pure function of the
request sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.batch.strip import ContractStrip, batch_key
from repro.engine.registry import default_registry
from repro.errors import ValidationError
from repro.serve.batching import PricingRequest
from repro.utils.validation import check_positive_int

__all__ = ["BatchPlan", "plan_batches"]


@dataclass(frozen=True)
class BatchPlan:
    """The grouping decision for one batch of cache misses."""

    strips: Tuple[ContractStrip, ...]
    singles: Tuple[PricingRequest, ...]

    @property
    def fused_contracts(self) -> int:
        """How many requests ride in strips (the amortized share)."""
        return sum(len(s) for s in self.strips)

    def tasks(self) -> List[object]:
        """The backend-map task list: strips first, then singles."""
        return list(self.strips) + list(self.singles)


def plan_batches(requests: Iterable[PricingRequest], *,
                 min_strip: int = 2) -> BatchPlan:
    """Group a request sequence into fused strips and leftover singles.

    ``min_strip`` is the smallest group worth fusing — a strip of one has
    no sharing to amortize, so undersized groups go back to the single
    path (which is also the bitwise-identical fallback for everything a
    fused kernel does not cover).
    """
    check_positive_int("min_strip", min_strip)
    batchable = set(default_registry().names(batchable=True, servable=True))
    groups: Dict[str, List[PricingRequest]] = {}
    singles: List[PricingRequest] = []
    order: List[str] = []
    for request in requests:
        if not isinstance(request, PricingRequest):
            raise ValidationError(
                f"expected PricingRequest items, got {type(request).__name__}"
            )
        if request.engine not in batchable:
            singles.append(request)
            continue
        key = batch_key(request)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(request)

    strips: List[ContractStrip] = []
    for key in order:
        members = groups[key]
        if len(members) >= min_strip:
            strips.append(ContractStrip.from_requests(members))
        else:
            singles.extend(members)
    return BatchPlan(strips=tuple(strips), singles=tuple(singles))
