"""Command-line interface: ``python -m repro <command>``.

Seven commands cover the library's headline flows without writing code:

* ``price`` — price one contract with the MC engine and a confidence
  interval (optionally against the matching closed form);
* ``engines`` — list every registered engine family with its capability
  flags and the verification-corpus cases it participates in (``--csv``
  for machine consumption);
* ``scaling`` — run a strong-scaling sweep of one parallel engine on the
  simulated machine and print the full diagnostic table (optionally
  emitting a Chrome trace of the largest run via ``--emit-trace``);
* ``portfolio`` — price a seeded random book under each scheduling policy
  and compare makespans (one shared price cache values each contract once
  across the four runs);
* ``serve`` — push a request stream through the batched
  :class:`~repro.serve.PricingService` and report per-pass throughput,
  batch/map counts and cache hit rate;
* ``trace`` — run one parallel pricing job with the tracer attached and
  write a Perfetto-loadable ``<out>.trace.json`` plus a canonical
  ``<out>.metrics.json`` snapshot (optionally under an injected fault
  plan — the chaos-trace workflow from docs/tutorial);
* ``obs`` — the run-ledger toolbox: ``obs report`` summarizes a JSONL
  ledger per (kind, engine, stage) with quantiles; ``obs diff`` compares
  two ledgers under noise-aware tolerance bands and exits nonzero on a
  regression (the CI perf gate); ``obs flame`` runs one pricing job under
  the sampling profiler and writes flamegraph collapsed stacks;
* ``verify`` — replay the correctness-verification corpus (differential
  oracle, metamorphic properties, golden-master diff, determinism checks)
  and exit nonzero on any violation; ``--update`` rebaselines the golden
  snapshot after an intentional numerical change.

Engine families are resolved by canonical name through the
:class:`~repro.engine.registry.EngineRegistry` — the ``--engine`` choices
and the per-engine workload/pricer factories all come from the registry,
so a newly registered family shows up in every subcommand automatically.

The functions return an exit code and print to stdout, so they are unit-
testable without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.engine.registry import default_registry

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel pricing of multidimensional derivatives "
                    "(ICPP 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_price = sub.add_parser("price", help="price one contract by Monte Carlo")
    p_price.add_argument("--contract", choices=("basket", "rainbow", "spread"),
                         default="basket")
    p_price.add_argument("--dim", type=int, default=4,
                         help="basket dimension (basket contract only)")
    p_price.add_argument("--paths", type=int, default=100_000)
    p_price.add_argument("--seed", type=int, default=0)
    p_price.add_argument("--qmc", action="store_true",
                         help="use randomized Sobol QMC instead of plain MC")

    p_engines = sub.add_parser(
        "engines",
        help="list registered engine families, capability flags and the "
             "verification-corpus cases each participates in",
    )
    p_engines.add_argument("--csv", action="store_true",
                           help="emit the table as CSV instead of text")

    p_scale = sub.add_parser("scaling", help="strong-scaling sweep on the "
                                             "simulated machine")
    p_scale.add_argument("--engine",
                         choices=default_registry().names(scalable=True),
                         default="mc")
    p_scale.add_argument("--plist", default="1,2,4,8,16,32",
                         help="comma-separated processor counts")
    p_scale.add_argument("--paths", type=int, default=200_000)
    p_scale.add_argument("--steps", type=int, default=200)
    p_scale.add_argument("--grid", type=int, default=128)
    p_scale.add_argument("--alpha", type=float, default=50e-6,
                         help="message latency [s]")
    p_scale.add_argument("--beta", type=float, default=1e-8,
                         help="per-byte cost [s/B]")
    p_scale.add_argument("--seed", type=int, default=0)
    p_scale.add_argument("--scheduler", choices=("static", "lpt", "steal"),
                         default=None,
                         help="execute-stage scheduler for the real backend "
                              "(placement only; prices are scheduler-"
                              "invariant bitwise)")
    p_scale.add_argument("--emit-trace", metavar="PREFIX", default=None,
                         help="after the sweep, re-run the largest P with the "
                              "tracer on and write PREFIX.trace.json + "
                              "PREFIX.metrics.json")

    p_trace = sub.add_parser(
        "trace",
        help="run one traced parallel pricing job; write Chrome-trace JSON "
             "(load in Perfetto / chrome://tracing) and a metrics snapshot",
    )
    p_trace.add_argument("--engine",
                         choices=default_registry().names(traceable=True),
                         default="mc")
    p_trace.add_argument("--p", type=int, default=8,
                         help="simulated processor count")
    p_trace.add_argument("--paths", type=int, default=20_000)
    p_trace.add_argument("--steps", type=int, default=64)
    p_trace.add_argument("--grid", type=int, default=64)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--out", default="trace_out/run",
                         help="output prefix (writes <out>.trace.json and "
                              "<out>.metrics.json)")
    p_trace.add_argument("--backend", choices=("serial", "thread", "process"),
                         default="serial",
                         help="real execution backend for the MC engine; "
                              "non-serial backends also write a wall-clock "
                              "<out>.workers.trace.json of per-worker task "
                              "spans")
    p_trace.add_argument("--fault-seed", type=int, default=None,
                         help="draw a FaultPlan from this seed (chaos trace); "
                              "omit for a fault-free run")
    p_trace.add_argument("--crash-rate", type=float, default=0.25)
    p_trace.add_argument("--straggler-rate", type=float, default=0.25)
    p_trace.add_argument("--policy", choices=("fail_fast", "retry", "degrade"),
                         default="retry")

    p_verify = sub.add_parser(
        "verify",
        help="run the correctness-verification suite: differential oracle, "
             "metamorphic properties, golden-master diff, determinism checks",
    )
    p_verify.add_argument("--golden", default="tests/golden/verify_corpus.json",
                          help="golden snapshot path (default: %(default)s)")
    p_verify.add_argument("--update", action="store_true",
                          help="rebaseline: overwrite the golden snapshot with "
                               "this run's prices instead of diffing")
    p_verify.add_argument("--report", metavar="PATH", default=None,
                          help="write a machine-readable JSON report here")
    p_verify.add_argument("--skip", action="append", default=[],
                          choices=("oracle", "metamorphic", "golden",
                                   "determinism"),
                          help="skip one section (repeatable)")
    p_verify.add_argument("--batched", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="also replay batchable corpus cells through "
                               "the fused strip kernels and run the "
                               "strip-batching determinism check "
                               "(--no-batched restores pre-strip timings)")

    p_book = sub.add_parser("portfolio", help="schedule a random book and "
                                              "compare policies")
    p_book.add_argument("--contracts", type=int, default=16)
    p_book.add_argument("--paths", type=int, default=20_000)
    p_book.add_argument("--ranks", type=int, default=4)
    p_book.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve",
        help="run a request stream through the batched pricing service "
             "(cache + chunked map) and report throughput",
    )
    p_serve.add_argument("--requests", type=int, default=48,
                         help="stream length; beyond --contracts the stream "
                              "repeats contracts, exercising the cache")
    p_serve.add_argument("--contracts", type=int, default=16,
                         help="distinct contracts in the book")
    p_serve.add_argument("--paths", type=int, default=5_000,
                         help="MC paths per request")
    p_serve.add_argument("--backend", choices=("serial", "thread", "process"),
                         default="serial")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="backend worker count (default: os.cpu_count)")
    p_serve.add_argument("--batch", type=int, default=16,
                         help="max batch size")
    p_serve.add_argument("--chunksize", default="auto",
                         help='"auto", "none", or an int (tasks per dispatch)')
    p_serve.add_argument("--cache", type=int, default=256,
                         help="price-cache capacity (0 disables caching)")
    p_serve.add_argument("--repeat", type=int, default=2,
                         help="replay the stream this many times "
                              "(pass 2+ shows the cache-hit fast path)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--batched", action="store_true",
                         help="fuse cache-missed requests into contract "
                              "strips (shared path generation; quotes stay "
                              "bitwise equal to the single path)")
    p_serve.add_argument("--min-strip", type=int, default=2,
                         help="smallest miss group worth fusing "
                              "(--batched only)")
    p_serve.add_argument("--book", choices=("portfolio", "strip"),
                         default="portfolio",
                         help="request book shape: a random portfolio "
                              "(heterogeneous models) or a strike strip on "
                              "one shared model (the batchable shape)")
    p_serve.add_argument("--ledger", default=None,
                         help="append one run-ledger record per executed "
                              "batch to this JSONL file")

    p_gate = sub.add_parser(
        "gateway",
        help="drive seeded traffic through the sharded admission-controlled "
             "gateway (virtual time) and report goodput / latency / shed",
    )
    p_gate.add_argument("--shards", type=int, default=4,
                        help="shard worker count (default %(default)s)")
    p_gate.add_argument("--overload", default="1x",
                        help='offered load as a multiple of all-miss '
                             'capacity, e.g. "2x" or "0.8" '
                             '(default %(default)s)')
    p_gate.add_argument("--duration", type=float, default=5.0,
                        help="traffic window in virtual seconds")
    p_gate.add_argument("--contracts", type=int, default=16,
                        help="distinct contracts in the traffic book")
    p_gate.add_argument("--paths", type=int, default=2_000,
                        help="MC paths per request (drives the cost model)")
    p_gate.add_argument("--max-queue", type=int, default=64,
                        help="per-shard per-lane queue bound")
    p_gate.add_argument("--seed", type=int, default=0)
    p_gate.add_argument("--book", choices=("strip", "portfolio", "risk"),
                        default="strip",
                        help='"risk" serves the seeded shocked-contract '
                             "book (implies repeated-book traffic and a "
                             'kind="risk" ledger record)')
    p_gate.add_argument("--repeat-book", action="store_true",
                        help="replay the same contracts (cache-hit traffic) "
                             "instead of unique all-miss requests")
    p_gate.add_argument("--priced", action="store_true",
                        help="actually price cache misses (bitwise-"
                             "deterministic price stream; slower)")
    p_gate.add_argument("--closed", type=int, default=0, metavar="CLIENTS",
                        help="closed loop with this many think-time clients "
                             "instead of open-loop Poisson arrivals")
    p_gate.add_argument("--think", type=float, default=0.01,
                        help="closed-loop client think time in seconds")
    p_gate.add_argument("--ledger", default=None,
                        help="append the run record to this JSONL ledger")

    p_risk = sub.add_parser(
        "risk",
        help="seeded scenario sweep: full-revaluation VaR/ES through the "
             "shared price cache, with scenarios/sec and hit-rate "
             "accounting",
    )
    p_risk.add_argument("--dim", type=int, default=2,
                        help="assets in the shared market (default "
                             "%(default)s)")
    p_risk.add_argument("--contracts", type=int, default=4,
                        help="contracts in the strike-ladder book")
    p_risk.add_argument("--scenarios", type=int, default=64,
                        help="scenario count for seeded generators")
    p_risk.add_argument("--generator", default="stress",
                        choices=("stress", "horizon", "historical", "axes"))
    p_risk.add_argument("--horizon", type=float, default=10.0,
                        help="risk horizon in trading days "
                             "(default %(default)s)")
    p_risk.add_argument("--paths", type=int, default=2_000,
                        help="MC paths per revaluation request")
    p_risk.add_argument("--seed", type=int, default=0)
    p_risk.add_argument("--p", type=int, default=1,
                        help="simulated processor count per request")
    p_risk.add_argument("--levels", default="0.95,0.99",
                        help="comma-separated confidence levels")
    p_risk.add_argument("--hedge", action="store_true",
                        help="also compute central-difference deltas and "
                             "delta-hedged tail measures")
    p_risk.add_argument("--ledger", default=None,
                        help="append the run records to this JSONL ledger")

    p_obs = sub.add_parser(
        "obs",
        help="run-ledger observability: summarize, diff (perf gate), "
             "profile to flamegraph collapsed stacks",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_report = obs_sub.add_parser(
        "report", help="per-(kind, engine, stage) timing summary of a "
                       "JSONL run ledger")
    p_report.add_argument("ledger", help="ledger file (JSONL of RunRecords)")
    p_report.add_argument("--csv", action="store_true",
                          help="emit CSV instead of the text table")

    p_diff = obs_sub.add_parser(
        "diff", help="compare two ledgers stage by stage; exit 1 when any "
                     "stage regresses past its fail band")
    p_diff.add_argument("base", help="baseline ledger (JSONL)")
    p_diff.add_argument("new", help="candidate ledger (JSONL)")
    p_diff.add_argument("--warn-margin", type=float, default=0.25,
                        help="warn band margin over 1.0 before noise "
                             "widening (default %(default)s)")
    p_diff.add_argument("--fail-ratio", type=float, default=2.0,
                        help="hard-fail ratio, never narrowed by noise "
                             "(default %(default)sx)")
    p_diff.add_argument("--noise-z", type=float, default=3.0,
                        help="how many baseline CVs widen the warn band "
                             "(default %(default)s)")
    p_diff.add_argument("--min-seconds", type=float, default=1e-4,
                        help="stages with baseline mean below this are "
                             "info-only (default %(default)s)")
    p_diff.add_argument("--csv", action="store_true",
                        help="emit CSV instead of the text table")

    p_flame = obs_sub.add_parser(
        "flame", help="run one pricing job under the sampling profiler and "
                      "write flamegraph collapsed stacks")
    p_flame.add_argument("--engine",
                         choices=default_registry().names(traceable=True),
                         default="mc")
    p_flame.add_argument("--p", type=int, default=4,
                         help="simulated processor count")
    p_flame.add_argument("--paths", type=int, default=100_000)
    p_flame.add_argument("--steps", type=int, default=64)
    p_flame.add_argument("--grid", type=int, default=64)
    p_flame.add_argument("--seed", type=int, default=0)
    p_flame.add_argument("--interval-ms", type=float, default=2.0,
                         help="sampling interval (default %(default)s ms)")
    p_flame.add_argument("--repeat", type=int, default=3,
                         help="price this many times to accumulate samples")
    p_flame.add_argument("--out", default="trace_out/profile.collapsed",
                         help="collapsed-stack output path (flamegraph.pl / "
                              "speedscope input)")
    return parser


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.mc import MonteCarloEngine, QMCSobol
    from repro.workloads import basket_workload, rainbow_workload, spread_workload

    if args.contract == "basket":
        w = basket_workload(args.dim)
    elif args.contract == "rainbow":
        w = rainbow_workload()
    else:
        w = spread_workload()
    technique = QMCSobol(8) if args.qmc else None
    n = args.paths
    if args.qmc and n % 8:
        n += 8 - n % 8  # round up to the replicate count
    engine = MonteCarloEngine(n, technique=technique, seed=args.seed)
    result = engine.price(w.model, w.payoff, w.expiry)
    lo, hi = result.confidence_interval()
    print(f"contract : {w.name} (dim={w.dim}, expiry={w.expiry})")
    print(f"paths    : {result.n_paths} ({result.technique})")
    print(f"price    : {result.price:.6f} ± {result.stderr:.6f}")
    print(f"95% CI   : [{lo:.6f}, {hi:.6f}]")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.utils import Table
    from repro.verify.contracts import default_corpus

    cases_by_family: dict[str, list[str]] = {}
    for case in default_corpus():
        for family in case.engines:
            cases_by_family.setdefault(family, []).append(case.name)

    registry = default_registry()
    table = Table(["engine", "kind", "capabilities", "sched", "max dim",
                   "corpus cases", "summary"],
                  title=f"{len(registry)} registered engine families")
    for spec in registry.specs():
        kind = "pipeline" if spec.pipeline is not None else "reference"
        caps = spec.capabilities
        max_dim = "-" if caps.max_dim is None else str(caps.max_dim)
        sched = "static,lpt,steal" if caps.schedulable else "static"
        table.add_row([spec.name, kind, ",".join(caps.flags()) or "-",
                       sched, max_dim,
                       str(len(cases_by_family.get(spec.name, []))),
                       spec.summary])
    if args.csv:
        from repro.perf.reporting import table_to_csv

        print(table_to_csv(table), end="")
    else:
        print(table.render())
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.parallel import MachineSpec
    from repro.perf import ScalingExperiment

    try:
        p_list = [int(tok) for tok in args.plist.split(",") if tok.strip()]
    except ValueError:
        print(f"error: --plist must be comma-separated integers, got {args.plist!r}",
              file=sys.stderr)
        return 2
    if not p_list or any(p <= 0 for p in p_list):
        print("error: --plist needs positive processor counts", file=sys.stderr)
        return 2
    spec = MachineSpec(alpha=args.alpha, beta=args.beta)
    registry = default_registry()
    scheduler = getattr(args, "scheduler", None)
    if scheduler not in (None, "static") and \
            args.engine not in registry.names(schedulable=True):
        print(f"error: engine {args.engine!r} is not schedulable; "
              f"--scheduler {scheduler} needs one of "
              f"{','.join(registry.names(schedulable=True))}",
              file=sys.stderr)
        return 2
    w, pricer, label = registry.get(args.engine).scaling(args, spec)
    if scheduler is not None:
        from repro.parallel.sched import make_scheduler

        pricer.scheduler = make_scheduler(scheduler)
    exp = ScalingExperiment(pricer, w.model, w.payoff, w.expiry, label=label)
    print(exp.report(p_list))
    if args.emit_trace:
        from repro.obs import Tracer

        # Re-run the largest configuration with the tracer attached; the
        # sweep itself stays untraced so its timings are undisturbed.
        pricer.tracer = Tracer()
        pricer.record = True
        result = pricer.price(w.model, w.payoff, w.expiry, max(p_list))
        print()
        _write_trace_artifacts(pricer.tracer, result, args.emit_trace)
    return 0


def _write_trace_artifacts(tracer, result, out_prefix: str) -> None:
    """Write ``<prefix>.trace.json`` + ``<prefix>.metrics.json`` for one
    traced run and print the span summary."""
    from repro.obs import metrics_from_report, metrics_from_run, summary_table, write_chrome_trace
    from repro.perf.reporting import write_text

    trace_path = write_chrome_trace(tracer, f"{out_prefix}.trace.json")
    cluster = result.meta.get("cluster")
    registry = metrics_from_report(cluster.report()) if cluster is not None else None
    registry = metrics_from_run(result, registry)
    metrics_path = write_text(f"{out_prefix}.metrics.json",
                              registry.to_json() + "\n")
    print(summary_table(tracer))
    print(f"trace   : {trace_path} (open in Perfetto / chrome://tracing)")
    print(f"metrics : {metrics_path}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, write_chrome_trace
    from repro.parallel import FaultPlan
    from repro.parallel.backends import make_backend

    faults = None
    if args.fault_seed is not None:
        faults = FaultPlan.random(args.fault_seed, args.p,
                                  crash_rate=args.crash_rate,
                                  straggler_rate=args.straggler_rate)
    tracer = Tracer()  # simulated timeline (explicit timestamps only)
    worker_tracer = None
    backend = None
    spec = default_registry().get(args.engine)
    try:
        if spec.uses_backend:
            if args.backend != "serial":
                worker_tracer = Tracer()  # wall clock: keep separate
            backend = make_backend(args.backend, tracer=worker_tracer)
        w, pricer = spec.trace(args, faults=faults, policy=args.policy,
                               tracer=tracer, backend=backend)
        result = pricer.price(w.model, w.payoff, w.expiry, args.p)
    finally:
        if backend is not None:
            backend.close()

    print(f"engine   : {args.engine} — {w.name}, P={args.p}")
    print(f"price    : {result.price:.6f} ± {result.stderr:.6f}")
    print(f"sim time : {result.sim_time:.6g} s "
          f"(compute {result.compute_time:.3g}, comm {result.comm_time:.3g}, "
          f"idle {result.idle_time:.3g})")
    report = result.meta.get("fault_report")
    if report is not None:
        print(f"faults   : {report.summary()}")
    print()
    _write_trace_artifacts(tracer, result, args.out)
    if worker_tracer is not None and len(worker_tracer):
        path = write_chrome_trace(worker_tracer,
                                  f"{args.out}.workers.trace.json")
        print(f"workers : {path} (wall-clock per-task spans, "
              f"{args.backend} backend)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json as _json

    from repro.verify import (build_snapshot, default_corpus, diff_golden,
                              load_snapshot, run_determinism, run_metamorphic,
                              run_oracle, save_snapshot)
    from repro.errors import ValidationError

    skip = set(args.skip)
    corpus = default_corpus()
    report_doc: dict = {}
    ok = True

    snapshot = None
    if "golden" not in skip and not args.update:
        # Fail fast on a missing/stale snapshot before pricing anything.
        try:
            snapshot = load_snapshot(args.golden)
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    oracle = None
    if "oracle" not in skip or "golden" not in skip:
        # One pricing pass feeds both the cross-engine check and the golden
        # diff — the corpus is the expensive part, not the comparisons.
        oracle = run_oracle(corpus)
    if "oracle" not in skip:
        report_doc["oracle"] = oracle.to_dict()
        n_cells = sum(len(c) for c in oracle.cells.values())
        print(f"oracle       : {len(oracle.cells)} cases, {n_cells} engine "
              f"cells, {len(oracle.discrepancies)} discrepancies")
        for d in oracle.discrepancies:
            print(f"  FAIL {d}")
        ok &= oracle.ok

    if "metamorphic" not in skip:
        props = run_metamorphic()
        report_doc["metamorphic"] = [p.to_dict() for p in props]
        bad = [p for p in props if not p.ok]
        print(f"metamorphic  : {len(props)} properties, {len(bad)} violated")
        for p in bad:
            print(f"  FAIL {p}")
        ok &= not bad

    if "golden" not in skip:
        if args.update:
            save_snapshot(build_snapshot(corpus, cells_by_case=oracle.cells),
                          args.golden)
            print(f"golden       : rebaselined -> {args.golden}")
        else:
            diff = diff_golden(snapshot, corpus, cells_by_case=oracle.cells)
            report_doc["golden"] = diff.to_dict()
            print(f"golden       : {len(diff.deltas)} cells diffed, "
                  f"{len(diff.failures)} failures")
            for d in diff.failures:
                print(f"  FAIL {d}")
            ok &= diff.ok

    if args.batched:
        from repro.verify import run_batched_replay

        # Reuse the oracle's cells as the bitwise targets when it ran;
        # otherwise the replay recomputes the reference prices itself.
        cells = oracle.cells if oracle is not None else None
        replays = run_batched_replay(corpus, cells_by_case=cells)
        report_doc["batched"] = [
            {"case": r.case, "engine": r.engine, "ok": r.ok,
             "skipped": r.skipped, "detail": dict(r.detail)}
            for r in replays
        ]
        bad = [r for r in replays if not r.ok]
        n_skip = sum(1 for r in replays if r.skipped)
        print(f"batched      : {len(replays)} fused-cell replays "
              f"({n_skip} skipped), {len(bad)} mismatched")
        for r in bad:
            print(f"  FAIL {r}")
        ok &= not bad

    if "determinism" not in skip:
        checks = run_determinism(batched=args.batched)
        report_doc["determinism"] = [c.to_dict() for c in checks]
        bad = [c for c in checks if not c.ok]
        print(f"determinism  : {len(checks)} checks, {len(bad)} "
              f"nondeterministic")
        for c in bad:
            print(f"  FAIL {c}")
        ok &= not bad

    report_doc["ok"] = bool(ok)
    if args.report:
        from repro.perf.reporting import write_text

        path = write_text(args.report, _json.dumps(report_doc, indent=2,
                                                   sort_keys=True) + "\n")
        print(f"report       : {path}")
    print("verify       :", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.core import PortfolioPricer
    from repro.serve import PriceCache
    from repro.utils import Table
    from repro.workloads import random_portfolio

    book = random_portfolio(args.contracts, dim=4, seed=args.seed)
    # Prices are schedule-invariant, so one cache across the four runs
    # values each contract exactly once (the other three runs replay it).
    cache = PriceCache(max(4 * args.contracts, 16))
    table = Table(["schedule", "makespan [s]", "imbalance", "book value"],
                  title=f"{args.contracts} contracts on {args.ranks} ranks",
                  floatfmt=".4g")
    for sched in ("block", "cyclic", "lpt", "dynamic"):
        run = PortfolioPricer(args.paths, schedule=sched, seed=args.seed,
                              cache=cache).run(book, args.ranks)
        table.add_row([sched, run.sim_time, run.imbalance, run.total_value])
    print(table.render())
    print(f"cache    : {cache.misses} contracts valued, {cache.hits} replayed "
          f"from cache (hit rate {cache.hit_rate:.0%})")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    if args.obs_command == "diff":
        return _cmd_obs_diff(args)
    return _cmd_obs_flame(args)


def _render(table, as_csv: bool) -> None:
    if as_csv:
        from repro.perf.reporting import table_to_csv

        print(table_to_csv(table), end="")
    else:
        print(table.render())


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.obs import read_ledger, report_table, summarize_ledger

    try:
        stats = summarize_ledger(read_ledger(args.ledger))
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _render(report_table(stats, title=f"run-ledger summary — {args.ledger}"),
            args.csv)
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.obs import diff_ledgers, diff_table, read_ledger

    try:
        entries = diff_ledgers(read_ledger(args.base), read_ledger(args.new),
                               warn_margin=args.warn_margin,
                               fail_ratio=args.fail_ratio,
                               noise_z=args.noise_z,
                               min_seconds=args.min_seconds)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _render(diff_table(entries, title=f"{args.base} -> {args.new}"), args.csv)
    n_fail = sum(1 for e in entries if e.status == "fail")
    n_warn = sum(1 for e in entries if e.status == "warn")
    print(f"diff     : {len(entries)} stages compared, {n_warn} warnings, "
          f"{n_fail} failures")
    for e in entries:
        if e.status in ("fail", "warn"):
            print(f"  {e.status.upper()} {e}")
    return 1 if n_fail else 0


def _cmd_obs_flame(args: argparse.Namespace) -> int:
    from repro.obs import SamplingProfiler

    spec = default_registry().get(args.engine)
    w, pricer = spec.trace(args, faults=None, policy=None, tracer=None,
                           backend=None)
    prof = SamplingProfiler(args.interval_ms / 1e3)
    pricer.profiler = prof
    result = None
    for _ in range(max(args.repeat, 1)):
        result = pricer.price(w.model, w.payoff, w.expiry, args.p)
    prof.stop()
    path = prof.write_collapsed(args.out)
    print(f"engine   : {args.engine} — {w.name}, P={args.p}, "
          f"{args.repeat} run(s)")
    print(f"price    : {result.price:.6f} ± {result.stderr:.6f}")
    print(f"samples  : {prof.n_samples} at {args.interval_ms:g} ms "
          f"({len(prof.samples)} distinct stacks)")
    for stack, count in prof.top(5):
        leaf = stack.rsplit(";", 1)[-1]
        print(f"  {count:6d}  {leaf}  [{stack.split(';', 1)[0]}]")
    print(f"collapsed: {path} (flamegraph.pl / speedscope input)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.obs import MetricsRegistry, RunLedger
    from repro.parallel.backends import make_backend
    from repro.serve import PriceCache, PricingRequest, PricingService
    from repro.utils import Table
    from repro.workloads import random_portfolio, strike_strip

    if args.chunksize == "auto":
        chunksize: int | str | None = "auto"
    elif args.chunksize == "none":
        chunksize = None
    else:
        try:
            chunksize = int(args.chunksize)
        except ValueError:
            print(f"error: --chunksize must be 'auto', 'none' or an int, "
                  f"got {args.chunksize!r}", file=sys.stderr)
            return 2

    if args.book == "strip":
        # One shared model and one shared seed: the whole miss set groups
        # into a single contract strip under --batched.
        book = strike_strip(args.contracts)
        seed_of = lambda i: args.seed  # noqa: E731
    else:
        book = random_portfolio(args.contracts, dim=4, seed=args.seed)
        seed_of = lambda i: args.seed + i % len(book)  # noqa: E731
    # Stream longer than the book → repeated contracts are true duplicates
    # (same seed), so the cache and in-batch dedup both get exercised.
    requests = [
        PricingRequest(book[i % len(book)], engine="mc", n_paths=args.paths,
                       seed=seed_of(i), p=2,
                       name=book[i % len(book)].name)
        for i in range(args.requests)
    ]

    metrics = MetricsRegistry()
    cache = PriceCache(args.cache) if args.cache > 0 else None
    backend = make_backend(args.backend, args.workers)
    ledger = RunLedger(args.ledger) if args.ledger else None
    table = Table(["pass", "req/s", "batches", "map calls", "hit rate",
                   "p50 [ms]", "p99 [ms]", "book value"],
                  title=(f"{args.requests} requests ({args.contracts} distinct "
                         f"{args.book}) — {args.backend} backend, "
                         f"batch={args.batch}, chunksize={args.chunksize}"
                         + (", batched strips" if args.batched else "")),
                  floatfmt=".4g")
    latency = metrics.histogram("serve.batch_latency_s")
    try:
        with PricingService(backend, cache=cache, max_batch=args.batch,
                            chunksize=chunksize, metrics=metrics,
                            batched=args.batched, ledger=ledger,
                            min_strip=args.min_strip) as svc:
            batches0 = maps0 = 0
            hits0 = lookups0 = 0.0
            for rep in range(max(args.repeat, 1)):
                t0 = time.perf_counter()
                quotes = svc.price_many(requests)
                wall = time.perf_counter() - t0
                batches = svc._batcher.batches_cut
                maps = svc.map_calls
                # Hit rate comes from the metrics registry (the cache
                # feeds serve.cache_hits / serve.cache_misses counters).
                hits = metrics.counter("serve.cache_hits").value
                lookups = hits + metrics.counter("serve.cache_misses").value
                rate = ((hits - hits0) / (lookups - lookups0)
                        if lookups > lookups0 else 0.0)
                table.add_row([f"{rep + 1}", len(quotes) / max(wall, 1e-9),
                               batches - batches0, maps - maps0, rate,
                               latency.quantile(0.5) * 1e3,
                               latency.quantile(0.99) * 1e3,
                               sum(q.price for q in quotes)])
                batches0, maps0, hits0, lookups0 = batches, maps, hits, lookups
    finally:
        backend.close()
    print(table.render())
    dedup = metrics.counter("serve.deduped").value
    if dedup:
        print(f"dedup    : {dedup:.0f} in-batch duplicate requests fanned out")
    strips = metrics.counter("serve.strips").value
    if strips:
        fused = metrics.histogram("serve.strip_contracts").total
        print(f"strips   : {strips:.0f} fused strips covering {fused:.0f} "
              f"contracts")
    if ledger is not None:
        print(f"ledger   : {ledger.appended} batch records -> {ledger.path}")
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    from repro.gateway import (CostModel, LoadgenConfig, capacity,
                               open_loop_schedule, run_closed_loop,
                               run_schedule)
    from repro.obs import MetricsRegistry, RunLedger
    from repro.utils import Table

    text = str(args.overload).rstrip("xX")
    try:
        overload = float(text)
    except ValueError:
        print(f'error: --overload must look like "2x" or "0.8", got '
              f"{args.overload!r}", file=sys.stderr)
        return 2
    if overload <= 0:
        print("error: --overload must be positive", file=sys.stderr)
        return 2

    cost = CostModel()
    # Risk traffic is revaluations of a fixed shocked book — always
    # repeated-book (the cache-hit shape is the point of the tier).
    repeat = args.repeat_book or args.book == "risk"
    probe = LoadgenConfig(seed=args.seed, book=args.book,
                          n_contracts=args.contracts, n_paths=args.paths,
                          duration_s=args.duration, unique=not repeat)
    cap = capacity(probe, cost, args.shards)
    # Deadlines are drawn in service-time multiples: scale them by the
    # all-miss service time of this path budget so "a deadline of 8"
    # means eight service times of patience at any --paths setting.
    miss_s = cost.base_s + cost.per_path_s * args.paths
    cfg = LoadgenConfig(seed=args.seed, rate=overload * cap,
                        duration_s=args.duration, book=args.book,
                        n_contracts=args.contracts, n_paths=args.paths,
                        unique=not repeat,
                        deadline_scale_s=miss_s)
    metrics = MetricsRegistry()
    ledger = RunLedger(args.ledger) if args.ledger else None
    if args.closed > 0:
        result = run_closed_loop(cfg, n_shards=args.shards, cost=cost,
                                 n_clients=args.closed, think_s=args.think,
                                 max_queue=args.max_queue, priced=args.priced,
                                 metrics=metrics, ledger=ledger)
        mode = f"closed loop, {args.closed} clients"
    else:
        result = run_schedule(open_loop_schedule(cfg), n_shards=args.shards,
                              cost=cost, duration_s=cfg.duration_s,
                              max_queue=args.max_queue, priced=args.priced,
                              metrics=metrics, ledger=ledger)
        mode = f"open loop at {cfg.rate:.1f} req/s ({overload:g}x capacity)"

    print(f"gateway  : {args.shards} shards, {mode}")
    print(f"capacity : {cap:.1f} req/s all-miss "
          f"({'unique' if cfg.unique else 'repeated-book'} traffic)")
    print(f"offered  : {result.offered}   admitted {result.admitted}   "
          f"completed {result.completed}")
    shed = ", ".join(f"{k}={v}" for k, v in sorted(result.shed.items()))
    print(f"goodput  : {result.goodput:.1f} req/s   "
          f"shed rate {result.shed_rate:.1%}"
          + (f"   ({shed})" if shed else ""))
    print(result.lane_table(title=f"latency by lane — seed {args.seed}")
          .render())
    shards = Table(["shard", "max depth", "hits", "misses", "hit rate"],
                   title="per-shard queues and caches", floatfmt=".3g")
    for s in range(args.shards):
        hits = metrics.counter("serve.cache_hits", shard=str(s)).value
        misses = metrics.counter("serve.cache_misses", shard=str(s)).value
        shards.add_row([s, result.max_depths[s], int(hits), int(misses),
                        hits / (hits + misses) if hits + misses else 0.0])
    print(shards.render())
    if args.priced:
        print(f"digests  : prices {result.price_stream_digest()}  "
              f"decisions {result.decision_log_digest()}")
    if args.book == "risk":
        from repro.obs.ledger import active_ledger
        from repro.risk.bridge import risk_run_record

        n_base = min(args.contracts, 4)
        n_scen = (args.contracts + n_base - 1) // n_base
        record = risk_run_record(result, n_scenarios=n_scen,
                                 n_contracts=n_base, engine=cfg.engine,
                                 seed=args.seed)
        book_ledger = ledger if ledger is not None else active_ledger()
        if book_ledger is not None:
            book_ledger.append(record)
        print(f"risk     : {n_scen} scenarios x {n_base} base contracts, "
              f"{record.extra['scenarios_per_s']:.1f} scenarios/s, "
              f"hit rate {record.extra['hit_rate']:.1%}")
    if ledger is not None:
        print(f"ledger   : {ledger.appended} record(s) -> {ledger.path}")
    return 0


def _cmd_risk(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, RunLedger
    from repro.risk import (RiskConfig, build_scenarios, hedged_pnl,
                            portfolio_deltas, revalue_book, var_es)
    from repro.serve import PriceCache, PricingService
    from repro.utils import Table
    from repro.workloads.generators import strike_strip

    try:
        levels = tuple(float(t) for t in args.levels.split(","))
    except ValueError:
        print(f'error: --levels must look like "0.95,0.99", got '
              f"{args.levels!r}", file=sys.stderr)
        return 2
    cfg = RiskConfig(dim=args.dim, n_contracts=args.contracts,
                     n_scenarios=args.scenarios, generator=args.generator,
                     horizon=args.horizon / 252.0, n_paths=args.paths,
                     seed=args.seed, p=args.p, levels=levels,
                     hedge=args.hedge)
    metrics = MetricsRegistry()
    ledger = RunLedger(args.ledger) if args.ledger else None

    book = strike_strip(cfg.n_contracts, dim=cfg.dim)
    scenarios = build_scenarios(cfg, book[0].model)
    cache = PriceCache(max(64, 4 * cfg.n_contracts * (len(scenarios) + 1)),
                       metrics=metrics)
    passes = Table(["pass", "scenarios/s", "hit rate", "wall s"],
                   title="sweep passes (shared cache)", floatfmt=".3g")
    report = None
    with PricingService(cache=cache, max_batch=cfg.n_contracts,
                        metrics=metrics, ledger=ledger) as service:
        for label in ("cold", "cache-hot"):
            report = revalue_book(book, scenarios, engine=cfg.engine,
                                  n_paths=cfg.n_paths, seed=cfg.seed,
                                  p=cfg.p, levels=cfg.levels,
                                  service=service, metrics=metrics,
                                  ledger=ledger)
            passes.add_row([label, report.scenarios_per_s, report.hit_rate,
                            report.wall_s])
        if cfg.hedge:
            deltas = portfolio_deltas(book, service=service,
                                      engine=cfg.engine, n_paths=cfg.n_paths,
                                      seed=cfg.seed, p=cfg.p)
            report.deltas = tuple(float(d) for d in deltas)
            report.hedged = hedged_pnl(report, deltas, book[0].model.spots,
                                       scenarios)

    print(f"risk     : {cfg.generator} generator, {len(scenarios)} scenarios"
          f" x {cfg.n_contracts} contracts (dim {cfg.dim}), seed {cfg.seed}")
    print(f"base     : {report.base_value:.4f}   "
          f"pnl digest {report.pnl_digest()}")
    print(passes.render())
    print(report.table(
        title=f"VaR / ES — full revaluation, {cfg.engine}").render())
    if report.hedged is not None:
        deltas = ", ".join(f"{d:.3f}" for d in report.deltas)
        print(f"deltas   : [{deltas}]")
        for level in sorted(report.levels):
            hv, he = var_es(report.hedged, level)
            print(f"hedged   : {level:.0%} VaR {hv:.4f}  ES {he:.4f}")
    if ledger is not None:
        print(f"ledger   : {ledger.appended} record(s) -> {ledger.path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "price":
        return _cmd_price(args)
    if args.command == "engines":
        return _cmd_engines(args)
    if args.command == "scaling":
        return _cmd_scaling(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "risk":
        return _cmd_risk(args)
    if args.command == "obs":
        return _cmd_obs(args)
    return _cmd_portfolio(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
