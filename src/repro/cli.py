"""Command-line interface: ``python -m repro <command>``.

Three commands cover the library's headline flows without writing code:

* ``price`` — price one contract with the MC engine and a confidence
  interval (optionally against the matching closed form);
* ``scaling`` — run a strong-scaling sweep of one parallel engine on the
  simulated machine and print the full diagnostic table;
* ``portfolio`` — price a seeded random book under each scheduling policy
  and compare makespans.

The functions return an exit code and print to stdout, so they are unit-
testable without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel pricing of multidimensional derivatives "
                    "(ICPP 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_price = sub.add_parser("price", help="price one contract by Monte Carlo")
    p_price.add_argument("--contract", choices=("basket", "rainbow", "spread"),
                         default="basket")
    p_price.add_argument("--dim", type=int, default=4,
                         help="basket dimension (basket contract only)")
    p_price.add_argument("--paths", type=int, default=100_000)
    p_price.add_argument("--seed", type=int, default=0)
    p_price.add_argument("--qmc", action="store_true",
                         help="use randomized Sobol QMC instead of plain MC")

    p_scale = sub.add_parser("scaling", help="strong-scaling sweep on the "
                                             "simulated machine")
    p_scale.add_argument("--engine", choices=("mc", "lattice", "pde"),
                         default="mc")
    p_scale.add_argument("--plist", default="1,2,4,8,16,32",
                         help="comma-separated processor counts")
    p_scale.add_argument("--paths", type=int, default=200_000)
    p_scale.add_argument("--steps", type=int, default=200)
    p_scale.add_argument("--grid", type=int, default=128)
    p_scale.add_argument("--alpha", type=float, default=50e-6,
                         help="message latency [s]")
    p_scale.add_argument("--beta", type=float, default=1e-8,
                         help="per-byte cost [s/B]")
    p_scale.add_argument("--seed", type=int, default=0)

    p_book = sub.add_parser("portfolio", help="schedule a random book and "
                                              "compare policies")
    p_book.add_argument("--contracts", type=int, default=16)
    p_book.add_argument("--paths", type=int, default=20_000)
    p_book.add_argument("--ranks", type=int, default=4)
    p_book.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.mc import MonteCarloEngine, QMCSobol
    from repro.workloads import basket_workload, rainbow_workload, spread_workload

    if args.contract == "basket":
        w = basket_workload(args.dim)
    elif args.contract == "rainbow":
        w = rainbow_workload()
    else:
        w = spread_workload()
    technique = QMCSobol(8) if args.qmc else None
    n = args.paths
    if args.qmc and n % 8:
        n += 8 - n % 8  # round up to the replicate count
    engine = MonteCarloEngine(n, technique=technique, seed=args.seed)
    result = engine.price(w.model, w.payoff, w.expiry)
    lo, hi = result.confidence_interval()
    print(f"contract : {w.name} (dim={w.dim}, expiry={w.expiry})")
    print(f"paths    : {result.n_paths} ({result.technique})")
    print(f"price    : {result.price:.6f} ± {result.stderr:.6f}")
    print(f"95% CI   : [{lo:.6f}, {hi:.6f}]")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.core import ParallelLatticePricer, ParallelMCPricer, ParallelPDEPricer
    from repro.parallel import MachineSpec
    from repro.perf import ScalingExperiment
    from repro.workloads import basket_workload, rainbow_workload, spread_workload

    try:
        p_list = [int(tok) for tok in args.plist.split(",") if tok.strip()]
    except ValueError:
        print(f"error: --plist must be comma-separated integers, got {args.plist!r}",
              file=sys.stderr)
        return 2
    if not p_list or any(p <= 0 for p in p_list):
        print("error: --plist needs positive processor counts", file=sys.stderr)
        return 2
    spec = MachineSpec(alpha=args.alpha, beta=args.beta)
    if args.engine == "mc":
        w = basket_workload(4)
        pricer = ParallelMCPricer(args.paths, seed=args.seed, spec=spec)
        label = f"MC — 4-asset basket, N={args.paths}"
    elif args.engine == "lattice":
        w = rainbow_workload()
        pricer = ParallelLatticePricer(args.steps, spec=spec)
        label = f"BEG lattice — 2-asset max-call, {args.steps} steps"
    else:
        w = spread_workload()
        pricer = ParallelPDEPricer(n_space=args.grid, n_time=max(args.steps // 8, 4),
                                   spec=spec)
        label = f"ADI PDE — spread call, {args.grid}² grid"
    exp = ScalingExperiment(pricer, w.model, w.payoff, w.expiry, label=label)
    print(exp.report(p_list))
    return 0


def _cmd_portfolio(args: argparse.Namespace) -> int:
    from repro.core import PortfolioPricer
    from repro.utils import Table
    from repro.workloads import random_portfolio

    book = random_portfolio(args.contracts, dim=4, seed=args.seed)
    table = Table(["schedule", "makespan [s]", "imbalance", "book value"],
                  title=f"{args.contracts} contracts on {args.ranks} ranks",
                  floatfmt=".4g")
    for sched in ("block", "cyclic", "lpt", "dynamic"):
        run = PortfolioPricer(args.paths, schedule=sched, seed=args.seed).run(
            book, args.ranks
        )
        table.add_row([sched, run.sim_time, run.imbalance, run.total_value])
    print(table.render())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "price":
        return _cmd_price(args)
    if args.command == "scaling":
        return _cmd_scaling(args)
    return _cmd_portfolio(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
