"""Correlation-matrix utilities for multi-asset models.

Multidimensional pricing lives and dies by the correlation structure: the
Cholesky factor drives correlated path generation in MC, the pairwise ρ's
enter the BEG lattice branch probabilities, and the mixed-derivative term of
the 2-D PDE. These helpers build, validate and factor correlation matrices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError, ValidationError
from repro.utils.numerics import nearest_psd
from repro.utils.validation import check_correlation_matrix, check_positive_int

__all__ = [
    "cholesky_factor",
    "constant_correlation",
    "random_correlation",
    "is_positive_semidefinite",
]


def is_positive_semidefinite(matrix: np.ndarray, *, tol: float = 1e-10) -> bool:
    """True when all eigenvalues of the symmetrized matrix are ≥ −tol."""
    m = np.asarray(matrix, dtype=float)
    sym = 0.5 * (m + m.T)
    return bool(np.linalg.eigvalsh(sym).min() >= -tol)


def cholesky_factor(correlation: np.ndarray, *, repair: bool = False) -> np.ndarray:
    """Lower-triangular L with ``L Lᵀ = ρ``.

    Rank-deficient but valid matrices (e.g. ρ = 1 blocks) are handled by a
    small diagonal bump retry; ``repair=True`` additionally projects an
    indefinite input to the nearest PSD correlation first.
    """
    rho = np.asarray(correlation, dtype=float)
    if repair and not is_positive_semidefinite(rho):
        rho = nearest_psd(rho)
    rho = check_correlation_matrix("correlation", rho)
    try:
        return np.linalg.cholesky(rho)
    except np.linalg.LinAlgError:
        # PSD-but-singular: bump the diagonal by machine-scale jitter.
        n = rho.shape[0]
        for bump in (1e-14, 1e-12, 1e-10):
            try:
                l_factor = np.linalg.cholesky(rho + bump * np.eye(n))
                return l_factor
            except np.linalg.LinAlgError:
                continue
        raise ModelError("correlation matrix could not be Cholesky-factorized")


def constant_correlation(dim: int, rho: float) -> np.ndarray:
    """The equicorrelation matrix: 1 on the diagonal, ``rho`` off it.

    Valid (PSD) iff ``−1/(dim−1) ≤ rho ≤ 1``; validated here so misuse is
    caught at construction rather than at factorization time.
    """
    dim = check_positive_int("dim", dim)
    if dim > 1:
        lo = -1.0 / (dim - 1)
        if not (lo - 1e-12 <= rho <= 1.0 + 1e-12):
            raise ValidationError(
                f"equicorrelation with dim={dim} requires rho in [{lo:.4f}, 1], got {rho}"
            )
    m = np.full((dim, dim), float(rho))
    np.fill_diagonal(m, 1.0)
    return m


def random_correlation(dim: int, seed: int = 0, *, concentration: float = 1.0) -> np.ndarray:
    """A random valid correlation matrix (normalized Wishart draw).

    Draws a ``dim × (dim+⌈concentration·dim⌉)`` Gaussian factor matrix ``G``
    with the library's own Philox generator and normalizes ``G Gᵀ`` to unit
    diagonal. Higher ``concentration`` pushes the spectrum toward identity.
    Deterministic in ``seed``.
    """
    from repro.rng import Philox4x32

    dim = check_positive_int("dim", dim)
    k = dim + max(1, int(np.ceil(concentration * dim)))
    gen = Philox4x32(seed, stream=0xC0)
    g = gen.normals(dim * k).reshape(dim, k)
    cov = g @ g.T
    d = np.sqrt(np.diag(cov))
    corr = cov / np.outer(d, d)
    np.fill_diagonal(corr, 1.0)
    return 0.5 * (corr + corr.T)
