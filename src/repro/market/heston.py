"""Heston (1993) stochastic-volatility model.

Risk-neutral dynamics:

    dS/S = (r − q) dt + √v dW_S
    dv   = κ(θ − v) dt + ξ √v dW_v,     d⟨W_S, W_v⟩ = ρ dt.

Monte Carlo sampling uses the **full-truncation Euler** scheme (Lord,
Koekkoek & van Dijk 2010): the variance may go negative in the discrete
recursion but only its positive part enters drift and diffusion — the
standard low-bias Euler variant. The scheme has O(Δt) weak bias, so the
model carries its own ``sampling_steps`` resolution and the tests compare
against the semi-analytic price (:mod:`repro.analytic.heston`) with a
bias-aware tolerance.

Priced through the MC engine with :class:`~repro.mc.direct.DirectSampling`,
like every model that owns its randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.rng.base import BitGenerator
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = ["HestonModel"]


@dataclass(frozen=True, eq=False, repr=False)
class HestonModel:
    """Single-asset Heston market.

    Parameters
    ----------
    spot : S₀ > 0.
    v0 : initial instantaneous variance (e.g. 0.04 = 20% vol).
    kappa : mean-reversion speed κ > 0.
    theta : long-run variance θ > 0.
    xi : vol-of-vol ξ > 0.
    rho : correlation between price and variance shocks, in (−1, 1).
    rate, dividend : as usual.
    sampling_steps : Euler steps per unit time for MC sampling.
    """

    spot: float
    v0: float
    kappa: float
    theta: float
    xi: float
    rho: float
    rate: float
    dividend: float = 0.0
    sampling_steps: int = 250

    def __init__(self, spot, v0, kappa, theta, xi, rho, rate, dividend=0.0,
                 sampling_steps=250):
        object.__setattr__(self, "spot", check_positive("spot", spot))
        object.__setattr__(self, "v0", check_non_negative("v0", v0))
        object.__setattr__(self, "kappa", check_positive("kappa", kappa))
        object.__setattr__(self, "theta", check_positive("theta", theta))
        object.__setattr__(self, "xi", check_positive("xi", xi))
        object.__setattr__(self, "rho",
                           check_in_range("rho", rho, -1.0, 1.0, inclusive=False))
        if not np.isfinite(rate):
            raise ValidationError(f"rate must be finite, got {rate!r}")
        object.__setattr__(self, "rate", float(rate))
        object.__setattr__(self, "dividend",
                           check_non_negative("dividend", dividend))
        object.__setattr__(self, "sampling_steps",
                           check_positive_int("sampling_steps", sampling_steps))

    @property
    def dim(self) -> int:
        return 1

    @property
    def feller_satisfied(self) -> bool:
        """Feller condition 2κθ ≥ ξ²: the variance never hits zero."""
        return 2.0 * self.kappa * self.theta >= self.xi * self.xi

    @property
    def spots(self) -> np.ndarray:
        return np.array([self.spot])

    def sample_terminal(self, gen: BitGenerator, n_paths: int,
                        horizon: float) -> np.ndarray:
        """Terminal prices via full-truncation Euler, shape ``(n, 1)``."""
        n = check_positive_int("n_paths", n_paths)
        t = check_positive("horizon", horizon)
        m = max(int(round(self.sampling_steps * t)), 2)
        dt = t / m
        sqrt_dt = math.sqrt(dt)
        rho = self.rho
        rho_bar = math.sqrt(1.0 - rho * rho)

        log_s = np.full(n, math.log(self.spot))
        v = np.full(n, self.v0)
        drift_rq = (self.rate - self.dividend) * dt
        for _ in range(m):
            z = gen.normals(2 * n)
            z_v = z[:n]
            z_s = rho * z_v + rho_bar * z[n:]
            v_plus = np.maximum(v, 0.0)
            sqrt_v = np.sqrt(v_plus)
            log_s += drift_rq - 0.5 * v_plus * dt + sqrt_v * sqrt_dt * z_s
            v = v + self.kappa * (self.theta - v_plus) * dt \
                + self.xi * sqrt_v * sqrt_dt * z_v
        return np.exp(log_s)[:, None]

    def terminal_mean(self, horizon: float) -> float:
        """E[S_T] = S₀ e^{(r−q)T} (the discounted asset is a martingale)."""
        t = check_positive("horizon", horizon)
        return self.spot * math.exp((self.rate - self.dividend) * t)

    def expected_integrated_variance(self, horizon: float) -> float:
        """E[∫₀ᵀ v_t dt] = θT + (v₀ − θ)(1 − e^{−κT})/κ — the effective
        Black–Scholes variance for ρ = 0, ξ → 0 comparisons."""
        t = check_positive("horizon", horizon)
        return self.theta * t + (self.v0 - self.theta) \
            * (1.0 - math.exp(-self.kappa * t)) / self.kappa

    def __repr__(self) -> str:
        return (
            f"HestonModel(spot={self.spot}, v0={self.v0}, kappa={self.kappa}, "
            f"theta={self.theta}, xi={self.xi}, rho={self.rho}, rate={self.rate})"
        )
