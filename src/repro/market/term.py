"""Interest-rate term structures.

The pricing engines only need discount factors and (piecewise) forward
rates; two curves cover the evaluation: a flat continuously compounded
curve, and a piecewise-linear zero curve for tests that need a non-trivial
rate environment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative

__all__ = ["FlatCurve", "ZeroCurve"]


class FlatCurve:
    """A flat continuously compounded yield curve ``P(t) = exp(−r·t)``."""

    def __init__(self, rate: float):
        if not np.isfinite(rate):
            raise ValidationError(f"rate must be finite, got {rate!r}")
        self.rate = float(rate)

    def zero_rate(self, t) -> np.ndarray | float:
        """Continuously compounded zero rate for maturity ``t``."""
        t_arr = np.asarray(t, dtype=float)
        out = np.full_like(t_arr, self.rate, dtype=float)
        return float(out) if out.ndim == 0 else out

    def discount(self, t) -> np.ndarray | float:
        """Discount factor ``P(0, t)``."""
        t_arr = np.asarray(t, dtype=float)
        out = np.exp(-self.rate * t_arr)
        return float(out) if out.ndim == 0 else out

    def forward_rate(self, t0: float, t1: float) -> float:
        """Continuously compounded forward rate over ``[t0, t1]``."""
        check_non_negative("t0", t0)
        if t1 <= t0:
            raise ValidationError(f"need t1 > t0, got [{t0}, {t1}]")
        return self.rate

    def __repr__(self) -> str:
        return f"FlatCurve(rate={self.rate})"


class ZeroCurve:
    """Piecewise-linear continuously compounded zero curve.

    Parameters
    ----------
    times : increasing positive maturities (years).
    rates : zero rates at those maturities. Flat extrapolation outside.
    """

    def __init__(self, times, rates):
        t = np.asarray(times, dtype=float)
        r = np.asarray(rates, dtype=float)
        if t.ndim != 1 or r.ndim != 1 or t.size != r.size or t.size == 0:
            raise ValidationError("times and rates must be equal-length 1-D arrays")
        if np.any(t <= 0) or np.any(np.diff(t) <= 0):
            raise ValidationError("times must be strictly increasing and positive")
        if not (np.all(np.isfinite(t)) and np.all(np.isfinite(r))):
            raise ValidationError("times and rates must be finite")
        self.times = t
        self.rates = r

    def zero_rate(self, t) -> np.ndarray | float:
        t_arr = np.asarray(t, dtype=float)
        out = np.interp(t_arr, self.times, self.rates)
        return float(out) if out.ndim == 0 else out

    def discount(self, t) -> np.ndarray | float:
        t_arr = np.asarray(t, dtype=float)
        out = np.exp(-np.asarray(self.zero_rate(t_arr)) * t_arr)
        return float(out) if out.ndim == 0 else out

    def forward_rate(self, t0: float, t1: float) -> float:
        check_non_negative("t0", t0)
        if t1 <= t0:
            raise ValidationError(f"need t1 > t0, got [{t0}, {t1}]")
        # f(t0,t1) = (r1·t1 − r0·t0) / (t1 − t0)
        r0 = float(self.zero_rate(t0)) if t0 > 0 else float(self.rates[0])
        r1 = float(self.zero_rate(t1))
        return (r1 * t1 - r0 * t0) / (t1 - t0)

    def __repr__(self) -> str:
        return f"ZeroCurve(times={self.times.tolist()}, rates={self.rates.tolist()})"
