"""Correlated multi-asset geometric Brownian motion.

The risk-neutral dynamics priced throughout the library:

    dS_i / S_i = (r − q_i) dt + σ_i dW_i,   d⟨W_i, W_j⟩ = ρ_ij dt.

Exact sampling (GBM has a lognormal transition density) is used everywhere —
terminal draws for European payoffs, full paths for path-dependent ones —
so discretization error is zero and the MC error is purely statistical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.market.correlation import cholesky_factor, constant_correlation
from repro.rng.base import BitGenerator
from repro.utils.validation import (
    check_1d_lengths,
    check_correlation_matrix,
    check_positive,
    check_positive_int,
)

__all__ = ["MultiAssetGBM"]


@dataclass(frozen=True, eq=False, repr=False)
class MultiAssetGBM:
    """A ``d``-asset Black–Scholes market.

    Parameters
    ----------
    spots : (d,) initial prices S_i(0) > 0.
    vols : (d,) lognormal volatilities σ_i > 0.
    rate : risk-free rate r (continuous compounding).
    dividends : (d,) continuous dividend yields q_i (default 0).
    correlation : (d, d) correlation matrix (default identity).

    Scalars broadcast across assets, so ``MultiAssetGBM(100, 0.2, 0.05)`` is
    a valid single-asset model and
    ``MultiAssetGBM([100]*4, 0.2, 0.05, correlation=constant_correlation(4, 0.3))``
    a 4-asset basket market.
    """

    spots: np.ndarray
    vols: np.ndarray
    rate: float
    dividends: np.ndarray = None  # type: ignore[assignment]
    correlation: np.ndarray = None  # type: ignore[assignment]
    _chol: np.ndarray = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __init__(self, spots, vols, rate, dividends=None, correlation=None):
        spots_arr = np.atleast_1d(np.asarray(spots, dtype=float))
        d = spots_arr.size
        arrays = check_1d_lengths(
            d,
            spots=spots_arr,
            vols=vols,
            dividends=0.0 if dividends is None else dividends,
        )
        if np.any(arrays["spots"] <= 0):
            raise ValidationError("all spots must be positive")
        if np.any(arrays["vols"] <= 0):
            raise ValidationError("all vols must be positive")
        if not np.isfinite(rate):
            raise ValidationError(f"rate must be finite, got {rate!r}")
        corr = (
            np.eye(d)
            if correlation is None
            else check_correlation_matrix("correlation", np.asarray(correlation, dtype=float))
        )
        if corr.shape != (d, d):
            raise ValidationError(
                f"correlation must be ({d}, {d}) to match {d} assets, got {corr.shape}"
            )
        object.__setattr__(self, "spots", arrays["spots"])
        object.__setattr__(self, "vols", arrays["vols"])
        object.__setattr__(self, "rate", float(rate))
        object.__setattr__(self, "dividends", arrays["dividends"])
        object.__setattr__(self, "correlation", corr)
        object.__setattr__(self, "_chol", cholesky_factor(corr))

    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Number of assets ``d``."""
        return self.spots.size

    @property
    def drifts(self) -> np.ndarray:
        """Risk-neutral log-drifts ``r − q_i − σ_i²/2``."""
        return self.rate - self.dividends - 0.5 * self.vols**2

    @property
    def cholesky(self) -> np.ndarray:
        """Lower-triangular Cholesky factor of the correlation matrix."""
        return self._chol

    def with_spots(self, spots) -> "MultiAssetGBM":
        """A copy of the model with bumped spots (used by bump-Greeks)."""
        return MultiAssetGBM(spots, self.vols, self.rate, self.dividends, self.correlation)

    def with_vols(self, vols) -> "MultiAssetGBM":
        """A copy of the model with bumped vols (used by bump-vega)."""
        return MultiAssetGBM(self.spots, vols, self.rate, self.dividends, self.correlation)

    # -- sampling ----------------------------------------------------------

    def correlate(self, z: np.ndarray) -> np.ndarray:
        """Map iid N(0,1) draws ``(..., d)`` to correlated draws via L·z."""
        z = np.asarray(z, dtype=float)
        if z.shape[-1] != self.dim:
            raise ValidationError(
                f"last axis of z must be {self.dim}, got {z.shape[-1]}"
            )
        return z @ self._chol.T

    def terminal_from_normals(self, z: np.ndarray, horizon: float) -> np.ndarray:
        """Exact terminal prices S(T) from iid normals ``z`` of shape (n, d).

        Separated from :meth:`sample_terminal` so variance-reduction wrappers
        (antithetic pairs, QMC points) can supply their own normals.
        """
        t = check_positive("horizon", horizon)
        w = self.correlate(z)  # (n, d) correlated standard normals
        log_s = (
            np.log(self.spots)[None, :]
            + self.drifts[None, :] * t
            + self.vols[None, :] * np.sqrt(t) * w
        )
        return np.exp(log_s)

    def sample_terminal(self, gen: BitGenerator, n_paths: int, horizon: float) -> np.ndarray:
        """Draw ``n_paths`` exact terminal price vectors, shape ``(n, d)``."""
        n = check_positive_int("n_paths", n_paths)
        z = gen.normals(n * self.dim).reshape(n, self.dim)
        return self.terminal_from_normals(z, horizon)

    def paths_from_normals(self, z: np.ndarray, horizon: float, steps: int) -> np.ndarray:
        """Exact discretely monitored paths from normals ``(n, steps, d)``.

        Returns prices of shape ``(n, steps + 1, d)`` including ``t = 0``.
        Each increment uses the exact lognormal transition over ``Δt``.
        """
        t = check_positive("horizon", horizon)
        m = check_positive_int("steps", steps)
        z = np.asarray(z, dtype=float)
        if z.shape[-2:] != (m, self.dim):
            raise ValidationError(
                f"z must have shape (n, {m}, {self.dim}), got {z.shape}"
            )
        dt = t / m
        w = z @ self._chol.T  # correlate within each step
        log_inc = self.drifts[None, None, :] * dt + self.vols[None, None, :] * np.sqrt(dt) * w
        log_paths = np.cumsum(log_inc, axis=1)
        n = z.shape[0]
        out = np.empty((n, m + 1, self.dim), dtype=float)
        out[:, 0, :] = self.spots[None, :]
        out[:, 1:, :] = np.exp(np.log(self.spots)[None, None, :] + log_paths)
        return out

    def sample_paths(
        self, gen: BitGenerator, n_paths: int, horizon: float, steps: int
    ) -> np.ndarray:
        """Draw ``n_paths`` exact paths, shape ``(n, steps + 1, d)``."""
        n = check_positive_int("n_paths", n_paths)
        m = check_positive_int("steps", steps)
        z = gen.normals(n * m * self.dim).reshape(n, m, self.dim)
        return self.paths_from_normals(z, horizon, steps)

    # -- exact moments (used in tests and control variates) ----------------

    def terminal_mean(self, horizon: float) -> np.ndarray:
        """E[S_i(T)] = S_i(0)·exp((r − q_i)·T)."""
        t = check_positive("horizon", horizon)
        return self.spots * np.exp((self.rate - self.dividends) * t)

    def terminal_log_moments(self, horizon: float) -> tuple[np.ndarray, np.ndarray]:
        """Mean vector and covariance matrix of ``log S(T)``."""
        t = check_positive("horizon", horizon)
        mean = np.log(self.spots) + self.drifts * t
        cov = self.correlation * np.outer(self.vols, self.vols) * t
        return mean, cov

    # -- conveniences -------------------------------------------------------

    @staticmethod
    def single(spot: float, vol: float, rate: float, dividend: float = 0.0) -> "MultiAssetGBM":
        """A 1-asset model (plain Black–Scholes world)."""
        return MultiAssetGBM([spot], [vol], rate, [dividend])

    def __repr__(self) -> str:
        return (
            f"MultiAssetGBM(dim={self.dim}, spots={self.spots.tolist()}, "
            f"vols={self.vols.tolist()}, rate={self.rate})"
        )

    @staticmethod
    def equicorrelated(
        dim: int, spot: float, vol: float, rate: float, rho: float, dividend: float = 0.0
    ) -> "MultiAssetGBM":
        """A symmetric ``dim``-asset market with constant pairwise correlation."""
        return MultiAssetGBM(
            [spot] * dim,
            [vol] * dim,
            rate,
            [dividend] * dim,
            constant_correlation(dim, rho),
        )
