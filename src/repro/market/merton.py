"""Merton (1976) jump-diffusion — the classical extension beyond GBM.

Risk-neutral dynamics with compensated lognormal jumps:

    S_T = S₀ · exp( (r − q − λκ − σ²/2)T + σ√T·Z + Σ_{i=1}^{N} Y_i ),
    N ~ Poisson(λT),  Y_i ~ N(μ_J, σ_J²),  κ = e^{μ_J + σ_J²/2} − 1.

Exact terminal sampling (no discretization): a vectorized Knuth Poisson
sampler drives the jump counts from the library's own uniform generator.
European calls/puts have Merton's closed-form series
(:func:`repro.analytic.merton.merton_price`), the accuracy baseline.

Priced through the engine with the :class:`~repro.mc.direct.DirectSampling`
technique (the model draws its own randomness, unlike the Gaussian-block
protocol GBM uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.rng.base import BitGenerator
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = ["MertonJumpDiffusion", "sample_poisson"]


def sample_poisson(gen: BitGenerator, n: int, mean: float) -> np.ndarray:
    """``n`` Poisson(mean) variates via the vectorized Knuth product method.

    Exact for any mean; intended for the moderate λT of jump models
    (iteration count concentrates near ``mean``). For ``mean = 0`` returns
    zeros without consuming randomness.
    """
    check_positive_int("n", n)
    check_non_negative("mean", mean)
    if mean == 0.0:
        return np.zeros(n, dtype=np.int64)
    if mean > 100.0:
        raise ValidationError(
            f"Knuth sampler is inefficient for mean={mean}; keep λT ≤ 100"
        )
    threshold = math.exp(-mean)
    counts = np.full(n, -1, dtype=np.int64)
    prod = np.ones(n, dtype=float)
    active = np.ones(n, dtype=bool)
    # P(N ≥ k) decays super-exponentially past the mean; this bound is safe.
    max_rounds = int(mean + 12.0 * math.sqrt(mean) + 20.0)
    for _ in range(max_rounds):
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            break
        u = gen.uniforms_open(idx.size)
        prod[idx] *= u
        counts[idx] += 1
        still = prod[idx] > threshold
        active[idx] = still
    if active.any():  # pragma: no cover - probability ≈ 0
        raise ValidationError("Poisson sampling failed to terminate")
    return counts


@dataclass(frozen=True, eq=False, repr=False)
class MertonJumpDiffusion:
    """Single-asset Merton jump-diffusion market.

    Parameters
    ----------
    spot, vol, rate, dividend : as in Black–Scholes.
    jump_intensity : λ ≥ 0, expected jumps per year.
    jump_mean : μ_J, mean of the lognormal jump size exponent.
    jump_vol : σ_J ≥ 0, std-dev of the jump size exponent.
    """

    spot: float
    vol: float
    rate: float
    jump_intensity: float
    jump_mean: float
    jump_vol: float
    dividend: float = 0.0

    def __init__(self, spot, vol, rate, jump_intensity, jump_mean, jump_vol,
                 dividend=0.0):
        object.__setattr__(self, "spot", check_positive("spot", spot))
        object.__setattr__(self, "vol", check_positive("vol", vol))
        if not np.isfinite(rate):
            raise ValidationError(f"rate must be finite, got {rate!r}")
        object.__setattr__(self, "rate", float(rate))
        object.__setattr__(self, "jump_intensity",
                           check_non_negative("jump_intensity", jump_intensity))
        if not np.isfinite(jump_mean):
            raise ValidationError(f"jump_mean must be finite, got {jump_mean!r}")
        object.__setattr__(self, "jump_mean", float(jump_mean))
        object.__setattr__(self, "jump_vol",
                           check_non_negative("jump_vol", jump_vol))
        object.__setattr__(self, "dividend",
                           check_non_negative("dividend", dividend))

    @property
    def dim(self) -> int:
        """Single underlying."""
        return 1

    @property
    def kappa(self) -> float:
        """Expected relative jump size κ = E[e^Y] − 1."""
        return math.exp(self.jump_mean + 0.5 * self.jump_vol**2) - 1.0

    @property
    def spots(self) -> np.ndarray:
        """Spot vector (length 1), mirroring :class:`MultiAssetGBM`."""
        return np.array([self.spot])

    def sample_terminal(self, gen: BitGenerator, n_paths: int,
                        horizon: float) -> np.ndarray:
        """Exact terminal prices, shape ``(n, 1)``."""
        n = check_positive_int("n_paths", n_paths)
        t = check_positive("horizon", horizon)
        lam_t = self.jump_intensity * t
        drift = (self.rate - self.dividend - self.jump_intensity * self.kappa
                 - 0.5 * self.vol**2) * t
        z = gen.normals(n)
        counts = sample_poisson(gen, n, lam_t)
        # Σ of N(μ_J, σ_J²) given the count: N(k μ_J, k σ_J²).
        jump_z = gen.normals(n)
        jumps = counts * self.jump_mean + np.sqrt(counts.astype(float)) \
            * self.jump_vol * jump_z
        log_s = math.log(self.spot) + drift + self.vol * math.sqrt(t) * z + jumps
        return np.exp(log_s)[:, None]

    def terminal_mean(self, horizon: float) -> float:
        """E[S_T] = S₀ e^{(r−q)T} — the compensator makes the discounted
        asset a martingale despite the jumps."""
        t = check_positive("horizon", horizon)
        return self.spot * math.exp((self.rate - self.dividend) * t)

    def __repr__(self) -> str:
        return (
            f"MertonJumpDiffusion(spot={self.spot}, vol={self.vol}, "
            f"rate={self.rate}, lambda={self.jump_intensity}, "
            f"jump_mean={self.jump_mean}, jump_vol={self.jump_vol})"
        )
