"""Market-model substrate: term structures, correlation tools, and the
correlated multi-asset geometric Brownian motion model that all three
pricing engines (MC, lattice, PDE) consume."""

from repro.market.term import FlatCurve, ZeroCurve
from repro.market.correlation import (
    cholesky_factor,
    constant_correlation,
    random_correlation,
    is_positive_semidefinite,
)
from repro.market.gbm import MultiAssetGBM
from repro.market.merton import MertonJumpDiffusion, sample_poisson
from repro.market.heston import HestonModel

__all__ = [
    "MertonJumpDiffusion",
    "sample_poisson",
    "HestonModel",
    "FlatCurve",
    "ZeroCurve",
    "cholesky_factor",
    "constant_correlation",
    "random_correlation",
    "is_positive_semidefinite",
    "MultiAssetGBM",
]
