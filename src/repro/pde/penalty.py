"""Penalty method for American options — the PSOR alternative.

Instead of solving the linear complementarity problem exactly, the penalty
method (Forsyth & Vetzal 2002) adds a large one-sided source term pushing
the solution above the obstacle:

    (I − θΔτ L) V = rhs + ρ·max(ψ − V, 0),

solved per time step by a few Newton-style penalty iterations, each a plain
tridiagonal solve with the penalty active set frozen. As ρ → ∞ the solution
converges to the LCP's; with ρ ≈ 1/tolerance the constraint violation is
O(1/ρ).

Included as the design-choice ablation for American PDE exercise
(DESIGN.md): same prices as PSOR, different inner loop (a handful of
tridiagonal solves vs hundreds of relaxation sweeps).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.utils.numerics import solve_tridiagonal

__all__ = ["penalty_solve"]


def penalty_solve(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
    obstacle: np.ndarray,
    *,
    penalty: float = 1e7,
    tol: float = 1e-8,
    max_iter: int = 50,
) -> np.ndarray:
    """Solve ``A x = b`` subject to ``x ≥ ψ`` by penalty iteration.

    Parameters mirror :func:`repro.pde.psor_solve`; ``penalty`` is the
    constraint weight ρ (violation scales like 1/ρ).
    """
    if penalty <= 0:
        raise ValidationError(f"penalty must be positive, got {penalty}")
    a = np.asarray(lower, dtype=float)
    b = np.asarray(diag, dtype=float)
    c = np.asarray(upper, dtype=float)
    d = np.asarray(rhs, dtype=float)
    psi = np.asarray(obstacle, dtype=float)
    n = b.shape[0]
    if any(arr.shape[0] != n for arr in (a, c, d, psi)):
        raise ValidationError("all penalty-solver inputs must share their first dimension")

    # Start from the unconstrained solution; the active set where it dips
    # below the obstacle seeds the iteration (Forsyth–Vetzal).
    x = solve_tridiagonal(a.copy(), b.copy(), c.copy(), d.copy())
    active = x < psi
    prev = x
    for _ in range(max_iter):
        # Penalized system with the current active set: rows in the set get
        # the penalty on the diagonal and ρ·ψ on the right-hand side.
        b_pen = b + penalty * active
        d_pen = d + penalty * active * psi
        x = solve_tridiagonal(a.copy(), b_pen, c.copy(), d_pen)
        # Penalized nodes land at ψ − O(1/ρ): a *strict* comparison keeps
        # them in the set (a slack tolerance here causes period-2 cycling).
        new_active = x < psi
        set_stable = np.array_equal(new_active, active)
        value_stable = float(np.max(np.abs(x - prev))) < tol
        if set_stable or value_stable:
            # The remaining violation is the O(1/ρ) penalty slack; project
            # it away and return.
            return np.maximum(x, psi)
        active = new_active
        prev = x
    raise ConvergenceError(
        f"penalty iteration did not settle in {max_iter} rounds",
        iterations=max_iter,
    )
