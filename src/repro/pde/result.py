"""Result object for PDE valuations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PDEResult"]


@dataclass(frozen=True)
class PDEResult:
    """A finite-difference price with grid diagnostics.

    ``values`` carries the terminal (t = 0) value function over the spatial
    grid so callers can inspect the whole solution surface; ``delta`` and
    ``gamma`` are read at the spot node.
    """

    price: float
    n_space: int
    n_time: int
    scheme: str
    delta: float | None = None
    gamma: float | None = None
    values: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"{self.price:.6f} (pde/{self.scheme}, "
            f"grid={self.n_space}x{self.n_time})"
        )
