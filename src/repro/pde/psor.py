"""Projected SOR for the American-exercise linear complementarity problem.

Solves ``A x = b`` subject to ``x ≥ ψ`` (with complementarity) for a
tridiagonal ``A``, by red–black over-relaxation: even-indexed nodes update
vectorized from the current odd values and vice versa, with projection onto
the obstacle after every half-sweep. Red–black ordering keeps the sweep in
NumPy (no per-node Python loop) at the cost of a slightly different — but
still convergent — iteration than lexicographic SOR.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ValidationError

__all__ = ["psor_solve"]


def psor_solve(
    lower: np.ndarray,
    diag: np.ndarray,
    upper: np.ndarray,
    rhs: np.ndarray,
    obstacle: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    omega: float = 1.5,
    tol: float = 1e-9,
    max_iter: int = 10_000,
) -> np.ndarray:
    """Solve the tridiagonal LCP ``A x = b``, ``x ≥ ψ``.

    Parameters
    ----------
    lower, diag, upper : bands of A (``lower[0]``/``upper[-1]`` unused).
    rhs : right-hand side b.
    obstacle : early-exercise value ψ.
    x0 : warm start (defaults to ``max(rhs, ψ)``).
    omega : relaxation parameter in (0, 2).
    tol : ∞-norm update tolerance.
    """
    if not 0.0 < omega < 2.0:
        raise ValidationError(f"omega must lie in (0, 2), got {omega}")
    a = np.asarray(lower, dtype=float)
    b = np.asarray(diag, dtype=float)
    c = np.asarray(upper, dtype=float)
    d = np.asarray(rhs, dtype=float)
    psi = np.asarray(obstacle, dtype=float)
    n = b.shape[0]
    if any(arr.shape[0] != n for arr in (a, c, d, psi)):
        raise ValidationError("all PSOR inputs must share their first dimension")
    if np.any(b == 0.0):
        raise ValidationError("PSOR requires a nonzero diagonal")

    x = np.maximum(d, psi) if x0 is None else np.maximum(np.asarray(x0, float).copy(), psi)

    even = np.arange(0, n, 2)
    odd = np.arange(1, n, 2)

    def _half_sweep(idx: np.ndarray) -> None:
        # Gauss–Seidel residual using the *latest* neighbor values.
        neighbor = np.zeros(idx.size)
        has_left = idx > 0
        neighbor[has_left] += a[idx[has_left]] * x[idx[has_left] - 1]
        has_right = idx < n - 1
        neighbor[has_right] += c[idx[has_right]] * x[idx[has_right] + 1]
        gs = (d[idx] - neighbor) / b[idx]
        x[idx] = np.maximum((1.0 - omega) * x[idx] + omega * gs, psi[idx])

    for _ in range(max_iter):
        prev = x.copy()
        _half_sweep(even)
        _half_sweep(odd)
        if float(np.max(np.abs(x - prev))) < tol:
            return x
    raise ConvergenceError(
        f"PSOR failed to reach tol={tol} in {max_iter} iterations",
        iterations=max_iter,
        residual=float(np.max(np.abs(x - prev))),
    )
