"""Spatial grids for the finite-difference engines.

All solvers work in ``x = ln(S/S₀)`` where the Black–Scholes operator has
constant coefficients; the grid is uniform in ``x``, spans ``±n_std``
diffusion standard deviations (plus the drift excursion), and always places
``x = 0`` (the spot) exactly on a node so no interpolation error enters the
quoted price.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LogGrid"]


class LogGrid:
    """A uniform grid in log-moneyness centred on the spot.

    Parameters
    ----------
    spot : S₀ > 0.
    vol : lognormal volatility (sets the grid half-width).
    expiry : horizon in years.
    n_space : number of *intervals*; the grid has ``n_space + 1`` nodes and
        ``n_space`` must be even so the spot sits on the middle node.
    n_std : half-width in units of ``σ√T`` (5 is ample for vanilla tails).
    drift : absolute drift ``|r − q − σ²/2|·T`` added to the half-width.
    """

    def __init__(
        self,
        spot: float,
        vol: float,
        expiry: float,
        n_space: int,
        *,
        n_std: float = 5.0,
        drift: float = 0.0,
    ):
        check_positive("spot", spot)
        check_positive("vol", vol)
        check_positive("expiry", expiry)
        check_positive("n_std", n_std)
        n = check_positive_int("n_space", n_space)
        if n % 2:
            raise ValidationError(f"n_space must be even to centre the spot, got {n}")
        if n < 4:
            raise ValidationError(f"n_space must be at least 4, got {n}")
        self.spot = float(spot)
        half_width = n_std * vol * math.sqrt(expiry) + abs(drift) * expiry
        self.x = np.linspace(-half_width, half_width, n + 1)
        self.dx = float(self.x[1] - self.x[0])
        self.s = self.spot * np.exp(self.x)
        #: Index of the node holding the spot (x = 0).
        self.spot_index = n // 2

    @property
    def n_nodes(self) -> int:
        return self.x.size

    def value_at_spot(self, values: np.ndarray) -> float:
        """Read a nodal value vector at the spot node."""
        v = np.asarray(values, dtype=float)
        if v.shape[0] != self.n_nodes:
            raise ValidationError(
                f"values must have {self.n_nodes} nodes, got {v.shape[0]}"
            )
        return float(v[self.spot_index])

    def derivatives_at_spot(self, values: np.ndarray) -> tuple[float, float]:
        """(∂V/∂S, ∂²V/∂S²) at the spot by central differences in x.

        Chain rule: V_S = V_x / S, V_SS = (V_xx − V_x) / S².
        """
        v = np.asarray(values, dtype=float)
        i = self.spot_index
        v_x = (v[i + 1] - v[i - 1]) / (2.0 * self.dx)
        v_xx = (v[i + 1] - 2.0 * v[i] + v[i - 1]) / (self.dx * self.dx)
        s0 = self.spot
        return v_x / s0, (v_xx - v_x) / (s0 * s0)
