"""1-D Black–Scholes finite differences (θ-scheme) in log space.

With ``x = ln(S/S₀)`` and ``τ`` = time to maturity, the PDE is

    V_τ = ½σ² V_xx + μ V_x − r V,   μ = r − q − σ²/2,

constant-coefficient, so the discrete operator is a single tridiagonal
``L``. The θ-scheme advances ``(I − θΔτ L) V^{k+1} = (I + (1−θ)Δτ L) V^k``:
θ = 0 explicit (conditionally stable, CFL-checked), θ = 1 implicit,
θ = ½ Crank–Nicolson. Boundaries use the payoff-agnostic *linearity*
condition ``V_xx = 0`` with one-sided convection.

American exercise: explicit steps project onto the obstacle directly;
implicit/CN steps solve the LCP with projected SOR (:mod:`repro.pde.psor`).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import StabilityError, ValidationError
from repro.payoffs.base import Payoff
from repro.pde.grid import LogGrid
from repro.pde.psor import psor_solve
from repro.pde.result import PDEResult
from repro.utils.numerics import solve_tridiagonal
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["fd_price", "theta_scheme_operator"]

_SCHEMES = {"explicit": 0.0, "implicit": 1.0, "crank-nicolson": 0.5}


def theta_scheme_operator(
    vol: float, rate: float, dividend: float, dx: float, n_nodes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tridiagonal bands ``(lower, diag, upper)`` of the space operator L.

    Interior rows are central differences of ``½σ²∂_xx + μ∂_x − r``;
    boundary rows impose zero second derivative with one-sided first
    derivatives (linearity boundary).
    """
    check_positive("vol", vol)
    check_positive("dx", dx)
    n = check_positive_int("n_nodes", n_nodes)
    if n < 3:
        raise ValidationError("operator needs at least 3 nodes")
    mu = rate - dividend - 0.5 * vol * vol
    diff = 0.5 * vol * vol / (dx * dx)
    conv = mu / (2.0 * dx)
    lower = np.full(n, diff - conv)
    diag = np.full(n, -2.0 * diff - rate)
    upper = np.full(n, diff + conv)
    # Linearity boundaries: V_xx = 0, one-sided V_x.
    lower[0] = 0.0
    diag[0] = -mu / dx - rate
    upper[0] = mu / dx
    lower[-1] = -mu / dx
    diag[-1] = mu / dx - rate
    upper[-1] = 0.0
    return lower, diag, upper


def _apply_tridiag(lower, diag, upper, v):
    """y = T·v for tridiagonal bands (lower[0], upper[-1] unused)."""
    y = diag * v
    y[1:] += lower[1:] * v[:-1]
    y[:-1] += upper[:-1] * v[1:]
    return y


def fd_price(
    spot: float,
    payoff: Payoff,
    vol: float,
    rate: float,
    expiry: float,
    *,
    dividend: float = 0.0,
    n_space: int = 400,
    n_time: int = 400,
    scheme: str = "crank-nicolson",
    american: bool = False,
    american_solver: str = "psor",
    n_std: float = 5.0,
    keep_values: bool = False,
) -> PDEResult:
    """Price a single-asset contract by finite differences.

    Parameters mirror :func:`repro.lattice.binomial_price`; ``n_space`` is
    the number of spatial intervals (even), ``n_time`` the number of time
    steps. ``american_solver`` selects the LCP method for implicit schemes:
    ``"psor"`` (projected SOR) or ``"penalty"`` (Forsyth–Vetzal penalty
    iteration) — the two agree to the penalty tolerance (ablation-tested).
    Returns price plus spot delta/gamma.
    """
    if scheme not in _SCHEMES:
        raise ValidationError(f"scheme must be one of {tuple(_SCHEMES)}, got {scheme!r}")
    if american_solver not in ("psor", "penalty"):
        raise ValidationError(
            f"american_solver must be 'psor' or 'penalty', got {american_solver!r}"
        )
    if payoff.dim != 1:
        raise ValidationError("fd_price handles single-asset payoffs; use adi_price for 2-D")
    if payoff.is_path_dependent:
        raise ValidationError("finite differences price non-path-dependent payoffs here")
    check_positive("expiry", expiry)
    m = check_positive_int("n_time", n_time)
    theta = _SCHEMES[scheme]
    mu = rate - dividend - 0.5 * vol * vol
    grid = LogGrid(spot, vol, expiry, n_space, n_std=n_std, drift=mu)
    dt = expiry / m
    lower, diag, upper = theta_scheme_operator(vol, rate, dividend, grid.dx, grid.n_nodes)

    if theta < 0.5:
        # Explicit-part stability: Δτ · max|diag| ≤ 1 keeps the update a
        # positive combination (sufficient condition).
        cfl = dt * float(np.max(np.abs(diag)))
        if (1.0 - theta) * cfl > 1.0:
            raise StabilityError(
                f"explicit scheme unstable: dt·max|L_ii| = {cfl:.3f} > 1; "
                f"use n_time ≥ {int(math.ceil(expiry * np.max(np.abs(diag)))) + 1} "
                "or an implicit scheme",
                cfl=cfl,
            )

    values = payoff.terminal(grid.s[:, None])
    obstacle = values.copy() if american else None

    # Precompute the two band triples of the θ-scheme.
    exp_l = (1.0 - theta) * dt * lower
    exp_d = 1.0 + (1.0 - theta) * dt * diag
    exp_u = (1.0 - theta) * dt * upper
    imp_l = -theta * dt * lower
    imp_d = 1.0 - theta * dt * diag
    imp_u = -theta * dt * upper

    for _ in range(m):
        rhs = _apply_tridiag(exp_l, exp_d, exp_u, values)
        if theta == 0.0:
            values = rhs
            if american:
                np.maximum(values, obstacle, out=values)
        elif american:
            if american_solver == "psor":
                values = psor_solve(imp_l, imp_d, imp_u, rhs, obstacle, x0=values)
            else:
                from repro.pde.penalty import penalty_solve

                values = penalty_solve(imp_l, imp_d, imp_u, rhs, obstacle)
        else:
            values = solve_tridiagonal(imp_l, imp_d, imp_u, rhs)

    price = grid.value_at_spot(values)
    delta, gamma = grid.derivatives_at_spot(values)
    return PDEResult(
        price=price,
        n_space=n_space,
        n_time=m,
        scheme=scheme,
        delta=delta,
        gamma=gamma,
        values=values if keep_values else None,
        meta={"american": american, "american_solver": american_solver,
              "dx": grid.dx, "dt": dt},
    )
