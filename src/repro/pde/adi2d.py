"""Peaceman–Rachford ADI for two-asset Black–Scholes.

In ``x = ln(S₁/S₁₀)``, ``y = ln(S₂/S₂₀)`` the PDE is

    V_τ = ½σ₁² V_xx + ½σ₂² V_yy + ρσ₁σ₂ V_xy + μ₁ V_x + μ₂ V_y − r V.

Each time step splits into two half-steps, implicit in one direction at a
time; the mixed derivative is treated explicitly (the simple Craig–Sneyd
variant), and the ``−rV`` reaction term is split evenly between directions:

    (I − ½Δτ L_x) V*     = (I + ½Δτ L_y) Vⁿ + ½Δτ M Vⁿ
    (I − ½Δτ L_y) Vⁿ⁺¹  = (I + ½Δτ L_x) V* + ½Δτ M Vⁿ

Every half-step is a batch of independent tridiagonal solves — one per grid
line — which is precisely the unit the parallel PDE pricer distributes: the
x-sweep parallelizes over rows, the y-sweep over columns, with a transpose
(all-to-all) between them (experiment T7).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.market.gbm import MultiAssetGBM
from repro.payoffs.base import Payoff
from repro.pde.grid import LogGrid
from repro.pde.result import PDEResult
from repro.utils.numerics import solve_tridiagonal
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["ADISolver", "adi_price"]


def _operator_bands(vol: float, mu: float, rate_half: float, dx: float, n: int):
    """Bands of L_dir = ½σ²∂² + μ∂ − r/2 with linearity boundaries."""
    diff = 0.5 * vol * vol / (dx * dx)
    conv = mu / (2.0 * dx)
    lower = np.full(n, diff - conv)
    diag = np.full(n, -2.0 * diff - rate_half)
    upper = np.full(n, diff + conv)
    lower[0] = 0.0
    diag[0] = -mu / dx - rate_half
    upper[0] = mu / dx
    lower[-1] = -mu / dx
    diag[-1] = mu / dx - rate_half
    upper[-1] = 0.0
    return lower, diag, upper


def _apply_bands_axis0(bands, v):
    """(L v) along axis 0 for a 2-D array v."""
    lower, diag, upper = bands
    y = diag[:, None] * v
    y[1:] += lower[1:, None] * v[:-1]
    y[:-1] += upper[:-1, None] * v[1:]
    return y


class ADISolver:
    """Configured 2-asset ADI solver.

    Parameters
    ----------
    model : a 2-asset :class:`MultiAssetGBM`.
    expiry : maturity.
    n_space : spatial intervals per axis (even).
    n_time : time steps.
    n_std : grid half-width in diffusion standard deviations.
    """

    def __init__(
        self,
        model: MultiAssetGBM,
        expiry: float,
        *,
        n_space: int = 200,
        n_time: int = 100,
        n_std: float = 5.0,
    ):
        if model.dim != 2:
            raise ValidationError(f"ADI solver requires a 2-asset model, got dim={model.dim}")
        check_positive("expiry", expiry)
        self.model = model
        self.expiry = float(expiry)
        self.n_time = check_positive_int("n_time", n_time)
        mu = model.drifts
        self.grid_x = LogGrid(float(model.spots[0]), float(model.vols[0]), expiry,
                              n_space, n_std=n_std, drift=float(mu[0]))
        self.grid_y = LogGrid(float(model.spots[1]), float(model.vols[1]), expiry,
                              n_space, n_std=n_std, drift=float(mu[1]))
        self.dt = self.expiry / self.n_time
        nx, ny = self.grid_x.n_nodes, self.grid_y.n_nodes
        r_half = 0.5 * model.rate
        self.bands_x = _operator_bands(float(model.vols[0]), float(mu[0]), r_half,
                                       self.grid_x.dx, nx)
        self.bands_y = _operator_bands(float(model.vols[1]), float(mu[1]), r_half,
                                       self.grid_y.dx, ny)
        self.cross_coef = (
            float(model.correlation[0, 1]) * float(model.vols[0]) * float(model.vols[1])
        )

    # -- pieces reused by the parallel pricer ---------------------------------

    def mixed_term(self, v: np.ndarray) -> np.ndarray:
        """ρσ₁σ₂ V_xy by central cross-differences (zero on the boundary ring)."""
        out = np.zeros_like(v)
        factor = self.cross_coef / (4.0 * self.grid_x.dx * self.grid_y.dx)
        out[1:-1, 1:-1] = factor * (
            v[2:, 2:] - v[2:, :-2] - v[:-2, 2:] + v[:-2, :-2]
        )
        return out

    def explicit_x(self, v: np.ndarray) -> np.ndarray:
        """(I + ½Δτ L_x) v."""
        return v + 0.5 * self.dt * _apply_bands_axis0(self.bands_x, v)

    def explicit_y(self, v: np.ndarray) -> np.ndarray:
        """(I + ½Δτ L_y) v."""
        return (v.T + 0.5 * self.dt * _apply_bands_axis0(self.bands_y, v.T)).T

    def implicit_x(self, rhs: np.ndarray) -> np.ndarray:
        """Solve (I − ½Δτ L_x) out = rhs — one tridiagonal solve per column."""
        lower, diag, upper = self.bands_x
        h = 0.5 * self.dt
        return solve_tridiagonal(-h * lower, 1.0 - h * diag, -h * upper, rhs)

    def implicit_y(self, rhs: np.ndarray) -> np.ndarray:
        """Solve (I − ½Δτ L_y) out = rhs — one tridiagonal solve per row."""
        lower, diag, upper = self.bands_y
        h = 0.5 * self.dt
        return solve_tridiagonal(-h * lower, 1.0 - h * diag, -h * upper, rhs.T).T

    def step(self, v: np.ndarray, *, obstacle: np.ndarray | None = None) -> np.ndarray:
        """One full Peaceman–Rachford step (τ → τ + Δτ)."""
        mixed = 0.5 * self.dt * self.mixed_term(v)
        v_star = self.implicit_x(self.explicit_y(v) + mixed)
        v_new = self.implicit_y(self.explicit_x(v_star) + mixed)
        if obstacle is not None:
            np.maximum(v_new, obstacle, out=v_new)
        return v_new

    # -- pricing ------------------------------------------------------------------

    def price(self, payoff: Payoff, *, american: bool = False,
              keep_values: bool = False) -> PDEResult:
        """Run the backward sweep and read the price at the spot node."""
        if payoff.dim != 2:
            raise ValidationError(f"ADI solver prices 2-asset payoffs, got dim={payoff.dim}")
        if payoff.is_path_dependent:
            raise ValidationError("ADI prices non-path-dependent payoffs only")
        sx = self.grid_x.s
        sy = self.grid_y.s
        mesh = np.stack(np.meshgrid(sx, sy, indexing="ij"), axis=-1).reshape(-1, 2)
        values = payoff.terminal(mesh).reshape(sx.size, sy.size)
        obstacle = values.copy() if american else None
        for _ in range(self.n_time):
            values = self.step(values, obstacle=obstacle)
        i, j = self.grid_x.spot_index, self.grid_y.spot_index
        price = float(values[i, j])
        delta1 = float(
            (values[i + 1, j] - values[i - 1, j])
            / (2.0 * self.grid_x.dx)
            / self.grid_x.spot
        )
        delta2 = float(
            (values[i, j + 1] - values[i, j - 1])
            / (2.0 * self.grid_y.dx)
            / self.grid_y.spot
        )
        return PDEResult(
            price=price,
            n_space=sx.size - 1,
            n_time=self.n_time,
            scheme="adi-peaceman-rachford",
            delta=delta1,
            gamma=None,
            values=values if keep_values else None,
            meta={"delta2": delta2, "american": american},
        )


def adi_price(
    model: MultiAssetGBM,
    payoff: Payoff,
    expiry: float,
    *,
    n_space: int = 200,
    n_time: int = 100,
    american: bool = False,
) -> PDEResult:
    """Price a 2-asset contract with Peaceman–Rachford ADI (wrapper)."""
    solver = ADISolver(model, expiry, n_space=n_space, n_time=n_time)
    return solver.price(payoff, american=american)
