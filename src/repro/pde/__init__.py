"""Finite-difference PDE engines.

* :func:`fd_price` — 1-D Black–Scholes θ-scheme (explicit / implicit /
  Crank–Nicolson) in log space, with linearity (zero-gamma) boundaries;
  American exercise via projected SOR.
* :func:`adi_price` — 2-D Peaceman–Rachford ADI for two-asset contracts,
  mixed derivative treated explicitly.

The tridiagonal solves use the Thomas algorithm from
:mod:`repro.utils.numerics`; the ADI row/column sweeps are the unit of
work the parallel PDE pricer decomposes (experiment T7).
"""

from repro.pde.grid import LogGrid
from repro.pde.result import PDEResult
from repro.pde.bs1d import fd_price, theta_scheme_operator
from repro.pde.psor import psor_solve
from repro.pde.penalty import penalty_solve
from repro.pde.adi2d import adi_price, ADISolver

__all__ = [
    "LogGrid",
    "PDEResult",
    "fd_price",
    "theta_scheme_operator",
    "psor_solve",
    "penalty_solve",
    "adi_price",
    "ADISolver",
]
