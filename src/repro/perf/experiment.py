"""Sweep runner producing the paper-style scaling tables.

Wraps any pricer exposing ``price(model, payoff, expiry, p) →
ParallelRunResult`` and runs it over a processor list, returning a
:class:`~repro.perf.metrics.ScalingSeries` plus the full per-run results —
the unit every benchmark in ``benchmarks/`` is built from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.perf.laws import fit_serial_fraction, karp_flatt
from repro.perf.metrics import ScalingSeries
from repro.utils.formatting import Table

__all__ = ["ScalingExperiment"]


@dataclass
class ScalingExperiment:
    """One strong-scaling sweep of a parallel pricer.

    Parameters
    ----------
    pricer : object with ``price(model, payoff, expiry, p)``.
    model, payoff, expiry : the priced contract.
    label : experiment name for tables.
    """

    pricer: object
    model: object
    payoff: object
    expiry: float
    label: str = ""

    def run(self, p_list) -> tuple[ScalingSeries, list]:
        """Execute the sweep; returns (series, per-run results)."""
        p_seq = list(p_list)
        if not p_seq:
            raise ValidationError("p_list must be non-empty")
        results = [self.pricer.price(self.model, self.payoff, self.expiry, p)
                   for p in p_seq]
        series = ScalingSeries.from_results(results, label=self.label)
        return series, results

    def report(self, p_list, *, floatfmt: str = ".4g") -> str:
        """Run and render the full diagnostic table (T, S, E, comm%, f_KF)."""
        series, results = self.run(p_list)
        table = Table(
            ["P", "T(P) [s]", "speedup", "efficiency", "comm %", "idle %", "Karp-Flatt f"],
            title=self.label or None,
            floatfmt=floatfmt,
        )
        sp = series.speedups
        eff = series.efficiencies
        for i, r in enumerate(results):
            kf = karp_flatt(float(sp[i]), r.p) if r.p >= 2 else 0.0
            comm_pct = 100.0 * r.comm_time / r.sim_time if r.sim_time > 0 else 0.0
            idle_pct = 100.0 * r.idle_time / r.sim_time if r.sim_time > 0 else 0.0
            table.add_row([r.p, r.sim_time, float(sp[i]), float(eff[i]),
                           comm_pct, idle_pct, kf])
        lines = [table.render()]
        if len(series.ps) >= 2 and series.ps[0] == 1:
            f, rms = fit_serial_fraction(series.ps, series.times)
            lines.append(f"Amdahl fit: serial fraction f = {f:.4f} (rms {rms:.3g})")
        return "\n".join(lines)
