"""ASCII Gantt rendering of a simulated cluster's execution trace.

Turn on tracing with ``SimulatedCluster(p, record=True)``; after a run,
:func:`render_gantt` draws one timeline row per rank:

    rank 0 |################~~....|
    rank 1 |####xxxx####..~~~~....|

``#`` compute, ``~`` communication, ``.`` idle/wait, ``x`` fault-recovery
(wasted attempts charged by the resilience layer), space = before any
recorded activity. The picture makes the engines' signatures visible at a
glance: MC rows are solid ``#`` with a sliver of ``~`` at the end; the
lattice alternates ``#``/``~`` every level; ADI shows the broad ``~``
all-to-all bands; a chaos run shows ``x`` bands on the faulted ranks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["render_gantt"]

_GLYPHS = {"compute": "#", "comm": "~", "idle": ".", "fault": "x"}


def render_gantt(cluster, *, width: int = 72, show_scale: bool = True) -> str:
    """Render ``cluster.trace`` as an ASCII timeline, one row per rank.

    Each column covers ``elapsed/width`` seconds; a column's glyph is the
    activity occupying the most time in that bin (compute > comm > idle on
    ties, so busy work is never hidden by waiting).
    """
    check_positive_int("width", width)
    if not getattr(cluster, "record", False):
        raise ValidationError(
            "tracing was not enabled; construct SimulatedCluster(p, record=True)"
        )
    horizon = cluster.elapsed()
    if horizon <= 0.0 or not cluster.trace:
        return "\n".join(f"rank {r:<3d}|{' ' * width}|" for r in range(cluster.p))

    # occupancy[rank, column, kind-index] = seconds of that kind in the bin
    kinds = ("compute", "comm", "idle", "fault")
    occupancy = np.zeros((cluster.p, width, len(kinds)))
    scale = width / horizon
    for rank, t0, t1, kind in cluster.trace:
        k = kinds.index(kind)
        c0 = t0 * scale
        c1 = t1 * scale
        first = int(c0)
        last = min(int(np.ceil(c1)), width)
        for col in range(first, last):
            overlap = min(c1, col + 1) - max(c0, col)
            if overlap > 0:
                occupancy[rank, col, k] += overlap / scale

    lines = []
    for r in range(cluster.p):
        row = []
        for col in range(width):
            cell = occupancy[r, col]
            if cell.sum() <= 0.0:
                row.append(" ")
            else:
                row.append(_GLYPHS[kinds[int(np.argmax(cell))]])
        lines.append(f"rank {r:<3d}|{''.join(row)}|")
    if show_scale:
        lines.append(f"        0{' ' * (width - 10)}{horizon:.4g}s")
        lines.append("        # compute   ~ communication   . idle   x fault")
    return "\n".join(lines)
