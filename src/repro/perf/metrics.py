"""Speedup and efficiency series — equations (2) and (4) of the metric
canon: ``S(P) = T(1)/T(P)``, ``E(P) = S(P)/P``."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.utils.formatting import Table

__all__ = ["speedup", "efficiency", "ScalingSeries"]


def speedup(t1: float, tp: float) -> float:
    """``S = T(1) / T(P)``."""
    if t1 <= 0 or tp <= 0:
        raise ValidationError(f"times must be positive, got T(1)={t1}, T(P)={tp}")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """``E = S / P``."""
    if p <= 0:
        raise ValidationError(f"p must be positive, got {p}")
    return speedup(t1, tp) / p


@dataclass(frozen=True)
class ScalingSeries:
    """A T(P) measurement series with derived speedup/efficiency columns.

    ``times[0]`` must correspond to ``ps[0] == 1`` (the sequential
    baseline) unless an explicit ``t1`` override is supplied — e.g. when
    the best *sequential* algorithm differs from the parallel one run on
    one processor.
    """

    ps: tuple[int, ...]
    times: tuple[float, ...]
    t1: float | None = None
    label: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.ps) != len(self.times) or not self.ps:
            raise ValidationError("ps and times must be equal-length non-empty sequences")
        if any(p <= 0 for p in self.ps) or any(t <= 0 for t in self.times):
            raise ValidationError("processor counts and times must be positive")
        if self.t1 is None and self.ps[0] != 1:
            raise ValidationError(
                "series must start at P=1 or supply an explicit t1 baseline"
            )

    @classmethod
    def from_results(cls, results, *, label: str = "", t1: float | None = None) -> "ScalingSeries":
        """Build from a list of :class:`~repro.core.ParallelRunResult`."""
        return cls(
            ps=tuple(r.p for r in results),
            times=tuple(r.sim_time for r in results),
            t1=t1,
            label=label,
            extras={
                "comm_times": tuple(r.comm_time for r in results),
                "idle_times": tuple(r.idle_time for r in results),
            },
        )

    @property
    def baseline(self) -> float:
        return self.t1 if self.t1 is not None else self.times[0]

    @property
    def speedups(self) -> np.ndarray:
        return self.baseline / np.asarray(self.times)

    @property
    def efficiencies(self) -> np.ndarray:
        return self.speedups / np.asarray(self.ps, dtype=float)

    def table(self, *, floatfmt: str = ".4g") -> Table:
        """Render the classic four-column scaling table."""
        t = Table(["P", "T(P) [s]", "speedup", "efficiency"],
                  title=self.label or None, floatfmt=floatfmt)
        for p, tp, s, e in zip(self.ps, self.times, self.speedups, self.efficiencies):
            t.add_row([p, tp, float(s), float(e)])
        return t
