"""Wall-clock timing helpers for the real-backend benchmarks."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["Timer", "TimingStats", "time_callable"]


class Timer:
    """Reusable stopwatch: explicit :meth:`start`/:meth:`stop` or a
    context manager.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True

    A timer may be restarted any number of times; ``elapsed`` always holds
    the most recent interval. Misuse (stopping a timer that is not
    running, starting one that already is) raises
    :class:`~repro.errors.ValidationError` rather than returning garbage.
    """

    def __init__(self):
        self._start: float | None = None
        self.elapsed: float = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    def start(self) -> "Timer":
        if self._start is not None:
            raise ValidationError("Timer.start() called on a running timer; "
                                  "stop() it first")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer; returns (and stores) the elapsed seconds."""
        if self._start is None:
            raise ValidationError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass(frozen=True)
class TimingStats:
    """Summary of repeated timings of one callable.

    ``min`` stays the headline estimator (the standard noise-resistant
    choice for benchmarking); mean/std expose the spread so benchmark
    tables can show error bars, and :meth:`observe_into` feeds the raw
    repeats to an obs histogram.
    """

    times: tuple[float, ...]

    @property
    def repeats(self) -> int:
        return len(self.times)

    @property
    def min(self) -> float:
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single repeat)."""
        n = len(self.times)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((t - mu) ** 2 for t in self.times) / (n - 1))

    def observe_into(self, histogram) -> None:
        """Feed every repeat into an :class:`~repro.obs.Histogram`."""
        for t in self.times:
            histogram.observe(t)

    def __float__(self) -> float:
        return self.min


def time_callable(fn: Callable[[], object], *, repeats: int = 3) -> TimingStats:
    """Time ``fn()`` ``repeats`` times; returns the full
    :class:`TimingStats` (headline: ``.min``, the best-of-N estimator)."""
    check_positive_int("repeats", repeats)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return TimingStats(times=tuple(times))
