"""Wall-clock timing helpers for the real-backend benchmarks."""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["Timer", "time_callable"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self):
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise ValidationError("Timer exited without entering")
        self.elapsed = time.perf_counter() - self._start
        self._start = None


def time_callable(fn: Callable[[], object], *, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (min over runs, the
    standard noise-resistant estimator for benchmarking)."""
    check_positive_int("repeats", repeats)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
