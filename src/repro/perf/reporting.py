"""Exporters for experiment results: CSV and Markdown.

The benchmarks print ASCII tables; downstream consumers (papers, CI
artifact diffs, spreadsheets) want machine-readable forms. These helpers
convert a :class:`~repro.utils.formatting.Table` or a
:class:`~repro.perf.metrics.ScalingSeries` without reformatting the
numbers the benchmarks computed.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.errors import ValidationError
from repro.parallel.faults import RunReport
from repro.perf.metrics import ScalingSeries
from repro.utils.formatting import Table

__all__ = [
    "table_to_csv",
    "table_to_markdown",
    "series_to_csv",
    "run_report_to_csv",
    "run_report_to_markdown",
    "write_text",
]


def _csv_cell(value) -> str:
    """RFC 4180 escaping for one cell.

    ``csv.writer`` with ``lineterminator="\\n"`` only quotes characters it
    considers special — a bare ``\\r`` inside a cell slips through unquoted
    and corrupts the row for strict readers. Escape explicitly: quote any
    cell containing a comma, quote, CR or LF, doubling embedded quotes.
    """
    text = value if isinstance(value, str) else str(value)
    if any(ch in text for ch in (",", '"', "\n", "\r")):
        return '"' + text.replace('"', '""') + '"'
    return text


def table_to_csv(table: Table, *, floatfmt: str | None = None) -> str:
    """Render a :class:`Table` as CSV text (header row + data rows).

    By default floats are written at full ``repr`` precision — CSV is the
    machine-consumer format, and rounding it would make artifact diffs lie
    about what was measured. Pass ``floatfmt`` (e.g. ``table.floatfmt``)
    to opt into the same display rounding :func:`table_to_markdown`
    applies. Cells are escaped per RFC 4180 (commas, quotes and embedded
    line breaks — including bare ``\\r`` — are quoted).
    """
    if not isinstance(table, Table):
        raise ValidationError("table_to_csv expects a repro Table")
    lines = [",".join(_csv_cell(h) for h in table.headers)]
    for row in table.rows:
        if floatfmt is not None:
            row = [format(v, floatfmt) if isinstance(v, float) else v
                   for v in row]
        lines.append(",".join(_csv_cell(v) for v in row))
    return "\n".join(lines) + "\n"


def table_to_markdown(table: Table) -> str:
    """Render a :class:`Table` as a GitHub-flavoured Markdown table."""
    if not isinstance(table, Table):
        raise ValidationError("table_to_markdown expects a repro Table")
    headers = [str(h) for h in table.headers]
    lines = []
    if table.title:
        lines.append(f"**{table.title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in table.rows:
        cells = [
            format(v, table.floatfmt) if isinstance(v, float) else str(v)
            for v in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def series_to_csv(series: ScalingSeries) -> str:
    """Export a scaling series with its derived speedup/efficiency columns."""
    if not isinstance(series, ScalingSeries):
        raise ValidationError("series_to_csv expects a ScalingSeries")
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["p", "time_s", "speedup", "efficiency"])
    for p, t, s, e in zip(series.ps, series.times, series.speedups,
                          series.efficiencies):
        writer.writerow([p, repr(float(t)), repr(float(s)), repr(float(e))])
    return buf.getvalue()


def run_report_to_csv(report: RunReport) -> str:
    """Export a fault :class:`RunReport` as a per-attempt CSV ledger."""
    if not isinstance(report, RunReport):
        raise ValidationError("run_report_to_csv expects a faults.RunReport")
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["rank", "attempt", "outcome", "backoff_s", "lost"])
    for a in sorted(report.attempts, key=lambda x: (x.rank, x.attempt)):
        writer.writerow([a.rank, a.attempt, a.outcome, repr(float(a.backoff)),
                         int(a.rank in report.lost_ranks)])
    return buf.getvalue()


def run_report_to_markdown(report: RunReport) -> str:
    """Render a fault :class:`RunReport` as a Markdown table with summary."""
    if not isinstance(report, RunReport):
        raise ValidationError("run_report_to_markdown expects a faults.RunReport")
    lines = [
        f"**Fault report ({report.summary()})**",
        "",
        "| rank | attempt | outcome | backoff (s) | detail |",
        "| --- | --- | --- | --- | --- |",
    ]
    for a in sorted(report.attempts, key=lambda x: (x.rank, x.attempt)):
        lines.append(
            f"| {a.rank} | {a.attempt} | {a.outcome} | {a.backoff:g} | {a.detail} |"
        )
    if report.lost_ranks:
        lines.append("")
        lines.append(f"Lost ranks (degraded run): {list(report.lost_ranks)}")
    return "\n".join(lines)


def write_text(path: str | Path, content: str) -> Path:
    """Write exported text to disk, creating parent directories."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(content)
    return out
