"""Performance-evaluation harness: the metrics and laws the paper's
evaluation section is built from.

* :mod:`~repro.perf.metrics` — T(P) → speedup/efficiency series.
* :mod:`~repro.perf.laws` — Amdahl, Gustafson, Karp–Flatt; serial-fraction
  fitting from measured times.
* :mod:`~repro.perf.isoefficiency` — solve for the problem size that holds
  efficiency constant as P grows (Grama–Gupta–Kumar).
* :mod:`~repro.perf.experiment` — sweep runner producing paper-style tables.
"""

from repro.perf.timer import Timer, TimingStats, time_callable
from repro.perf.metrics import ScalingSeries, speedup, efficiency
from repro.perf.laws import (
    amdahl_speedup,
    gustafson_speedup,
    karp_flatt,
    fit_serial_fraction,
)
from repro.perf.isoefficiency import isoefficiency_curve, solve_problem_size
from repro.perf.experiment import ScalingExperiment
from repro.perf.gantt import render_gantt
from repro.perf.reporting import run_report_to_csv, run_report_to_markdown

__all__ = [
    "render_gantt",
    "run_report_to_csv",
    "run_report_to_markdown",
    "Timer",
    "TimingStats",
    "time_callable",
    "ScalingSeries",
    "speedup",
    "efficiency",
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt",
    "fit_serial_fraction",
    "isoefficiency_curve",
    "solve_problem_size",
    "ScalingExperiment",
]
