"""Scalability laws: Amdahl, Gustafson, Karp–Flatt.

* **Amdahl (strong scaling)**: with serial fraction f of the unit-size
  job, ``S(P) = 1 / (f + (1−f)/P)`` — bounded by 1/f however large P.
* **Gustafson (weak scaling)**: if the parallel part grows with P while
  the serial part stays fixed, the *scaled* speedup is
  ``S(P) = P − f'(P − 1)`` with f' the serial fraction measured on the
  parallel machine.
* **Karp–Flatt**: the experimentally determined serial fraction
  ``f_e = (1/S − 1/P) / (1 − 1/P)`` — rising f_e with P diagnoses
  communication overhead rather than intrinsic serial work.

``fit_serial_fraction`` inverts measured T(P) into the Amdahl model by
least squares; the benchmark T6 reports it for each engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["amdahl_speedup", "gustafson_speedup", "karp_flatt", "fit_serial_fraction"]


def amdahl_speedup(p: int, serial_fraction: float) -> float:
    """Amdahl's bound ``1 / (f + (1−f)/P)``."""
    check_positive_int("p", p)
    f = check_in_range("serial_fraction", serial_fraction, 0.0, 1.0)
    return 1.0 / (f + (1.0 - f) / p)


def gustafson_speedup(p: int, serial_fraction: float) -> float:
    """Gustafson's scaled speedup ``P − f'(P − 1)``."""
    check_positive_int("p", p)
    f = check_in_range("serial_fraction", serial_fraction, 0.0, 1.0)
    return p - f * (p - 1.0)


def karp_flatt(speedup: float, p: int) -> float:
    """Experimentally determined serial fraction.

    ``f_e = (1/S − 1/P) / (1 − 1/P)``; requires P ≥ 2.
    """
    check_positive_int("p", p)
    if p < 2:
        raise ValidationError("Karp–Flatt needs P ≥ 2")
    if speedup <= 0:
        raise ValidationError(f"speedup must be positive, got {speedup}")
    return (1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)


def fit_serial_fraction(ps, times) -> tuple[float, float]:
    """Least-squares fit of ``T(P) = T(1)·(f + (1−f)/P)`` to measurements.

    Returns ``(f, rms_residual)`` where the residual is relative to T(1).
    The fit is linear in f: ``T(P)/T(1) = f(1 − 1/P) + 1/P``.
    """
    p_arr = np.asarray(ps, dtype=float)
    t_arr = np.asarray(times, dtype=float)
    if p_arr.shape != t_arr.shape or p_arr.size < 2:
        raise ValidationError("need matching ps/times with at least two points")
    if p_arr[0] != 1:
        raise ValidationError("the series must include P=1 as its first point")
    if np.any(p_arr <= 0) or np.any(t_arr <= 0):
        raise ValidationError("processor counts and times must be positive")
    t1 = t_arr[0]
    y = t_arr / t1 - 1.0 / p_arr
    x = 1.0 - 1.0 / p_arr
    denom = float(np.dot(x, x))
    f = float(np.dot(x, y) / denom) if denom > 0 else 0.0
    f = min(max(f, 0.0), 1.0)
    pred = t1 * (f + (1.0 - f) / p_arr)
    rms = float(np.sqrt(np.mean(((pred - t_arr) / t1) ** 2)))
    return f, rms
