"""Isoefficiency analysis (Grama, Gupta & Kumar 1993).

The isoefficiency function ``W(P)`` is the problem size needed to hold
parallel efficiency at a target as P grows. Given any cost model
``T(n, p)`` (simulated seconds; ``T(n, 1)`` is the serial time) the solver
finds, for each P, the ``n`` with ``E(n, P) = target`` by exponential
bracketing + bisection on the (monotone-in-n) efficiency.

For this library's engines the analytic expectations are:

* parallel MC with tree reduction: overhead ``T_o = P·⌈log P⌉(α+βb)``,
  so ``W(P) = Θ(P log P)`` — *highly scalable*;
* slab-parallel lattice: per-level latency gives
  ``T_o = Θ(P·n·α)`` against work ``Θ(n^{d+1})`` — scalable, needs
  ``n^d = Θ(P)`` growth;
* transpose-parallel ADI: all-to-all gives ``T_o = Θ(P²·α)`` growth —
  the least scalable of the three.

Benchmark F5 tabulates all three curves.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConvergenceError, ValidationError
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["solve_problem_size", "isoefficiency_curve"]


def _efficiency(time_model: Callable[[int, int], float], n: int, p: int) -> float:
    t1 = time_model(n, 1)
    tp = time_model(n, p)
    if t1 <= 0 or tp <= 0:
        raise ValidationError("time model must return positive times")
    return t1 / (p * tp)


def solve_problem_size(
    time_model: Callable[[int, int], float],
    p: int,
    target_efficiency: float,
    *,
    n_min: int = 1,
    n_max: int = 1 << 40,
    tol: float = 0.005,
    max_iter: int = 200,
) -> int:
    """Smallest integer n with ``E(n, p) ≥ target`` (within tolerance).

    ``time_model(n, p)`` must be monotone: efficiency non-decreasing in n
    (more work amortizes fixed overhead). Raises
    :class:`ConvergenceError` when even ``n_max`` can't reach the target.
    """
    check_positive_int("p", p)
    check_in_range("target_efficiency", target_efficiency, 0.0, 1.0, inclusive=False)
    if p == 1:
        return n_min
    lo = n_min
    if _efficiency(time_model, lo, p) >= target_efficiency:
        return lo
    hi = max(2 * lo, 2)
    it = 0
    while _efficiency(time_model, hi, p) < target_efficiency:
        hi *= 2
        it += 1
        if hi > n_max or it > max_iter:
            raise ConvergenceError(
                f"efficiency {target_efficiency} unreachable below n={n_max} at P={p}",
                iterations=it,
            )
    # Bisect for the boundary.
    for _ in range(max_iter):
        if hi - lo <= max(1, int(tol * hi)):
            return hi
        mid = (lo + hi) // 2
        if _efficiency(time_model, mid, p) >= target_efficiency:
            hi = mid
        else:
            lo = mid
    return hi


def isoefficiency_curve(
    time_model: Callable[[int, int], float],
    p_list,
    target_efficiency: float,
    **kwargs,
) -> list[tuple[int, int]]:
    """``[(P, W(P)), ...]`` — the isoefficiency curve over ``p_list``."""
    return [
        (p, solve_problem_size(time_model, p, target_efficiency, **kwargs))
        for p in p_list
    ]
