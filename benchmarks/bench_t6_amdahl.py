"""T6 — Amdahl/Karp–Flatt diagnosis: experimentally determined serial
fractions of each parallel engine.

Paper-shape claims: MC's fitted serial fraction is ≈ 0 (communication is
logarithmic and tiny); the lattice's Karp–Flatt fraction *grows* with P —
the textbook signature of per-step synchronization overhead rather than
intrinsic serial work; the PDE sits between.
"""

from __future__ import annotations

from repro.core import ParallelLatticePricer, ParallelMCPricer, ParallelPDEPricer
from repro.perf import ScalingSeries, fit_serial_fraction, karp_flatt
from repro.utils import Table
from repro.workloads import basket_workload, rainbow_workload, spread_workload

PS = (1, 2, 4, 8, 16, 32)


def _series(pricer, w) -> ScalingSeries:
    return ScalingSeries.from_results(pricer.sweep(w.model, w.payoff, w.expiry, PS))


def build_t6_table():
    mc = _series(ParallelMCPricer(150_000, seed=1), basket_workload(4))
    lat = _series(ParallelLatticePricer(150), rainbow_workload())
    pde = _series(ParallelPDEPricer(n_space=96, n_time=16), spread_workload())
    series = {"mc": mc, "lattice": lat, "pde": pde}
    table = Table(
        ["engine", "Amdahl fit f", "KF f at P=4", "KF f at P=32"],
        title="T6 — fitted serial fractions (Amdahl) and Karp–Flatt diagnosis",
        floatfmt=".4g",
    )
    fits = {}
    for name, s in series.items():
        f, _ = fit_serial_fraction(s.ps, s.times)
        kf4 = karp_flatt(float(s.speedups[2]), 4)
        kf32 = karp_flatt(float(s.speedups[5]), 32)
        fits[name] = {"f": f, "kf4": kf4, "kf32": kf32}
        table.add_row([name, f, kf4, kf32])
    return table, fits


def test_t6_amdahl(benchmark, show):
    w = basket_workload(4)
    pricer = ParallelMCPricer(150_000, seed=1)
    benchmark(lambda: pricer.sweep(w.model, w.payoff, w.expiry, (1, 32)))
    table, fits = build_t6_table()
    show(table.render())
    assert fits["mc"]["f"] < 0.01
    assert fits["lattice"]["f"] > 10 * fits["mc"]["f"]
    # The lattice's experimentally determined fraction stays an order of
    # magnitude above MC's at every P — synchronization overhead that no
    # amount of processors removes.
    assert fits["lattice"]["kf32"] > 10 * fits["mc"]["kf32"]
    # The PDE's Karp–Flatt *rises* steeply with P (the growing all-to-all),
    # the textbook signature of communication overhead.
    assert fits["pde"]["kf32"] > fits["pde"]["kf4"]
    assert fits["mc"]["kf32"] < 0.02


if __name__ == "__main__":
    print(build_t6_table()[0].render())
