"""F3 — Multidimensional lattice speedup for several step counts.

Paper-shape claim: lattice speedup saturates well below linear (per-level
synchronization); larger lattices scale better because each level carries
more work per halo exchange.
"""

from __future__ import annotations

from repro.core import ParallelLatticePricer
from repro.perf import ScalingSeries
from repro.utils import Table
from repro.workloads import PROCESSOR_SWEEP, rainbow_workload

STEPS = (64, 256, 1024)


def build_f3_series() -> tuple[Table, dict[int, ScalingSeries]]:
    w = rainbow_workload()
    table = Table(
        ["P"] + [f"S(P) n={n}" for n in STEPS],
        title="F3 — BEG lattice speedup vs P (2-asset max-call)",
        floatfmt=".4g",
    )
    series: dict[int, ScalingSeries] = {}
    for n in STEPS:
        pricer = ParallelLatticePricer(n)
        results = pricer.sweep(w.model, w.payoff, w.expiry, PROCESSOR_SWEEP)
        series[n] = ScalingSeries.from_results(results, label=f"steps={n}")
    for i, p in enumerate(PROCESSOR_SWEEP):
        table.add_row([p] + [float(series[n].speedups[i]) for n in STEPS])
    return table, series


def test_f3_lattice_speedup(benchmark, show):
    w = rainbow_workload()
    pricer = ParallelLatticePricer(STEPS[0])
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, 8))
    table, series = build_f3_series()
    show(table.render())
    for n, s in series.items():
        # Sub-linear at P=32 for every size.
        assert s.speedups[-1] < 32 * 0.95, f"steps={n} unrealistically linear"
        # Never slower than serial at P=32 (the 2-D levels carry enough work).
        assert s.speedups[-1] > 1.0
    # The small lattice is latency-bound: ≤ half the ideal efficiency.
    assert series[64].speedups[-1] < 32 * 0.5
    # Bigger lattice ⇒ better speedup at P=32; the big one is clearly
    # profitable while the small one barely breaks even.
    assert series[1024].speedups[-1] > series[64].speedups[-1]
    assert series[1024].speedups[-1] > 2.0


if __name__ == "__main__":
    print(build_f3_series()[0].render())
