"""T9 — Stochastic volatility: the Heston smile and its MC reproduction.

Shape claims:
* ρ < 0 produces the equity-style downward skew: implied vol decreases
  across strikes (OTM puts dear, OTM calls cheap);
* the full-truncation Euler Monte Carlo reproduces the semi-analytic
  prices within CI + O(Δt) bias across the strike ladder;
* ξ → 0 collapses the smile to flat Black–Scholes.
"""

from __future__ import annotations

import warnings

from repro.analytic import bs_implied_vol, heston_price
from repro.market import HestonModel
from repro.mc import DirectSampling, MonteCarloEngine
from repro.payoffs import Call
from repro.utils import Table

KW = dict(v0=0.04, kappa=1.5, theta=0.06, xi=0.5, rho=-0.7, rate=0.03)
STRIKES = (70.0, 85.0, 100.0, 115.0, 130.0)


def build_t9_table():
    warnings.filterwarnings("ignore")
    model = HestonModel(100, rate=0.03, sampling_steps=200, v0=0.04,
                        kappa=1.5, theta=0.06, xi=0.5, rho=-0.7)
    engine = MonteCarloEngine(150_000, technique=DirectSampling(), seed=3)
    table = Table(
        ["strike", "analytic", "mc price", "mc stderr", "implied vol"],
        title="T9 — Heston smile (ρ = −0.7): semi-analytic vs Euler MC",
        floatfmt=".5g",
    )
    ivs = []
    diffs = []
    for k in STRIKES:
        exact = heston_price(100, k, 1.0, **KW)
        mc = engine.price(model, Call(k), 1.0)
        iv = bs_implied_vol(exact, 100, k, 0.03, 1.0)
        ivs.append(iv)
        diffs.append((abs(mc.price - exact), mc.stderr))
        table.add_row([k, exact, mc.price, mc.stderr, iv])
    # Flat-smile control: ξ → 0.
    flat = [
        bs_implied_vol(
            heston_price(100, k, 1.0, v0=0.04, kappa=2.0, theta=0.04,
                         xi=1e-6, rho=0.0, rate=0.03),
            100, k, 0.03, 1.0,
        )
        for k in STRIKES
    ]
    return table, ivs, diffs, flat


def test_t9_heston_smile(benchmark, show):
    model = HestonModel(100, rate=0.03, sampling_steps=100, v0=0.04,
                        kappa=1.5, theta=0.06, xi=0.5, rho=-0.7)
    eng = MonteCarloEngine(20_000, technique=DirectSampling(), seed=1)
    benchmark(lambda: eng.price(model, Call(100.0), 1.0))
    table, ivs, diffs, flat = build_t9_table()
    show(table.render())
    show(f"flat-control IVs (xi→0): {[f'{v:.4f}' for v in flat]}")
    # Downward skew: IV strictly decreasing across the ladder.
    assert all(b < a for a, b in zip(ivs, ivs[1:])), ivs
    assert ivs[0] - ivs[-1] > 0.04  # a real skew, not noise
    # MC within CI + Euler bias everywhere.
    for err, se in diffs:
        assert err < 4 * se + 0.05
    # ξ→0 control is flat at √θ = 20%.
    assert max(flat) - min(flat) < 1e-3
    assert abs(flat[2] - 0.2) < 1e-3


if __name__ == "__main__":
    t, ivs, _, flat = build_t9_table()
    print(t.render())
    print("flat-control IVs:", [f"{v:.4f}" for v in flat])
