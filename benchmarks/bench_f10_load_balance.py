"""F10 — Contract-level parallelism: load-balancing a heterogeneous book.

Shape claims (the classical list-scheduling story):
* on a cost-heterogeneous book, LPT ≤ cyclic/block makespan, within
  Graham's 4/3 bound of the lower bound;
* on a homogeneous book all schedules tie;
* prices never depend on the schedule or on P.
"""

from __future__ import annotations

import numpy as np

from repro.core import PortfolioPricer
from repro.utils import Table
from repro.workloads import basket_workload

#: Dimensions drawn to make contract costs span ~8×.
BOOK_DIMS = (1, 1, 8, 2, 8, 1, 4, 2, 8, 4, 1, 2, 4, 8, 1, 1)
PS = (1, 2, 4, 8)
N_PATHS = 20_000


def build_f10_table():
    book = [basket_workload(d) for d in BOOK_DIMS]
    table = Table(
        ["P"] + [f"{s} T [s]" for s in ("block", "cyclic", "lpt")]
        + ["lpt imbalance"],
        title=f"F10 — portfolio makespan by schedule ({len(book)} contracts, "
              f"dims {min(BOOK_DIMS)}–{max(BOOK_DIMS)})",
        floatfmt=".4g",
    )
    data: dict[int, dict[str, float]] = {}
    for p in PS:
        row: dict[str, float] = {}
        for sched in ("block", "cyclic", "lpt"):
            run = PortfolioPricer(N_PATHS, schedule=sched, seed=1).run(book, p)
            row[sched] = run.sim_time
            if sched == "lpt":
                row["imbalance"] = run.imbalance
        data[p] = row
        table.add_row([p, row["block"], row["cyclic"], row["lpt"],
                       row["imbalance"]])
    return table, data


def test_f10_load_balance(benchmark, show):
    book = [basket_workload(d) for d in BOOK_DIMS]
    pricer = PortfolioPricer(N_PATHS, schedule="lpt", seed=1)
    benchmark(lambda: pricer.run(book, 4))
    table, data = build_f10_table()
    show(table.render())
    for p in PS[1:]:
        assert data[p]["lpt"] <= data[p]["block"] + 1e-12
        assert data[p]["lpt"] <= data[p]["cyclic"] + 1e-12
    # LPT keeps imbalance small even at P=8 on 16 contracts.
    assert data[8]["imbalance"] < 0.5
    # Scheduling quality matters: at P=4 the worst naive schedule is
    # measurably slower than LPT on this book.
    worst = max(data[4]["block"], data[4]["cyclic"])
    assert worst > 1.1 * data[4]["lpt"]


if __name__ == "__main__":
    print(build_f10_table()[0].render())
