"""F16 — The obs → autotuner loop: chunking that adapts to stragglers.

ROADMAP item 4 closes here: observed ``task_latency`` quantiles feed back
into :class:`~repro.parallel.backends.ChunkAutotuner`, which shrinks the
chunk size when the p99/p50 dispersion says the workload stragglers.

The injected scenario is the classic slow-node shape: four *adjacent*
ranks of a 64-rank MC job run on a degraded node (a real injected sleep
per task via ``FaultPolicy.straggler_sleep``). Static chunking welds
those four slow tasks into one chunk — one worker serializes every
straggler while the rest of the pool idles. The obs-driven loop runs the
job once, reads the ``task_latency{backend=thread}`` histogram's p99/p50
ratio from the metrics registry, and repartitions with the shrunken
chunk — the pool's dynamic scheduling then spreads the stragglers across
workers, so the makespan drops toward one straggler delay instead of
four back to back.

Claims:

* the autotuner's dispersion estimate moves (> 1) after observing the
  histogram, and the adapted chunk is strictly smaller than the static
  one;
* the adapted run is measurably faster than the static-chunk run on the
  same fault plan (gate: < 80% of static wall);
* prices are **bitwise identical** across both runs — chunking is
  transport-only, the paper's estimator invariance survives the tuner.
"""

from __future__ import annotations

from repro.core import ParallelMCPricer
from repro.obs import MetricsRegistry
from repro.parallel import ThreadBackend
from repro.parallel.backends import ChunkAutotuner, suggest_chunksize
from repro.parallel.faults import FaultEvent, FaultKind, FaultPlan, FaultPolicy
from repro.utils import Table
from repro.workloads import basket_workload

P = 64                  # ranks (= tasks per map)
WORKERS = 4
N_PATHS = 64_000        # light compute: the stragglers dominate
SLEEP_S = 0.03          # real injected delay per straggler task
STRAGGLER_RANKS = (0, 1, 2, 3)   # adjacent — a single degraded node


def _straggler_plan() -> FaultPlan:
    events = tuple(FaultEvent(r, FaultKind.STRAGGLER, slowdown=2.0)
                   for r in STRAGGLER_RANKS)
    return FaultPlan(events=events, seed=16)


def _run(chunksize: int, metrics: MetricsRegistry | None = None):
    backend = ThreadBackend(WORKERS)
    if metrics is not None:
        backend.metrics = metrics
    w = basket_workload(2)
    pricer = ParallelMCPricer(
        N_PATHS, seed=7, backend=backend, chunksize=chunksize,
        faults=_straggler_plan(),
        policy=FaultPolicy(mode="retry", straggler_sleep=SLEEP_S),
    )
    try:
        return pricer.price(w.model, w.payoff, w.expiry, P)
    finally:
        backend.close()


def build_f16_table():
    static_chunk = suggest_chunksize(P, WORKERS)
    metrics = MetricsRegistry()

    # Pass 1 — static chunking, observed: the ledger/metrics run the
    # autotuner learns from.
    observed = _run(static_chunk, metrics)

    # The feedback loop: registry histogram -> dispersion -> new chunk.
    tuner = ChunkAutotuner(WORKERS)
    hist = metrics.histogram("task_latency", backend="thread")
    tuner.observe_histogram(hist)
    adapted_chunk = tuner.chunksize(P)

    # Pass 2/3 — same fault plan, static vs adapted chunk, fresh timings.
    static = _run(static_chunk)
    adapted = _run(adapted_chunk)

    table = Table(
        ["variant", "chunk", "wall [s]", "speedup", "price"],
        title=(f"F16 — obs-driven chunking under stragglers "
               f"(P={P}, {WORKERS} workers, {len(STRAGGLER_RANKS)} adjacent "
               f"stragglers x {SLEEP_S:g}s)"),
        floatfmt=".6g",
    )
    table.add_row(["static", static_chunk, static.wall_time, 1.0,
                   static.price])
    table.add_row(["obs-adapted", adapted_chunk, adapted.wall_time,
                   static.wall_time / max(adapted.wall_time, 1e-12),
                   adapted.price])
    data = {
        "static_chunk": static_chunk,
        "adapted_chunk": adapted_chunk,
        "dispersion": tuner.dispersion,
        "p50": hist.quantile(0.5),
        "p99": hist.quantile(0.99),
        "static": static,
        "adapted": adapted,
        "observed": observed,
    }
    return table, data


def test_f16_autotune(benchmark, show):
    table, data = build_f16_table()
    show(table.render())
    show(f"dispersion: p99/p50 = {data['p99']:.4g}/{data['p50']:.4g} "
         f"-> {data['dispersion']:.3g}")
    benchmark(lambda: _run(data["adapted_chunk"]))

    # The loop actually moved the knob.
    assert data["dispersion"] > 1.0
    assert data["adapted_chunk"] < data["static_chunk"]
    # Chunking is transport-only: all three runs price bitwise equal.
    prices = {data["static"].price, data["adapted"].price,
              data["observed"].price}
    stderrs = {data["static"].stderr, data["adapted"].stderr}
    assert len(prices) == 1, "chunk adaptation changed the price"
    assert len(stderrs) == 1
    # And it paid: the adapted run dodges the serialized straggler chunk.
    assert data["adapted"].wall_time < 0.8 * data["static"].wall_time, (
        f"adapted {data['adapted'].wall_time:.3f}s not faster than "
        f"static {data['static'].wall_time:.3f}s")


if __name__ == "__main__":
    tbl, data = build_f16_table()
    print(tbl.render())
    print(f"dispersion : p99/p50 = {data['p99']:.4g}/{data['p50']:.4g} "
          f"-> {data['dispersion']:.3g} "
          f"(chunk {data['static_chunk']} -> {data['adapted_chunk']})")
    ok = (data["static"].price == data["adapted"].price
          and data["adapted"].wall_time < 0.8 * data["static"].wall_time)
    print("OK: bitwise-equal prices, adapted run faster" if ok
          else "FAIL: see table")
    raise SystemExit(0 if ok else 1)
