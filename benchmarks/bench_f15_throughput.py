"""F15 — Serving throughput: batching, the price cache, and the chunked
shared-memory transport.

Three measurements on the serve layer:

* **F15a — requests/sec vs P.** A fixed request stream pushed through the
  :class:`~repro.serve.PricingService` on process backends of increasing
  width. Throughput should grow with P until per-request work stops
  covering dispatch overhead. (On a single-core host — CI containers —
  the sweep degenerates to a dispatch-overhead measurement and the rows
  stay flat; it is report-only, never gated.)
* **F15b — cache hit-rate sweep.** The same stream replayed with caches
  sized for 0%, partial and 100% hit rates: served throughput should
  climb steeply with hit rate, and the 100% row must report **zero**
  backend map calls.
* **F15c — chunked+shm vs per-task pickle.** The scenario-revaluation
  batch (64 payoffs × one 4 MB terminal-scenario matrix, the Premia-style
  risk job) on a 4-worker process backend: per-task pickling of the
  matrix vs one shared-memory segment + chunked dispatch. The claim
  gated here: **≥ 1.3× speedup** for the chunked shared-memory transport.
* **F15d — contracts/sec, fused strips vs singles.** A 1 000-contract
  vanilla strike strip on one shared model, priced through
  ``PricingService(batched=True)`` (one fused strip: shared path
  generation, per-contract payoffs) vs the single-request path. Gated
  claims: **≥ 5× contracts/sec** for the batched path, and every batched
  quote **bitwise equal** (price and stderr) to its single-run quote.

``--smoke`` runs a scaled-down version of all four and exits nonzero if
the F15c/F15d speedup gates, the F15d bitwise invariant or the F15b
zero-map-call invariant fails — the CI throughput lane runs exactly that
(F15d keeps the full 1 000-contract strip even in smoke; the gate is the
acceptance criterion).
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.parallel import ProcessBackend
from repro.payoffs import BasketCall
from repro.serve import (PriceCache, PricingRequest, PricingService,
                         revalue_scenarios)
from repro.utils import Table
from repro.verify.determinism import float_bits
from repro.workloads import random_portfolio, strike_strip

SPEEDUP_GATE = 1.3
STRIP_GATE = 5.0
REPEATS = 3


def _request_stream(n_requests: int, n_contracts: int, paths: int):
    book = random_portfolio(n_contracts, dim=4, seed=0)
    return [
        PricingRequest(book[i % len(book)], engine="mc", n_paths=paths,
                       seed=i % len(book), p=2)
        for i in range(n_requests)
    ]


# ---------------------------------------------------------------------------
# F15a — requests/sec vs P
# ---------------------------------------------------------------------------

def build_f15a_throughput(n_requests: int = 64, paths: int = 40_000,
                          p_list=(1, 2, 4)) -> Table:
    requests = _request_stream(n_requests, n_requests, paths)
    table = Table(["workers", "req/s", "batches", "wall (s)"],
                  title=f"F15a — serve throughput, {n_requests} requests "
                        f"(mc, N={paths}), batch=16",
                  floatfmt=".4g")
    for p in p_list:
        with ProcessBackend(p) as backend:
            with PricingService(backend, max_batch=16, cache=None) as svc:
                t0 = time.perf_counter()
                quotes = svc.price_many(requests)
                wall = time.perf_counter() - t0
                batches = svc._batcher.batches_cut
        table.add_row([p, len(quotes) / wall, batches, wall])
    return table


# ---------------------------------------------------------------------------
# F15b — throughput vs cache hit rate
# ---------------------------------------------------------------------------

def build_f15b_cache(n_requests: int = 48, paths: int = 4_000
                     ) -> tuple[Table, int]:
    """Replay a stream against cold / warm / hot caches.

    Returns the table plus the number of map calls the 100 %-hit replay
    issued (must be zero — the acceptance invariant).
    """
    requests = _request_stream(n_requests, n_requests // 3, paths)
    table = Table(["cache", "hit rate", "map calls", "req/s"],
                  title=f"F15b — cache sweep, {n_requests} requests "
                        f"({n_requests // 3} distinct contracts)",
                  floatfmt=".4g")
    hot_maps = -1
    for label, cache, passes in (("disabled", None, 1),
                                 ("cold->warm", PriceCache(256), 1),
                                 ("hot replay", PriceCache(256), 2)):
        with PricingService(cache=cache, max_batch=16) as svc:
            for _ in range(passes - 1):
                svc.price_many(requests)  # warm-up passes
            maps_before = svc.map_calls
            hits_before = cache.hits if cache else 0
            lookups_before = (cache.hits + cache.misses) if cache else 0
            t0 = time.perf_counter()
            quotes = svc.price_many(requests)
            wall = time.perf_counter() - t0
            maps = svc.map_calls - maps_before
            if cache:
                hits = cache.hits - hits_before
                lookups = cache.hits + cache.misses - lookups_before
                rate = hits / lookups
            else:
                rate = 0.0
        if label == "hot replay":
            hot_maps = maps
        table.add_row([label, rate, maps, len(quotes) / wall])
    return table, hot_maps


# ---------------------------------------------------------------------------
# F15c — chunked shared-memory transport vs per-task pickle
# ---------------------------------------------------------------------------

def build_f15c_transport(n_payoffs: int = 64, n_scenarios: int = 131_072,
                         workers: int = 4, repeats: int = REPEATS
                         ) -> tuple[Table, float]:
    """The tentpole gate: ≥ 1.3× on the 64-contract revaluation batch.

    One terminal-scenario matrix (n_scenarios × 4 float64 ≈ 4 MB at the
    default size), revalued by ``n_payoffs`` basket payoffs at P=4. The
    baseline pickles the matrix into every task; the treatment ships it
    once through POSIX shared memory and chunks the dispatch.
    """
    rng = np.random.default_rng(7)
    scenarios = 80.0 + 40.0 * rng.random((n_scenarios, 4))
    payoffs = [BasketCall([0.25] * 4, 80.0 + 0.5 * k)
               for k in range(n_payoffs)]

    def run(shm_min_bytes, chunksize):
        best = np.inf
        value = None
        with ProcessBackend(workers, shm_min_bytes=shm_min_bytes) as be:
            # Warm the pool (fork + import cost) outside the timed region:
            # the measurement is the steady-state transport, not spin-up.
            revalue_scenarios(payoffs[:workers], scenarios, backend=be,
                              chunksize=chunksize)
            for _ in range(repeats):
                t0 = time.perf_counter()
                value = revalue_scenarios(payoffs, scenarios, backend=be,
                                          chunksize=chunksize)
                best = min(best, time.perf_counter() - t0)
        return best, value

    t_pickle, v_pickle = run(None, None)          # per-task pickle baseline
    t_shm, v_shm = run(1 << 16, "auto")           # shm + chunked
    assert v_pickle == v_shm, "transport changed the numbers"
    speedup = t_pickle / t_shm
    mb = scenarios.nbytes / 2 ** 20
    table = Table(["transport", "best wall (s)", "speedup"],
                  title=f"F15c — {n_payoffs}-contract revaluation, "
                        f"{mb:.0f} MB scenario matrix, P={workers} "
                        f"(best of {repeats})",
                  floatfmt=".4g")
    table.add_row(["per-task pickle", t_pickle, 1.0])
    table.add_row(["shm + chunked", t_shm, speedup])
    return table, speedup


# ---------------------------------------------------------------------------
# F15d — fused contract strips vs the single-request path
# ---------------------------------------------------------------------------

def build_f15d_strip(n_contracts: int = 1_000, paths: int = 50_000,
                     repeats: int = REPEATS) -> tuple[Table, float]:
    """The batched-pricing gate: ≥ 5× contracts/sec on a vanilla strip.

    One shared model, ``n_contracts`` strikes, one seed — the whole miss
    set fuses into a single :class:`~repro.batch.strip.ContractStrip`, so
    path generation (and the engine/cluster setup around it) is paid once
    instead of per contract. The quotes must nevertheless be bitwise
    identical to the single path: the speedup is amortization, not a
    numerical shortcut.
    """
    book = strike_strip(n_contracts)
    requests = [PricingRequest(w, engine="mc", n_paths=paths, seed=0, p=2,
                               name=w.name)
                for w in book]

    def run(batched: bool):
        best = float("inf")
        quotes = None
        for _ in range(repeats):
            with PricingService(cache=None, max_batch=len(requests),
                                batched=batched) as svc:
                t0 = time.perf_counter()
                quotes = svc.price_many(requests)
                best = min(best, time.perf_counter() - t0)
        return best, quotes

    t_single, q_single = run(False)
    t_batched, q_batched = run(True)
    mismatched = sum(
        1 for a, b in zip(q_single, q_batched)
        if float_bits(a.price) != float_bits(b.price)
        or float_bits(a.stderr) != float_bits(b.stderr))
    assert mismatched == 0, (
        f"{mismatched}/{len(q_single)} batched quotes differ from the "
        f"single path — fusion changed the numbers")
    speedup = t_single / t_batched
    table = Table(["path", "best wall (s)", "contracts/s", "speedup"],
                  title=f"F15d — {n_contracts}-strike strip (mc, N={paths}), "
                        f"fused vs single (best of {repeats})",
                  floatfmt=".4g")
    table.add_row(["single requests", t_single, n_contracts / t_single, 1.0])
    table.add_row(["fused strip", t_batched, n_contracts / t_batched,
                   speedup])
    return table, speedup


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (same harness as F13/F14)
# ---------------------------------------------------------------------------

def test_f15_throughput(benchmark, show):
    requests = _request_stream(16, 16, 2_000)

    def serve_once():
        with PricingService(max_batch=8, cache=None) as svc:
            return svc.price_many(requests)

    benchmark(serve_once)
    table, hot_maps = build_f15b_cache(n_requests=24, paths=2_000)
    show(table.render())
    assert hot_maps == 0, "100% cache-hit replay touched the backend"


def test_f15d_strip(show):
    # Small-scale lane version: the bitwise assert inside the builder is
    # the hard invariant; the wall-clock gate here is a conservative floor
    # (the full 5x gate runs on the 1k strip in the __main__ smoke job).
    table, speedup = build_f15d_strip(n_contracts=200, paths=2_000,
                                      repeats=1)
    show(table.render())
    assert speedup >= 2.0, (
        f"fused strip only {speedup:.2f}x over singles (floor 2x)")


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    if smoke:
        # CI scale: smaller request stream; F15c keeps the full-size matrix
        # (a smaller one compresses the pickle/shm ratio toward noise) and
        # F15d keeps the full 1k-contract strip (the acceptance gate).
        a = build_f15a_throughput(n_requests=16, paths=2_000, p_list=(1, 2))
        b, hot_maps = build_f15b_cache(n_requests=24, paths=2_000)
        c, speedup = build_f15c_transport(repeats=2)
        d, strip_speedup = build_f15d_strip(repeats=2)
    else:
        a = build_f15a_throughput()
        b, hot_maps = build_f15b_cache()
        c, speedup = build_f15c_transport()
        d, strip_speedup = build_f15d_strip()
    for table in (a, b, c, d):
        print(table.render())
        print()
    failed = False
    if hot_maps != 0:
        print(f"FAIL: hot replay issued {hot_maps} map calls (expected 0)",
              file=sys.stderr)
        failed = True
    if speedup < SPEEDUP_GATE:
        print(f"FAIL: shm+chunked speedup {speedup:.2f}x < "
              f"{SPEEDUP_GATE}x gate", file=sys.stderr)
        failed = True
    if strip_speedup < STRIP_GATE:
        print(f"FAIL: fused-strip speedup {strip_speedup:.2f}x < "
              f"{STRIP_GATE}x gate", file=sys.stderr)
        failed = True
    if failed:
        raise SystemExit(1)
    print(f"OK: hot replay hit zero map calls; shm+chunked {speedup:.2f}x "
          f">= {SPEEDUP_GATE}x; fused strip {strip_speedup:.2f}x >= "
          f"{STRIP_GATE}x")
