"""F13 — Fault-injection overhead and recovered-run quality.

Two claims for the resilience layer:

1. **Zero-fault overhead** — arming the fault machinery (constructing the
   pricer with a fault plan + policy) costs < 5% wall-clock on F1's MC
   speedup configuration when no fault fires: the fault-free path is a
   single branch away from the pre-resilience code.
2. **Recovered-run quality** — with one of P ranks crashing transiently,
   ``retry`` reproduces the fault-free price *bitwise* (the replayed rank
   re-draws an identical RNG substream); with a *permanent* 1/P rank loss,
   ``degrade`` stays within sampling error of the fault-free price while
   honestly widening the reported CI (fewer paths ⇒ larger stderr).
"""

from __future__ import annotations

import statistics
import time

from repro.core import ParallelMCPricer
from repro.parallel import FaultPlan, FaultPolicy
from repro.utils import Table
from repro.workloads import basket_workload

N_PATHS = 200_000  # F1's MC speedup configuration
P = 8
LOST_RANK = 3
REPEATS = 7


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def build_f13_overhead() -> tuple[Table, float]:
    """Median wall-clock of the F1 config, bare vs armed-but-quiet."""
    w = basket_workload(2)
    bare = ParallelMCPricer(N_PATHS, seed=1)
    armed = ParallelMCPricer(N_PATHS, seed=1, faults=FaultPlan.none(),
                             policy=FaultPolicy(mode="retry", max_retries=3))
    # Interleave the two measurements so drift hits both equally.
    t_bare = _median_seconds(lambda: bare.price(w.model, w.payoff, w.expiry, P))
    t_armed = _median_seconds(lambda: armed.price(w.model, w.payoff, w.expiry, P))
    overhead = t_armed / t_bare - 1.0
    table = Table(
        ["variant", "median wall (s)", "overhead"],
        title=f"F13a — zero-fault overhead, N={N_PATHS}, P={P} "
              f"(median of {REPEATS})",
        floatfmt=".4g",
    )
    table.add_row(["fault-free (no plan)", t_bare, 0.0])
    table.add_row(["armed, zero faults", t_armed, overhead])
    return table, overhead


def build_f13_recovery() -> tuple[Table, dict]:
    """Price quality under a transient crash (retry) and a permanent
    1/P rank loss (degrade)."""
    w = basket_workload(2)
    base = ParallelMCPricer(N_PATHS, seed=1).price(w.model, w.payoff,
                                                   w.expiry, P)
    retried = ParallelMCPricer(
        N_PATHS, seed=1, faults=FaultPlan.single_crash(LOST_RANK),
        policy="retry",
    ).price(w.model, w.payoff, w.expiry, P)
    degraded = ParallelMCPricer(
        N_PATHS, seed=1,
        faults=FaultPlan.single_crash(LOST_RANK, permanent=True),
        policy="degrade",
    ).price(w.model, w.payoff, w.expiry, P)

    table = Table(
        ["scenario", "price", "stderr", "Δ/σ vs base", "sim T(P) (s)"],
        title=f"F13b — recovery quality, N={N_PATHS}, P={P}, "
              f"rank {LOST_RANK} faulted",
        floatfmt=".6g",
    )
    rows = {
        "fault-free": base,
        "transient crash + retry": retried,
        f"permanent loss ({1}/{P} ranks) + degrade": degraded,
    }
    for name, res in rows.items():
        drift = abs(res.price - base.price) / base.stderr
        table.add_row([name, res.price, res.stderr, drift, res.sim_time])
    return table, {"base": base, "retried": retried, "degraded": degraded}


def test_f13_fault_overhead_and_recovery(benchmark, show):
    w = basket_workload(2)
    armed = ParallelMCPricer(N_PATHS, seed=1, faults=FaultPlan.none(),
                             policy="retry")
    benchmark(lambda: armed.price(w.model, w.payoff, w.expiry, P))

    overhead_table, overhead = build_f13_overhead()
    show(overhead_table.render())
    assert overhead < 0.05, f"zero-fault overhead {overhead:.1%} ≥ 5%"

    recovery_table, runs = build_f13_recovery()
    show(recovery_table.render())
    base, retried, degraded = (runs["base"], runs["retried"],
                               runs["degraded"])
    # Transient fault + retry is invisible in the price, visible in T(P).
    assert retried.price == base.price
    assert retried.stderr == base.stderr
    assert retried.sim_time > base.sim_time
    # Degraded run: honest CI widening, price within sampling error.
    assert degraded.stderr > base.stderr
    assert degraded.meta["n_paths"] < N_PATHS
    assert abs(degraded.price - base.price) < 5 * base.stderr


if __name__ == "__main__":
    print(build_f13_overhead()[0].render())
    print(build_f13_recovery()[0].render())
