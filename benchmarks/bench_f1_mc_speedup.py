"""F1 — Monte Carlo speedup curves S(P) for several dimensions.

Paper-shape claim: near-linear speedup (efficiency ≥ 0.9 at P=16) for every
dimension; higher dimension ⇒ *better* efficiency (more compute per path to
amortize the fixed reduction cost).
"""

from __future__ import annotations

from repro.core import ParallelMCPricer
from repro.perf import ScalingSeries
from repro.utils import Table
from repro.workloads import DIMENSION_SWEEP, PROCESSOR_SWEEP, basket_workload

N_PATHS = 200_000


def build_f1_series() -> tuple[Table, dict[int, ScalingSeries]]:
    table = Table(
        ["P"] + [f"S(P) d={d}" for d in DIMENSION_SWEEP],
        title=f"F1 — MC speedup vs P (ideal = P), N={N_PATHS}",
        floatfmt=".4g",
    )
    series: dict[int, ScalingSeries] = {}
    for d in DIMENSION_SWEEP:
        w = basket_workload(d)
        pricer = ParallelMCPricer(N_PATHS, seed=1)
        results = pricer.sweep(w.model, w.payoff, w.expiry, PROCESSOR_SWEEP)
        series[d] = ScalingSeries.from_results(results, label=f"d={d}")
    for i, p in enumerate(PROCESSOR_SWEEP):
        table.add_row([p] + [float(series[d].speedups[i]) for d in DIMENSION_SWEEP])
    return table, series


def test_f1_mc_speedup(benchmark, show):
    w = basket_workload(2)
    pricer = ParallelMCPricer(N_PATHS, seed=1)
    benchmark(lambda: pricer.sweep(w.model, w.payoff, w.expiry, (1, 8)))
    table, series = build_f1_series()
    show(table.render())
    for d, s in series.items():
        assert s.efficiencies[4] > 0.90, f"d={d} efficiency at P=16 too low"
    # Higher dimension amortizes the reduction better.
    assert series[8].efficiencies[-1] >= series[1].efficiencies[-1]


if __name__ == "__main__":
    print(build_f1_series()[0].render())
