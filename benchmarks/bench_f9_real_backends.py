"""F9 — Reality check: real thread/process backends vs the simulated curve.

This experiment documents the central substitution of the reproduction
(DESIGN.md): the simulated machine produces the paper-era speedup curves
deterministically, while *wall-clock* speedup on the host depends entirely
on its core count — on the single-core CI box the real backends are flat
or slower (GIL/fork overhead), which is exactly the "speedup numbers
skewed" phenomenon the repro band warned about. The wall-clock numbers are
reported but only weakly asserted; the simulated numbers carry the claims.
"""

from __future__ import annotations

import os

from repro.core import ParallelMCPricer
from repro.parallel import ProcessBackend, SerialBackend, ThreadBackend
from repro.utils import Table
from repro.workloads import basket_workload

N = 100_000
PS = (1, 2, 4)


def build_f9_table():
    w = basket_workload(4)
    table = Table(
        ["backend", "P", "wall T [s]", "simulated T [s]", "price"],
        title=f"F9 — wall-clock vs simulated time (host cores: {os.cpu_count()})",
        floatfmt=".4g",
    )
    data = {}
    for backend in (SerialBackend(), ThreadBackend(4), ProcessBackend(2)):
        pricer = ParallelMCPricer(N, seed=1, backend=backend)
        rows = []
        for p in PS:
            r = pricer.price(w.model, w.payoff, w.expiry, p)
            rows.append(r)
            table.add_row([backend.name, p, r.wall_time, r.sim_time, r.price])
        data[backend.name] = rows
        backend.close()
    return table, data


def test_f9_real_backends(benchmark, show):
    w = basket_workload(4)
    pricer = ParallelMCPricer(N, seed=1, backend=SerialBackend())
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, 4))
    table, data = build_f9_table()
    show(table.render())
    # The estimator is backend-invariant.
    for p_idx in range(len(PS)):
        prices = {name: rows[p_idx].price for name, rows in data.items()}
        assert len(set(prices.values())) == 1, prices
    # The simulated curve scales regardless of the host hardware.
    for rows in data.values():
        assert rows[0].sim_time / rows[-1].sim_time > 3.0
    # Wall-clock numbers exist and are positive — no claim beyond that on a
    # single-core host (see module docstring).
    for rows in data.values():
        assert all(r.wall_time > 0 for r in rows)


if __name__ == "__main__":
    print(build_f9_table()[0].render())
