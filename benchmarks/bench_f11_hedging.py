"""F11 — Discrete delta-hedging error vs rebalancing frequency.

Shape claims (Boyle & Emanuel 1980):
* hedge-error std ∝ N^{−1/2} in the rebalance count (fitted slope ≈ −0.5);
* mean P&L ≈ 0 with the correct vol at every frequency;
* a ±5-vol-point misspecified hedge produces a systematic P&L equal to the
  premium gap, dwarfing the discretization noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic import bs_price
from repro.market import MultiAssetGBM
from repro.mc import simulate_delta_hedge
from repro.utils import Table

REBALANCES = (5, 10, 20, 40, 80, 160)
N_PATHS = 20_000


def build_f11_table():
    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    table = Table(
        ["rebalances", "mean P&L", "± stderr", "P&L std", "std·√N"],
        title="F11 — delta-hedge error vs rebalancing frequency (ATM call)",
        floatfmt=".4g",
    )
    stds = []
    means = []
    for m in REBALANCES:
        r = simulate_delta_hedge(model, 100.0, 1.0, m, N_PATHS, seed=11)
        stds.append(r.std_pnl)
        means.append((r.mean_pnl, r.stderr_mean))
        table.add_row([m, r.mean_pnl, r.stderr_mean, r.std_pnl,
                       r.std_pnl * np.sqrt(m)])
    slope = float(np.polyfit(np.log(REBALANCES), np.log(stds), 1)[0])

    wrong = simulate_delta_hedge(model, 100.0, 1.0, 80, N_PATHS,
                                 hedge_vol=0.25, seed=12)
    gap = bs_price(100, 100, 0.25, 0.05, 1.0) - bs_price(100, 100, 0.2, 0.05, 1.0)
    return table, slope, means, (wrong, gap)


def test_f11_hedging(benchmark, show):
    model = MultiAssetGBM.single(100.0, 0.2, 0.05)
    benchmark(lambda: simulate_delta_hedge(model, 100.0, 1.0, 20, 5_000, seed=1))
    table, slope, means, (wrong, gap) = build_f11_table()
    show(table.render())
    show(f"fitted std slope: {slope:.3f} (theory −0.5)\n"
         f"misspecified hedge (25% vs 20%): {wrong.mean_pnl:+.4f} "
         f"(premium gap {gap:.4f})")
    assert -0.65 < slope < -0.35, slope
    for mean, se in means:
        assert abs(mean) < 4 * se + 0.02
    assert wrong.mean_pnl == pytest.approx(gap, rel=0.2)


if __name__ == "__main__":
    t, slope, _, (wrong, gap) = build_f11_table()
    print(t.render())
    print(f"slope {slope:.3f}; wrong-vol P&L {wrong.mean_pnl:+.4f} vs gap {gap:.4f}")
