"""F2 — MC efficiency E(P) for several problem sizes N.

Paper-shape claim: efficiency improves with problem size at every P
(the isoefficiency mechanism); small problems stop scaling first.
"""

from __future__ import annotations

from repro.core import ParallelMCPricer
from repro.perf import ScalingSeries
from repro.utils import Table
from repro.workloads import PATH_COUNTS, PROCESSOR_SWEEP, basket_workload


def build_f2_series() -> tuple[Table, dict[int, ScalingSeries]]:
    w = basket_workload(4)
    table = Table(
        ["P"] + [f"E(P) N={n}" for n in PATH_COUNTS],
        title="F2 — MC efficiency vs P for growing N (4-asset basket)",
        floatfmt=".4g",
    )
    series: dict[int, ScalingSeries] = {}
    for n in PATH_COUNTS:
        pricer = ParallelMCPricer(n, seed=1)
        results = pricer.sweep(w.model, w.payoff, w.expiry, PROCESSOR_SWEEP)
        series[n] = ScalingSeries.from_results(results, label=f"N={n}")
    for i, p in enumerate(PROCESSOR_SWEEP):
        table.add_row([p] + [float(series[n].efficiencies[i]) for n in PATH_COUNTS])
    return table, series


def test_f2_mc_efficiency(benchmark, show):
    w = basket_workload(4)
    pricer = ParallelMCPricer(PATH_COUNTS[0], seed=1)
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, 16))
    table, series = build_f2_series()
    show(table.render())
    small, mid, large = (series[n] for n in PATH_COUNTS)
    # At P=32, efficiency is monotone in problem size.
    assert small.efficiencies[-1] < mid.efficiencies[-1] < large.efficiencies[-1]
    assert large.efficiencies[-1] > 0.95


if __name__ == "__main__":
    print(build_f2_series()[0].render())
