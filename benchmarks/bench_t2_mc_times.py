"""T2 — Parallel Monte Carlo execution times T(P), dimensions 1..8.

Paper-shape claim: simulated T(P) falls ≈ linearly in P for every
dimension; absolute time grows ≈ linearly with dimension (per-path work is
∝ d).
"""

from __future__ import annotations

from repro.core import ParallelMCPricer
from repro.utils import Table
from repro.workloads import DIMENSION_SWEEP, PROCESSOR_SWEEP, basket_workload

N_PATHS = 200_000


def build_t2_table() -> tuple[Table, dict]:
    table = Table(
        ["d"] + [f"T(P={p}) [s]" for p in PROCESSOR_SWEEP],
        title=f"T2 — parallel MC simulated times, basket call, N={N_PATHS}",
        floatfmt=".4g",
    )
    times: dict[int, list[float]] = {}
    for d in DIMENSION_SWEEP:
        w = basket_workload(d)
        pricer = ParallelMCPricer(N_PATHS, seed=1)
        row = [pricer.price(w.model, w.payoff, w.expiry, p).sim_time
               for p in PROCESSOR_SWEEP]
        times[d] = row
        table.add_row([d] + row)
    return table, times


def test_t2_mc_times(benchmark, show):
    w = basket_workload(4)
    pricer = ParallelMCPricer(N_PATHS, seed=1)
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, 8))
    table, times = build_t2_table()
    show(table.render())
    for d, row in times.items():
        # Strong scaling: P=32 at least 20× faster than P=1.
        assert row[0] / row[-1] > 20, f"d={d} scaled poorly: {row}"
    # Work grows with dimension.
    assert times[8][0] > times[1][0]


if __name__ == "__main__":
    print(build_t2_table()[0].render())
