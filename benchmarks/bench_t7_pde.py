"""T7 — Parallel ADI PDE scaling across grid sizes.

Paper-shape claims: speedup rises then collapses as the two per-step
all-to-alls start to dominate; the optimum P grows with the grid size;
accuracy (vs Margrabe on the zero-strike contract) is P-invariant.
"""

from __future__ import annotations

import numpy as np

from repro.analytic import kirk_spread_price
from repro.core import ParallelPDEPricer
from repro.perf import ScalingSeries
from repro.utils import Table
from repro.workloads import spread_workload

PS = (1, 2, 4, 8, 16, 32)
GRIDS = (64, 128, 256)
STEPS = 16


def build_t7_table():
    w = spread_workload()
    table = Table(
        ["P"] + [f"S(P) grid {g}²" for g in GRIDS],
        title="T7 — ADI speedup vs P for growing grids (2-asset spread call)",
        floatfmt=".4g",
    )
    series = {}
    for g in GRIDS:
        pricer = ParallelPDEPricer(n_space=g, n_time=STEPS)
        series[g] = ScalingSeries.from_results(
            pricer.sweep(w.model, w.payoff, w.expiry, PS)
        )
    for i, p in enumerate(PS):
        table.add_row([p] + [float(series[g].speedups[i]) for g in GRIDS])
    return table, series


def test_t7_pde_scaling(benchmark, show):
    w = spread_workload()
    pricer = ParallelPDEPricer(n_space=GRIDS[0], n_time=STEPS)
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, 8))
    table, series = build_t7_table()
    show(table.render())
    # Optimal P grows with grid size.
    best_p = {g: PS[int(np.argmax(series[g].speedups))] for g in GRIDS}
    assert best_p[256] >= best_p[64]
    # Speedup collapses past the optimum on the smallest grid.
    s64 = series[64].speedups
    assert s64[-1] < max(s64)

    # Accuracy: price is close to Kirk and identical across P.
    kirk = kirk_spread_price(100, 96, 5.0, 0.25, 0.2, 0.5, 0.05, 1.0)
    pricer = ParallelPDEPricer(n_space=256, n_time=64)
    p1 = pricer.price(w.model, w.payoff, w.expiry, 1)
    p8 = pricer.price(w.model, w.payoff, w.expiry, 8)
    assert abs(p1.price - p8.price) < 1e-12
    assert abs(p1.price - kirk) < 0.02 * kirk


if __name__ == "__main__":
    print(build_t7_table()[0].render())
