"""F4 — Strong vs weak scaling (Amdahl vs Gustafson perspectives).

Paper-shape claim: with the workload grown ∝ P (weak scaling), the scaled
speedup stays near-linear far past the point where strong scaling of the
fixed-size problem has flattened.
"""

from __future__ import annotations

from repro.core import ParallelMCPricer
from repro.perf import gustafson_speedup
from repro.utils import Table
from repro.workloads import PROCESSOR_SWEEP, basket_workload

BASE_N = 20_000  # deliberately small so strong scaling flattens in range


def build_f4_table() -> tuple[Table, list[float], list[float]]:
    w = basket_workload(4)
    strong_pricer = ParallelMCPricer(BASE_N, seed=1)
    t1 = strong_pricer.price(w.model, w.payoff, w.expiry, 1).sim_time

    strong, weak = [], []
    table = Table(
        ["P", "strong S(P)", "weak scaled S(P)", "Gustafson bound"],
        title=f"F4 — strong vs weak scaling, base N={BASE_N}",
        floatfmt=".4g",
    )
    for p in PROCESSOR_SWEEP:
        ts = strong_pricer.price(w.model, w.payoff, w.expiry, p).sim_time
        strong.append(t1 / ts)
        # Weak scaling: N grows ∝ P; scaled speedup = P · T(1,N₀)/T(P,P·N₀).
        weak_pricer = ParallelMCPricer(BASE_N * p, seed=1)
        tw = weak_pricer.price(w.model, w.payoff, w.expiry, p).sim_time
        weak.append(p * t1 / tw)
        table.add_row([p, strong[-1], weak[-1], gustafson_speedup(p, 0.0)])
    return table, strong, weak


def test_f4_weak_scaling(benchmark, show):
    w = basket_workload(4)
    pricer = ParallelMCPricer(BASE_N * 8, seed=1)
    benchmark(lambda: pricer.price(w.model, w.payoff, w.expiry, 8))
    table, strong, weak = build_f4_table()
    show(table.render())
    # Weak scaling dominates strong scaling at high P.
    assert weak[-1] > strong[-1]
    # Weak scaled speedup stays ≥ 95% of ideal across the sweep.
    assert weak[-1] > 32 * 0.95


if __name__ == "__main__":
    print(build_f4_table()[0].render())
