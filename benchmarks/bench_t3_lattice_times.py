"""T3 — Lattice execution times across dimensions (the 2^d·(n+1)^d blow-up).

Paper-shape claim: at fixed step count, per-dimension cost explodes
exponentially; parallelism cannot rescue the d=3 lattice the way it
rescues MC (compare T2).
"""

from __future__ import annotations

from repro.core import ParallelLatticePricer
from repro.market import MultiAssetGBM
from repro.payoffs import Call, CallOnMax, GeometricBasketCall
from repro.utils import Table

PS = (1, 4, 16)
#: steps per dimension chosen so every case is tractable.
CASES = {1: 512, 2: 128, 3: 40}


def _workload(d: int):
    model = MultiAssetGBM.equicorrelated(d, 100.0, 0.25, 0.05, 0.3 if d > 1 else 0.0)
    if d == 1:
        return model, Call(100.0)
    if d == 2:
        return model, CallOnMax(100.0)
    return model, GeometricBasketCall([1.0 / d] * d, 100.0)


def build_t3_table() -> tuple[Table, dict]:
    table = Table(
        ["d", "steps", "nodes"] + [f"T(P={p}) [s]" for p in PS],
        title="T3 — BEG lattice simulated times across dimensions",
        floatfmt=".4g",
    )
    data: dict[int, list[float]] = {}
    for d, steps in CASES.items():
        model, payoff = _workload(d)
        pricer = ParallelLatticePricer(steps)
        row = [pricer.price(model, payoff, 1.0, p) for p in PS]
        nodes = row[0].meta["nodes"]
        data[d] = [r.sim_time for r in row]
        table.add_row([d, steps, nodes] + data[d])
    return table, data


def test_t3_lattice_times(benchmark, show):
    model, payoff = _workload(2)
    pricer = ParallelLatticePricer(CASES[2])
    benchmark(lambda: pricer.price(model, payoff, 1.0, 4))
    table, data = build_t3_table()
    show(table.render())
    # The 1-D binomial is a historically documented parallel *loser* on a
    # 50µs-latency machine: each level holds ≤ n nodes (microseconds of
    # work) but pays a fixed halo latency, so P>1 is slower than serial.
    assert data[1][-1] > data[1][0], "1-D lattice should NOT profit here"
    # The d≥2 lattices carry (t+1)^{d-1}-sized planes per level and do profit.
    for d in (2, 3):
        assert data[d][0] > data[d][-1], f"d={d}: parallel should win"


if __name__ == "__main__":
    print(build_t3_table()[0].render())
